// Ablation (extension, not in the paper): contribution of each generic
// transformation in isolation. Runs the Modbus workload at one obfuscation
// per node with only a single transformation kind enabled, measuring how
// much structure it creates, what it costs at runtime, and how far it moves
// the wire image from the plain serialization (mean per-byte edit distance
// via alignment similarity).
//
// The paper selects transformations uniformly at random; this table answers
// "which transformation buys what", the input a non-random selection policy
// (the paper's §VIII future work) would need.
#include <chrono>
#include <cstdio>

#include "codegen/generator.hpp"
#include "harness.hpp"
#include "pre/alignment.hpp"

namespace protoobf::bench {
namespace {

struct Ablation {
  std::size_t applied = 0;
  double lines = 0;     // normalized
  double structs = 0;
  double cg_size = 0;
  double buffer_ratio = 0;   // obfuscated / plain serialized size
  double wire_similarity = 0;  // alignment similarity obf vs plain wire
  double parse_us = 0;
};

Ablation measure(const Workload& w, const Baseline& base, TransformKind kind,
                 int runs) {
  Ablation out;
  Scenario scenario;
  // Reuse the generic scenario driver with a single-kind configuration by
  // replaying its logic here (the driver randomizes over all kinds).
  double plain_bytes = 0, obf_bytes = 0, sim_total = 0;
  int sim_count = 0;
  Series lines, structs, cg, parse_us;

  for (int run = 0; run < runs; ++run) {
    const std::uint64_t seed = 555 + 31 * static_cast<std::uint64_t>(run);
    double l = 0, s = 0, c = 0;
    std::vector<ObfuscatedProtocol> plain, obf;
    for (std::size_t i = 0; i < w.graphs.size(); ++i) {
      ObfuscationConfig plain_cfg;
      plain_cfg.per_node = 0;
      plain.push_back(Framework::generate(w.graphs[i], plain_cfg).value());

      ObfuscationConfig cfg;
      cfg.per_node = 1;
      cfg.seed = seed + i;
      cfg.enabled = {kind};
      auto protocol = Framework::generate(w.graphs[i], cfg);
      if (!protocol.ok()) continue;
      out.applied += protocol->stats().applied;
      const GeneratedCode code = generate_cpp(*protocol);
      l += static_cast<double>(code.metrics.lines);
      s += static_cast<double>(code.metrics.structs);
      c += static_cast<double>(code.metrics.callgraph_size);
      obf.push_back(std::move(protocol.value()));
    }
    lines.add(l / base.lines);
    structs.add(s / base.structs);
    cg.add(c / base.cg_size);

    Rng rng(seed ^ 0x77);
    for (int m = 0; m < 10; ++m) {
      const std::size_t which =
          obf.size() > 1 ? rng.below(obf.size()) : 0;
      Message msg = w.make(which, w.graphs[which], rng);
      auto pw = plain[which].serialize(msg.root(), seed + m);
      auto ow = obf[which].serialize(msg.root(), seed + m);
      if (!pw.ok() || !ow.ok()) continue;
      plain_bytes += static_cast<double>(pw->size());
      obf_bytes += static_cast<double>(ow->size());
      if (sim_count < 60) {
        sim_total += pre::similarity(*pw, *ow);
        ++sim_count;
      }
      const auto t0 = std::chrono::steady_clock::now();
      auto parsed = obf[which].parse(*ow);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (parsed.ok()) parse_us.add(us);
    }
  }
  out.lines = lines.summary().avg;
  out.structs = structs.summary().avg;
  out.cg_size = cg.summary().avg;
  out.buffer_ratio = plain_bytes > 0 ? obf_bytes / plain_bytes : 0;
  out.wire_similarity = sim_count > 0 ? sim_total / sim_count : 0;
  out.parse_us = parse_us.summary().avg;
  return out;
}

}  // namespace
}  // namespace protoobf::bench

namespace protoobf::bench {
namespace {

// A feature-complete synthetic protocol so every transformation kind has
// targets (Modbus alone has no Delimited nodes or splittable repetitions).
constexpr std::string_view kAblationSpec = R"(
protocol Ablation
m: seq end {
  magic: terminal fixed(2) const(0x5150)
  n: terminal fixed(1)
  name: terminal delimited(":") ascii
  pairs: tabular(n) { p: seq { pk: terminal fixed(1) pv: terminal fixed(2) } }
  attrs: repeat delimited(";") {
    attr: seq { ak: terminal fixed(1) av: terminal fixed(3) }
  }
  blob_len: terminal fixed(2)
  blob: terminal length(blob_len)
  tail: terminal end
}
)";

Message make_ablation(std::size_t /*which*/, const Graph& g, Rng& rng) {
  Message msg(g);
  msg.set_text("name", "obj" + std::to_string(rng.below(100)));
  const std::size_t pairs = rng.between(1, 4);
  for (std::size_t i = 0; i < pairs; ++i) {
    msg.append("pairs");
    const std::string base = "pairs[" + std::to_string(i) + "].p.";
    msg.set(base + "pk", rng.bytes(1));
    msg.set(base + "pv", rng.bytes(2));
  }
  const std::size_t attrs = rng.between(1, 3);
  for (std::size_t i = 0; i < attrs; ++i) {
    msg.append("attrs");
    const std::string base = "attrs[" + std::to_string(i) + "].attr.";
    msg.set(base + "ak", rng.bytes(1));
    msg.set(base + "av", rng.bytes(3));
  }
  msg.set("blob", rng.bytes(rng.between(2, 12)));
  msg.set("tail", rng.bytes(rng.between(1, 6)));
  return msg;
}

Workload ablation_workload() {
  Workload w;
  w.name = "synthetic (all features)";
  w.graphs.push_back(Framework::load_spec(kAblationSpec).value());
  w.make = make_ablation;
  return w;
}

}  // namespace
}  // namespace protoobf::bench

int main(int argc, char** argv) {
  using namespace protoobf;
  using namespace protoobf::bench;
  const int runs = runs_from_argv(argc, argv, 20);

  const Workload w = ablation_workload();
  const Baseline base = measure_baseline(w);

  std::printf("Per-transformation ablation — feature-complete synthetic "
              "protocol, 1 obf/node,\nsingle kind enabled, %d runs each\n\n",
              runs);
  std::printf("%-16s %8s %8s %8s %9s %9s %9s %10s\n", "transformation",
              "applied", "lines", "structs", "cg size", "buf x",
              "wire sim", "parse us");
  for (TransformKind kind : kAllTransformKinds) {
    const Ablation a = measure(w, base, kind, runs);
    std::printf("%-16s %8zu %8.2f %8.2f %9.2f %9.2f %9.2f %10.2f\n",
                to_string(kind), a.applied / static_cast<std::size_t>(runs),
                a.lines, a.structs, a.cg_size, a.buffer_ratio,
                a.wire_similarity, a.parse_us);
  }
  std::printf("\nbuf x    : obfuscated/plain serialized size ratio\n");
  std::printf("wire sim : alignment similarity of obfuscated vs plain wire "
              "(lower = better hiding)\n");
  return 0;
}
