// Allocation profile of the message hot path: heap allocations per message
// for serialize and parse, plain ObfuscatedProtocol calls vs. the pooled
// Session paths.
//
// The point of the InstPool/arena work is that a steady-state session
// performs O(1) heap allocations per message where the plain paths pay
// O(nodes): one Inst plus one Bytes per tree node, per message, per
// direction. This bench counts real allocations with a global operator-new
// hook, after a warm-up that grows every pool to its high-water mark, and
// writes BENCH_alloc.json so CI can archive the trajectory.
//
// Usage: bench_alloc_profile [messages] [repeats] [per_node] [json_path]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "ast/ast.hpp"
#include "harness.hpp"
#include "session/protocol_cache.hpp"
#include "session/session.hpp"

// --- operator-new hook ------------------------------------------------------
// Counts every heap allocation in the process. Deletes are deliberately
// uncounted: the metric is allocation traffic, not live bytes.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace protoobf;

std::uint64_t msg_seed_of(std::size_t i) {
  return 0x5e55 + 11400714819323198485ull * i;
}

/// Allocations per message across `repeats` passes of `body` over
/// `messages` messages.
template <typename Body>
double allocs_per_msg(std::size_t messages, int repeats, Body&& body) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int r = 0; r < repeats; ++r) body();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  return static_cast<double>(after - before) /
         static_cast<double>(messages * static_cast<std::size_t>(repeats));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t messages =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 256;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 4;
  const int per_node = argc > 3 ? std::atoi(argv[3]) : 2;
  const char* json_path = argc > 4 ? argv[4] : "BENCH_alloc.json";
  if (messages == 0 || repeats <= 0 || per_node < 0) {
    std::fprintf(stderr,
                 "usage: bench_alloc_profile [messages>0] [repeats>0] "
                 "[per_node>=0] [json_path]\n");
    return 2;
  }

  bench::Workload workload = bench::http_workload();
  const Graph& g = workload.graphs[0];

  ObfuscationConfig config;
  config.seed = 2018;
  config.per_node = per_node;

  ProtocolCache cache;
  auto entry = cache.get_or_compile(g, ProtocolCache::hash_graph(g), config);
  if (!entry) {
    std::fprintf(stderr, "obfuscation failed: %s\n",
                 entry.error().message.c_str());
    return 1;
  }
  const ObfuscatedProtocol& protocol = **entry;

  Rng rng(7);
  std::vector<Message> msgs;
  msgs.reserve(messages);
  for (std::size_t i = 0; i < messages; ++i) {
    msgs.push_back(workload.make(0, g, rng));
  }

  // Session without a worker pool: the single-shard path is the hot loop a
  // connection handler runs, and keeps the numbers deterministic.
  Session session(*entry);

  std::vector<Bytes> wires;
  wires.reserve(messages);
  double tree_nodes = 0;
  for (std::size_t i = 0; i < messages; ++i) {
    auto wire = protocol.serialize(msgs[i].root(), msg_seed_of(i));
    if (!wire) {
      std::fprintf(stderr, "serialize failed: %s\n",
                   wire.error().message.c_str());
      return 1;
    }
    wires.push_back(std::move(*wire));
    tree_nodes += static_cast<double>(ast::count(msgs[i].root()));
  }
  tree_nodes /= static_cast<double>(messages);

  // Warm-up: two full rounds grow the arena buffers, the node pool and the
  // Bytes capacities inside recycled nodes to their high-water marks.
  for (int r = 0; r < 2; ++r) {
    for (std::size_t i = 0; i < messages; ++i) {
      (void)session.serialize(msgs[i].root(), msg_seed_of(i));
      auto tree = session.parse(wires[i]);
      if (!tree) {
        std::fprintf(stderr, "parse failed: %s\n",
                     tree.error().message.c_str());
        return 1;
      }
    }
  }

  const double ser_plain = allocs_per_msg(messages, repeats, [&] {
    for (std::size_t i = 0; i < messages; ++i) {
      auto wire = protocol.serialize(msgs[i].root(), msg_seed_of(i));
      (void)wire;
    }
  });
  const double ser_session = allocs_per_msg(messages, repeats, [&] {
    for (std::size_t i = 0; i < messages; ++i) {
      (void)session.serialize(msgs[i].root(), msg_seed_of(i));
    }
  });
  const double parse_plain = allocs_per_msg(messages, repeats, [&] {
    for (const Bytes& wire : wires) {
      auto tree = protocol.parse(wire);
      (void)tree;
    }
  });
  const double parse_session = allocs_per_msg(messages, repeats, [&] {
    for (const Bytes& wire : wires) {
      auto tree = session.parse(wire);
      (void)tree;
    }
  });

  const InstPool::Stats pool = session.arena().nodes().stats();

  std::printf("alloc_profile — %s, per_node=%d, %zu msgs x %d repeats, "
              "%.1f logical nodes/msg\n",
              workload.name.c_str(), per_node, messages, repeats, tree_nodes);
  std::printf("  %-22s %10.2f allocs/msg\n", "serialize/plain", ser_plain);
  std::printf("  %-22s %10.2f allocs/msg\n", "serialize/session", ser_session);
  std::printf("  %-22s %10.2f allocs/msg\n", "parse/plain", parse_plain);
  std::printf("  %-22s %10.2f allocs/msg\n", "parse/session", parse_session);
  std::printf("  node pool: %zu hits, %zu misses, %zu slabs, %zu live\n",
              pool.hits, pool.misses, pool.slabs, pool.live);

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"alloc_profile\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"per_node\": %d,\n"
                 "  \"messages\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"logical_nodes_per_msg\": %.2f,\n"
                 "  \"serialize_plain_allocs_per_msg\": %.3f,\n"
                 "  \"serialize_session_allocs_per_msg\": %.3f,\n"
                 "  \"parse_plain_allocs_per_msg\": %.3f,\n"
                 "  \"parse_session_allocs_per_msg\": %.3f,\n"
                 "  \"pool_hits\": %zu,\n"
                 "  \"pool_misses\": %zu\n"
                 "}\n",
                 workload.name.c_str(), per_node, messages, repeats,
                 tree_nodes, ser_plain, ser_session, parse_plain,
                 parse_session, pool.hits, pool.misses);
    std::fclose(f);
    std::printf("  wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
