// Fault-recovery bench: what a hostile transport costs ReliableClient.
//
// Two identical drills — N ReliableClients confirming M echoed messages
// each against a sharded loopback server — once on a clean transport and
// once under a seeded FaultInjector schedule (short reads/writes, EAGAIN
// storms, scheduled kills, refused dials). Reported:
//
//   clean/faulty msgs/s   end-to-end confirmed-echo throughput;
//   recovery latency      per drop: connection-lost edge to the replacement
//                         connection serving traffic again (on_state false
//                         -> true), the time the backoff+redial machinery
//                         actually costs. Recorded into an obs::Histogram —
//                         the same log-bucketed instrument the live
//                         /metrics endpoint serves — so the bench
//                         quantiles and production quantiles share one
//                         estimator;
//   recovery_vs_cap       mean recovery latency over the backoff cap — the
//                         CI ratio guard: redials must resolve within a
//                         small multiple of the configured worst-case
//                         delay, or the retry loop is spinning not healing.
//
// Usage: bench_faults [conns] [messages] [fault_seed] [json_path]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/protoobf.hpp"
#include "net/fault.hpp"
#include "net/reconnect.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "session/protocol_cache.hpp"
#include "util/rng.hpp"

namespace {

using namespace protoobf;

constexpr std::string_view kSpec = R"(
protocol FaultBench
msg: seq end {
  tag: terminal fixed(2)
  blen: terminal fixed(2)
  body: terminal length(blen)
}
)";

constexpr std::chrono::milliseconds kBackoffInitial{5};
constexpr std::chrono::milliseconds kBackoffCap{100};

Message bench_message(const Graph& g, Rng& rng) {
  Message msg(g);
  Bytes tag(2);
  Bytes body(static_cast<std::size_t>(rng.between(4, 32)));
  for (Byte& b : tag) b = static_cast<Byte>(rng.between('A', 'Z'));
  for (Byte& b : body) b = static_cast<Byte>(rng.between('a', 'z'));
  (void)msg.set("tag", std::move(tag));
  (void)msg.set("body", std::move(body));
  return msg;
}

/// Loop-thread-only client state; atomics are the main thread's window.
struct DrillClient {
  std::unique_ptr<net::ReliableClient> client;
  std::uint64_t confirmed = 0;
  std::uint64_t dropped_at_ns = 0;
  bool down = false;
  std::atomic<std::uint64_t> acked{0};
  std::atomic<bool> gave_up{false};
};

struct DrillResult {
  double msgs_per_sec = 0;
  double elapsed_ms = 0;
  std::size_t complete = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t resent = 0;
  // Drop -> serving-again latency, all clients pooled. Histogram::record
  // is thread-safe, so the loop threads feed it directly.
  obs::Histogram::Snapshot recovery;
};

DrillResult run_drill(std::shared_ptr<const ObfuscatedProtocol> protocol,
                      const Graph& g, std::size_t conns, std::uint64_t msgs,
                      net::FaultInjector* server_faults,
                      net::FaultInjector* client_faults,
                      std::uint64_t seed) {
  // Heap-allocated: a Histogram carries its padded per-thread blocks
  // inline (~tens of KB) — too big for comfort on the stack.
  auto recovery_hist = std::make_unique<obs::Histogram>();
  net::Server::Config scfg;
  scfg.endpoint = {"127.0.0.1", 0};
  scfg.shards = 2;
  scfg.max_connections = conns + 32;
  scfg.connection.drain_timeout = std::chrono::milliseconds(2000);
  if (server_faults != nullptr) scfg.connection.ops = server_faults;
  net::Server server(protocol, net::length_prefix_framer_factory(), scfg);
  server.on_accept([](net::Connection& conn) {
    conn.on_message([](net::Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) return;
      (void)c.send(**msg, c.stats().messages_in);
    });
  });
  if (Status s = server.start(); !s) {
    std::fprintf(stderr, "server start failed: %s\n",
                 s.error().message.c_str());
    std::exit(1);
  }

  const std::size_t n_loops = conns < 2 ? conns : 2;
  std::vector<std::unique_ptr<net::EventLoop>> loops;
  for (std::size_t i = 0; i < n_loops; ++i) {
    loops.push_back(std::make_unique<net::EventLoop>());
  }
  std::vector<DrillClient> clients(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    net::ReliableClient::Config ccfg;
    ccfg.endpoint = {"127.0.0.1", server.port()};
    ccfg.framer_factory = net::length_prefix_framer_factory();
    if (client_faults != nullptr) ccfg.connection.ops = client_faults;
    ccfg.backoff.initial = kBackoffInitial;
    ccfg.backoff.cap = kBackoffCap;
    ccfg.max_unacked = msgs;
    ccfg.seed = seed + i;
    DrillClient& state = clients[i];
    state.client = std::make_unique<net::ReliableClient>(
        *loops[i % n_loops], protocol, ccfg);
    state.client->on_message([&state](Expected<InstPtr> msg) {
      if (!msg.ok()) return;
      state.client->ack(++state.confirmed);
      state.acked.store(state.client->stats().acked);
    });
    state.client->on_state([&state, hist = recovery_hist.get()](
                               bool connected) {
      const std::uint64_t now = obs::now_ns();
      if (!connected) {
        state.down = true;
        state.dropped_at_ns = now;
      } else if (state.down) {
        state.down = false;
        hist->record(now - state.dropped_at_ns);
      }
    });
    state.client->on_gave_up(
        [&state](const Error&) { state.gave_up.store(true); });
  }

  std::vector<std::thread> threads;
  for (auto& loop : loops) {
    threads.emplace_back([&loop] { loop->run(); });
  }
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < conns; ++i) {
    DrillClient& state = clients[i];
    loops[i % n_loops]->post([&state, &g, proto = protocol, seed, i, msgs] {
      state.client->start();
      Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
      for (std::uint64_t m = 0; m < msgs; ++m) {
        Message msg = bench_message(g, rng);
        (void)proto->canonicalize(msg.root());
        (void)state.client->send(msg.root());
      }
    });
  }

  const auto deadline =
      started + std::chrono::milliseconds(30000 + 50 * conns * msgs);
  auto done = [&] {
    for (const DrillClient& state : clients) {
      if (state.gave_up.load()) return true;
      if (state.acked.load() < msgs) return false;
    }
    return true;
  };
  while (!done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  DrillResult result;
  result.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - started)
                          .count();
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> resent{0};
  std::atomic<std::size_t> stopped{0};
  for (std::size_t i = 0; i < conns; ++i) {
    DrillClient& state = clients[i];
    if (state.acked.load() >= msgs) ++result.complete;
    loops[i % n_loops]->post([&state, &stopped, &reconnects, &resent] {
      reconnects.fetch_add(state.client->stats().reconnects);
      resent.fetch_add(state.client->stats().resent);
      state.client->stop();
      stopped.fetch_add(1);
    });
  }
  const auto stop_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stopped.load() < conns &&
         std::chrono::steady_clock::now() < stop_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.drain(std::chrono::milliseconds(5000));
  for (auto& loop : loops) loop->stop();
  for (auto& thread : threads) thread.join();
  result.recovery = recovery_hist->snapshot();
  result.reconnects = reconnects.load();
  result.resent = resent.load();
  result.msgs_per_sec = result.elapsed_ms > 0
                            ? 1000.0 * static_cast<double>(result.complete) *
                                  static_cast<double>(msgs) /
                                  result.elapsed_ms
                            : 0;
  clients.clear();  // after their loops stopped
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t conns =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 32;
  const std::uint64_t msgs =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 32;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;
  const char* json_path = argc > 4 ? argv[4] : "BENCH_faults.json";
  if (conns == 0 || msgs == 0) {
    std::fprintf(stderr,
                 "usage: bench_faults [conns>0] [messages>0] [fault_seed] "
                 "[json_path]\n");
    return 2;
  }

  ProtocolCache cache;
  ObfuscationConfig ocfg;
  ocfg.seed = 7;
  ocfg.per_node = 2;
  auto protocol = cache.get_or_compile(kSpec, ocfg);
  if (!protocol) {
    std::fprintf(stderr, "obfuscation failed: %s\n",
                 protocol.error().message.c_str());
    return 1;
  }
  auto g = Framework::load_spec(kSpec).value();

  // Clean baseline first, then the same drill under the fault schedule.
  const DrillResult clean =
      run_drill(*protocol, g, conns, msgs, nullptr, nullptr, seed);

  net::FaultPlan plan;
  plan.seed = seed;
  plan.short_read = 0.2;
  plan.short_write = 0.2;
  plan.eagain = 0.1;
  plan.kill_rate = 0.4;
  plan.kill_window_bytes = 2048;
  plan.refuse_every = 5;
  net::FaultInjector server_faults(plan);
  net::FaultPlan client_plan = plan;
  client_plan.seed = seed ^ 0x9e3779b97f4a7c15ull;
  net::FaultInjector client_faults(client_plan);
  const DrillResult faulty = run_drill(*protocol, g, conns, msgs,
                                       &server_faults, &client_faults, seed);

  const double ratio = clean.msgs_per_sec > 0
                           ? faulty.msgs_per_sec / clean.msgs_per_sec
                           : 0;
  // Histogram quantiles come back in nanoseconds; the report speaks ms.
  const obs::Histogram::Snapshot& rec = faulty.recovery;
  const double mean_recovery = rec.mean() / 1e6;
  const double p50_recovery = rec.p50 / 1e6;
  const double p95_recovery = rec.p95 / 1e6;
  const double p99_recovery = rec.p99 / 1e6;
  const double max_recovery = static_cast<double>(rec.max) / 1e6;
  const double cap_ms =
      std::chrono::duration<double, std::milli>(kBackoffCap).count();
  const double recovery_vs_cap = mean_recovery / cap_ms;
  const std::uint64_t kills =
      server_faults.kills() + client_faults.kills();

  std::printf("faults — %zu clients x %llu msgs, fault seed %llu\n", conns,
              static_cast<unsigned long long>(msgs),
              static_cast<unsigned long long>(seed));
  std::printf("  %-22s %12.0f msgs/s  (%zu/%zu complete)\n", "echo/clean",
              clean.msgs_per_sec, clean.complete, conns);
  std::printf("  %-22s %12.0f msgs/s  (%zu/%zu complete)\n", "echo/faulty",
              faulty.msgs_per_sec, faulty.complete, conns);
  std::printf("  faulty/clean: %.3fx\n", ratio);
  std::printf(
      "  recovery: %llu drops healed, mean %.1f ms, p50 %.1f ms, "
      "p95 %.1f ms, p99 %.1f ms, max %.1f ms "
      "(backoff cap %.0f ms, mean/cap %.2f)\n",
      static_cast<unsigned long long>(rec.count), mean_recovery,
      p50_recovery, p95_recovery, p99_recovery, max_recovery, cap_ms,
      recovery_vs_cap);
  std::printf("  faults: %llu kills, %llu reconnects, %llu resends\n",
              static_cast<unsigned long long>(kills),
              static_cast<unsigned long long>(faulty.reconnects),
              static_cast<unsigned long long>(faulty.resent));

  // The drills must both complete; the fault schedule may cost throughput
  // but never messages.
  if (clean.complete != conns || faulty.complete != conns) {
    std::fprintf(stderr, "DRILL LOST CLIENTS: clean %zu/%zu faulty %zu/%zu\n",
                 clean.complete, conns, faulty.complete, conns);
    return 1;
  }

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"faults\",\n"
                 "  \"conns\": %zu,\n"
                 "  \"messages\": %llu,\n"
                 "  \"fault_seed\": %llu,\n"
                 "  \"clean_msgs_per_sec\": %.1f,\n"
                 "  \"faulty_msgs_per_sec\": %.1f,\n"
                 "  \"faulty_vs_clean_ratio\": %.4f,\n"
                 "  \"recoveries\": %llu,\n"
                 "  \"mean_recovery_ms\": %.2f,\n"
                 "  \"p50_recovery_ms\": %.2f,\n"
                 "  \"p95_recovery_ms\": %.2f,\n"
                 "  \"p99_recovery_ms\": %.2f,\n"
                 "  \"max_recovery_ms\": %.2f,\n"
                 "  \"backoff_cap_ms\": %.0f,\n"
                 "  \"recovery_vs_cap_ratio\": %.4f,\n"
                 "  \"kills\": %llu,\n"
                 "  \"reconnects\": %llu,\n"
                 "  \"resends\": %llu\n"
                 "}\n",
                 conns, static_cast<unsigned long long>(msgs),
                 static_cast<unsigned long long>(seed), clean.msgs_per_sec,
                 faulty.msgs_per_sec, ratio,
                 static_cast<unsigned long long>(rec.count), mean_recovery,
                 p50_recovery, p95_recovery, p99_recovery, max_recovery,
                 cap_ms, recovery_vs_cap,
                 static_cast<unsigned long long>(kills),
                 static_cast<unsigned long long>(faulty.reconnects),
                 static_cast<unsigned long long>(faulty.resent));
    std::fclose(f);
    std::printf("  wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
