// Reproduces Fig. 4: HTTP parsing and serialization time vs number of
// transformations, with linear regression and correlation coefficient.
#include "report.hpp"

int main(int argc, char** argv) {
  using namespace protoobf::bench;
  print_time_figure("Figure 4", http_workload(), runs_from_argv(argc, argv));
  return 0;
}
