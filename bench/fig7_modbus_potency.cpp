// Reproduces Fig. 7: Modbus normalized potency metrics vs number of
// transformations applied on the graph.
#include "report.hpp"

int main(int argc, char** argv) {
  using namespace protoobf::bench;
  print_potency_figure("Figure 7", modbus_workload(),
                       runs_from_argv(argc, argv));
  return 0;
}
