// Adversarial fuzz throughput: how many structure-aware mutants per
// second the full invariant oracle (FuzzRunner::check — one-shot parse,
// chunk-split resumed replay, verdict agreement, pool-leak check) sustains
// per protocol arm. Two numbers matter:
//
//   * mutants/s — the cost of the robustness gate itself; this decides
//     how many iterations CI can afford and is the budget behind the
//     PROTOOBF_FUZZ_ITERS default;
//   * violations — must be zero; the bench doubles as a long-running
//     smoke of the hostile-bytes contract at iteration counts the unit
//     suite does not reach.
//
// Arms mirror the fuzz_wire_test campaign: a length-prefixed demo, the
// delimiter-heavy chat spec (obfuscated and identity — only the identity
// compilation keeps raw delimiter bytes on the wire), and Modbus requests
// driven by the paper's workload generator.
//
// Usage: bench_fuzz_adversarial [iters] [seed] [json_path]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fuzz/mutator.hpp"
#include "fuzz/runner.hpp"
#include "harness.hpp"
#include "protocols/modbus.hpp"
#include "runtime/parse.hpp"

namespace {

using namespace protoobf;

constexpr std::string_view kNetDemoSpec = R"(
protocol NetDemo
msg: seq end {
  tag: terminal fixed(2)
  blen: terminal fixed(2)
  body: terminal length(blen)
}
)";

constexpr std::string_view kDelimSpec = R"(
protocol DelimChat
m: seq end {
  kind: terminal fixed(1)
  items: repeat delimited("$") {
    item: seq delimited("$") {
      ilen: terminal fixed(1)
      ival: terminal length(ilen)
    }
  }
  note: terminal delimited("\r\n") ascii
}
)";

struct ArmSpec {
  const char* name;
  std::string_view spec;
  int per_node;
  bool modbus_generator;
};

struct ArmResult {
  const char* name = "";
  bool whole_message = false;
  double mutants_per_sec = 0;
  double seconds = 0;
  fuzz::FuzzRunner::Totals totals;
  std::uint64_t resumed = 0;
  std::uint64_t suspensions = 0;
  std::size_t slabs = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t iters =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 20000;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 0xF022;
  const char* json_path = argc > 3 ? argv[3] : "BENCH_fuzz.json";
  if (iters == 0) {
    std::fprintf(stderr,
                 "usage: bench_fuzz_adversarial [iters>0] [seed] [json]\n");
    return 2;
  }

  const ArmSpec arms[] = {
      {"netdemo", kNetDemoSpec, 2, false},
      {"delimchat", kDelimSpec, 2, false},
      {"delimchat-identity", kDelimSpec, 0, false},
      {"modbus-request", modbus::request_spec(), 2, true},
  };

  std::vector<ArmResult> results;
  for (const ArmSpec& arm : arms) {
    auto graph = Framework::load_spec(arm.spec);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", arm.name,
                   graph.error().message.c_str());
      return 1;
    }
    ObfuscationConfig cfg;
    cfg.seed = 90125;
    cfg.per_node = arm.per_node;
    auto protocol = Framework::generate(*graph, cfg);
    if (!protocol.ok()) {
      std::fprintf(stderr, "%s: %s\n", arm.name,
                   protocol.error().message.c_str());
      return 1;
    }

    fuzz::WireMutator::Config mut_cfg;
    if (arm.modbus_generator) {
      mut_cfg.generator = [](const Graph& g, Rng& rng) {
        return ast::clone(modbus::random_request(g, rng).root());
      };
    }
    auto mutator = fuzz::WireMutator::create(*protocol, seed, mut_cfg);
    if (!mutator.ok()) {
      std::fprintf(stderr, "%s: %s\n", arm.name,
                   mutator.error().message.c_str());
      return 1;
    }

    fuzz::FuzzRunner::Config run_cfg;
    run_cfg.whole_message = !stream_safe(protocol->wire_graph()).ok();
    fuzz::FuzzRunner runner(*protocol, run_cfg);

    Rng chunks(seed ^ 0xC4A7);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
      const fuzz::Mutant m = mutator->next();
      const std::string violation = runner.check(m.wire, chunks);
      if (!violation.empty()) {
        std::fprintf(stderr, "%s VIOLATION at iter %llu (%s): %s\n%s",
                     arm.name, static_cast<unsigned long long>(i), m.strategy,
                     violation.c_str(), hexdump(m.wire).c_str());
        return 1;
      }
    }

    ArmResult r;
    r.name = arm.name;
    r.whole_message = run_cfg.whole_message;
    r.seconds = seconds_since(start);
    r.mutants_per_sec = static_cast<double>(iters) / r.seconds;
    r.totals = runner.totals();
    r.resumed = runner.resume_stats().resumed;
    r.suspensions = runner.resume_stats().suspensions;
    r.slabs = runner.arena().nodes().stats().slabs;
    results.push_back(r);
  }

  std::printf("fuzz_adversarial — %llu mutants/arm, campaign seed %llu\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(seed));
  for (const ArmResult& r : results) {
    std::printf(
        "  %-20s %9.0f mutants/s  (%s; %llu parsed / %llu trunc / %llu "
        "malformed; %llu resumed; %zu slabs)\n",
        r.name, r.mutants_per_sec,
        r.whole_message ? "whole-message" : "chunk-resumed",
        static_cast<unsigned long long>(r.totals.parsed),
        static_cast<unsigned long long>(r.totals.truncated),
        static_cast<unsigned long long>(r.totals.malformed),
        static_cast<unsigned long long>(r.resumed), r.slabs);
  }

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fuzz_adversarial\",\n"
                 "  \"iters_per_arm\": %llu,\n"
                 "  \"seed\": %llu,\n"
                 "  \"arms\": [\n",
                 static_cast<unsigned long long>(iters),
                 static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ArmResult& r = results[i];
      std::fprintf(
          f,
          "    {\"arm\": \"%s\", \"mode\": \"%s\", "
          "\"mutants_per_sec\": %.0f, \"parsed\": %llu, "
          "\"truncated\": %llu, \"malformed\": %llu, "
          "\"violations\": %llu, \"resumed\": %llu, "
          "\"suspensions\": %llu, \"pool_slabs\": %zu}%s\n",
          r.name, r.whole_message ? "whole-message" : "chunk-resumed",
          r.mutants_per_sec,
          static_cast<unsigned long long>(r.totals.parsed),
          static_cast<unsigned long long>(r.totals.truncated),
          static_cast<unsigned long long>(r.totals.malformed),
          static_cast<unsigned long long>(r.totals.violations),
          static_cast<unsigned long long>(r.resumed),
          static_cast<unsigned long long>(r.suspensions), r.slabs,
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", json_path);
  }
  return 0;
}
