#include "harness.hpp"

#include <chrono>
#include <cstdlib>

#include "codegen/generator.hpp"
#include "protocols/http.hpp"
#include "protocols/modbus.hpp"

namespace protoobf::bench {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

Message make_modbus(std::size_t which, const Graph& g, Rng& rng) {
  return which == 0 ? modbus::random_request(g, rng)
                    : modbus::random_response(g, rng);
}

Message make_http(std::size_t /*which*/, const Graph& g, Rng& rng) {
  return http::random_request(g, rng);
}

}  // namespace

Workload modbus_workload() {
  Workload w;
  w.name = "TCP-Modbus";
  w.graphs.push_back(Framework::load_spec(modbus::request_spec()).value());
  w.graphs.push_back(Framework::load_spec(modbus::response_spec()).value());
  w.make = make_modbus;
  return w;
}

Workload http_workload() {
  Workload w;
  w.name = "HTTP";
  w.graphs.push_back(Framework::load_spec(http::request_spec()).value());
  w.make = make_http;
  return w;
}

Baseline measure_baseline(const Workload& w) {
  Baseline base;
  for (const Graph& g : w.graphs) {
    ObfuscationConfig cfg;
    cfg.per_node = 0;
    auto protocol = Framework::generate(g, cfg);
    const GeneratedCode code = generate_cpp(protocol.value());
    base.lines += static_cast<double>(code.metrics.lines);
    base.structs += static_cast<double>(code.metrics.structs);
    base.cg_size += static_cast<double>(code.metrics.callgraph_size);
    base.cg_depth = std::max(
        base.cg_depth, static_cast<double>(code.metrics.callgraph_depth));
  }
  return base;
}

Scenario run_scenario(const Workload& w, const Baseline& base, int per_node,
                      int runs, int messages_per_run, std::uint64_t seed0) {
  Scenario scenario;
  scenario.per_node = per_node;

  for (int run = 0; run < runs; ++run) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(run) * 7919;
    RunResult result;

    // --- generation: obfuscate every graph and emit the library ------------
    std::vector<ObfuscatedProtocol> protocols;
    const auto gen_start = std::chrono::steady_clock::now();
    double lines = 0, structs = 0, cg_size = 0, cg_depth = 0;
    for (std::size_t i = 0; i < w.graphs.size(); ++i) {
      ObfuscationConfig cfg;
      cfg.per_node = per_node;
      cfg.seed = seed + i;
      auto protocol = Framework::generate(w.graphs[i], cfg);
      if (!protocol.ok()) continue;
      result.applied += static_cast<double>(protocol->stats().applied);
      const GeneratedCode code = generate_cpp(*protocol);
      lines += static_cast<double>(code.metrics.lines);
      structs += static_cast<double>(code.metrics.structs);
      cg_size += static_cast<double>(code.metrics.callgraph_size);
      cg_depth = std::max(cg_depth,
                          static_cast<double>(code.metrics.callgraph_depth));
      protocols.push_back(std::move(protocol.value()));
    }
    result.gen_ms = ms_since(gen_start);
    result.lines = lines / base.lines;
    result.structs = structs / base.structs;
    result.cg_size = cg_size / base.cg_size;
    result.cg_depth = cg_depth / base.cg_depth;

    // --- execution: serialize/parse random messages ------------------------
    Rng workload_rng(seed ^ 0xabcdef);
    double parse_total = 0, ser_total = 0;
    int counted = 0;
    for (int m = 0; m < messages_per_run; ++m) {
      const std::size_t which = protocols.size() > 1
                                    ? workload_rng.below(protocols.size())
                                    : 0;
      const ObfuscatedProtocol& protocol = protocols[which];
      Message msg = w.make(which, w.graphs[which], workload_rng);

      const auto ser_start = std::chrono::steady_clock::now();
      auto wire = protocol.serialize(msg.root(), seed + 1000u + m);
      const double ser_ms = ms_since(ser_start);
      if (!wire.ok()) continue;

      const auto parse_start = std::chrono::steady_clock::now();
      auto parsed = protocol.parse(*wire);
      const double parse_ms = ms_since(parse_start);
      if (!parsed.ok()) continue;

      ser_total += ser_ms;
      parse_total += parse_ms;
      result.buffers.push_back(static_cast<double>(wire->size()));
      ++counted;
    }
    if (counted > 0) {
      result.parse_ms = parse_total / counted;
      result.ser_ms = ser_total / counted;
    }

    scenario.applied.add(result.applied);
    scenario.lines.add(result.lines);
    scenario.structs.add(result.structs);
    scenario.cg_size.add(result.cg_size);
    scenario.cg_depth.add(result.cg_depth);
    scenario.gen_ms.add(result.gen_ms);
    scenario.parse_ms.add(result.parse_ms);
    scenario.ser_ms.add(result.ser_ms);
    for (double b : result.buffers) scenario.buffer_bytes.add(b);
    scenario.runs.push_back(std::move(result));
  }
  return scenario;
}

int runs_from_argv(int argc, char** argv, int fallback) {
  if (argc > 1) {
    const int runs = std::atoi(argv[1]);
    if (runs > 0) return runs;
  }
  return fallback;
}

std::string cell(const Series& s, int precision) {
  return s.summary().format(precision);
}

}  // namespace protoobf::bench
