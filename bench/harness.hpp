// Shared experiment driver for the evaluation benches (paper §VII).
//
// One "experiment" follows §VII-A exactly: pick a number of obfuscations
// per node, select transformations randomly, generate the library (here:
// both the runtime protocol object and the generated C++ source for the
// potency metrics), compile-equivalent done, then run the core application
// to serialize and parse random messages, collecting:
//   potency  — lines / structs / call-graph size / call-graph depth of the
//              generated code, normalized by the non-obfuscated values;
//   costs    — generation time, per-message parsing and serialization
//              times, serialized buffer sizes.
//
// The paper runs 1000 experiments per obfuscation level; these benches
// default to 200 (override with argv[1]) — distributions stabilize well
// before that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/protoobf.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace protoobf::bench {

/// A protocol under test: one or more graphs (Modbus needs request and
/// response sides) and a per-graph random message factory.
struct Workload {
  std::string name;
  std::vector<Graph> graphs;
  // Builds a random message for graphs[which].
  Message (*make)(std::size_t which, const Graph& g, Rng& rng);
};

Workload modbus_workload();
Workload http_workload();

struct RunResult {
  double applied = 0;    // transformations applied across the graphs
  double lines = 0;      // normalized potency metrics
  double structs = 0;
  double cg_size = 0;
  double cg_depth = 0;
  double gen_ms = 0;     // absolute costs
  double parse_ms = 0;   // average per message
  double ser_ms = 0;
  std::vector<double> buffers;  // serialized sizes, one per message
};

struct Scenario {
  int per_node = 1;
  Series applied;
  Series lines, structs, cg_size, cg_depth;       // normalized
  Series gen_ms, parse_ms, ser_ms, buffer_bytes;  // absolute
  std::vector<RunResult> runs;                    // per-run scatter points
};

struct Baseline {
  double lines = 0;
  double structs = 0;
  double cg_size = 0;
  double cg_depth = 0;
};

/// Potency baseline: generated-code metrics of the non-obfuscated protocol.
Baseline measure_baseline(const Workload& w);

/// Runs `runs` experiments at the given obfuscation level.
Scenario run_scenario(const Workload& w, const Baseline& base, int per_node,
                      int runs, int messages_per_run, std::uint64_t seed0);

/// argv helper: benches accept an optional run count.
int runs_from_argv(int argc, char** argv, int fallback = 200);

/// Paper-style table row: "avg[min; max]".
std::string cell(const Series& s, int precision);

}  // namespace protoobf::bench
