// Hot-path micro-benchmarks (google-benchmark): per-message serialization
// and parsing latency at each obfuscation level. Complements the
// table/figure harnesses with statistically disciplined timing.
#include <benchmark/benchmark.h>

#include "core/protoobf.hpp"
#include "protocols/http.hpp"
#include "protocols/modbus.hpp"

namespace {

using namespace protoobf;

struct Fixture {
  Graph graph;
  ObfuscatedProtocol protocol;
  Bytes wire;
  InstPtr message;
};

Fixture make_fixture(bool is_http, int per_node) {
  Graph graph = Framework::load_spec(is_http ? http::request_spec()
                                             : modbus::request_spec())
                    .value();
  ObfuscationConfig cfg;
  cfg.per_node = per_node;
  cfg.seed = 1234;
  auto protocol = Framework::generate(graph, cfg).value();

  Rng rng(99);
  Message msg = is_http ? http::random_request(graph, rng)
                        : modbus::random_request(graph, rng);
  Bytes wire = protocol.serialize(msg.root(), 7).value();
  InstPtr root = ast::clone(msg.root());
  return Fixture{std::move(graph), std::move(protocol), std::move(wire),
                 std::move(root)};
}

void BM_SerializeModbus(benchmark::State& state) {
  Fixture f = make_fixture(false, static_cast<int>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto wire = f.protocol.serialize(*f.message, ++seed);
    benchmark::DoNotOptimize(wire);
  }
}

void BM_ParseModbus(benchmark::State& state) {
  Fixture f = make_fixture(false, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto parsed = f.protocol.parse(f.wire);
    benchmark::DoNotOptimize(parsed);
  }
}

void BM_SerializeHttp(benchmark::State& state) {
  Fixture f = make_fixture(true, static_cast<int>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto wire = f.protocol.serialize(*f.message, ++seed);
    benchmark::DoNotOptimize(wire);
  }
}

void BM_ParseHttp(benchmark::State& state) {
  Fixture f = make_fixture(true, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto parsed = f.protocol.parse(f.wire);
    benchmark::DoNotOptimize(parsed);
  }
}

void BM_Obfuscate(benchmark::State& state) {
  const Graph graph =
      Framework::load_spec(modbus::request_spec()).value();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ObfuscationConfig cfg;
    cfg.per_node = static_cast<int>(state.range(0));
    cfg.seed = ++seed;
    auto result = Framework::generate(graph, cfg);
    benchmark::DoNotOptimize(result);
  }
}

}  // namespace

BENCHMARK(BM_SerializeModbus)->DenseRange(0, 4, 1);
BENCHMARK(BM_ParseModbus)->DenseRange(0, 4, 1);
BENCHMARK(BM_SerializeHttp)->DenseRange(0, 4, 1);
BENCHMARK(BM_ParseHttp)->DenseRange(0, 4, 1);
BENCHMARK(BM_Obfuscate)->DenseRange(0, 4, 1);

BENCHMARK_MAIN();
