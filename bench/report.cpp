#include "report.hpp"

#include <cstdio>

namespace protoobf::bench {

namespace {
constexpr int kMessagesPerRun = 25;
constexpr std::uint64_t kSeed0 = 20180625;  // DSN 2018

std::vector<Scenario> sweep(const Workload& w, const Baseline& base,
                            int runs, int lo, int hi) {
  std::vector<Scenario> scenarios;
  for (int o = lo; o <= hi; ++o) {
    scenarios.push_back(
        run_scenario(w, base, o, runs, kMessagesPerRun, kSeed0 + o * 131071));
  }
  return scenarios;
}
}  // namespace

void print_comparative_table(const char* title, const Workload& w, int runs) {
  const Baseline base = measure_baseline(w);
  std::printf("%s — comparative results for %s protocol (%d runs/scenario, "
              "%d messages/run)\n",
              title, w.name.c_str(), runs, kMessagesPerRun);
  std::printf("baseline (0 obf): %.0f lines, %.0f structs, call graph size "
              "%.0f, depth %.0f\n\n",
              base.lines, base.structs, base.cg_size, base.cg_depth);

  const auto scenarios = sweep(w, base, runs, 1, 4);
  const auto row = [&](const char* label, auto getter, int precision) {
    std::printf("%-22s", label);
    for (const Scenario& s : scenarios) {
      std::printf(" %26s", cell(getter(s), precision).c_str());
    }
    std::printf("\n");
  };

  std::printf("%-22s", "Nb. transf. per node");
  for (const Scenario& s : scenarios) std::printf(" %26d", s.per_node);
  std::printf("\n");
  row("Nb. transf. applied",
      [](const Scenario& s) -> const Series& { return s.applied; }, 0);
  std::printf("Potency (normalized)\n");
  row("  Nb. lines",
      [](const Scenario& s) -> const Series& { return s.lines; }, 1);
  row("  Nb. structs",
      [](const Scenario& s) -> const Series& { return s.structs; }, 1);
  row("  Call graph size",
      [](const Scenario& s) -> const Series& { return s.cg_size; }, 1);
  row("  Call graph depth",
      [](const Scenario& s) -> const Series& { return s.cg_depth; }, 1);
  std::printf("Costs (absolute)\n");
  row("  Generation time (ms)",
      [](const Scenario& s) -> const Series& { return s.gen_ms; }, 2);
  row("  Parsing time (ms)",
      [](const Scenario& s) -> const Series& { return s.parse_ms; }, 4);
  row("  Serialization (ms)",
      [](const Scenario& s) -> const Series& { return s.ser_ms; }, 4);
  row("  Buffer size (bytes)",
      [](const Scenario& s) -> const Series& { return s.buffer_bytes; }, 0);
}

void print_time_figure(const char* title, const Workload& w, int runs) {
  const Baseline base = measure_baseline(w);
  std::printf("%s — parsing and serialization time vs transformations "
              "applied (%s, %d runs per level, o=0..4)\n\n",
              title, w.name.c_str(), runs);

  const auto scenarios = sweep(w, base, runs, 0, 4);
  std::vector<double> xs, parse_ys, ser_ys;
  std::printf("%-6s %14s %14s %14s\n", "o", "applied(avg)", "parse ms(avg)",
              "serialize ms(avg)");
  for (const Scenario& s : scenarios) {
    std::printf("%-6d %14.1f %14.4f %14.4f\n", s.per_node,
                s.applied.summary().avg, s.parse_ms.summary().avg,
                s.ser_ms.summary().avg);
    for (const RunResult& r : s.runs) {
      xs.push_back(r.applied);
      parse_ys.push_back(r.parse_ms);
      ser_ys.push_back(r.ser_ms);
    }
  }
  const LinearFit parse_fit = LinearFit::of(xs, parse_ys);
  const LinearFit ser_fit = LinearFit::of(xs, ser_ys);
  std::printf("\nlinear regression over %zu experiments:\n", xs.size());
  std::printf("  parsing:       time = %.6f * n + %.6f   (r = %.3f)\n",
              parse_fit.slope, parse_fit.intercept, parse_fit.correlation);
  std::printf("  serialization: time = %.6f * n + %.6f   (r = %.3f)\n",
              ser_fit.slope, ser_fit.intercept, ser_fit.correlation);
}

void print_potency_figure(const char* title, const Workload& w, int runs) {
  const Baseline base = measure_baseline(w);
  std::printf("%s — normalized potency metrics vs transformations applied "
              "(%s, %d runs per level)\n\n",
              title, w.name.c_str(), runs);
  const auto scenarios = sweep(w, base, runs, 0, 4);
  std::printf("%-6s %12s %10s %10s %12s %12s\n", "o", "applied", "lines",
              "structs", "cg size", "cg depth");
  for (const Scenario& s : scenarios) {
    std::printf("%-6d %12.1f %10.2f %10.2f %12.2f %12.2f\n", s.per_node,
                s.applied.summary().avg, s.lines.summary().avg,
                s.structs.summary().avg, s.cg_size.summary().avg,
                s.cg_depth.summary().avg);
  }
  // Slope of each metric in the applied-transformations count.
  std::vector<double> xs;
  std::vector<double> lines, structs, size, depth;
  for (const Scenario& s : scenarios) {
    for (const RunResult& r : s.runs) {
      xs.push_back(r.applied);
      lines.push_back(r.lines);
      structs.push_back(r.structs);
      size.push_back(r.cg_size);
      depth.push_back(r.cg_depth);
    }
  }
  std::printf("\ngrowth per applied transformation (linear fit, r):\n");
  const auto fit_row = [&](const char* label, const std::vector<double>& ys) {
    const LinearFit fit = LinearFit::of(xs, ys);
    std::printf("  %-16s slope %.4f, r = %.3f\n", label, fit.slope,
                fit.correlation);
  };
  fit_row("lines", lines);
  fit_row("structs", structs);
  fit_row("call graph size", size);
  fit_row("call graph depth", depth);
}

}  // namespace protoobf::bench
