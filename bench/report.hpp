// Table/figure printers shared by the per-experiment bench binaries.
#pragma once

#include "harness.hpp"

namespace protoobf::bench {

/// Tables III / IV: comparative results for one protocol, o = 1..4,
/// potency normalized by the non-obfuscated baseline, absolute costs.
void print_comparative_table(const char* title, const Workload& w, int runs);

/// Figures 4 / 5: parsing and serialization time vs number of applied
/// transformations, with linear regressions and correlation coefficients.
void print_time_figure(const char* title, const Workload& w, int runs);

/// Figures 6 / 7: normalized potency metrics vs number of applied
/// transformations.
void print_potency_figure(const char* title, const Workload& w, int runs);

}  // namespace protoobf::bench
