// Reproduces the resilience assessment of §VII-D with automated PRE
// instruments instead of a human Netzob expert (see DESIGN.md §3).
//
// The paper's anecdote: an expert recovered the exact non-obfuscated Modbus
// format in under half an hour from a 4-message trace, and obtained nothing
// relevant from the 1-obfuscation-per-field version after two hours. Here
// the "analyst" is the PRE toolchain of src/pre:
//   1. signature DPI (nDPI-style): is the protocol even recognized?
//   2. alignment clustering: are message types recovered?
//   3. consensus field inference: are field boundaries recovered?
// all scored against ground truth the framework knows (true type labels and
// true wire field spans).
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "pre/alignment.hpp"
#include "pre/clustering.hpp"
#include "pre/dpi.hpp"
#include "pre/field_inference.hpp"

namespace protoobf::bench {
namespace {

struct TraceResult {
  double dpi_rate = 0;
  double type_similarity = 0;  // avg alignment similarity within true types
  pre::ClusterQuality clusters;
  double boundary_f1 = 0;
};

TraceResult analyze(const Workload& w, int per_node, std::uint64_t seed,
                    int messages) {
  std::vector<ObfuscatedProtocol> protocols;
  for (std::size_t i = 0; i < w.graphs.size(); ++i) {
    ObfuscationConfig cfg;
    cfg.per_node = per_node;
    cfg.seed = seed + i;
    protocols.push_back(Framework::generate(w.graphs[i], cfg).value());
  }

  Rng rng(seed ^ 0x5151);
  std::vector<Bytes> trace;
  std::vector<int> labels;  // ground-truth message type = (graph, fn/method)
  std::vector<std::vector<std::size_t>> truth_boundaries;

  int dpi_hits = 0;
  for (int m = 0; m < messages; ++m) {
    const std::size_t which =
        protocols.size() > 1 ? rng.below(protocols.size()) : 0;
    Message msg = w.make(which, w.graphs[which], rng);
    std::vector<FieldSpan> spans;
    auto wire = protocols[which].serialize(msg.root(), seed + 100 + m, &spans);
    if (!wire.ok()) continue;

    // Type label: the first distinguishing byte of the logical message
    // (function code for Modbus, method letter for HTTP) + direction.
    InstPtr canonical = ast::clone(msg.root());
    protocols[which].canonicalize(*canonical);
    int label = static_cast<int>(which) * 1000;
    const Graph& g = w.graphs[which];
    if (const Inst* fn = ast::find_path(g, *canonical, "adu.tail.fn")) {
      label += fn->value.empty() ? 0 : fn->value[0];
    } else if (const Inst* method =
                   ast::find_path(g, *canonical, "request.method")) {
      label += method->value.empty() ? 0 : method->value[0];
    }
    labels.push_back(label);

    std::vector<std::size_t> bounds;
    for (const FieldSpan& span : spans) bounds.push_back(span.offset);
    truth_boundaries.push_back(std::move(bounds));

    if (pre::classify(*wire) != pre::Protocol::Unknown) ++dpi_hits;
    trace.push_back(std::move(*wire));
  }

  TraceResult result;
  result.dpi_rate =
      trace.empty() ? 0.0
                    : static_cast<double>(dpi_hits) /
                          static_cast<double>(trace.size());

  // Alignment similarity between messages of the same true type — what
  // sequence-alignment classifiers fundamentally rely on (§II-C.2).
  double sim_total = 0;
  int sim_pairs = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (std::size_t j = i + 1; j < trace.size() && sim_pairs < 200; ++j) {
      if (labels[i] != labels[j]) continue;
      sim_total += pre::similarity(trace[i], trace[j]);
      ++sim_pairs;
    }
  }
  result.type_similarity = sim_pairs == 0 ? 0.0 : sim_total / sim_pairs;

  // An analyst tunes the clustering threshold until the classification
  // looks sane; give the attacker that advantage by sweeping thresholds and
  // keeping the one closest to the true type count.
  std::vector<std::vector<std::size_t>> clusters;
  double best_score = -1.0;
  for (double threshold : {0.25, 0.35, 0.45, 0.55, 0.65}) {
    auto candidate = pre::cluster_messages(trace, threshold);
    const auto quality = pre::score_clustering(candidate, labels);
    // Balanced classification quality: pure clusters, and about as many of
    // them as there are true types (both §II-C.3 failure modes penalized).
    const double balance =
        static_cast<double>(std::min(quality.clusters, quality.true_types)) /
        static_cast<double>(std::max(quality.clusters, quality.true_types));
    const double score = quality.purity * balance;
    if (score > best_score) {
      best_score = score;
      clusters = std::move(candidate);
    }
  }
  result.clusters = pre::score_clustering(clusters, labels);

  // Field inference per recovered cluster; F1 weighted by cluster size.
  double f1_sum = 0;
  std::size_t scored = 0;
  for (const auto& cluster : clusters) {
    std::vector<Bytes> members;
    for (std::size_t idx : cluster) members.push_back(trace[idx]);
    const pre::InferredFormat format = pre::infer_format(members);
    const auto score = pre::score_boundaries(
        format.boundaries, truth_boundaries[cluster.front()], 1);
    f1_sum += score.f1 * static_cast<double>(cluster.size());
    scored += cluster.size();
  }
  result.boundary_f1 = scored == 0 ? 0.0 : f1_sum / static_cast<double>(scored);
  return result;
}

void report(const Workload& w, int messages) {
  std::printf("\n%s — trace of %d messages\n", w.name.c_str(), messages);
  std::printf("%-14s %10s %10s %10s %10s %10s %12s\n", "obf/node",
              "DPI rate", "type sim", "clusters", "types", "purity",
              "boundary F1");
  for (int o : {0, 1, 2}) {
    const TraceResult r = analyze(w, o, 90125 + o, messages);
    std::printf("%-14d %9.0f%% %10.2f %10zu %10zu %10.2f %12.2f\n", o,
                100.0 * r.dpi_rate, r.type_similarity, r.clusters.clusters,
                r.clusters.true_types, r.clusters.purity, r.boundary_f1);
  }
}

}  // namespace
}  // namespace protoobf::bench

int main(int argc, char** argv) {
  using namespace protoobf::bench;
  const int messages = runs_from_argv(argc, argv, 48);
  std::printf("Resilience assessment (§VII-D substitute): automated PRE "
              "toolchain vs obfuscation level\n");
  std::printf("DPI rate      : fraction of messages identified by the "
              "nDPI-style signature engine\n");
  std::printf("clusters/types: message classes recovered by alignment "
              "clustering vs ground truth\n");
  std::printf("purity        : majority-type fraction inside recovered "
              "clusters\n");
  std::printf("boundary F1   : field-boundary inference score vs true wire "
              "field map\n");
  report(modbus_workload(), messages);
  report(http_workload(), messages);
  return 0;
}
