// Reproduces Table III: comparative results for the HTTP protocol.
#include "report.hpp"

int main(int argc, char** argv) {
  using namespace protoobf::bench;
  print_comparative_table("Table III", http_workload(),
                          runs_from_argv(argc, argv));
  return 0;
}
