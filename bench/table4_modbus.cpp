// Reproduces Table IV: comparative results for the TCP-Modbus protocol.
#include "report.hpp"

int main(int argc, char** argv) {
  using namespace protoobf::bench;
  print_comparative_table("Table IV", modbus_workload(),
                          runs_from_argv(argc, argv));
  return 0;
}
