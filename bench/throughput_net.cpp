// Socket-transport throughput: loopback echo round trips vs the in-memory
// Channel path.
//
// The net subsystem's cost over the streaming API is two kernel crossings
// per hop (write + epoll-driven read) plus the event-loop dispatch. This
// bench measures full echo round trips — client serialize+frame, server
// reassemble+parse, server re-serialize (the echo), client reassemble+
// parse — first through a pair of in-memory Channels (no sockets at all),
// then through a real epoll Server on loopback TCP. Both paths do exactly
// 2 serializations + 2 parses per message, so the ratio isolates what the
// transport costs:
//
//   echo/in-memory     Channel -> Channel, bytes handed over directly
//   echo/net@S         loopback TCP through the S-shard epoll server
//
// The CI smoke guards "net/in-memory" >= 0.5: the socket transport must
// sustain at least half the in-memory rate (ISSUE 4 acceptance).
//
// Usage: bench_throughput_net [messages] [repeats] [per_node] [shards]
//                             [json_path]
#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "session/protocol_cache.hpp"
#include "stream/channel.hpp"

namespace {

using namespace protoobf;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t msg_seed_of(std::size_t i) {
  return 0x7e7 + 11400714819323198485ull * i;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t messages =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 256;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 4;
  const int per_node = argc > 3 ? std::atoi(argv[3]) : 2;
  const std::size_t shards =
      argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 1;
  const char* json_path = argc > 5 ? argv[5] : "BENCH_net.json";
  if (messages == 0 || repeats <= 0 || per_node < 0 || shards == 0) {
    std::fprintf(stderr,
                 "usage: bench_throughput_net [messages>0] [repeats>0] "
                 "[per_node>=0] [shards>0] [json_path]\n");
    return 2;
  }

  bench::Workload workload = bench::http_workload();
  const Graph& g = workload.graphs[0];
  ObfuscationConfig config;
  config.seed = 2018;
  config.per_node = per_node;
  ProtocolCache cache;
  auto entry = cache.get_or_compile(g, ProtocolCache::hash_graph(g), config);
  if (!entry) {
    std::fprintf(stderr, "obfuscation failed: %s\n",
                 entry.error().message.c_str());
    return 1;
  }
  std::shared_ptr<const ObfuscatedProtocol> protocol = *entry;

  Rng rng(7);
  std::vector<Message> msgs;
  msgs.reserve(messages);
  for (std::size_t i = 0; i < messages; ++i) {
    msgs.push_back(workload.make(0, g, rng));
  }

  std::size_t checksum = 0;

  // --- in-memory echo baseline ----------------------------------------------
  // client channel -> server channel -> echo -> client channel, no kernel.
  Session client_tx(protocol), server_rx(protocol), server_tx(protocol),
      client_rx(protocol);
  LengthPrefixFramer f1, f2, f3, f4;
  Channel client_out(client_tx, f1), server_in(server_rx, f2),
      server_out(server_tx, f3), client_in(client_rx, f4);

  const auto run_memory = [&]() {
    std::size_t got = 0;
    for (std::size_t i = 0; i < messages; ++i) {
      auto framed = client_out.send(msgs[i].root(), msg_seed_of(i));
      if (!framed) continue;
      server_in.on_bytes(*framed);
      while (auto m = server_in.receive()) {
        if (!m->ok()) continue;
        auto echo = server_out.send(***m, msg_seed_of(i) ^ 0x5a5a);
        if (!echo) continue;
        client_in.on_bytes(*echo);
        while (auto back = client_in.receive()) {
          checksum += back->ok() ? (**back)->children.size() : 0;
          ++got;
        }
      }
    }
    return got;
  };

  // --- net echo through the epoll server ------------------------------------
  net::Server::Config server_cfg;
  server_cfg.shards = shards;
  net::Server server(protocol, net::length_prefix_framer_factory(),
                     server_cfg);
  server.on_accept([](net::Connection& conn) {
    conn.on_message([](net::Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) return;
      (void)c.send(**msg, c.stats().messages_in ^ 0x5a5a);
    });
  });
  if (Status s = server.start(); !s) {
    std::fprintf(stderr, "server start failed: %s\n",
                 s.error().message.c_str());
    return 1;
  }

  // Nonblocking client: queue framed messages, poll-pump both directions.
  auto fd = net::connect_tcp({"127.0.0.1", server.port()});
  if (!fd) {
    std::fprintf(stderr, "connect failed: %s\n", fd.error().message.c_str());
    return 1;
  }
  {
    pollfd ready{fd->get(), POLLOUT, 0};
    (void)::poll(&ready, 1, 5000);  // finish the nonblocking handshake
  }
  Session net_tx(protocol), net_rx(protocol);
  LengthPrefixFramer f5, f6;
  Channel net_out(net_tx, f5), net_in(net_rx, f6);

  // Per-echo round-trip latency, recorded into the same log-bucketed
  // histogram the live /metrics endpoint uses. TCP plus the echo handler
  // preserve message order on one connection, so a FIFO of send stamps
  // pairs each receive with its originating send.
  auto echo_hist = std::make_unique<obs::Histogram>();
  std::deque<std::uint64_t> sent_at_ns;

  const auto run_net = [&]() {
    std::size_t got = 0;
    Bytes pending;         // frames not yet accepted by the kernel
    std::size_t head = 0;  // consumed prefix of pending
    std::size_t next = 0;  // next message to frame
    Byte buf[16 * 1024];
    sent_at_ns.clear();
    while (got < messages) {
      // Top up the send queue (bounded so both directions keep moving).
      while (next < messages && pending.size() - head < 64 * 1024) {
        auto framed = net_out.send(msgs[next].root(), msg_seed_of(next));
        ++next;
        if (framed) {
          append(pending, *framed);
          sent_at_ns.push_back(obs::now_ns());
        }
      }
      pollfd pfd{fd->get(), POLLIN, 0};
      if (head < pending.size()) pfd.events |= POLLOUT;
      if (::poll(&pfd, 1, 5000) <= 0) {
        std::fprintf(stderr, "poll stalled at %zu/%zu echoes\n", got,
                     messages);
        return got;
      }
      if ((pfd.revents & POLLOUT) != 0 && head < pending.size()) {
        const ssize_t n = ::send(fd->get(), pending.data() + head,
                                 pending.size() - head, MSG_NOSIGNAL);
        if (n > 0) head += static_cast<std::size_t>(n);
        if (head == pending.size()) {
          pending.clear();
          head = 0;
        }
      }
      if ((pfd.revents & POLLIN) != 0) {
        const ssize_t n = ::recv(fd->get(), buf, sizeof buf, 0);
        if (n <= 0) {
          std::fprintf(stderr, "server closed at %zu/%zu echoes\n", got,
                       messages);
          return got;
        }
        net_in.on_bytes(BytesView(buf, static_cast<std::size_t>(n)));
        while (auto m = net_in.receive()) {
          checksum += m->ok() ? (**m)->children.size() : 0;
          ++got;
          if (!sent_at_ns.empty()) {
            echo_hist->record(obs::now_ns() - sent_at_ns.front());
            sent_at_ns.pop_front();
          }
        }
      }
    }
    return got;
  };

  // Warm-up both paths, then interleave timed trials; best window wins
  // (same discipline as the other throughput benches).
  (void)run_memory();
  (void)run_net();
  echo_hist->reset();  // quantiles cover the timed trials only

  double memory_rate = 0;
  double net_rate = 0;
  const double total =
      static_cast<double>(messages) * static_cast<double>(repeats);
  constexpr int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    {
      const auto start = std::chrono::steady_clock::now();
      std::size_t got = 0;
      for (int r = 0; r < repeats; ++r) got += run_memory();
      if (got != messages * static_cast<std::size_t>(repeats)) {
        std::fprintf(stderr, "IN-MEMORY PATH LOST MESSAGES: %zu\n", got);
        return 1;
      }
      memory_rate = std::max(memory_rate, total / seconds_since(start));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      std::size_t got = 0;
      for (int r = 0; r < repeats; ++r) got += run_net();
      if (got != messages * static_cast<std::size_t>(repeats)) {
        std::fprintf(stderr, "NET PATH LOST MESSAGES: %zu\n", got);
        return 1;
      }
      net_rate = std::max(net_rate, total / seconds_since(start));
    }
  }
  fd->reset();
  const net::Server::Stats stats = server.stats();
  server.stop();

  std::printf("throughput_net — %s, per_node=%d, %zu msgs x %d repeats, "
              "%zu shard%s\n",
              workload.name.c_str(), per_node, messages, repeats, shards,
              shards == 1 ? "" : "s");
  std::printf("  %-20s %12.0f msgs/s\n", "echo/in-memory", memory_rate);
  static char net_label[32];
  std::snprintf(net_label, sizeof net_label, "echo/net@%zu", shards);
  std::printf("  %-20s %12.0f msgs/s\n", net_label, net_rate);
  std::printf("  net/in-memory: %.3fx\n", net_rate / memory_rate);
  const obs::Histogram::Snapshot echo = echo_hist->snapshot();
  std::printf(
      "  echo latency: p50 %.1f us, p95 %.1f us, p99 %.1f us, "
      "max %.1f us (%llu round trips)\n",
      echo.p50 / 1e3, echo.p95 / 1e3, echo.p99 / 1e3,
      static_cast<double>(echo.max) / 1e3,
      static_cast<unsigned long long>(echo.count));
  std::printf("  (checksum %zu, server accepted %llu connections)\n",
              checksum, static_cast<unsigned long long>(stats.accepted));

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_net\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"per_node\": %d,\n"
                 "  \"messages\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"shards\": %zu,\n"
                 "  \"echo_memory_msgs_per_sec\": %.1f,\n"
                 "  \"echo_net_msgs_per_sec\": %.1f,\n"
                 "  \"net_vs_memory_ratio\": %.4f,\n"
                 "  \"echo_p50_us\": %.2f,\n"
                 "  \"echo_p95_us\": %.2f,\n"
                 "  \"echo_p99_us\": %.2f,\n"
                 "  \"echo_max_us\": %.2f\n"
                 "}\n",
                 workload.name.c_str(), per_node, messages, repeats, shards,
                 memory_rate, net_rate, net_rate / memory_rate,
                 echo.p50 / 1e3, echo.p95 / 1e3, echo.p99 / 1e3,
                 static_cast<double>(echo.max) / 1e3);
    std::fclose(f);
    std::printf("  wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
