// Session throughput baseline: single-message vs. batched paths.
//
// The ROADMAP's north star is traffic scale, and the session subsystem
// (src/session) is the first step: protocol caching, arena-backed buffers,
// and sharded batches. This bench pins the numbers future PRs optimize
// against. Four measurements over the same message set:
//
//   serialize/single   ObfuscatedProtocol::serialize() per message — the
//                      allocating baseline path
//   serialize/batched  Session::serialize_batch() — arena emit + worker
//                      shards
//   parse/single       ObfuscatedProtocol::parse() per wire image
//   parse/batched      Session::parse_batch()
//
// Usage: bench_throughput_session [messages] [repeats] [per_node] [json_path]
// Defaults keep a full run under ~5 s on one core for the CI smoke test.
// Every run also writes a machine-readable BENCH_throughput.json so the
// perf trajectory across PRs can be archived from CI.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "native/compiler.hpp"
#include "native/protocol.hpp"
#include "obs/metrics.hpp"
#include "session/protocol_cache.hpp"
#include "session/session.hpp"

namespace {

using namespace protoobf;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t msg_seed_of(std::size_t i) { return 0x5e55 + 11400714819323198485ull * i; }

struct Rate {
  double msgs_per_sec = 0;
  std::size_t messages = 0;
};

void print_rate(const char* label, const Rate& r) {
  std::printf("  %-18s %12.0f msgs/s  (%zu msgs)\n", label, r.msgs_per_sec,
              r.messages);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t messages =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 512;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 8;
  const int per_node = argc > 3 ? std::atoi(argv[3]) : 2;
  const char* json_path = argc > 4 ? argv[4] : "BENCH_throughput.json";
  if (messages == 0 || repeats <= 0 || per_node < 0) {
    std::fprintf(stderr,
                 "usage: bench_throughput_session [messages>0] [repeats>0] "
                 "[per_node>=0] [json_path]\n");
    return 2;
  }

  bench::Workload workload = bench::http_workload();
  const Graph& g = workload.graphs[0];

  ObfuscationConfig config;
  config.seed = 2018;
  config.per_node = per_node;

  // Compile through the cache so the bench also exercises the session
  // entry point end to end.
  ProtocolCache cache;
  auto entry = cache.get_or_compile(g, ProtocolCache::hash_graph(g), config);
  if (!entry) {
    std::fprintf(stderr, "obfuscation failed: %s\n",
                 entry.error().message.c_str());
    return 1;
  }
  const ObfuscatedProtocol& protocol = **entry;

  // Native rows: the compiled generated unit, built cold into a
  // run-private dir so native_compile_ms reports a true cold compile (the
  // .so stays mapped after the dir is removed). Skipped — with the rows
  // absent from stdout and zeroed in the JSON — when this environment
  // cannot build/load units; CI's guard requires them, so a toolchain
  // regression there fails loudly instead of vacuously passing.
  std::shared_ptr<const native::NativeProtocol> native_backend;
  double native_compile_ms = 0.0;
  if (native::NativeCompiler::toolchain_available()) {
    native::NativeCompiler::Options nopt;
    nopt.cache_dir =
        "/tmp/protoobf-bench-native-" + std::to_string(::getpid());
    native::NativeCompiler compiler(nopt);
    auto built = compiler.compile(
        protocol, native::NativeCompiler::cache_file_base(
                      protocol, ProtocolCache::hash_graph(g), config.seed,
                      static_cast<std::size_t>(config.per_node)));
    if (built) {
      native_compile_ms = built->compile_ms;
      native_backend =
          std::make_shared<const native::NativeProtocol>(protocol, built->unit);
    } else {
      std::fprintf(stderr, "native rows skipped (build failed): %s\n",
                   built.error().message.c_str());
    }
    std::error_code ec;
    std::filesystem::remove_all(nopt.cache_dir, ec);
  } else {
    std::fprintf(stderr, "native rows skipped (no toolchain): %s\n",
                 native::NativeCompiler::toolchain_status().c_str());
  }

  Rng rng(7);
  std::vector<Message> msgs;
  msgs.reserve(messages);
  for (std::size_t i = 0; i < messages; ++i) {
    msgs.push_back(workload.make(0, g, rng));
  }

  WorkerPool pool;
  Session session(*entry, &pool);

  std::vector<BatchItem> items;
  items.reserve(messages);
  for (std::size_t i = 0; i < messages; ++i) {
    items.push_back({&msgs[i].root(), msg_seed_of(i)});
  }

  // Warm-up: touches every code path once, grows the arenas to steady
  // state, and yields the wire set for the parse measurements.
  std::vector<Bytes> wires;
  wires.reserve(messages);
  for (std::size_t i = 0; i < messages; ++i) {
    auto wire = protocol.serialize(msgs[i].root(), msg_seed_of(i));
    if (!wire) {
      std::fprintf(stderr, "serialize failed: %s\n",
                   wire.error().message.c_str());
      return 1;
    }
    wires.push_back(std::move(*wire));
  }
  (void)session.serialize_batch(items);

  std::vector<BytesView> views(wires.begin(), wires.end());
  (void)session.parse_batch(views);

  std::size_t checksum = 0;

  // Each path is timed in `kTrials` windows interleaved round-robin across
  // all paths, and the best window wins: a shared or throttled core
  // perturbs stretches of wall time, so interleaving spreads the
  // perturbation evenly instead of biasing whichever path happened to run
  // during it.
  constexpr int kTrials = 5;
  Rate ser_single, ser_arena, ser_batched, ser_native;
  Rate parse_single, parse_arena, parse_batched, parse_native;
  std::vector<std::pair<Rate*, std::function<void()>>> paths;

  // Single vs batched is apples-to-apples: the fixture is "N independent
  // messages to process" and the batch call returns owned results, so the
  // single-message baseline collects the same result vector one call at a
  // time. The arena rows are the streaming variants (results consumed
  // immediately), reported for reference.
  paths.emplace_back(&ser_single, [&] {
    std::vector<Expected<Bytes>> results;
    results.reserve(messages);
    for (std::size_t i = 0; i < messages; ++i) {
      results.emplace_back(protocol.serialize(msgs[i].root(), msg_seed_of(i)));
    }
    for (const auto& result : results) checksum += result ? result->size() : 0;
  });

  paths.emplace_back(&ser_arena, [&] {
    for (std::size_t i = 0; i < messages; ++i) {
      auto wire = session.serialize(msgs[i].root(), msg_seed_of(i));
      checksum += wire ? wire->size() : 0;
    }
  });

  paths.emplace_back(&ser_batched, [&] {
    auto results = session.serialize_batch(items);
    for (const auto& result : results) checksum += result ? result->size() : 0;
  });

  paths.emplace_back(&parse_single, [&] {
    std::vector<Expected<InstPtr>> results;
    results.reserve(messages);
    for (const Bytes& wire : wires) {
      results.emplace_back(protocol.parse(wire));
    }
    for (const auto& result : results) {
      checksum += result ? (*result)->children.size() : 0;
    }
  });

  paths.emplace_back(&parse_arena, [&] {
    for (const Bytes& wire : wires) {
      auto tree = session.parse(wire);
      checksum += tree ? (*tree)->children.size() : 0;
    }
  });

  paths.emplace_back(&parse_batched, [&] {
    auto results = session.parse_batch(views);
    for (const auto& result : results) {
      checksum += result ? (*result)->children.size() : 0;
    }
  });

  // The native rows mirror the single-message baselines exactly — same
  // allocation pattern, same collected-results fixture — with only the
  // wire-syntax half routed through the compiled unit.
  if (native_backend != nullptr) {
    paths.emplace_back(&ser_native, [&] {
      std::vector<Bytes> results;
      results.reserve(messages);
      for (std::size_t i = 0; i < messages; ++i) {
        Bytes out;
        (void)protocol.serialize_with(native_backend.get(), msgs[i].root(),
                                      msg_seed_of(i), out);
        results.push_back(std::move(out));
      }
      for (const auto& result : results) checksum += result.size();
    });

    paths.emplace_back(&parse_native, [&] {
      std::vector<Expected<InstPtr>> results;
      results.reserve(messages);
      for (const Bytes& wire : wires) {
        results.emplace_back(protocol.parse_with(native_backend.get(), wire));
      }
      for (const auto& result : results) {
        checksum += result ? (*result)->children.size() : 0;
      }
    });
  }

  for (auto& [rate, body] : paths) {
    rate->messages = messages * static_cast<std::size_t>(repeats);
  }
  for (int t = 0; t < kTrials; ++t) {
    for (auto& [rate, body] : paths) {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) body();
      const double rate_now =
          static_cast<double>(rate->messages) / seconds_since(start);
      if (rate_now > rate->msgs_per_sec) rate->msgs_per_sec = rate_now;
    }
  }

  // Metrics A/B: the instrumented arena paths rerun with the registry
  // kill-switch thrown and again with it live, interleaved within each
  // trial so thermal/cache drift hits both arms equally, so the on/off
  // ratios price the telemetry itself (counters, 1/64 latency sampling).
  // The acceptance bar is < 2%.
  Rate ser_arena_on, ser_arena_off, parse_arena_on, parse_arena_off;
  ser_arena_on.messages = messages * static_cast<std::size_t>(repeats);
  ser_arena_off.messages = ser_arena_on.messages;
  parse_arena_on.messages = ser_arena_on.messages;
  parse_arena_off.messages = ser_arena_on.messages;
  const auto run_serialize = [&](Rate& rate) {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (std::size_t i = 0; i < messages; ++i) {
        auto wire = session.serialize(msgs[i].root(), msg_seed_of(i));
        checksum += wire ? wire->size() : 0;
      }
    }
    const double rate_now =
        static_cast<double>(rate.messages) / seconds_since(start);
    if (rate_now > rate.msgs_per_sec) rate.msgs_per_sec = rate_now;
  };
  const auto run_parse = [&](Rate& rate) {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (const Bytes& wire : wires) {
        auto tree = session.parse(wire);
        checksum += tree ? (*tree)->children.size() : 0;
      }
    }
    const double rate_now =
        static_cast<double>(rate.messages) / seconds_since(start);
    if (rate_now > rate.msgs_per_sec) rate.msgs_per_sec = rate_now;
  };
  for (int t = 0; t < kTrials; ++t) {
    obs::set_enabled(false);
    run_serialize(ser_arena_off);
    run_parse(parse_arena_off);
    obs::set_enabled(true);
    run_serialize(ser_arena_on);
    run_parse(parse_arena_on);
  }
  const double ser_onoff =
      ser_arena_off.msgs_per_sec > 0
          ? ser_arena_on.msgs_per_sec / ser_arena_off.msgs_per_sec
          : 0;
  const double parse_onoff =
      parse_arena_off.msgs_per_sec > 0
          ? parse_arena_on.msgs_per_sec / parse_arena_off.msgs_per_sec
          : 0;

  std::printf("throughput_session — %s, per_node=%d, %zu msgs x %d repeats, "
              "%zu-way batches\n",
              workload.name.c_str(), per_node, messages, repeats,
              session.batch_width());
  print_rate("serialize/single", ser_single);
  print_rate("serialize/arena", ser_arena);
  print_rate("serialize/batched", ser_batched);
  print_rate("parse/single", parse_single);
  print_rate("parse/arena", parse_arena);
  print_rate("parse/batched", parse_batched);
  std::printf("  serialize batched/single: %.3fx\n",
              ser_batched.msgs_per_sec / ser_single.msgs_per_sec);
  std::printf("  parse     batched/single: %.3fx\n",
              parse_batched.msgs_per_sec / parse_single.msgs_per_sec);
  // The pooled single-session paths must at least match the allocating
  // plain calls (CI guards these ratios).
  std::printf("  serialize arena/single:   %.3fx\n",
              ser_arena.msgs_per_sec / ser_single.msgs_per_sec);
  std::printf("  parse     arena/single:   %.3fx\n",
              parse_arena.msgs_per_sec / parse_single.msgs_per_sec);
  std::printf("  serialize metrics on/off: %.3fx\n", ser_onoff);
  std::printf("  parse     metrics on/off: %.3fx\n", parse_onoff);
  if (native_backend != nullptr) {
    print_rate("serialize/native", ser_native);
    print_rate("parse/native", parse_native);
    // Compiled tables + monomorphized walks must at least match the
    // interpreter (CI guards these ratios too).
    std::printf("  serialize native/single:  %.3fx\n",
                ser_native.msgs_per_sec / ser_single.msgs_per_sec);
    std::printf("  parse     native/single:  %.3fx\n",
                parse_native.msgs_per_sec / parse_single.msgs_per_sec);
    std::printf("  native compile (cold):    %.0f ms\n", native_compile_ms);
  }
  std::printf("  (checksum %zu)\n", checksum);

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_session\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"per_node\": %d,\n"
                 "  \"messages\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"batch_width\": %zu,\n"
                 "  \"serialize_single_msgs_per_sec\": %.0f,\n"
                 "  \"serialize_arena_msgs_per_sec\": %.0f,\n"
                 "  \"serialize_batched_msgs_per_sec\": %.0f,\n"
                 "  \"parse_single_msgs_per_sec\": %.0f,\n"
                 "  \"parse_arena_msgs_per_sec\": %.0f,\n"
                 "  \"parse_batched_msgs_per_sec\": %.0f,\n"
                 "  \"serialize_native_msgs_per_sec\": %.0f,\n"
                 "  \"parse_native_msgs_per_sec\": %.0f,\n"
                 "  \"native_compile_ms\": %.1f,\n"
                 "  \"serialize_arena_metrics_off_msgs_per_sec\": %.0f,\n"
                 "  \"parse_arena_metrics_off_msgs_per_sec\": %.0f,\n"
                 "  \"serialize_metrics_on_off_ratio\": %.4f,\n"
                 "  \"parse_metrics_on_off_ratio\": %.4f\n"
                 "}\n",
                 workload.name.c_str(), per_node, messages, repeats,
                 session.batch_width(), ser_single.msgs_per_sec,
                 ser_arena.msgs_per_sec, ser_batched.msgs_per_sec,
                 parse_single.msgs_per_sec, parse_arena.msgs_per_sec,
                 parse_batched.msgs_per_sec, ser_native.msgs_per_sec,
                 parse_native.msgs_per_sec, native_compile_ms,
                 ser_arena_off.msgs_per_sec, parse_arena_off.msgs_per_sec,
                 ser_onoff, parse_onoff);
    std::fclose(f);
    std::printf("  wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
