// Streaming throughput: Channel (framed byte stream) vs raw Session.
//
// The Channel is the intended server entry point for TCP traffic, so its
// overhead over the raw batch paths is the number to watch: framing on
// send, reassembly + frame decode + batched parse on receive. Measured
// across chunk sizes because delivery granularity decides how often the
// reader re-attempts a decode:
//
//   serialize/session    Session::serialize() per message (arena path)
//   serialize/channel    Channel::send() — serialize + frame, arena-backed
//   parse/session        Session::parse_batch() on pre-split wire images —
//                        the baseline with boundaries known a priori
//   parse/channel@N      feed the concatenated framed stream in N-byte
//                        chunks, Channel::drain_batch() per chunk
//
// Plus the adversarial scenario ISSUE 5 closes: a *delimiter-bounded*
// frame spec (no length field anywhere) delivered one byte at a time.
// The resumable prefix parse must keep decode work amortized O(1) per
// delivered byte, i.e. bytes-rescanned-per-frame stays O(frame size) —
// the restart-from-zero baseline rescans O(frame²). Both modes run with
// identical accounting and land in BENCH_stream.json.
//
// The CI smoke step guards "channel/session" (whole-stream delivery) and
// "delim-trickle rescan-ratio" (rescanned bytes per frame over frame
// size: bounded constant with resume, ~frame/2 without).
//
// Usage: bench_throughput_stream [messages] [repeats] [per_node] [json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness.hpp"
#include "session/protocol_cache.hpp"
#include "stream/channel.hpp"

namespace {

using namespace protoobf;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t msg_seed_of(std::size_t i) {
  return 0x57ea + 11400714819323198485ull * i;
}

}  // namespace

/// Delimiter-bounded frame spec trickle: `frames` framed payloads of
/// `payload_size` ASCII bytes, delivered one byte at a time through a
/// StreamReader. Reports the framing-layer cost counters.
struct TrickleResult {
  double decodes_per_frame = 0;
  double rescanned_per_frame = 0;  // scan work beyond one pass of the wire
  double frame_size = 0;
  double seconds = 0;
};

TrickleResult run_delim_trickle(bool resumable, std::size_t frames,
                                std::size_t payload_size) {
  constexpr std::string_view kDelimFrameSpec = R"(
protocol DelimFrame
frame: seq end {
  fbody: terminal delimited("\r\n") ascii
}
)";
  ProtocolCache cache;
  ObfuscationConfig identity;
  identity.seed = 1;
  identity.per_node = 0;
  auto framing = cache.get_or_compile(kDelimFrameSpec, identity);
  if (!framing) {
    std::fprintf(stderr, "delim frame compile failed: %s\n",
                 framing.error().message.c_str());
    std::exit(1);
  }
  ObfuscatedFramer::Config cfg;
  cfg.payload_path = "fbody";
  cfg.resumable_decode = resumable;
  auto framer = ObfuscatedFramer::create(*framing, cfg);
  if (!framer) {
    std::fprintf(stderr, "framer create failed: %s\n",
                 framer.error().message.c_str());
    std::exit(1);
  }

  Bytes stream;
  const Bytes payload(payload_size, static_cast<Byte>('x'));
  Bytes framed;
  for (std::size_t i = 0; i < frames; ++i) {
    if (Status s = (*framer)->encode(payload, framed); !s) {
      std::fprintf(stderr, "frame encode failed: %s\n",
                   s.error().message.c_str());
      std::exit(1);
    }
    append(stream, framed);
  }

  StreamReader reader(**framer);
  std::size_t got = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    reader.feed(BytesView(stream).subspan(i, 1));
    while (reader.next_frame()) ++got;
    if (reader.failed()) {
      std::fprintf(stderr, "delim trickle failed: %s\n",
                   reader.error().message.c_str());
      std::exit(1);
    }
  }
  TrickleResult r;
  r.seconds = seconds_since(start);
  if (got != frames) {
    std::fprintf(stderr, "delim trickle lost frames: %zu/%zu\n", got, frames);
    std::exit(1);
  }
  const ParseResume::Stats& stats = (*framer)->resume_stats();
  r.decodes_per_frame =
      static_cast<double>(stats.attempts) / static_cast<double>(frames);
  // One pass over the wire is the unavoidable floor; everything above it
  // is re-examination of bytes a previous attempt already saw.
  const double rescanned =
      stats.scanned_bytes > stream.size()
          ? static_cast<double>(stats.scanned_bytes - stream.size())
          : 0.0;
  r.rescanned_per_frame = rescanned / static_cast<double>(frames);
  r.frame_size =
      static_cast<double>(stream.size()) / static_cast<double>(frames);
  return r;
}

int main(int argc, char** argv) {
  const std::size_t messages =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 256;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 6;
  const int per_node = argc > 3 ? std::atoi(argv[3]) : 2;
  const char* json_path = argc > 4 ? argv[4] : "BENCH_stream.json";
  if (messages == 0 || repeats <= 0 || per_node < 0) {
    std::fprintf(stderr,
                 "usage: bench_throughput_stream [messages>0] [repeats>0] "
                 "[per_node>=0] [json_path]\n");
    return 2;
  }

  bench::Workload workload = bench::http_workload();
  const Graph& g = workload.graphs[0];
  ObfuscationConfig config;
  config.seed = 2018;
  config.per_node = per_node;
  ProtocolCache cache;
  auto entry = cache.get_or_compile(g, ProtocolCache::hash_graph(g), config);
  if (!entry) {
    std::fprintf(stderr, "obfuscation failed: %s\n",
                 entry.error().message.c_str());
    return 1;
  }
  const ObfuscatedProtocol& protocol = **entry;

  Rng rng(7);
  std::vector<Message> msgs;
  msgs.reserve(messages);
  for (std::size_t i = 0; i < messages; ++i) {
    msgs.push_back(workload.make(0, g, rng));
  }

  WorkerPool pool;
  Session sender(*entry, &pool);
  Session receiver(*entry, &pool);
  LengthPrefixFramer send_framer;
  LengthPrefixFramer recv_framer;
  Channel out(sender, send_framer);
  Channel in(receiver, recv_framer);

  // Fixture: plain wire images (the session baseline's input) and the
  // concatenated framed stream (the channel's input).
  std::vector<Bytes> wires;
  Bytes stream;
  for (std::size_t i = 0; i < messages; ++i) {
    auto wire = protocol.serialize(msgs[i].root(), msg_seed_of(i));
    if (!wire) {
      std::fprintf(stderr, "serialize failed: %s\n",
                   wire.error().message.c_str());
      return 1;
    }
    auto framed = out.send(msgs[i].root(), msg_seed_of(i));
    if (!framed) {
      std::fprintf(stderr, "send failed: %s\n",
                   framed.error().message.c_str());
      return 1;
    }
    append(stream, *framed);
    wires.push_back(std::move(*wire));
  }
  std::vector<BytesView> views(wires.begin(), wires.end());

  const std::size_t chunk_sizes[] = {64, 1024, stream.size()};
  std::size_t checksum = 0;

  // One timed run of each path, interleaved over kTrials rounds; best
  // window wins (same discipline as bench_throughput_session).
  const auto run_channel = [&](std::size_t chunk) {
    std::size_t got = 0;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t n = std::min(chunk, stream.size() - offset);
      in.on_bytes(BytesView(stream).subspan(offset, n));
      offset += n;
      auto batch = in.drain_batch();
      for (const auto& tree : batch) {
        checksum += tree ? (*tree)->children.size() : 0;
        ++got;
      }
    }
    return got;
  };

  struct Row {
    const char* label;
    double msgs_per_sec = 0;
  };
  Row ser_session{"serialize/session"};
  Row ser_channel{"serialize/channel"};
  Row parse_session{"parse/session"};
  std::vector<Row> parse_channel;
  static char labels[3][32];
  for (std::size_t c = 0; c < 3; ++c) {
    std::snprintf(labels[c], sizeof labels[c], "parse/channel@%zu",
                  chunk_sizes[c]);
    parse_channel.push_back(Row{labels[c]});
  }

  constexpr int kTrials = 5;
  const double total =
      static_cast<double>(messages) * static_cast<double>(repeats);
  for (int t = 0; t < kTrials; ++t) {
    {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        for (std::size_t i = 0; i < messages; ++i) {
          auto wire = sender.serialize(msgs[i].root(), msg_seed_of(i));
          checksum += wire ? wire->size() : 0;
        }
      }
      ser_session.msgs_per_sec =
          std::max(ser_session.msgs_per_sec, total / seconds_since(start));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        for (std::size_t i = 0; i < messages; ++i) {
          auto framed = out.send(msgs[i].root(), msg_seed_of(i));
          checksum += framed ? framed->size() : 0;
        }
      }
      ser_channel.msgs_per_sec =
          std::max(ser_channel.msgs_per_sec, total / seconds_since(start));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        auto batch = receiver.parse_batch(views);
        for (const auto& tree : batch) {
          checksum += tree ? (*tree)->children.size() : 0;
        }
      }
      parse_session.msgs_per_sec =
          std::max(parse_session.msgs_per_sec, total / seconds_since(start));
    }
    for (std::size_t c = 0; c < 3; ++c) {
      std::size_t got = 0;
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) got += run_channel(chunk_sizes[c]);
      if (got != messages * static_cast<std::size_t>(repeats)) {
        std::fprintf(stderr, "FRAMING LOST MESSAGES: %zu/%zu\n", got,
                     messages * static_cast<std::size_t>(repeats));
        return 1;
      }
      parse_channel[c].msgs_per_sec =
          std::max(parse_channel[c].msgs_per_sec,
                   total / seconds_since(start));
    }
  }

  std::printf("throughput_stream — %s, per_node=%d, %zu msgs x %d repeats, "
              "stream %zu bytes, %zu-way batches\n",
              workload.name.c_str(), per_node, messages, repeats,
              stream.size(), receiver.batch_width());
  const auto print_row = [](const Row& row) {
    std::printf("  %-20s %12.0f msgs/s\n", row.label, row.msgs_per_sec);
  };
  print_row(ser_session);
  print_row(ser_channel);
  print_row(parse_session);
  for (const Row& row : parse_channel) print_row(row);
  std::printf("  serialize channel/session: %.3fx\n",
              ser_channel.msgs_per_sec / ser_session.msgs_per_sec);
  std::printf("  parse     channel/session: %.3fx\n",
              parse_channel[2].msgs_per_sec / parse_session.msgs_per_sec);

  // Delimiter-bounded frame spec under 1-byte delivery: the adversarial
  // trickle. Sized small — the restart baseline is quadratic by design.
  const std::size_t trickle_frames = std::min<std::size_t>(messages, 32);
  const TrickleResult resume_run =
      run_delim_trickle(/*resumable=*/true, trickle_frames, 192);
  const TrickleResult restart_run =
      run_delim_trickle(/*resumable=*/false, trickle_frames, 192);
  // Rescanned bytes per frame normalized by the frame size: O(1)-per-byte
  // decode work keeps this a small constant; restart-from-zero makes it
  // grow with the frame itself (~frame/2). CI guards the resume ratio.
  const double resume_ratio =
      resume_run.rescanned_per_frame / resume_run.frame_size;
  const double restart_ratio =
      restart_run.rescanned_per_frame / restart_run.frame_size;
  std::printf("  delim-trickle (frame %.0f B, 1-byte delivery, %zu frames)\n",
              resume_run.frame_size, trickle_frames);
  std::printf("    decodes/frame:   %8.1f (resume)  %8.1f (restart)\n",
              resume_run.decodes_per_frame, restart_run.decodes_per_frame);
  std::printf("    rescanned/frame: %8.0f B         %8.0f B\n",
              resume_run.rescanned_per_frame, restart_run.rescanned_per_frame);
  std::printf("  delim rescan-ratio resume:  %.3fx of frame\n", resume_ratio);
  std::printf("  delim rescan-ratio restart: %.3fx of frame\n", restart_ratio);
  std::printf("  (checksum %zu)\n", checksum);

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"throughput_stream\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"per_node\": %d,\n"
                 "  \"messages\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"serialize_session_msgs_per_sec\": %.0f,\n"
                 "  \"serialize_channel_msgs_per_sec\": %.0f,\n"
                 "  \"parse_session_msgs_per_sec\": %.0f,\n"
                 "  \"parse_channel_msgs_per_sec\": %.0f,\n"
                 "  \"delim_trickle_frame_bytes\": %.0f,\n"
                 "  \"delim_trickle_frames\": %zu,\n"
                 "  \"delim_decodes_per_frame_resume\": %.1f,\n"
                 "  \"delim_decodes_per_frame_restart\": %.1f,\n"
                 "  \"delim_rescanned_per_frame_resume\": %.0f,\n"
                 "  \"delim_rescanned_per_frame_restart\": %.0f,\n"
                 "  \"delim_rescan_ratio_resume\": %.3f,\n"
                 "  \"delim_rescan_ratio_restart\": %.3f\n"
                 "}\n",
                 workload.name.c_str(), per_node, messages, repeats,
                 ser_session.msgs_per_sec, ser_channel.msgs_per_sec,
                 parse_session.msgs_per_sec,
                 parse_channel[2].msgs_per_sec, resume_run.frame_size,
                 trickle_frames, resume_run.decodes_per_frame,
                 restart_run.decodes_per_frame,
                 resume_run.rescanned_per_frame,
                 restart_run.rescanned_per_frame, resume_ratio,
                 restart_ratio);
    std::fclose(f);
    std::printf("  wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
