// Streaming throughput: Channel (framed byte stream) vs raw Session.
//
// The Channel is the intended server entry point for TCP traffic, so its
// overhead over the raw batch paths is the number to watch: framing on
// send, reassembly + frame decode + batched parse on receive. Measured
// across chunk sizes because delivery granularity decides how often the
// reader re-attempts a decode:
//
//   serialize/session    Session::serialize() per message (arena path)
//   serialize/channel    Channel::send() — serialize + frame, arena-backed
//   parse/session        Session::parse_batch() on pre-split wire images —
//                        the baseline with boundaries known a priori
//   parse/channel@N      feed the concatenated framed stream in N-byte
//                        chunks, Channel::drain_batch() per chunk
//
// The CI smoke step guards "channel/session" (whole-stream delivery): the
// framed path must stay within a constant factor of the raw batch path.
//
// Usage: bench_throughput_stream [messages] [repeats] [per_node]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness.hpp"
#include "session/protocol_cache.hpp"
#include "stream/channel.hpp"

namespace {

using namespace protoobf;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t msg_seed_of(std::size_t i) {
  return 0x57ea + 11400714819323198485ull * i;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t messages =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 256;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 6;
  const int per_node = argc > 3 ? std::atoi(argv[3]) : 2;
  if (messages == 0 || repeats <= 0 || per_node < 0) {
    std::fprintf(stderr,
                 "usage: bench_throughput_stream [messages>0] [repeats>0] "
                 "[per_node>=0]\n");
    return 2;
  }

  bench::Workload workload = bench::http_workload();
  const Graph& g = workload.graphs[0];
  ObfuscationConfig config;
  config.seed = 2018;
  config.per_node = per_node;
  ProtocolCache cache;
  auto entry = cache.get_or_compile(g, ProtocolCache::hash_graph(g), config);
  if (!entry) {
    std::fprintf(stderr, "obfuscation failed: %s\n",
                 entry.error().message.c_str());
    return 1;
  }
  const ObfuscatedProtocol& protocol = **entry;

  Rng rng(7);
  std::vector<Message> msgs;
  msgs.reserve(messages);
  for (std::size_t i = 0; i < messages; ++i) {
    msgs.push_back(workload.make(0, g, rng));
  }

  WorkerPool pool;
  Session sender(*entry, &pool);
  Session receiver(*entry, &pool);
  LengthPrefixFramer send_framer;
  LengthPrefixFramer recv_framer;
  Channel out(sender, send_framer);
  Channel in(receiver, recv_framer);

  // Fixture: plain wire images (the session baseline's input) and the
  // concatenated framed stream (the channel's input).
  std::vector<Bytes> wires;
  Bytes stream;
  for (std::size_t i = 0; i < messages; ++i) {
    auto wire = protocol.serialize(msgs[i].root(), msg_seed_of(i));
    if (!wire) {
      std::fprintf(stderr, "serialize failed: %s\n",
                   wire.error().message.c_str());
      return 1;
    }
    auto framed = out.send(msgs[i].root(), msg_seed_of(i));
    if (!framed) {
      std::fprintf(stderr, "send failed: %s\n",
                   framed.error().message.c_str());
      return 1;
    }
    append(stream, *framed);
    wires.push_back(std::move(*wire));
  }
  std::vector<BytesView> views(wires.begin(), wires.end());

  const std::size_t chunk_sizes[] = {64, 1024, stream.size()};
  std::size_t checksum = 0;

  // One timed run of each path, interleaved over kTrials rounds; best
  // window wins (same discipline as bench_throughput_session).
  const auto run_channel = [&](std::size_t chunk) {
    std::size_t got = 0;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t n = std::min(chunk, stream.size() - offset);
      in.on_bytes(BytesView(stream).subspan(offset, n));
      offset += n;
      auto batch = in.drain_batch();
      for (const auto& tree : batch) {
        checksum += tree ? (*tree)->children.size() : 0;
        ++got;
      }
    }
    return got;
  };

  struct Row {
    const char* label;
    double msgs_per_sec = 0;
  };
  Row ser_session{"serialize/session"};
  Row ser_channel{"serialize/channel"};
  Row parse_session{"parse/session"};
  std::vector<Row> parse_channel;
  static char labels[3][32];
  for (std::size_t c = 0; c < 3; ++c) {
    std::snprintf(labels[c], sizeof labels[c], "parse/channel@%zu",
                  chunk_sizes[c]);
    parse_channel.push_back(Row{labels[c]});
  }

  constexpr int kTrials = 5;
  const double total =
      static_cast<double>(messages) * static_cast<double>(repeats);
  for (int t = 0; t < kTrials; ++t) {
    {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        for (std::size_t i = 0; i < messages; ++i) {
          auto wire = sender.serialize(msgs[i].root(), msg_seed_of(i));
          checksum += wire ? wire->size() : 0;
        }
      }
      ser_session.msgs_per_sec =
          std::max(ser_session.msgs_per_sec, total / seconds_since(start));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        for (std::size_t i = 0; i < messages; ++i) {
          auto framed = out.send(msgs[i].root(), msg_seed_of(i));
          checksum += framed ? framed->size() : 0;
        }
      }
      ser_channel.msgs_per_sec =
          std::max(ser_channel.msgs_per_sec, total / seconds_since(start));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        auto batch = receiver.parse_batch(views);
        for (const auto& tree : batch) {
          checksum += tree ? (*tree)->children.size() : 0;
        }
      }
      parse_session.msgs_per_sec =
          std::max(parse_session.msgs_per_sec, total / seconds_since(start));
    }
    for (std::size_t c = 0; c < 3; ++c) {
      std::size_t got = 0;
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) got += run_channel(chunk_sizes[c]);
      if (got != messages * static_cast<std::size_t>(repeats)) {
        std::fprintf(stderr, "FRAMING LOST MESSAGES: %zu/%zu\n", got,
                     messages * static_cast<std::size_t>(repeats));
        return 1;
      }
      parse_channel[c].msgs_per_sec =
          std::max(parse_channel[c].msgs_per_sec,
                   total / seconds_since(start));
    }
  }

  std::printf("throughput_stream — %s, per_node=%d, %zu msgs x %d repeats, "
              "stream %zu bytes, %zu-way batches\n",
              workload.name.c_str(), per_node, messages, repeats,
              stream.size(), receiver.batch_width());
  const auto print_row = [](const Row& row) {
    std::printf("  %-20s %12.0f msgs/s\n", row.label, row.msgs_per_sec);
  };
  print_row(ser_session);
  print_row(ser_channel);
  print_row(parse_session);
  for (const Row& row : parse_channel) print_row(row);
  std::printf("  serialize channel/session: %.3fx\n",
              ser_channel.msgs_per_sec / ser_session.msgs_per_sec);
  std::printf("  parse     channel/session: %.3fx\n",
              parse_channel[2].msgs_per_sec / parse_session.msgs_per_sec);
  std::printf("  (checksum %zu)\n", checksum);
  return 0;
}
