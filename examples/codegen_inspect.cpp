// Inspecting the generated serialization library (§VI).
//
// Emits the C++ source the framework generates for an obfuscated protocol
// — the artifact an attacker reversing the *binary* would face — together
// with the complexity metrics of §VII-B. Pass a file name to write the
// source; default prints a summary and the first lines.
#include <fstream>
#include <iostream>
#include <sstream>

#include "codegen/generator.hpp"
#include "protocols/modbus.hpp"

int main(int argc, char** argv) {
  using namespace protoobf;

  auto graph = Framework::load_spec(modbus::request_spec()).value();

  for (int per_node : {0, 1, 2}) {
    ObfuscationConfig cfg;
    cfg.per_node = per_node;
    cfg.seed = 31337;
    auto proto = Framework::generate(graph, cfg).value();
    const GeneratedCode code = generate_cpp(proto);
    std::cout << "obfuscations/node = " << per_node << ": "
              << proto.stats().applied << " transformations -> "
              << code.metrics.lines << " lines, " << code.metrics.structs
              << " structs, call graph size " << code.metrics.callgraph_size
              << ", depth " << code.metrics.callgraph_depth << "\n";

    if (per_node == 1 && argc > 1) {
      std::ofstream out(argv[1]);
      out << code.source;
      std::cout << "wrote generated library to " << argv[1] << "\n";
    } else if (per_node == 1) {
      std::cout << "\n--- first lines of the generated library ---\n";
      std::istringstream lines(code.source);
      std::string line;
      for (int i = 0; i < 40 && std::getline(lines, line); ++i) {
        std::cout << line << "\n";
      }
      std::cout << "... (" << code.metrics.lines << " lines total)\n\n";
    }
  }
  return 0;
}
