// Obfuscating HTTP (the paper's text protocol, §VII).
//
// Shows what specification-level obfuscation does to a protocol built
// around delimiters: the request line separators disappear (BoundaryChange
// turns them into length fields), keywords get split or rewritten
// (SplitAdd/ConstXor on the method defeats keyword-based classification),
// the header list becomes a counted A^m B^m structure (RepSplit turns a
// regular language into a context-free one), and parts of the message read
// right to left (ReadFromEnd).
#include <iostream>

#include "pre/dpi.hpp"
#include "protocols/http.hpp"

int main() {
  using namespace protoobf;

  auto graph = Framework::load_spec(http::request_spec()).value();

  Message request = http::make_post(
      graph, "/api/v1/items",
      {{"Host", "example.com"},
       {"User-Agent", "protoobf-demo/1.0"},
       {"Accept", "*/*"}},
      "name=widget&qty=4");

  ObfuscationConfig plain;
  plain.per_node = 0;
  auto plain_proto = Framework::generate(graph, plain).value();
  const Bytes plain_wire = plain_proto.serialize(request.root(), 3).value();
  std::cout << "--- plain HTTP (" << plain_wire.size() << " bytes) ---\n"
            << to_text(plain_wire) << "\n";

  for (int per_node : {1, 2}) {
    ObfuscationConfig cfg;
    cfg.per_node = per_node;
    cfg.seed = 77;
    auto proto = Framework::generate(graph, cfg).value();
    const Bytes wire = proto.serialize(request.root(), 3).value();
    std::cout << "--- " << per_node << " obfuscation(s) per node: "
              << proto.stats().applied << " transformations applied, "
              << wire.size() << " bytes, DPI says: "
              << pre::to_string(pre::classify(wire)) << " ---\n"
              << hexdump(wire) << "\n";

    // Round trip and show the recovered request line.
    auto parsed = proto.parse(wire).value();
    const Inst* method = ast::find_path(graph, *parsed, "request.method");
    const Inst* uri = ast::find_path(graph, *parsed, "request.uri");
    const Inst* body = ast::find_path(graph, *parsed,
                                      "request.body.content");
    std::cout << "recovered: " << to_text(method->value) << " "
              << to_text(uri->value) << " (body: \"" << to_text(body->value)
              << "\")\n\n";
  }

  std::cout << "Both receivers above used the same application code; the\n"
               "obfuscated wire images are unreadable to the DPI engine yet\n"
               "decode to the identical logical request.\n";
  return 0;
}
