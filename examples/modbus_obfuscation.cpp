// Obfuscating TCP-Modbus (the paper's binary protocol, §VII).
//
// Mirrors the paper's core application: builds requests 1..16 and their
// responses through the stable accessor interface, then shows how the same
// application code produces completely different wire traffic depending on
// the obfuscation configuration — including regenerating a fresh protocol
// version just by changing the seed ("new obfuscated versions of the
// protocol can be easily generated", §VIII).
#include <iostream>

#include "pre/dpi.hpp"
#include "protocols/modbus.hpp"

int main() {
  using namespace protoobf;

  auto request_graph = Framework::load_spec(modbus::request_spec()).value();
  auto response_graph = Framework::load_spec(modbus::response_spec()).value();

  // The classic Read Holding Registers exchange (simplymodbus.ca example).
  Message request = modbus::make_read_holding(request_graph, 0x0001, 0x11,
                                              0x006b, 0x0003);
  const std::uint16_t regs[] = {0xae41, 0x5652, 0x4340};
  Message response =
      modbus::make_read_holding_response(response_graph, 0x0001, 0x11, regs);

  const auto show = [&](const char* label, const ObfuscationConfig& cfg) {
    auto req_proto = Framework::generate(request_graph, cfg).value();
    ObfuscationConfig resp_cfg = cfg;
    resp_cfg.seed += 1;
    auto resp_proto = Framework::generate(response_graph, resp_cfg).value();

    const Bytes req_wire = req_proto.serialize(request.root(), 7).value();
    const Bytes resp_wire = resp_proto.serialize(response.root(), 8).value();

    std::cout << "--- " << label << " ("
              << req_proto.stats().applied + resp_proto.stats().applied
              << " transformations) ---\n";
    std::cout << "request  (" << req_wire.size() << " bytes, DPI says: "
              << pre::to_string(pre::classify(req_wire)) << ")\n"
              << hexdump(req_wire);
    std::cout << "response (" << resp_wire.size() << " bytes, DPI says: "
              << pre::to_string(pre::classify(resp_wire)) << ")\n"
              << hexdump(resp_wire);

    // Round trip: the receiver recovers the exact logical message.
    auto parsed = req_proto.parse(req_wire).value();
    const Inst* fn = ast::find_path(request_graph, *parsed, "adu.tail.fn");
    const Inst* addr = ast::find_path(
        request_graph, *parsed, "adu.tail.read_holding.rh_body.rh_addr");
    std::cout << "parsed request: fn=" << to_hex(fn->value)
              << " addr=" << to_hex(addr->value) << "\n\n";
  };

  ObfuscationConfig plain;
  plain.per_node = 0;
  show("non-obfuscated", plain);

  ObfuscationConfig obf;
  obf.per_node = 1;
  obf.seed = 42;
  show("1 obfuscation per node, seed 42", obf);

  obf.seed = 1337;  // regenerate: same interface, new wire format
  show("1 obfuscation per node, seed 1337 (regenerated)", obf);

  obf.per_node = 3;
  show("3 obfuscations per node", obf);

  std::cout << "The application code above never changed; only the "
               "obfuscation\nconfiguration did — the paper's stable-interface "
               "requirement.\n";
  return 0;
}
