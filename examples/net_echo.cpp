// Obfuscated echo over real sockets: the src/net subsystem end to end.
//
// Everything the repo built so far — compiled protocol, session arenas,
// framers, channels — finally crosses a kernel boundary: a sharded epoll
// Server listens on loopback, a Connector dials it, and obfuscated Modbus
// requests round-trip through actual TCP sockets. The server parses each
// frame it receives and serializes the tree right back (an echo is the
// smallest protocol gateway: decode obfuscated, re-encode obfuscated).
//
// Run it to see the wire bytes differ from the logical bytes (that is the
// point of the paper) while the parsed echoes compare equal to what was
// sent. Exits 0 only if every echo matches — CMake registers this as a
// test, so the demo doubles as an end-to-end check.
#include <atomic>
#include <iostream>
#include <thread>

#include "net/connector.hpp"
#include "net/server.hpp"
#include "protocols/modbus.hpp"
#include "session/protocol_cache.hpp"

namespace {

using namespace protoobf;

}  // namespace

int main() {
  // Compile the Modbus request side once; server and client share it.
  const Graph modbus_graph =
      Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig config;
  config.seed = 2018;
  config.per_node = 2;
  ProtocolCache cache;
  auto entry = cache.get_or_compile(modbus::request_spec(), config);
  if (!entry.ok()) {
    std::cerr << "obfuscation failed: " << entry.error().message << "\n";
    return 1;
  }
  std::shared_ptr<const ObfuscatedProtocol> protocol = *entry;
  std::cout << "obfuscated Modbus: " << protocol->journal().size()
            << " transformations applied\n";

  // --- server: 2 shards on an ephemeral loopback port ----------------------
  net::Server::Config server_cfg;
  server_cfg.shards = 2;
  net::Server server(protocol, net::length_prefix_framer_factory(),
                     server_cfg);
  server.on_accept([](net::Connection& conn) {
    conn.on_message([](net::Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) return;
      (void)c.send(**msg, c.stats().messages_in);
    });
  });
  if (Status s = server.start(); !s) {
    std::cerr << "server start failed: " << s.error().message << "\n";
    return 1;
  }
  std::cout << "server listening on 127.0.0.1:" << server.port() << " ("
            << server.shard_count() << " shards)\n";

  // --- client: dial, send three requests, await the echoes ------------------
  net::EventLoop loop;
  auto dialed = net::Connector::dial(
      loop, {"127.0.0.1", server.port()}, protocol,
      std::make_unique<LengthPrefixFramer>(), {});
  if (!dialed.ok()) {
    std::cerr << "dial failed: " << dialed.error().message << "\n";
    return 1;
  }
  std::unique_ptr<net::Connection> conn = std::move(*dialed);

  const std::uint16_t addrs[] = {0x0010, 0x0400, 0x006b};
  std::vector<Message> requests;
  for (int i = 0; i < 3; ++i) {
    requests.push_back(modbus::make_read_holding(
        modbus_graph, static_cast<std::uint16_t>(i + 1), 0x11, addrs[i], 2));
    if (Status s = protocol->canonicalize(requests.back().root()); !s) {
      std::cerr << "canonicalize failed: " << s.error().message << "\n";
      return 1;
    }
  }

  std::size_t echoed = 0;
  bool all_equal = true;
  conn->on_message([&](net::Connection&, Expected<InstPtr> reply) {
    if (!reply.ok()) {
      std::cerr << "echo parse failed: " << reply.error().message << "\n";
      all_equal = false;
      return;
    }
    const bool equal = ast::equal(**reply, requests[echoed].root());
    std::cout << "  echo " << echoed << ": "
              << (equal ? "matches the request tree" : "MISMATCH") << "\n";
    all_equal = all_equal && equal;
    ++echoed;
  });
  if (Status s = conn->open(); !s) {
    std::cerr << "open failed: " << s.error().message << "\n";
    return 1;
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto wire = protocol->serialize(requests[i].root(), 100 + i);
    if (wire.ok()) {
      std::cout << "  request " << i << ": " << wire->size()
                << " obfuscated wire bytes\n";
    }
    if (Status s = conn->send(requests[i].root(), 100 + i); !s) {
      std::cerr << "send failed: " << s.error().message << "\n";
      return 1;
    }
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (echoed < requests.size() &&
         std::chrono::steady_clock::now() < deadline) {
    loop.run_once(50);
  }
  conn->close();
  loop.run_once(0);
  server.stop();

  if (echoed != requests.size() || !all_equal) {
    std::cerr << "echo exchange failed (" << echoed << "/"
              << requests.size() << ")\n";
    return 1;
  }
  std::cout << "all " << echoed
            << " echoes parsed back equal over real sockets\n";
  return 0;
}
