// A protocol reverse engineer's view of an obfuscated trace (§VII-D).
//
// Plays the role of the paper's Netzob expert: captures a small Modbus
// trace, classifies messages by alignment similarity, and infers field
// boundaries from the aligned clusters — first on the plain protocol
// (where everything works), then on the 1-obfuscation-per-node version
// (where it falls apart).
#include <cstdio>
#include <iostream>

#include "pre/alignment.hpp"
#include "pre/clustering.hpp"
#include "pre/dpi.hpp"
#include "pre/field_inference.hpp"
#include "protocols/modbus.hpp"

int main() {
  using namespace protoobf;

  auto graph = Framework::load_spec(modbus::request_spec()).value();

  for (int per_node : {0, 1}) {
    ObfuscationConfig cfg;
    cfg.per_node = per_node;
    cfg.seed = 4242;
    auto proto = Framework::generate(graph, cfg).value();

    // Capture a trace: 4 message types, 6 captures each (paper: "a network
    // trace containing 4 different messages and their answers").
    Rng rng(555);
    std::vector<Bytes> trace;
    std::vector<int> labels;
    for (int round = 0; round < 6; ++round) {
      int label = 0;
      for (std::uint16_t fn : {3, 6, 16, 1}) {
        Message msg(graph);
        switch (fn) {
          case 3:
            msg = modbus::make_read_holding(graph, rng.below(0xffff), 0x11,
                                            rng.below(0xffff),
                                            rng.between(1, 10));
            break;
          case 6:
            msg = modbus::make_write_register(graph, rng.below(0xffff), 0x11,
                                              rng.below(0xffff),
                                              rng.below(0xffff));
            break;
          case 16: {
            const std::uint16_t vals[] = {
                static_cast<std::uint16_t>(rng.below(0xffff)),
                static_cast<std::uint16_t>(rng.below(0xffff))};
            msg = modbus::make_write_registers(graph, rng.below(0xffff), 0x11,
                                               rng.below(0xffff), vals);
            break;
          }
          default:
            msg = modbus::random_request(graph, rng);
        }
        trace.push_back(proto.serialize(msg.root(), rng.next_u64()).value());
        labels.push_back(label++);
      }
    }

    std::printf("=== %s protocol: %zu captured messages ===\n",
                per_node == 0 ? "plain" : "obfuscated (1/node)",
                trace.size());

    int dpi = 0;
    for (const Bytes& wire : trace) {
      if (pre::classify(wire) == pre::Protocol::ModbusTcp) ++dpi;
    }
    std::printf("DPI identifies Modbus in %d/%zu messages\n", dpi,
                trace.size());

    const double sim = pre::similarity(trace[0], trace[4]);
    std::printf("alignment similarity of two same-type captures: %.2f\n",
                sim);

    const auto clusters = pre::cluster_messages(trace, 0.35);
    const auto quality = pre::score_clustering(clusters, labels);
    std::printf("clustering: %zu clusters for %zu true types, purity %.2f\n",
                quality.clusters, quality.true_types, quality.purity);

    // Field inference on the largest cluster.
    std::size_t largest = 0;
    for (std::size_t i = 1; i < clusters.size(); ++i) {
      if (clusters[i].size() > clusters[largest].size()) largest = i;
    }
    std::vector<Bytes> members;
    for (std::size_t idx : clusters[largest]) members.push_back(trace[idx]);
    const auto format = pre::infer_format(members);
    std::printf("field inference on the largest cluster (%zu messages): "
                "%zu boundaries at offsets [",
                members.size(), format.boundaries.size());
    for (std::size_t i = 0; i < format.boundaries.size(); ++i) {
      std::printf("%s%zu", i ? ", " : "", format.boundaries[i]);
    }
    std::printf("]\n\n");
  }

  std::cout << "With one obfuscation per node the reverse engineer's trace\n"
               "no longer fingerprints, clusters or aligns — the paper's\n"
               "expert \"was not able to obtain any relevant results\".\n";
  return 0;
}
