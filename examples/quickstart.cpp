// Quickstart: the whole ProtoObf pipeline on a small Modbus-flavoured
// protocol (the paper's Fig. 3 example), end to end:
//
//   specification text -> message format graph G1 -> random transformations
//   -> obfuscated wire format -> serialize -> hexdump -> parse -> fields.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/protoobf.hpp"
#include "graph/dot.hpp"

namespace {

// Two message types M1/M2 as in Fig. 3: a header, a function code, and a
// function-dependent body.
constexpr std::string_view kSpec = R"spec(
protocol Fig3

msg: seq end {
  len: terminal fixed(2)
  payload: seq length(len) {
    fn: terminal fixed(1)
    m1: optional (fn == 0x01) {
      m1_body: seq {
        addr: terminal fixed(2)
        qty: terminal fixed(2)
      }
    }
    m2: optional (fn == 0x02) {
      m2_body: seq {
        count: terminal fixed(1)
        regs: tabular(count) {
          reg: terminal fixed(2)
        }
      }
    }
  }
}
)spec";

}  // namespace

int main() {
  using namespace protoobf;

  // 1. Specification -> message format graph G1.
  auto graph = Framework::load_spec(kSpec);
  if (!graph.ok()) {
    std::cerr << "spec error: " << graph.error().message << "\n";
    return 1;
  }
  std::cout << "=== Message format graph G1 (paper Fig. 3) ===\n"
            << to_outline(*graph) << "\n";

  // 2. Obfuscate: 2 transformation rounds per node, reproducible seed.
  ObfuscationConfig config;
  config.seed = 2018;
  config.per_node = 2;
  auto protocol = Framework::generate(*graph, config);
  if (!protocol.ok()) {
    std::cerr << "obfuscation error: " << protocol.error().message << "\n";
    return 1;
  }
  std::cout << "=== Applied transformations (tau_1..tau_"
            << protocol->journal().size() << ") ===\n";
  for (const auto& entry : protocol->journal()) {
    std::cout << "  " << entry.describe(protocol->wire_graph()) << "\n";
  }
  std::cout << "\n=== Obfuscated wire graph G(n+1) ===\n"
            << to_outline(protocol->wire_graph()) << "\n";

  // 3. Build an M2 message through the stable accessor interface. Note that
  //    len and count are never set by hand — the framework derives them.
  Message msg(*graph);
  msg.set_uint("fn", 2);
  for (int i = 0; i < 3; ++i) {
    msg.append("regs");
    msg.set_uint("regs[" + std::to_string(i) + "].reg", 0x1000 + i);
  }

  // 4. Serialize twice with different message seeds: randomized
  //    transformations give two distinct wire images of the same message.
  auto plain_cfg = ObfuscationConfig{};
  plain_cfg.per_node = 0;
  auto plain = Framework::generate(*graph, plain_cfg).value();
  std::cout << "=== Non-obfuscated serialization ===\n"
            << hexdump(plain.serialize(msg.root(), 1).value());
  std::cout << "\n=== Obfuscated serialization (seed 1) ===\n"
            << hexdump(protocol->serialize(msg.root(), 1).value());
  std::cout << "\n=== Obfuscated serialization (seed 2) ===\n"
            << hexdump(protocol->serialize(msg.root(), 2).value());

  // 5. Parse back and read fields through getters.
  auto wire = protocol->serialize(msg.root(), 1).value();
  auto parsed = protocol->parse(wire);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.error().message << "\n";
    return 1;
  }
  std::cout << "\n=== Parsed message (logical AST) ===\n"
            << ast::dump(*graph, **parsed);

  // 6. The DOT rendition of both graphs, for the curious.
  std::cout << "\n=== G1 in DOT (render with graphviz) ===\n"
            << to_dot(*graph);
  return 0;
}
