// Session runtime walkthrough: protocol cache, arena serialization, and
// batched exchange.
//
// A server terminating many obfuscated connections wants three things the
// plain ObfuscatedProtocol does not give it: compiled protocols shared
// across sessions (and across version rotations), per-session buffers that
// stop allocating once warm, and a batch API that shards independent
// messages over a worker pool. This example runs all three against the
// paper's Fig. 3 protocol.
//
// Build & run:  ./build/example_session_batch
#include <cstdio>
#include <iostream>

#include "core/protoobf.hpp"
#include "session/session.hpp"

namespace {

constexpr std::string_view kSpec = R"spec(
protocol Fig3

msg: seq end {
  len: terminal fixed(2)
  payload: seq length(len) {
    fn: terminal fixed(1)
    m1: optional (fn == 0x01) {
      m1_body: seq {
        addr: terminal fixed(2)
        qty: terminal fixed(2)
      }
    }
    m2: optional (fn == 0x02) {
      m2_body: seq {
        count: terminal fixed(1)
        regs: tabular(count) {
          reg: terminal fixed(2)
        }
      }
    }
  }
}
)spec";

}  // namespace

int main() {
  using namespace protoobf;

  // One cache per process. The second lookup with the same (spec, seed,
  // per_node) is a hit: version rotation only pays compilation once per
  // rotation, not once per session or message.
  ProtocolCache cache;
  ObfuscationConfig config;
  config.seed = 2018;
  config.per_node = 2;

  auto protocol = cache.get_or_compile(kSpec, config);
  if (!protocol) {
    std::cerr << "compile error: " << protocol.error().message << "\n";
    return 1;
  }
  auto again = cache.get_or_compile(kSpec, config);
  const auto stats = cache.stats();
  std::printf("cache: %zu hit(s), %zu miss(es), same instance: %s\n",
              stats.hits, stats.misses,
              *protocol == *again ? "yes" : "no");

  // Per-connection session over the shared protocol, batches sharded over
  // a process-wide pool.
  WorkerPool pool;
  Session session(*protocol, &pool);

  // Build a batch of M1 messages through the stable G1 interface.
  auto graph = Framework::load_spec(kSpec);
  std::vector<Message> msgs;
  for (int i = 0; i < 4; ++i) {
    Message m(*graph);
    m.set_uint("fn", 1);
    m.set_uint("addr", 0x0100 + i);
    m.set_uint("qty", 8);
    msgs.push_back(std::move(m));
  }
  std::vector<BatchItem> items;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    items.push_back({&msgs[i].root(), /*msg_seed=*/1000 + i});
  }

  auto wires = session.serialize_batch(items);
  std::printf("\n%zu-way worker pool serialized %zu messages:\n",
              session.batch_width(), wires.size());
  for (const auto& wire : wires) {
    if (!wire) {
      std::cerr << "serialize error: " << wire.error().message << "\n";
      return 1;
    }
    std::printf("  %s\n", to_hex(*wire).c_str());
  }

  // Round-trip through parse_batch; every tree equals its logical source.
  std::vector<BytesView> views(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) views[i] = *wires[i];
  auto trees = session.parse_batch(views);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    if (!trees[i]) {
      std::cerr << "parse error: " << trees[i].error().message << "\n";
      return 1;
    }
    Message canon(*graph);
    InstPtr logical = ast::clone(msgs[i].root());
    (void)session.protocol().canonicalize(*logical);
    std::printf("message %zu round-trips: %s\n", i,
                ast::equal(**trees[i], *logical) ? "ok" : "MISMATCH");
  }

  // The arena view path for request/response exchanges: zero-copy until
  // the caller decides to keep the bytes.
  auto view = session.serialize(msgs[0].root(), /*msg_seed=*/7);
  if (view) {
    std::printf("\narena single-message wire (%zu bytes): %s\n",
                view->size(), to_hex(*view).c_str());
  }
  return 0;
}
