// Streaming exchange: obfuscated messages over a byte-stream transport.
//
// On TCP the receiver must find message boundaries before it can parse. An
// obfuscated protocol makes in-band delimitation intentionally hard, so the
// usual engineering answer applies: an *outer* framing layer — itself just
// another ProtoSpec (a 4-byte length + body) — carries the obfuscated
// payload. This example runs a client and a server over an in-memory
// "socket": three requests are framed, concatenated, chunk-delivered, and
// reassembled on the other side.
#include <deque>
#include <iostream>

#include "protocols/modbus.hpp"

namespace {

using namespace protoobf;

constexpr std::string_view kFrameSpec = R"(
protocol Frame
frame: seq end {
  flen: terminal fixed(4)
  fbody: terminal length(flen)
}
)";

/// Minimal stream reassembler: buffers chunks, yields complete frames.
class FrameReader {
 public:
  explicit FrameReader(const Graph& frame_graph,
                       const ObfuscatedProtocol& framing)
      : graph_(frame_graph), framing_(framing) {}

  void feed(BytesView chunk) { append(buffer_, chunk); }

  /// Pops one complete frame body, or nullopt if more bytes are needed.
  std::optional<Bytes> next_frame() {
    if (buffer_.size() < 4) return std::nullopt;
    const std::uint64_t body = be_decode(BytesView(buffer_).first(4));
    if (buffer_.size() < 4 + body) return std::nullopt;
    const Bytes frame(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(4 + body));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(4 + body));
    auto parsed = framing_.parse(frame);
    if (!parsed.ok()) return std::nullopt;
    return ast::find_path(graph_, **parsed, "frame.fbody")->value;
  }

 private:
  const Graph& graph_;
  const ObfuscatedProtocol& framing_;
  Bytes buffer_;
};

}  // namespace

int main() {
  // Inner protocol: obfuscated Modbus requests.
  auto modbus_graph = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig obf;
  obf.per_node = 2;
  obf.seed = 2024;
  auto inner = Framework::generate(modbus_graph, obf).value();

  // Outer framing: a plain 4-byte length prefix (it could be obfuscated
  // too — then the boundary itself becomes opaque).
  auto frame_graph = Framework::load_spec(kFrameSpec).value();
  ObfuscationConfig plain;
  plain.per_node = 0;
  auto framing = Framework::generate(frame_graph, plain).value();

  // --- client side: three requests into one TCP-ish byte stream ----------
  Bytes stream;
  const std::uint16_t addrs[] = {0x0010, 0x0400, 0x006b};
  for (int i = 0; i < 3; ++i) {
    Message request = modbus::make_read_holding(
        modbus_graph, static_cast<std::uint16_t>(i + 1), 0x11, addrs[i], 2);
    const Bytes payload = inner.serialize(request.root(), 100u + i).value();

    Message frame(frame_graph);
    frame.set("fbody", payload);
    append(stream, framing.serialize(frame.root(), 0).value());
  }
  std::cout << "client sent " << stream.size()
            << " bytes carrying 3 obfuscated requests\n";

  // --- server side: deliver in awkward chunks, reassemble, parse ---------
  FrameReader reader(frame_graph, framing);
  std::size_t offset = 0;
  int received = 0;
  Rng chop(7);
  while (offset < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(chop.between(1, 9), stream.size() - offset);
    reader.feed(BytesView(stream).subspan(offset, n));
    offset += n;
    while (auto body = reader.next_frame()) {
      auto request = inner.parse(*body).value();
      const Inst* tx =
          ast::find_path(modbus_graph, *request, "adu.transaction");
      const Inst* addr = ast::find_path(
          modbus_graph, *request, "adu.tail.read_holding.rh_body.rh_addr");
      std::cout << "server got request tx=" << be_decode(tx->value)
                << " addr=0x" << to_hex(addr->value) << "\n";
      ++received;
    }
  }
  std::cout << (received == 3 ? "all 3 requests recovered from the stream\n"
                              : "FRAMING FAILED\n");
  return received == 3 ? 0 : 1;
}
