// Streaming exchange: obfuscated messages over a byte-stream transport.
//
// On TCP the receiver must find message boundaries before it can parse —
// and an obfuscated protocol makes in-band delimitation intentionally hard.
// The streaming API (src/stream) answers with a pluggable framing layer:
// a Channel binds a Session to a Framer and turns arbitrary received
// chunks back into parsed messages.
//
// Two exchanges over an in-memory "socket":
//   1. LengthPrefixFramer — a transparent 4-byte length + body frame;
//   2. ObfuscatedFramer   — the frame spec itself compiled as an
//      ObfuscatedProtocol, so even the message boundary is opaque to an
//      observer (the framing layer is part of the obfuscation surface).
#include <iostream>

#include "protocols/modbus.hpp"
#include "session/protocol_cache.hpp"
#include "stream/channel.hpp"

namespace {

using namespace protoobf;

/// A plain length+body frame spec; compiled with per_node > 0 it becomes an
/// opaque boundary.
constexpr std::string_view kFrameSpec = R"(
protocol Frame
frame: seq end {
  flen: terminal fixed(4)
  fbody: terminal length(flen)
}
)";

/// Sends three obfuscated Modbus requests through `client`, delivers the
/// concatenated bytes to `server` in awkward 1..8-byte chunks, and parses
/// them back. Returns the number recovered.
int exchange(const Graph& modbus_graph, Channel& client, Channel& server,
             std::uint64_t chop_seed) {
  Bytes stream;
  const std::uint16_t addrs[] = {0x0010, 0x0400, 0x006b};
  for (int i = 0; i < 3; ++i) {
    Message request = modbus::make_read_holding(
        modbus_graph, static_cast<std::uint16_t>(i + 1), 0x11, addrs[i], 2);
    auto framed = client.send(request.root(), 100u + i);
    if (!framed.ok()) {
      std::cerr << "send failed: " << framed.error().message << "\n";
      return 0;
    }
    append(stream, *framed);  // the view aliases the arena; copy to queue
  }
  std::cout << "  client sent " << stream.size()
            << " bytes carrying 3 obfuscated requests\n";

  int received = 0;
  Rng chop(chop_seed);
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(chop.between(1, 8), stream.size() - offset);
    server.on_bytes(BytesView(stream).subspan(offset, n));
    offset += n;
    while (auto message = server.receive()) {
      if (!message->ok()) {
        std::cerr << "parse failed: " << (*message).error().message << "\n";
        return received;
      }
      const Inst& request = ***message;
      const Inst* tx =
          ast::find_path(modbus_graph, request, "adu.transaction");
      const Inst* addr = ast::find_path(
          modbus_graph, request, "adu.tail.read_holding.rh_body.rh_addr");
      std::cout << "  server got request tx=" << be_decode(tx->value)
                << " addr=0x" << to_hex(addr->value) << "\n";
      ++received;
    }
  }
  return received;
}

}  // namespace

int main() {
  // Inner protocol: obfuscated Modbus requests, shared by both exchanges.
  ProtocolCache cache;
  ObfuscationConfig obf;
  obf.per_node = 2;
  obf.seed = 2024;
  auto inner = cache.get_or_compile(modbus::request_spec(), obf);
  if (!inner.ok()) {
    std::cerr << "obfuscation failed: " << inner.error().message << "\n";
    return 1;
  }
  auto modbus_graph = Framework::load_spec(modbus::request_spec()).value();

  // --- exchange 1: transparent length-prefix framing ----------------------
  std::cout << "[length-prefix framing]\n";
  LengthPrefixFramer client_framer;
  LengthPrefixFramer server_framer;
  Session client_session(*inner);
  Session server_session(*inner);
  Channel client(client_session, client_framer);
  Channel server(server_session, server_framer);
  const int plain = exchange(modbus_graph, client, server, 7);

  // --- exchange 2: the boundary itself is obfuscated ----------------------
  // The same frame spec, compiled with transformations: length field split
  // and xored, pad bytes inserted — an observer cannot even tell where one
  // message ends and the next begins. Not every compilation is usable on a
  // stream (a seed that mirrors the frame root would make the boundary
  // depend on where the input ends), so rotate seeds until
  // ObfuscatedFramer::create accepts one — the same loop a server's version
  // rotation runs.
  std::cout << "[obfuscated framing]\n";
  std::unique_ptr<ObfuscatedFramer> obf_client_framer;
  std::unique_ptr<ObfuscatedFramer> obf_server_framer;
  for (std::uint64_t seed = 11; seed < 11 + 32; ++seed) {
    ObfuscationConfig frame_obf;
    frame_obf.per_node = 2;
    frame_obf.seed = seed;
    auto framing = cache.get_or_compile(kFrameSpec, frame_obf);
    if (!framing.ok()) continue;
    ObfuscatedFramer::Config fc;
    fc.frame_seed = 99;
    auto client_try = ObfuscatedFramer::create(*framing, fc);
    if (!client_try.ok()) {
      std::cout << "  seed " << seed << " rejected ("
                << client_try.error().message << "), rotating\n";
      continue;
    }
    obf_client_framer = std::move(*client_try);
    obf_server_framer = ObfuscatedFramer::create(*framing, fc).value();
    std::cout << "  frame spec compiled stream-safe with seed " << seed
              << " (" << (*framing)->journal().size()
              << " transformations)\n";
    break;
  }
  if (obf_client_framer == nullptr) {
    std::cerr << "no stream-safe frame compilation found\n";
    return 1;
  }
  Session obf_client_session(*inner);
  Session obf_server_session(*inner);
  Channel obf_client(obf_client_session, *obf_client_framer);
  Channel obf_server(obf_server_session, *obf_server_framer);
  const int opaque = exchange(modbus_graph, obf_client, obf_server, 13);

  const bool ok = plain == 3 && opaque == 3;
  std::cout << (ok ? "all requests recovered from both streams\n"
                   : "FRAMING FAILED\n");
  return ok ? 0 : 1;
}
