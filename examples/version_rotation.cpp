// Protocol version rotation (paper §VIII).
//
// "The proposed framework also provides the opportunity to enhance the
// protection of the considered protocol as new obfuscated versions of the
// protocol can be easily generated. The deployment of new versions, at
// regular intervals, should decrease the likelihood that the protocol can
// be successfully reversed."
//
// This example rotates through protocol versions (one per seed) and shows
// (a) the same application code and message produce unrelated wire images
// per version, and (b) a receiver running the wrong version cannot decode
// the traffic — versions really are distinct protocols.
#include <iostream>

#include "pre/alignment.hpp"
#include "protocols/modbus.hpp"

int main() {
  using namespace protoobf;

  auto graph = Framework::load_spec(modbus::request_spec()).value();
  Message msg = modbus::make_read_holding(graph, 0x0001, 0x11, 0x006b, 3);

  // Generate four versions of the protocol: same spec, different seeds.
  std::vector<ObfuscatedProtocol> versions;
  for (std::uint64_t week = 1; week <= 4; ++week) {
    ObfuscationConfig cfg;
    cfg.per_node = 2;
    cfg.seed = 0xfeed0000 + week;
    versions.push_back(Framework::generate(graph, cfg).value());
  }

  std::cout << "same message, one wire image per deployed version:\n";
  std::vector<Bytes> wires;
  for (std::size_t v = 0; v < versions.size(); ++v) {
    wires.push_back(versions[v].serialize(msg.root(), 9).value());
    std::cout << "  version " << v + 1 << " (" << wires[v].size()
              << " bytes): " << to_hex(wires[v]) << "\n";
  }

  std::cout << "\npairwise wire similarity across versions (alignment):\n";
  for (std::size_t a = 0; a < wires.size(); ++a) {
    std::cout << "  ";
    for (std::size_t b = 0; b < wires.size(); ++b) {
      std::printf("%5.2f", pre::similarity(wires[a], wires[b]));
    }
    std::cout << "\n";
  }

  std::cout << "\ncross-version decoding matrix (receiver v x traffic v):\n";
  for (std::size_t rx = 0; rx < versions.size(); ++rx) {
    std::cout << "  receiver v" << rx + 1 << ": ";
    for (std::size_t tx = 0; tx < versions.size(); ++tx) {
      auto parsed = versions[rx].parse(wires[tx]);
      bool ok = parsed.ok();
      if (ok) {
        // A parse may *accidentally* succeed structurally; the recovered
        // message must also be the right one.
        const Inst* fn =
            ast::find_path(graph, **parsed, "adu.tail.fn");
        ok = fn != nullptr && fn->value == Bytes{0x03};
      }
      std::cout << (ok ? " OK " : " -- ");
    }
    std::cout << "\n";
  }

  std::cout << "\nOnly the diagonal decodes: each rotation is a fresh "
               "protocol,\nwhile the application code stays identical.\n";
  return 0;
}
