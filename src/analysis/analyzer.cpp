// Analyzer core: per-region wire facts + the diagnostic checks.
//
// Everything here is a single bottom-up pass over the wire graph (facts),
// followed by flat per-node checks and a few whole-graph walks (stream
// safety, reference cycles, the static-offset fingerprint scan). The facts
// are deliberately conservative: byte domains over-approximate (a warning
// may fire on a value the application never actually sends), sizes and
// constant prefixes under-approximate (an Error is never based on a byte
// the wire might not contain).
#include "analysis/analyzer.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "runtime/parse.hpp"
#include "util/bytes.hpp"

namespace protoobf::analysis {

namespace {

constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kSat - b ? kSat : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kSat / b ? kSat : a * b;
}

/// Set of byte values, with a `top` shortcut for "any byte".
struct ByteSet {
  std::array<std::uint64_t, 4> bits{};
  bool top = false;

  void add(Byte b) { bits[b >> 6] |= std::uint64_t{1} << (b & 63); }
  void add_range(Byte lo, Byte hi) {
    for (unsigned b = lo; b <= hi; ++b) add(static_cast<Byte>(b));
  }
  void add_all() { top = true; }
  void merge(const ByteSet& other) {
    top = top || other.top;
    for (std::size_t i = 0; i < bits.size(); ++i) bits[i] |= other.bits[i];
  }
  bool contains(Byte b) const {
    return top || (bits[b >> 6] >> (b & 63)) & 1;
  }
  bool empty() const {
    if (top) return false;
    for (const std::uint64_t w : bits) {
      if (w != 0) return false;
    }
    return true;
  }
};

/// Byte-wise forward combination of one value byte with one key byte, in
/// the serialize direction (transform/exec.cpp applies add/sub/xor_key_in).
Byte combine(TransformKind kind, Byte value, Byte key) {
  switch (kind) {
    case TransformKind::ConstAdd:
      return static_cast<Byte>(value + key);
    case TransformKind::ConstSub:
      return static_cast<Byte>(value - key);
    default:
      return static_cast<Byte>(value ^ key);
  }
}

/// Images of a byte set under a Const* key. The first byte of a region
/// always meets key[0]; interior bytes meet every key byte (the key cycles
/// from the region start, and we do not track positions).
ByteSet map_set(const ByteSet& s, TransformKind kind, BytesView key,
                bool first_byte) {
  if (s.top || key.empty()) return s;
  ByteSet out;
  for (unsigned b = 0; b < 256; ++b) {
    if (!s.contains(static_cast<Byte>(b))) continue;
    if (first_byte) {
      out.add(combine(kind, static_cast<Byte>(b), key[0]));
    } else {
      for (const Byte k : key) out.add(combine(kind, static_cast<Byte>(b), k));
    }
  }
  return out;
}

/// Per-region wire facts, computed bottom-up.
struct Facts {
  std::size_t content_min = 0;  // mandatory content, before region wrap
  std::size_t min_size = 0;     // region min; mirrors min_node_size exactly
  std::optional<std::uint64_t> max_size;  // nullopt = unbounded
  NodeId unbounded_by = kNoNode;          // culprit when max_size is nullopt
  ByteSet first;  // possible first bytes of a non-empty region
  ByteSet all;    // every byte that can appear in the region
  Bytes const_prefix;  // guaranteed leading wire bytes
  Bytes const_bytes;   // full region bytes when `constant`
  bool constant = false;
  bool static_size = false;
};

struct FingerprintSpan {
  NodeId node = kNoNode;
  std::size_t offset = 0;
  std::size_t length = 0;
};

class Analyzer {
 public:
  Analyzer(const Graph& wire, const Journal& journal,
           const HolderTable& holders, const Options& options)
      : wire_(wire), journal_(journal), holders_(holders), options_(options) {}

  Report run() {
    report_.protocol = wire_.protocol_name();
    if (wire_.root() == kNoNode) {
      report_.is_stream_safe = false;
      return std::move(report_);
    }
    classify_journal();
    facts_.resize(wire_.arena_size());
    compute(wire_.root());

    const Facts& root = facts_[wire_.root()];
    report_.min_need = root.min_size;
    report_.max_wire = root.max_size;

    check_stream_safety();
    check_frame_bounds(root);
    for (const NodeId id : wire_.dfs_order()) check_node(id);
    check_reference_cycles();
    check_holder_chains();
    check_random_under_scan();
    check_fingerprint();

    detail::cross_check(report_, wire_, root.min_size,
                        stream_violations_ == 0);

    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     });
    return std::move(report_);
  }

 private:
  // --- diagnostics ---------------------------------------------------------

  void emit(const char* id, const char* name, Severity severity, NodeId node,
            std::string message, std::string hint) {
    Diagnostic d;
    d.id = id;
    d.name = name;
    d.severity = severity;
    d.node = node;
    if (node != kNoNode && node < wire_.arena_size()) {
      d.path = wire_.path_of(node);
    }
    d.message = std::move(message);
    d.hint = std::move(hint);
    report_.diagnostics.push_back(std::move(d));
  }

  // --- journal classification ----------------------------------------------

  void classify_journal() {
    random_.assign(wire_.arena_size(), 0);
    const_keys_.assign(wire_.arena_size(), {});
    const auto mark_random = [&](NodeId id) {
      if (id != kNoNode && id < random_.size()) random_[id] = 1;
    };
    for (const AppliedTransform& t : journal_) {
      switch (t.kind) {
        case TransformKind::SplitAdd:
        case TransformKind::SplitSub:
        case TransformKind::SplitXor:
          mark_random(t.created_a);
          mark_random(t.created_b);
          break;
        case TransformKind::PadInsert:
          mark_random(t.created_a);
          break;
        case TransformKind::ConstAdd:
        case TransformKind::ConstSub:
        case TransformKind::ConstXor:
          if (t.target != kNoNode && t.target < const_keys_.size() &&
              !t.key.empty()) {
            const_keys_[t.target].push_back(&t);
          }
          break;
        default:
          break;
      }
    }
  }

  bool is_random(NodeId id) const {
    return id < random_.size() && random_[id] != 0;
  }

  // --- holder value bounds -------------------------------------------------

  /// Largest logical value the holder referenced by `ref` can carry, via
  /// its origin terminal's width and encoding; nullopt when unbounded or
  /// unresolvable. Counter refs may chain through a Tabular (RepSplit).
  std::optional<std::uint64_t> holder_max_value(NodeId ref, int depth = 0) {
    if (depth > 8 || ref == kNoNode || ref >= wire_.arena_size()) {
      return std::nullopt;
    }
    NodeId origin = ref;
    if (const HolderInfo* h = holders_.find_by_top(ref)) origin = h->origin;
    if (origin == kNoNode || origin >= wire_.arena_size()) return std::nullopt;
    const Node& o = wire_.node(origin);
    if (o.type == NodeType::Tabular) {
      return holder_max_value(o.ref, depth + 1);
    }
    if (o.type != NodeType::Terminal) return std::nullopt;
    if (o.has_const && !o.const_value.empty()) {
      if (o.encoding == Encoding::AsciiDec) {
        return ascii_dec_decode(o.const_value);
      }
      if (o.const_value.size() > 8) return kSat;
      return be_decode(o.const_value);
    }
    if (o.boundary != BoundaryKind::Fixed) return std::nullopt;
    const std::size_t width = o.fixed_size;
    if (o.encoding == Encoding::AsciiDec) {
      std::uint64_t bound = 1;
      for (std::size_t i = 0; i < width; ++i) bound = sat_mul(bound, 10);
      return bound == kSat ? kSat : bound - 1;
    }
    if (width >= 8) return kSat;
    return (std::uint64_t{1} << (8 * width)) - 1;
  }

  // --- facts ---------------------------------------------------------------

  void compute(NodeId id) {
    const Node& n = wire_.node(id);
    for (const NodeId child : n.children) compute(child);
    Facts f;
    switch (n.type) {
      case NodeType::Terminal:
        terminal_facts(id, n, f);
        break;
      case NodeType::Sequence:
        sequence_facts(n, f);
        break;
      case NodeType::Optional: {
        const Facts& c = facts_[n.children[0]];
        f.max_size = c.max_size;
        f.unbounded_by = c.unbounded_by;
        f.first = c.first;
        f.all = c.all;
        break;
      }
      case NodeType::Repetition: {
        const Facts& c = facts_[n.children[0]];
        f.max_size = std::nullopt;  // unbounded element count
        f.unbounded_by = id;
        f.first = c.first;
        f.all = c.all;
        break;
      }
      case NodeType::Tabular: {
        const Facts& c = facts_[n.children[0]];
        const auto count = holder_max_value(n.ref);
        if (count && c.max_size) {
          f.max_size = sat_mul(*count, *c.max_size);
        } else {
          f.unbounded_by = c.max_size ? id : c.unbounded_by;
        }
        f.first = c.first;
        f.all = c.all;
        break;
      }
    }
    wrap_region(id, n, f);
    facts_[id] = std::move(f);
  }

  void terminal_facts(NodeId id, const Node& n, Facts& f) {
    // Content min/max, mirroring min_node_size's terminal arm.
    if (n.has_const) {
      f.content_min = n.const_value.size();
    } else if (n.boundary == BoundaryKind::Fixed) {
      f.content_min = n.fixed_size;
    }
    switch (n.boundary) {
      case BoundaryKind::Fixed:
        f.max_size = n.fixed_size;
        f.static_size = true;
        break;
      case BoundaryKind::Length:
        f.max_size = holder_max_value(n.ref);
        if (!f.max_size) f.unbounded_by = id;
        break;
      case BoundaryKind::Delimited:
      case BoundaryKind::End:
      case BoundaryKind::Half:
      default:
        f.unbounded_by = id;
        break;
    }
    if (n.has_const && !n.const_value.empty()) {
      f.static_size = true;
      f.max_size = n.const_value.size();
      Bytes bytes = n.const_value;
      for (const AppliedTransform* t : const_keys_[id]) {
        switch (t->kind) {
          case TransformKind::ConstAdd: add_key_in(bytes, t->key); break;
          case TransformKind::ConstSub: sub_key_in(bytes, t->key); break;
          default: xor_key_in(bytes, t->key); break;
        }
      }
      f.first.add(bytes[0]);
      for (const Byte b : bytes) f.all.add(b);
      f.const_prefix = bytes;
      f.const_bytes = std::move(bytes);
      f.constant = true;
      return;
    }
    // Value domain of a non-constant terminal: split halves and pads carry
    // per-message random bytes; length/count holders carry an encoded
    // number; anything else is application data.
    ByteSet domain;
    if (is_random(id)) {
      domain.add_all();
    } else if (n.encoding == Encoding::AsciiDec) {
      const bool holder =
          wire_.is_length_target(id) || wire_.is_counter_target(id);
      if (holder) {
        domain.add_range('0', '9');
      } else {
        domain.add_range(0x20, 0x7e);  // printable application text
      }
    } else {
      domain.add_all();
    }
    f.first = domain;
    f.all = domain;
    for (const AppliedTransform* t : const_keys_[id]) {
      f.first = map_set(f.first, t->kind, t->key, /*first_byte=*/true);
      f.all = map_set(f.all, t->kind, t->key, /*first_byte=*/false);
    }
  }

  void sequence_facts(const Node& n, Facts& f) {
    bool prefix_open = true;
    bool first_open = true;
    bool all_static = true;
    bool all_const = true;
    std::optional<std::uint64_t> max = 0;
    NodeId culprit = kNoNode;
    for (const NodeId child : n.children) {
      const Facts& c = facts_[child];
      f.content_min += c.min_size;
      if (max && c.max_size) {
        max = sat_add(*max, *c.max_size);
      } else if (max) {
        culprit = c.unbounded_by != kNoNode ? c.unbounded_by : child;
        max = std::nullopt;
      }
      if (first_open) {
        f.first.merge(c.first);
        if (c.min_size > 0) first_open = false;
      }
      f.all.merge(c.all);
      if (prefix_open) {
        append(f.const_prefix, c.const_prefix);
        if (!c.constant) prefix_open = false;
      }
      all_static = all_static && c.static_size;
      all_const = all_const && c.constant;
    }
    f.max_size = max;
    f.unbounded_by = culprit;
    f.static_size = all_static;
    if (all_const) {
      f.constant = true;
      f.const_bytes.clear();
      for (const NodeId child : n.children) {
        append(f.const_bytes, facts_[child].const_bytes);
      }
    }
  }

  /// Region-boundary adjustments shared by every node type: the size the
  /// region itself imposes, the delimiter's bytes, mirroring.
  void wrap_region(NodeId id, const Node& n, Facts& f) {
    // min: mirror min_node_size's region arm exactly.
    f.min_size = f.content_min;
    if (n.boundary == BoundaryKind::Fixed && n.fixed_size > f.min_size) {
      f.min_size = n.fixed_size;
    }
    if (n.boundary == BoundaryKind::Delimited) {
      f.min_size += n.delimiter.size();
    }
    // max: an explicit region bound overrides (and a Length region is also
    // capped by what its holder can express).
    switch (n.boundary) {
      case BoundaryKind::Fixed:
        f.max_size = n.fixed_size;
        f.unbounded_by = kNoNode;
        f.static_size = true;
        break;
      case BoundaryKind::Length: {
        const auto bound = holder_max_value(n.ref);
        if (bound && f.max_size) {
          f.max_size = std::min(*bound, *f.max_size);
        } else if (bound) {
          f.max_size = bound;
          f.unbounded_by = kNoNode;
        } else if (!f.max_size && f.unbounded_by == kNoNode) {
          f.unbounded_by = id;
        }
        f.static_size = false;
        break;
      }
      case BoundaryKind::Delimited:
        if (f.max_size) f.max_size = sat_add(*f.max_size, n.delimiter.size());
        break;
      default:
        break;
    }
    if (n.boundary == BoundaryKind::Delimited && !n.delimiter.empty()) {
      // An empty content region starts with its own delimiter (or, for a
      // stop-marker repetition, an empty repetition starts with the marker).
      if (f.content_min == 0) f.first.add(n.delimiter[0]);
      for (const Byte b : n.delimiter) f.all.add(b);
      if (f.constant) {
        append(f.const_bytes, n.delimiter);
        f.const_prefix = f.const_bytes;
      }
    }
    if (n.mirrored) {
      if (f.constant) {
        f.const_bytes = reversed(f.const_bytes);
        f.const_prefix = f.const_bytes;
        f.first = ByteSet{};
        if (!f.const_bytes.empty()) f.first.add(f.const_bytes[0]);
      } else {
        // The region's last byte becomes its first; we only know the
        // interior domain.
        f.const_prefix.clear();
        f.first = f.all;
      }
    }
    if (f.constant && f.max_size) f.static_size = true;
  }

  // --- stream / datagram safety (PO-W106, PO-N201) -------------------------

  void check_stream_safety() {
    stream_walk(wire_.root(), /*open=*/true);
    report_.is_stream_safe = stream_violations_ == 0;
  }

  /// Mirrors runtime check_stream_safe(), but records every violation as a
  /// located PO-W106 instead of failing on the first.
  void stream_walk(NodeId id, bool open) {
    const Node& n = wire_.node(id);
    bool child_open = false;
    if (open) {
      bool violated = false;
      switch (n.boundary) {
        case BoundaryKind::End:
          if (n.type != NodeType::Sequence || n.mirrored) {
            stream_violation(id,
                             "extends to the end of the input and cannot "
                             "delimit itself in a stream");
            violated = true;
          } else {
            child_open = true;
          }
          break;
        case BoundaryKind::Half:
          stream_violation(id, "a split half cannot delimit itself in a "
                               "stream");
          violated = true;
          break;
        case BoundaryKind::Fixed:
        case BoundaryKind::Length:
          break;
        case BoundaryKind::Delimited:
          child_open = n.type == NodeType::Repetition;
          break;
        case BoundaryKind::Delegated:
        case BoundaryKind::Counter:
          child_open = true;
          break;
      }
      if (!violated && n.mirrored && n.boundary != BoundaryKind::Fixed &&
          n.boundary != BoundaryKind::Length &&
          n.boundary != BoundaryKind::Delimited) {
        stream_violation(id, "a mirrored node has no intrinsic region in a "
                             "stream");
      }
    }
    for (const NodeId child : n.children) stream_walk(child, child_open);
  }

  void stream_violation(NodeId id, const std::string& why) {
    ++stream_violations_;
    emit("PO-W106", "not-stream-safe", Severity::Warning, id,
         "node '" + wire_.node(id).name + "' " + why +
             "; prefix parsing over a byte stream is rejected",
         "bound the region with fixed/length, or serve this protocol in "
         "whole-message (datagram) mode");
  }

  void check_frame_bounds(const Facts& root) {
    if (!root.max_size) {
      const NodeId culprit =
          root.unbounded_by != kNoNode ? root.unbounded_by : wire_.root();
      emit("PO-W103", "unbounded-frame", Severity::Warning, culprit,
           "no static bound on the wire size: '" + wire_.path_of(culprit) +
               "' can grow without limit, so oversized frames only fail at "
               "the reassembly cap (max_frame_size)",
           "bound the variable region with a fixed-width length field, or "
           "cap the repetition with a counter");
    }
    report_.is_datagram_safe =
        root.max_size && *root.max_size <= options_.datagram_mtu;
    if (!report_.is_datagram_safe) {
      const NodeId at =
          root.max_size ? wire_.root()
                        : (root.unbounded_by != kNoNode ? root.unbounded_by
                                                        : wire_.root());
      std::string why =
          root.max_size
              ? "worst-case wire size " + std::to_string(*root.max_size) +
                    " exceeds the datagram MTU (" +
                    std::to_string(options_.datagram_mtu) + ")"
              : "the wire size is statically unbounded";
      emit("PO-N201", "not-datagram-safe", Severity::Note, at,
           std::move(why) + "; one-message-per-datagram transport cannot be "
                            "guaranteed",
           "keep every length holder narrow enough that the worst-case "
           "message fits one datagram");
    }
  }

  // --- per-node checks -----------------------------------------------------

  void check_node(NodeId id) {
    const Node& n = wire_.node(id);
    const Facts& f = facts_[id];

    // PO-E001: a fixed region must be able to hold its mandatory content
    // (the emitter rejects any instance, so no message of this graph
    // serializes at all).
    if (n.boundary == BoundaryKind::Fixed && f.content_min > n.fixed_size) {
      emit("PO-E001", "fixed-region-overflow", Severity::Error, id,
           "mandatory content needs at least " +
               std::to_string(f.content_min) + " bytes but the fixed region "
               "holds " + std::to_string(n.fixed_size),
           "widen the fixed region or shrink the mandatory content");
    }

    // PO-E002: a length-bounded region whose mandatory content exceeds the
    // largest value its holder can encode can never round-trip.
    if (n.boundary == BoundaryKind::Length) {
      const auto bound = holder_max_value(n.ref);
      if (bound && f.content_min > *bound) {
        emit("PO-E002", "length-region-overflow", Severity::Error, id,
             "mandatory content needs at least " +
                 std::to_string(f.content_min) +
                 " bytes but the length holder can express at most " +
                 std::to_string(*bound),
             "widen the length holder or shrink the region's mandatory "
             "content");
      }
    }

    if (n.type == NodeType::Repetition) check_repetition(id, n);
    if (n.type != NodeType::Repetition &&
        n.boundary == BoundaryKind::Delimited) {
      check_scanned_region(id, n, f);
    }

    // PO-W104: counter saturation — a hostile count field skewed to 0xff
    // (or '9's) claims this many elements; each element costs at least one
    // parser iteration and `element_min` wire bytes.
    if (n.type == NodeType::Tabular) {
      const auto count = holder_max_value(n.ref);
      const Facts& elem = facts_[n.children[0]];
      const std::uint64_t per =
          std::max<std::uint64_t>(elem.min_size, 1);
      if (!count) {
        emit("PO-W104", "counter-saturation", Severity::Warning, id,
             "the element count claim is statically unbounded; a hostile "
             "peer controls the parse loop",
             "give the counter a fixed-width holder");
      } else if (const std::uint64_t claim = sat_mul(*count, per);
                 claim > options_.counter_claim_limit) {
        emit("PO-W104", "counter-saturation", Severity::Warning, id,
             "a saturated counter claims " + std::to_string(*count) +
                 " elements (worst case " + std::to_string(claim) +
                 " bytes/iterations, limit " +
                 std::to_string(options_.counter_claim_limit) + ")",
             "narrow the counter field or bound the table inside a "
             "length-delimited region");
      }
    }
  }

  void check_repetition(NodeId id, const Node& n) {
    const NodeId elem_id = n.children[0];
    const Facts& elem = facts_[elem_id];

    // PO-W107: an element that can consume zero bytes turns the repetition
    // into the runtime's "consumed no input" Malformed — reachable by a
    // hostile peer, invisible in happy-path tests.
    if (elem.min_size == 0) {
      emit("PO-W107", "possibly-empty-element", Severity::Warning, elem_id,
           "repetition element '" + wire_.node(elem_id).name +
               "' can occupy zero wire bytes; the parser rejects such an "
               "element as malformed to guarantee progress",
           "give the element at least one mandatory byte (fixed field or "
           "delimiter)");
    }

    if (n.boundary != BoundaryKind::Delimited || n.delimiter.empty()) return;

    // PO-E003: an element whose guaranteed constant prefix *is* the stop
    // marker can never be entered — the parser always sees the marker
    // first, so any message with elements fails to round-trip.
    if (starts_with(elem.const_prefix, n.delimiter)) {
      emit("PO-E003", "stop-marker-shadowed", Severity::Error, id,
           "every element starts with the stop marker (" +
               to_hex(n.delimiter) + "); the repetition always decodes as "
               "empty and elements are unreachable",
           "change the stop marker or the element's leading constant");
      return;
    }

    // PO-W101: the generalized undecided-stop-marker property — if the
    // marker's first byte can also begin an element, a decoder at the
    // repetition boundary cannot decide from one byte which way to go.
    // (The resumable parser handles this soundly but pays suspensions for
    // it, and a truncation right at the overlap is indistinguishable from
    // a malformed element.)
    if (elem.first.contains(n.delimiter[0])) {
      emit("PO-W101", "ambiguous-stop-marker", Severity::Warning, id,
           "stop marker first byte 0x" + to_hex(BytesView(&n.delimiter[0], 1)) +
               " overlaps the element's possible first bytes; decode is "
               "ambiguous at every element boundary",
           "pick a stop marker whose first byte no element can start with, "
           "or bound the repetition by length/count");
    }
  }

  void check_scanned_region(NodeId id, const Node& n, const Facts& f) {
    if (n.delimiter.empty() || f.constant) return;
    // The parser delimits this region by scanning for the FIRST delimiter
    // occurrence; content that can contain the delimiter's first byte may
    // cut the region short. (`f.all` already includes the delimiter's own
    // bytes, so the content domain is re-derived here.)
    ByteSet content;
    if (n.type == NodeType::Terminal) {
      content = terminal_content_domain(id, n);
    } else {
      for (const NodeId child : n.children) content.merge(facts_[child].all);
    }
    if (!content.contains(n.delimiter[0])) return;
    const bool app_text_contract = n.type == NodeType::Terminal &&
                                   n.encoding == Encoding::AsciiDec &&
                                   !n.has_const;
    if (app_text_contract) {
      // PO-N202: a printable-text field whose delimiter is itself
      // printable relies on the application never emitting it — the
      // HTTP-header contract. Worth recording, not a defect.
      emit("PO-N202", "delimited-terminal-collision", Severity::Note, id,
           "text field '" + n.name + "' is delimited by printable bytes (" +
               to_hex(n.delimiter) + ") that its values could contain; "
               "correctness relies on the application escaping them",
           "document the escaping contract, or use a length boundary");
    } else {
      emit("PO-W102", "delimiter-in-scan", Severity::Warning, id,
           "region '" + n.name + "' is delimited by " + to_hex(n.delimiter) +
               " but its content bytes can contain the delimiter's first "
               "byte; the scan can cut the region short",
           "use a length boundary, or a delimiter outside the content's "
           "byte domain");
    }
  }

  /// Value domain of a terminal's own content (no delimiter, no keys) —
  /// used to separate content bytes from region bytes in scan checks.
  ByteSet terminal_content_domain(NodeId id, const Node& n) {
    ByteSet domain;
    if (is_random(id)) {
      domain.add_all();
    } else if (n.has_const && !n.const_value.empty()) {
      for (const Byte b : n.const_value) domain.add(b);
    } else if (n.encoding == Encoding::AsciiDec) {
      const bool holder =
          wire_.is_length_target(id) || wire_.is_counter_target(id);
      if (holder) {
        domain.add_range('0', '9');
      } else {
        domain.add_range(0x20, 0x7e);
      }
    } else {
      domain.add_all();
    }
    for (const AppliedTransform* t : const_keys_[id]) {
      domain = map_set(domain, t->kind, t->key, /*first_byte=*/false);
    }
    return domain;
  }

  // --- whole-graph integrity checks ----------------------------------------

  /// PO-E005: cycles among Length/Counter/Condition references. Validated
  /// graphs cannot contain one (the target must strictly precede the
  /// dependant in parse order), so a cycle means the artifact is corrupt
  /// and the holder fixpoint would diverge.
  void check_reference_cycles() {
    const auto order = wire_.dfs_order();
    std::vector<std::uint8_t> color(wire_.arena_size(), 0);
    for (const NodeId start : order) {
      if (color[start] != 0) continue;
      if (cycle_dfs(start, color)) return;  // one report is enough
    }
  }

  NodeId ref_edge(NodeId id) const {
    const Node& n = wire_.node(id);
    if (n.boundary == BoundaryKind::Length ||
        n.boundary == BoundaryKind::Counter) {
      return n.ref;
    }
    if (n.type == NodeType::Optional &&
        n.condition.kind != Condition::Kind::Always) {
      return n.condition.ref;
    }
    return kNoNode;
  }

  bool cycle_dfs(NodeId id, std::vector<std::uint8_t>& color) {
    color[id] = 1;  // on stack
    const NodeId next = ref_edge(id);
    if (next != kNoNode && next < wire_.arena_size()) {
      if (color[next] == 1) {
        emit("PO-E005", "holder-dependency-cycle", Severity::Error, id,
             "reference cycle: '" + wire_.node(id).name +
                 "' depends on '" + wire_.node(next).name +
                 "' which transitively depends back on it; the holder "
                 "fixpoint cannot converge",
             "this artifact is corrupt — no validated graph contains a "
             "reference cycle; recompile from the specification");
        color[id] = 2;
        return true;
      }
      if (color[next] == 0 && cycle_dfs(next, color)) {
        color[id] = 2;
        return true;
      }
    }
    color[id] = 2;
    return false;
  }

  /// PO-E004: holder replay chains must index the journal in strictly
  /// increasing order — anything else cannot be replayed and the
  /// serializer's holder fix-up would diverge from the parser's inverse.
  void check_holder_chains() {
    for (const HolderInfo& h : holders_.holders) {
      std::size_t prev = 0;
      bool have_prev = false;
      for (const std::size_t idx : h.chain) {
        if (idx >= journal_.size()) {
          emit("PO-E004", "holder-chain-corrupt", Severity::Error, h.top,
               "holder replay chain references journal entry " +
                   std::to_string(idx) + " but the journal has " +
                   std::to_string(journal_.size()) + " entries",
               "this artifact is corrupt; recompile from the specification");
          break;
        }
        if (have_prev && idx <= prev) {
          emit("PO-E004", "holder-chain-corrupt", Severity::Error, h.top,
               "holder replay chain is not strictly increasing (" +
                   std::to_string(prev) + " then " + std::to_string(idx) +
                   "); replaying it would not reproduce serialization order",
               "this artifact is corrupt; recompile from the specification");
          break;
        }
        prev = idx;
        have_prev = true;
      }
    }
  }

  /// PO-E006: per-message random bytes (split halves, pads) under a
  /// delimiter-scanned region could forge or destroy the delimiter — the
  /// engine's placement constraint, re-proved on the artifact.
  void check_random_under_scan() {
    for (const NodeId id : wire_.dfs_order()) {
      if (!is_random(id)) continue;
      for (const NodeId a : wire_.ancestors(id)) {
        if (wire_.node(a).boundary != BoundaryKind::Delimited) continue;
        emit("PO-E006", "random-bytes-under-scan", Severity::Error, id,
             "per-message random bytes of '" + wire_.node(id).name +
                 "' sit inside the delimiter-scanned region '" +
                 wire_.node(a).name + "'; a random draw can collide with "
                 "the delimiter and corrupt the scan",
             "this artifact violates the engine's placement constraint; "
             "recompile from the specification");
        break;
      }
    }
  }

  // --- seed-invariance fingerprint (PO-W105 / PO-N203) ---------------------

  void check_fingerprint() {
    spans_.clear();
    fingerprint_walk(wire_.root(), 0);
    std::size_t total = 0;
    for (const FingerprintSpan& s : spans_) total += s.length;
    if (total == 0) return;
    const FingerprintSpan& head = spans_.front();
    std::string message =
        std::to_string(total) + " wire byte(s) at fixed offsets are "
        "identical in every message (first: '" + wire_.path_of(head.node) +
        "' at offset " + std::to_string(head.offset) + ", " +
        std::to_string(head.length) + " byte(s)); a DPI signature can "
        "anchor on them";
    if (journal_.empty()) {
      emit("PO-N203", "static-fingerprint", Severity::Note, head.node,
           std::move(message),
           "expected for an identity compilation; obfuscate (per_node >= 1) "
           "before serving past DPI");
    } else {
      emit("PO-W105", "seed-invariant-bytes", Severity::Warning, head.node,
           "obfuscation left " + std::move(message),
           "raise the obfuscation depth or enable Split/Pad transformations "
           "so these bytes stop surviving at fixed offsets");
    }
  }

  /// Emits-order scan tracking the wire offset while it stays statically
  /// known; records every constant region found at a known offset. Returns
  /// the offset after the node, or nullopt once tracking is lost.
  std::optional<std::size_t> fingerprint_walk(NodeId id, std::size_t offset) {
    const Node& n = wire_.node(id);
    const Facts& f = facts_[id];
    if (f.constant && !f.const_bytes.empty()) {
      spans_.push_back({id, offset, f.const_bytes.size()});
      return offset + f.const_bytes.size();
    }
    if (n.type == NodeType::Sequence && !n.mirrored) {
      std::size_t off = offset;
      bool lost = false;
      for (const NodeId child : n.children) {
        if (lost) break;
        if (const auto next = fingerprint_walk(child, off)) {
          off = *next;
        } else {
          lost = true;
        }
      }
      if (n.boundary == BoundaryKind::Fixed) {
        // The region occupies exactly fixed_size bytes no matter what
        // happened inside: tracking re-anchors after it.
        return offset + n.fixed_size;
      }
      if (lost) return std::nullopt;
      if (n.boundary == BoundaryKind::Delimited && !n.delimiter.empty()) {
        spans_.push_back({id, off, n.delimiter.size()});
        off += n.delimiter.size();
      }
      return off;
    }
    if (n.boundary == BoundaryKind::Fixed) return offset + n.fixed_size;
    if (f.static_size) return offset + f.min_size;
    return std::nullopt;
  }

  const Graph& wire_;
  const Journal& journal_;
  const HolderTable& holders_;
  Options options_;
  Report report_;
  std::vector<Facts> facts_;
  std::vector<std::uint8_t> random_;
  std::vector<std::vector<const AppliedTransform*>> const_keys_;
  std::vector<FingerprintSpan> spans_;
  std::size_t stream_violations_ = 0;
};

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

std::size_t Report::errors() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

std::size_t Report::warnings() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Warning;
                    }));
}

std::size_t Report::notes() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Note;
                    }));
}

const Diagnostic* Report::find(std::string_view id) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

Report analyze_parts(const Graph& /*original*/, const Graph& wire,
                     const Journal& journal, const HolderTable& holders,
                     const Options& options) {
  return Analyzer(wire, journal, holders, options).run();
}

Report analyze(const ObfuscatedProtocol& protocol, const Options& options) {
  // The holder table is private runtime state; rebuild it the same way the
  // runtime does, from the original graph and the journal.
  const HolderTable holders =
      build_holder_table(protocol.original(), protocol.journal());
  return analyze_parts(protocol.original(), protocol.wire_graph(),
                       protocol.journal(), holders, options);
}

Report analyze_graph(const Graph& g1, const Options& options) {
  const Journal empty;
  const HolderTable holders = build_holder_table(g1, empty);
  return analyze_parts(g1, g1, empty, holders, options);
}

bool datagram_safe(const Graph& wire, std::size_t mtu) {
  Options options;
  options.datagram_mtu = mtu;
  const Journal empty;
  const HolderTable holders;
  return analyze_parts(wire, wire, empty, holders, options).is_datagram_safe;
}

namespace detail {

void cross_check(Report& report, const Graph& wire, std::size_t computed_min,
                 bool computed_stream_ok) {
  const std::size_t runtime_min = min_wire_size(wire);
  if (computed_min != runtime_min) {
    Diagnostic d;
    d.id = "PO-E999";
    d.name = "analysis-mismatch";
    d.severity = Severity::Error;
    d.node = wire.root();
    d.path = wire.root() == kNoNode ? "" : wire.path_of(wire.root());
    d.message = "analyzer min-need (" + std::to_string(computed_min) +
                ") disagrees with min_wire_size() (" +
                std::to_string(runtime_min) +
                "); one of the two is unsound";
    d.hint = "file a framework bug: the static analyzer and the runtime "
             "predicate must agree";
    report.diagnostics.push_back(std::move(d));
  }
  const bool runtime_stream_ok = static_cast<bool>(stream_safe(wire));
  if (computed_stream_ok != runtime_stream_ok) {
    Diagnostic d;
    d.id = "PO-E999";
    d.name = "analysis-mismatch";
    d.severity = Severity::Error;
    d.node = wire.root();
    d.path = wire.root() == kNoNode ? "" : wire.path_of(wire.root());
    d.message = std::string("analyzer stream-safety verdict (") +
                (computed_stream_ok ? "safe" : "unsafe") +
                ") disagrees with stream_safe() (" +
                (runtime_stream_ok ? "safe" : "unsafe") + ")";
    d.hint = "file a framework bug: the static analyzer and the runtime "
             "predicate must agree";
    report.diagnostics.push_back(std::move(d));
  }
}

}  // namespace detail

}  // namespace protoobf::analysis
