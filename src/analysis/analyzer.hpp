// Static analyzer over compiled wire graphs (`protoobf lint`).
//
// The framework's premise is that the wire syntax is *derived from a
// specification*, so the safety properties the fuzzer probes at runtime —
// unambiguous decode, bounded frames, sound truncation hints, holder chains
// that converge, no seed-invariant bytes for DPI to fingerprint — can be
// proved (or refuted) once, statically, from the graph G(n+1) and the
// journal. This module walks the compiled artifact bottom-up, computes
// per-region wire facts (min/max size, first-byte and interior byte
// domains, guaranteed constant prefixes) and emits structured diagnostics.
//
// It subsumes the scattered ad-hoc predicates: `stream_safe()` and the
// ROADMAP's `datagram_safe()` become named, located diagnostics, and the
// analyzer's own min-need computation is cross-checked against
// `min_wire_size()` — a disagreement is itself a diagnostic (PO-E999), the
// static twin of the fuzzer's interpreter==native oracle.
//
// Severity contract: an Error means the artifact is wrong (some message
// cannot round-trip, or the runtime metadata is corrupt) and serving it is
// refused; a Warning means a hostile peer or unlucky payload can do
// something surprising (ambiguous decode, unbounded claim); a Note records
// a property worth knowing (DPI fingerprint of an identity graph, an
// app-level escaping contract). `Report::clean()` is "no errors".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/protocol.hpp"
#include "transform/journal.hpp"
#include "transform/lineage.hpp"

namespace protoobf::analysis {

enum class Severity : std::uint8_t { Note, Warning, Error };

const char* to_string(Severity severity);

/// One finding. `id` is the stable machine name ("PO-W101"), `name` the
/// human slug ("ambiguous-stop-marker"); `node`/`path` locate the finding
/// in the *wire* graph G(n+1).
struct Diagnostic {
  std::string id;
  std::string name;
  Severity severity = Severity::Note;
  NodeId node = kNoNode;
  std::string path;
  std::string message;
  std::string hint;
};

struct Options {
  /// PO-N201: a datagram-safe wire format fits one UDP payload (IPv4 max).
  std::size_t datagram_mtu = 65507;
  /// PO-W104: a counter whose worst-case claim exceeds this many bytes is
  /// flagged as a saturation-DoS surface (the fuzzer's 0xff skew arm).
  std::size_t counter_claim_limit = std::size_t{1} << 20;
};

struct Report {
  std::string protocol;
  std::vector<Diagnostic> diagnostics;

  /// Static lower bound on any message's wire size (== min_wire_size()).
  std::size_t min_need = 0;
  /// Static upper bound; nullopt = unbounded (only the reassembly cap
  /// bounds a frame — see PO-W103).
  std::optional<std::uint64_t> max_wire;
  bool is_stream_safe = false;    // mirrors runtime stream_safe()
  bool is_datagram_safe = false;  // max_wire bounded and <= datagram_mtu

  std::size_t errors() const;
  std::size_t warnings() const;
  std::size_t notes() const;

  /// No error-severity findings. Warnings and notes do not spoil it.
  bool clean() const { return errors() == 0; }

  /// First diagnostic with the given id ("PO-W101"), nullptr if none.
  const Diagnostic* find(std::string_view id) const;
  bool has(std::string_view id) const { return find(id) != nullptr; }
};

/// Analyzes a compiled protocol (wire graph + journal; the holder table is
/// rebuilt from them, exactly as the runtime does).
Report analyze(const ObfuscatedProtocol& protocol, const Options& options = {});

/// Analyzes a bare validated graph as its own wire syntax (the identity
/// compilation: empty journal, native holders only).
Report analyze_graph(const Graph& g1, const Options& options = {});

/// Fully explicit variant: lets tests and tools hand the analyzer a
/// *corrupt* artifact (a journal or holder table that no engine run would
/// produce) to exercise the artifact-integrity diagnostics.
Report analyze_parts(const Graph& original, const Graph& wire,
                     const Journal& journal, const HolderTable& holders,
                     const Options& options = {});

/// The ROADMAP's cousin of stream_safe(): true when every message of
/// `wire` is statically guaranteed to fit one datagram of `mtu` bytes, so
/// a one-message-per-packet transport needs no reassembly state.
bool datagram_safe(const Graph& wire, std::size_t mtu = 65507);

/// One-line verdict for log headers: "clean (0 errors, 2 warnings)" or
/// "2 errors (PO-E001 ...)".
std::string summary(const Report& report);

/// Human-readable rendering, one block per diagnostic.
std::string render_text(const Report& report);

/// Machine-readable rendering (a single JSON object).
std::string render_json(const Report& report);

namespace detail {

/// The PO-E999 self-check: compares the analyzer's computed min-need and
/// stream verdict against the runtime predicates and appends a diagnostic
/// on any disagreement. Split out so tests can prove the check fires.
void cross_check(Report& report, const Graph& wire, std::size_t computed_min,
                 bool computed_stream_ok);

}  // namespace detail

}  // namespace protoobf::analysis
