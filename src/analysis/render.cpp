// Report rendering: the human block format for `protoobf lint` and the
// single-object JSON for tooling. Kept apart from the analyzer core so the
// diagnostics stay a pure data model.
#include "analysis/analyzer.hpp"

#include <string>

namespace protoobf::analysis {

namespace {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string count_phrase(std::size_t n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

std::string summary(const Report& report) {
  const std::size_t errors = report.errors();
  const std::size_t warnings = report.warnings();
  const std::size_t notes = report.notes();
  std::string out;
  if (errors == 0) {
    out = "clean (" + count_phrase(warnings, "warning") + ", " +
          count_phrase(notes, "note") + ")";
  } else {
    out = count_phrase(errors, "error");
    std::string ids;
    for (const Diagnostic& d : report.diagnostics) {
      if (d.severity != Severity::Error) continue;
      if (!ids.empty()) ids += ", ";
      ids += d.id;
    }
    out += " (" + ids + ")";
  }
  return out;
}

std::string render_text(const Report& report) {
  std::string out = "protocol '" + report.protocol + "': " + summary(report);
  out += '\n';
  for (const Diagnostic& d : report.diagnostics) {
    out += "  ";
    out += to_string(d.severity);
    out += " ";
    out += d.id;
    out += " ";
    out += d.name;
    if (!d.path.empty()) {
      out += " at ";
      out += d.path;
    }
    out += '\n';
    out += "      ";
    out += d.message;
    out += '\n';
    if (!d.hint.empty()) {
      out += "      hint: ";
      out += d.hint;
      out += '\n';
    }
  }
  out += "  min wire size: " + std::to_string(report.min_need) + "; max: ";
  out += report.max_wire ? std::to_string(*report.max_wire) : "unbounded";
  out += std::string("; stream-safe: ") +
         (report.is_stream_safe ? "yes" : "no");
  out += std::string("; datagram-safe: ") +
         (report.is_datagram_safe ? "yes" : "no");
  out += '\n';
  return out;
}

std::string render_json(const Report& report) {
  std::string out = "{\"protocol\":";
  append_json_string(out, report.protocol);
  out += ",\"clean\":";
  out += report.clean() ? "true" : "false";
  out += ",\"errors\":" + std::to_string(report.errors());
  out += ",\"warnings\":" + std::to_string(report.warnings());
  out += ",\"notes\":" + std::to_string(report.notes());
  out += ",\"min_wire\":" + std::to_string(report.min_need);
  out += ",\"max_wire\":";
  out += report.max_wire ? std::to_string(*report.max_wire) : "null";
  out += ",\"stream_safe\":";
  out += report.is_stream_safe ? "true" : "false";
  out += ",\"datagram_safe\":";
  out += report.is_datagram_safe ? "true" : "false";
  out += ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    append_json_string(out, d.id);
    out += ",\"name\":";
    append_json_string(out, d.name);
    out += ",\"severity\":";
    append_json_string(out, to_string(d.severity));
    out += ",\"node\":";
    out += d.node == kNoNode ? std::string("null") : std::to_string(d.node);
    out += ",\"path\":";
    append_json_string(out, d.path);
    out += ",\"message\":";
    append_json_string(out, d.message);
    out += ",\"hint\":";
    append_json_string(out, d.hint);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace protoobf::analysis
