#include "ast/ast.hpp"

#include <algorithm>
#include <sstream>

namespace protoobf {
namespace ast {

InstPtr terminal(NodeId schema, Bytes value) {
  auto inst = std::make_unique<Inst>(schema);
  inst->value = std::move(value);
  return inst;
}

InstPtr deferred(NodeId schema) { return std::make_unique<Inst>(schema); }

InstPtr composite(NodeId schema, std::vector<InstPtr> children) {
  auto inst = std::make_unique<Inst>(schema);
  inst->children = std::move(children);
  return inst;
}

InstPtr absent(NodeId schema) {
  auto inst = std::make_unique<Inst>(schema);
  inst->present = false;
  return inst;
}

InstPtr clone(const Inst& inst) {
  auto out = std::make_unique<Inst>(inst.schema);
  out->value = inst.value;
  out->present = inst.present;
  out->children.reserve(inst.children.size());
  for (const auto& child : inst.children) {
    out->children.push_back(clone(*child));
  }
  return out;
}

bool equal(const Inst& a, const Inst& b) {
  if (a.schema != b.schema || a.present != b.present) return false;
  if (!a.present) return true;
  if (a.value != b.value) return false;
  if (a.children.size() != b.children.size()) return false;
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (!equal(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

std::size_t count(const Inst& inst) {
  std::size_t n = 1;
  for (const auto& child : inst.children) n += count(*child);
  return n;
}

Inst* find_schema(Inst& root, NodeId schema) {
  if (root.schema == schema) return &root;
  for (auto& child : root.children) {
    if (Inst* found = find_schema(*child, schema)) return found;
  }
  return nullptr;
}

const Inst* find_schema(const Inst& root, NodeId schema) {
  return find_schema(const_cast<Inst&>(root), schema);
}

namespace {
void collect_schema(Inst& root, NodeId schema, std::vector<Inst*>& out) {
  if (root.schema == schema) out.push_back(&root);
  for (auto& child : root.children) collect_schema(*child, schema, out);
}
}  // namespace

std::vector<Inst*> find_all_schema(Inst& root, NodeId schema) {
  std::vector<Inst*> out;
  collect_schema(root, schema, out);
  return out;
}

void find_all_schema(Inst& root, NodeId schema, std::vector<Inst*>& out) {
  out.clear();
  collect_schema(root, schema, out);
}

namespace {

struct PathSegment {
  std::string name;
  long index = -1;  // -1: no [k]
};

std::vector<PathSegment> split_path(std::string_view path) {
  std::vector<PathSegment> segments;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t dot = path.find('.', start);
    if (dot == std::string_view::npos) dot = path.size();
    std::string_view part = path.substr(start, dot - start);
    PathSegment seg;
    const std::size_t bracket = part.find('[');
    if (bracket != std::string_view::npos && part.back() == ']') {
      seg.name = std::string(part.substr(0, bracket));
      seg.index = std::strtol(
          std::string(part.substr(bracket + 1, part.size() - bracket - 2))
              .c_str(),
          nullptr, 10);
    } else {
      seg.name = std::string(part);
    }
    segments.push_back(std::move(seg));
    if (dot == path.size()) break;
    start = dot + 1;
  }
  return segments;
}

}  // namespace

Inst* find_path(const Graph& graph, Inst& root, std::string_view path) {
  const auto segments = split_path(path);
  if (segments.empty()) return nullptr;

  Inst* cursor = &root;
  std::size_t i = 0;
  // The leading segment may name the root itself.
  if (graph.node(cursor->schema).name == segments[0].name) {
    if (segments[0].index >= 0) return nullptr;
    i = 1;
  }
  for (; i < segments.size(); ++i) {
    const PathSegment& seg = segments[i];
    Inst* next = nullptr;
    const Node& schema = graph.node(cursor->schema);
    // After indexing into a repetition ("items[2].item.x"), the next segment
    // may redundantly name the element itself; stay in place.
    if (seg.index < 0 && schema.name == seg.name &&
        schema.type != NodeType::Repetition &&
        schema.type != NodeType::Tabular) {
      bool child_would_match = false;
      for (const auto& child : cursor->children) {
        if (graph.node(child->schema).name == seg.name) {
          child_would_match = true;
          break;
        }
      }
      if (!child_would_match) continue;
    }
    if (schema.type == NodeType::Repetition ||
        schema.type == NodeType::Tabular) {
      // Children are elements; the segment addresses the element schema.
      if (seg.index < 0 ||
          static_cast<std::size_t>(seg.index) >= cursor->children.size()) {
        return nullptr;
      }
      Inst* element = cursor->children[static_cast<std::size_t>(seg.index)].get();
      if (graph.node(element->schema).name != seg.name) return nullptr;
      cursor = element;
      continue;
    }
    for (auto& child : cursor->children) {
      if (graph.node(child->schema).name == seg.name) {
        next = child.get();
        break;
      }
    }
    if (next == nullptr) return nullptr;
    if (seg.index >= 0) {
      // Indexing a repetition/tabular child directly: headers[2].
      if (static_cast<std::size_t>(seg.index) >= next->children.size()) {
        return nullptr;
      }
      next = next->children[static_cast<std::size_t>(seg.index)].get();
    }
    cursor = next;
  }
  return cursor;
}

const Inst* find_path(const Graph& graph, const Inst& root,
                      std::string_view path) {
  return find_path(graph, const_cast<Inst&>(root), path);
}

namespace {

Status check_node(const Graph& graph, const Inst& inst) {
  const Node& schema = graph.node(inst.schema);
  const auto fail = [&](const std::string& what) {
    return Unexpected("instance of '" + graph.path_of(inst.schema) +
                      "': " + what);
  };

  switch (schema.type) {
    case NodeType::Terminal:
      if (!inst.children.empty()) return fail("terminal with children");
      if (schema.boundary == BoundaryKind::Fixed && !inst.value.empty() &&
          inst.value.size() != schema.fixed_size) {
        return fail("value size " + std::to_string(inst.value.size()) +
                    " != fixed size " + std::to_string(schema.fixed_size));
      }
      return Status::success();
    case NodeType::Sequence: {
      if (inst.children.size() != schema.children.size()) {
        return fail("sequence child count mismatch");
      }
      for (std::size_t i = 0; i < inst.children.size(); ++i) {
        if (inst.children[i]->schema != schema.children[i]) {
          return fail("sequence child schema mismatch at index " +
                      std::to_string(i));
        }
        if (Status s = check_node(graph, *inst.children[i]); !s) return s;
      }
      return Status::success();
    }
    case NodeType::Optional: {
      if (!inst.present) return Status::success();
      if (inst.children.size() != 1 ||
          inst.children[0]->schema != schema.children[0]) {
        return fail("present optional must hold exactly its sub-node");
      }
      return check_node(graph, *inst.children[0]);
    }
    case NodeType::Repetition:
    case NodeType::Tabular: {
      for (const auto& element : inst.children) {
        if (element->schema != schema.children[0]) {
          return fail("element schema mismatch");
        }
        if (Status s = check_node(graph, *element); !s) return s;
      }
      return Status::success();
    }
  }
  return Status::success();
}

void dump_node(const Graph& graph, const Inst& inst, int depth,
               std::ostringstream& out) {
  const Node& schema = graph.node(inst.schema);
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << schema.name;
  if (schema.type == NodeType::Terminal) {
    out << " = " << to_hex(inst.value);
    // Show printable values as text too.
    const bool printable =
        !inst.value.empty() &&
        std::all_of(inst.value.begin(), inst.value.end(), [](Byte b) {
          return b >= 0x20 && b < 0x7f;
        });
    if (printable) out << " (\"" << to_text(inst.value) << "\")";
  }
  if (!inst.present) out << " [absent]";
  out << "\n";
  if (inst.present) {
    for (const auto& child : inst.children) {
      dump_node(graph, *child, depth + 1, out);
    }
  }
}

}  // namespace

Status check(const Graph& graph, const Inst& root) {
  if (root.schema != graph.root()) {
    return Unexpected("instance root does not match graph root");
  }
  return check_node(graph, root);
}

std::string dump(const Graph& graph, const Inst& root) {
  std::ostringstream out;
  dump_node(graph, root, 0, out);
  return out.str();
}

}  // namespace ast
}  // namespace protoobf
