// Abstract syntax tree of one concrete message (paper §IV, §V-A).
//
// An AST is an instantiation of the message format graph: the overall
// message is the concatenation of its leaf values in ordered depth-first
// search. Instances mirror graph nodes 1:1 except under Repetition/Tabular
// nodes, where one instance child exists per repeated element, and under
// Optional nodes, whose instance carries a presence flag.
//
// Values of derived terminals (length holders referenced by a Length
// boundary, count holders referenced by a Counter boundary, and const
// fields) may be left empty by the application; the serializer computes
// them (runtime/derive) so that user code never maintains sizes by hand.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "util/result.hpp"

namespace protoobf {

struct Inst;
class InstPool;

/// Routes node destruction by provenance: pool nodes return to their
/// freelist (ast/pool.hpp), heap nodes are deleted. The converting
/// constructor keeps `std::make_unique<Inst>` call sites working.
struct InstDeleter {
  InstDeleter() = default;
  InstDeleter(std::default_delete<Inst>) {}
  void operator()(Inst* inst) const noexcept;
};
using InstPtr = std::unique_ptr<Inst, InstDeleter>;

struct Inst {
  NodeId schema = kNoNode;
  Bytes value;                    // Terminal payload
  std::vector<InstPtr> children;  // composite payload
  bool present = true;            // Optional presence
  InstPool* pool = nullptr;       // provenance; fixed at creation

  Inst() = default;
  explicit Inst(NodeId s) : schema(s) {}

  // Assignment moves the payload, never the provenance: a node stays owned
  // by whatever allocated it even when its contents are replaced wholesale
  // (the holder-rebuild path in runtime/derive does exactly that). Buffers
  // are swapped, not moved: the moved-from node usually returns to a pool
  // right after, and swapping hands it the destination's old capacity
  // instead of freeing it — so replacement cycles recycle instead of churn.
  Inst(const Inst&) = delete;
  Inst(Inst&&) = delete;
  Inst& operator=(const Inst&) = delete;
  Inst& operator=(Inst&& other) noexcept {
    schema = other.schema;
    value.swap(other.value);
    children.swap(other.children);
    present = other.present;
    return *this;
  }
};

namespace ast {

/// Leaf instance with an explicit value.
InstPtr terminal(NodeId schema, Bytes value);

/// Leaf instance whose value is filled later (derived/const fields).
InstPtr deferred(NodeId schema);

/// Composite instance taking ownership of its children.
InstPtr composite(NodeId schema, std::vector<InstPtr> children);

/// Absent Optional instance.
InstPtr absent(NodeId schema);

InstPtr clone(const Inst& inst);

/// Deep structural and value equality. Absent optionals compare equal
/// regardless of any stale children they carry.
bool equal(const Inst& a, const Inst& b);

/// Number of instances in the tree.
std::size_t count(const Inst& inst);

/// First instance (pre-order) whose schema id matches, or nullptr.
Inst* find_schema(Inst& root, NodeId schema);
const Inst* find_schema(const Inst& root, NodeId schema);

/// All instances whose schema id matches, in pre-order.
std::vector<Inst*> find_all_schema(Inst& root, NodeId schema);

/// Same, refilling `out` (cleared first) so per-message callers reuse its
/// capacity.
void find_all_schema(Inst& root, NodeId schema, std::vector<Inst*>& out);

/// Resolves a dotted path with optional element indices against the graph
/// and the instance tree, e.g. "request.headers[2].header.name". Path
/// segments are node names; "[k]" selects the k-th element under a
/// Repetition/Tabular. Returns nullptr when the path does not resolve.
Inst* find_path(const Graph& graph, Inst& root, std::string_view path);
const Inst* find_path(const Graph& graph, const Inst& root,
                      std::string_view path);

/// Checks instance/schema alignment (child counts per node type, terminal
/// leaves, fixed sizes of non-empty terminal values).
Status check(const Graph& graph, const Inst& root);

/// Debug rendering: one line per instance, indented, values in hex.
std::string dump(const Graph& graph, const Inst& root);

}  // namespace ast
}  // namespace protoobf
