#include "ast/pool.hpp"

namespace protoobf {

namespace {

/// Marks nodes whose pool died before them. They live in leaked slabs, so
/// the only safe disposal is none at all (deleting a slab-interior pointer
/// or touching the dead freelist would both be undefined behaviour).
InstPool* detached_sentinel() {
  static unsigned char storage;
  return reinterpret_cast<InstPool*>(&storage);
}

}  // namespace

void InstDeleter::operator()(Inst* inst) const noexcept {
  if (inst == nullptr) return;
  if (inst->pool == nullptr) {
    delete inst;
  } else if (inst->pool != detached_sentinel()) {
    inst->pool->release(inst);
  }
}

InstPool::~InstPool() {
  if (stats_.live == 0) return;
  // Trees outlived their pool: detach every node so the deleter no-ops
  // instead of touching a dead freelist, and leak the slabs the survivors
  // live in. A leak is diagnosable; a use-after-free is not.
  for (auto& slab : slabs_) {
    for (std::size_t i = 0; i < kSlabNodes; ++i) {
      slab[i].pool = detached_sentinel();
    }
    slab.release();
  }
}

void InstPool::grow() {
  auto slab = std::make_unique<Inst[]>(kSlabNodes);
  free_.reserve(free_.size() + kSlabNodes);
  for (std::size_t i = kSlabNodes; i-- > 0;) {
    slab[i].pool = this;
    free_.push_back(&slab[i]);
  }
  slabs_.push_back(std::move(slab));
  ++stats_.slabs;
}

InstPtr InstPool::make(NodeId schema) {
  if (free_.empty()) {
    grow();
    ++stats_.misses;
  } else {
    ++stats_.hits;
  }
  Inst* node = free_.back();
  free_.pop_back();
  node->schema = schema;
  ++stats_.live;
  return InstPtr(node);
}

void InstPool::release(Inst* node) {
  node->children.clear();  // children return through their own deleters
  node->value.clear();     // capacity retained for the next terminal
  node->present = true;
  node->schema = kNoNode;
  free_.push_back(node);
  --stats_.live;
}

void InstPool::shrink() {
  if (stats_.live != 0) return;
  free_.clear();
  slabs_.clear();
  stats_.slabs = 0;
}

namespace ast {

InstPtr make(InstPool* pool, NodeId schema) {
  if (pool != nullptr) return pool->make(schema);
  return InstPtr(new Inst(schema));
}

InstPtr terminal(InstPool* pool, NodeId schema, BytesView value) {
  InstPtr inst = make(pool, schema);
  inst->value.assign(value.begin(), value.end());
  return inst;
}

InstPtr terminal(InstPool* pool, NodeId schema, Bytes&& value) {
  InstPtr inst = make(pool, schema);
  inst->value = std::move(value);
  return inst;
}

InstPtr absent(InstPool* pool, NodeId schema) {
  InstPtr inst = make(pool, schema);
  inst->present = false;
  return inst;
}

InstPtr copy(InstPool* pool, const Inst& inst) {
  InstPtr out = make(pool, inst.schema);
  out->value.assign(inst.value.begin(), inst.value.end());
  out->present = inst.present;
  out->children.reserve(inst.children.size());
  for (const auto& child : inst.children) {
    out->children.push_back(copy(pool, *child));
  }
  return out;
}

}  // namespace ast
}  // namespace protoobf
