// Pooled AST node allocator (the zero-allocation message hot path).
//
// Every message that crosses the runtime materializes an Inst tree — one
// node per graph instance, one Bytes per terminal. At traffic scale those
// per-node heap round-trips dominate parse/serialize cost, so sessions
// recycle whole trees through an InstPool: a slab-backed freelist whose
// nodes keep their `value` and `children` capacity between checkouts.
// Re-parsing a message of a similar shape therefore performs no heap
// allocation at all in steady state — node storage comes from the
// freelist, terminal payloads land in recycled Bytes capacity, and child
// vectors reuse their previous element storage.
//
// Ownership plumbing: InstPtr's deleter (ast.hpp) routes destruction by
// the node's back-pointer — pool nodes return to their freelist, plain
// nodes are deleted. Pooled and heap nodes mix freely in one tree, so
// every existing InstPtr call site keeps working and pooling is opt-in
// per allocation site.
//
// Lifetime contract: the pool must outlive the trees drawn from it (the
// session arena owns the pool; trees returned by Session::parse follow the
// arena's lifetime). If a pool is destroyed while nodes are still live,
// it detaches them and leaks its slabs instead of freeing memory under
// the survivors' feet — a diagnosable leak, never a use-after-free.
//
// Not thread-safe: one pool per thread of control, like the arena that
// owns it.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ast/ast.hpp"

namespace protoobf {

class InstPool {
 public:
  struct Stats {
    std::size_t misses = 0;  // nodes served by growing a slab (heap work)
    std::size_t hits = 0;    // nodes served from the freelist (no heap work)
    std::size_t live = 0;    // nodes currently checked out
    std::size_t slabs = 0;   // slab count (capacity = slabs * kSlabNodes)
  };

  static constexpr std::size_t kSlabNodes = 64;

  InstPool() = default;
  InstPool(const InstPool&) = delete;
  InstPool& operator=(const InstPool&) = delete;
  ~InstPool();

  /// A blank node (schema set, value/children empty but capacity-bearing).
  InstPtr make(NodeId schema);

  /// Returns a node to the freelist. Children are released first (through
  /// their own deleters), the value keeps its capacity for the next
  /// terminal checked out. Called by InstPtr's deleter; not for direct use.
  void release(Inst* node);

  const Stats& stats() const { return stats_; }

  /// Drops all idle capacity. Only complete when no nodes are live; live
  /// nodes keep their slabs pinned until they return.
  void shrink();

 private:
  void grow();

  std::vector<std::unique_ptr<Inst[]>> slabs_;
  std::vector<Inst*> free_;
  Stats stats_;
};

namespace ast {

/// Pool-aware factories: draw from `pool` when given, from the heap when
/// null. The BytesView/copying variants assign into the recycled buffer so
/// a freelist hit copies payload bytes without allocating.
InstPtr make(InstPool* pool, NodeId schema);
InstPtr terminal(InstPool* pool, NodeId schema, BytesView value);
InstPtr terminal(InstPool* pool, NodeId schema, Bytes&& value);
InstPtr absent(InstPool* pool, NodeId schema);

/// Deep copy with every node drawn from `pool` (heap when null) and every
/// terminal payload copied into recycled capacity. This is the
/// serialize-side workspace copy that replaced ast::clone on the hot path.
InstPtr copy(InstPool* pool, const Inst& inst);

}  // namespace ast
}  // namespace protoobf
