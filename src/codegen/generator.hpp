// C++ source generator (paper §VI).
//
// The framework's deliverable in the paper is *source code*: "the output of
// the framework is the source code for the message parser and the
// corresponding message serializer", generated in C with Lex/Yacc up front.
// This generator emits the equivalent self-contained C++ translation unit
// for an obfuscated protocol:
//
//   * one struct per graph node (the internal representation the paper
//     counts as "Nb. structs");
//   * accessor functions (setters/getters) for every *original* terminal —
//     the stable interface of §VI, independent of chosen transformations,
//     with aggregation transformations inlined on the fly;
//   * one parse_/serialize_ function pair per node of the final graph, with
//     ordering transformations woven into the traversal;
//   * per-τi helper functions implementing the value transformations.
//
// The call graph of the parse side is recorded during emission (replacing
// the paper's `cflow` pass) and the complexity metrics of §VII-B are
// computed from the emitted text. The generated unit compiles standalone
// (tests/codegen_test.cpp syntax-checks it with the host compiler); the
// behavioral reference implementation remains src/runtime.
#pragma once

#include <string>

#include "codegen/metrics.hpp"
#include "runtime/protocol.hpp"

namespace protoobf {

struct GeneratedCode {
  std::string source;
  CodeMetrics metrics;
};

/// Emits the serializer/parser/accessor library for `protocol`.
GeneratedCode generate_cpp(const ObfuscatedProtocol& protocol);

}  // namespace protoobf
