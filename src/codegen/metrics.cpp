#include "codegen/metrics.hpp"

#include <algorithm>
#include <functional>

namespace protoobf {

std::size_t CallGraph::index_of(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const std::size_t id = adjacency_.size();
  ids_.emplace(name, id);
  adjacency_.emplace_back();
  names_.push_back(name);
  return id;
}

void CallGraph::add_function(const std::string& name) { index_of(name); }

void CallGraph::add_call(const std::string& caller, const std::string& callee) {
  const std::size_t from = index_of(caller);
  const std::size_t to = index_of(callee);
  auto& edges = adjacency_[from];
  if (std::find(edges.begin(), edges.end(), to) == edges.end()) {
    edges.push_back(to);
  }
}

std::size_t CallGraph::reachable_size(const std::string& entry) const {
  const auto it = ids_.find(entry);
  if (it == ids_.end()) return 0;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<std::size_t> stack{it->second};
  seen[it->second] = true;
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::size_t node = stack.back();
    stack.pop_back();
    ++count;
    for (std::size_t next : adjacency_[node]) {
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return count;
}

std::size_t CallGraph::depth(const std::string& entry) const {
  const auto it = ids_.find(entry);
  if (it == ids_.end()) return 0;
  // The generated call graph is acyclic (functions mirror the node tree), so
  // a memoized longest-path DFS terminates. A visiting flag guards against
  // accidental cycles.
  std::vector<std::size_t> memo(adjacency_.size(), 0);
  std::vector<int> state(adjacency_.size(), 0);  // 0=unseen 1=visiting 2=done
  std::function<std::size_t(std::size_t)> longest =
      [&](std::size_t node) -> std::size_t {
    if (state[node] == 2) return memo[node];
    if (state[node] == 1) return 0;  // cycle guard
    state[node] = 1;
    std::size_t best = 0;
    for (std::size_t next : adjacency_[node]) {
      best = std::max(best, longest(next));
    }
    state[node] = 2;
    memo[node] = best + 1;
    return memo[node];
  };
  return longest(it->second);
}

}  // namespace protoobf
