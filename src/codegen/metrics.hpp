// Code complexity metrics (paper §VII-B).
//
// The paper measures the potency of the obfuscation on the generated
// library: number of code lines, number of internal structures, and the
// size and depth of the parsing call graph extracted with `cflow`. Our code
// generator records the call graph while emitting functions, so the same
// metrics come out of CallGraph below — size is the number of functions
// reachable from the parse entry point, depth the longest call chain.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace protoobf {

class CallGraph {
 public:
  /// Registers a function (idempotent).
  void add_function(const std::string& name);

  /// Registers caller -> callee (both auto-registered).
  void add_call(const std::string& caller, const std::string& callee);

  /// Number of functions reachable from `entry` (inclusive).
  std::size_t reachable_size(const std::string& entry) const;

  /// Longest call chain starting at `entry` (in functions; entry alone = 1).
  std::size_t depth(const std::string& entry) const;

  std::size_t function_count() const { return adjacency_.size(); }

 private:
  std::size_t index_of(const std::string& name);
  std::unordered_map<std::string, std::size_t> ids_;
  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<std::string> names_;
};

struct CodeMetrics {
  std::size_t lines = 0;
  std::size_t structs = 0;
  std::size_t functions = 0;
  std::size_t callgraph_size = 0;   // reachable from parse entry
  std::size_t callgraph_depth = 0;  // longest parse call chain
};

}  // namespace protoobf
