// Native ABI section emitter. See native_unit.hpp for the contract.
//
// The emitted section has three parts:
//   1. a fixed prologue (includes + record types),
//   2. generated constexpr tables describing this protocol (wire-graph
//      arena including detached nodes — journal entries and holder origins
//      reference them — plus journal, holder lineage and shared byte pool),
//   3. a fixed engine: a transliteration of the interpreter's wire-syntax
//      layer (runtime/parse.cpp, runtime/derive.cpp's fix_holders,
//      runtime/emit.cpp, transform/exec.cpp) over those tables.
//
// Randomness, traversal order and failure conditions follow the
// interpreter line by line; where the interpreter would hit an impossible
// state (validated graphs rule it out), the engine fails malformed instead
// of invoking undefined behaviour.

#include "codegen/native_unit.hpp"

#include <sstream>
#include <string>

#include "transform/lineage.hpp"

namespace protoobf {

namespace {

// ------------------------------------------------------------ fingerprint --

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void mix(BytesView data) {
    mix(static_cast<std::uint64_t>(data.size()));
    for (const Byte b : data) byte(b);
  }
  void mix(std::string_view text) {
    mix(static_cast<std::uint64_t>(text.size()));
    for (const char c : text) byte(static_cast<std::uint8_t>(c));
  }
  std::uint64_t value() const { return hash_; }

 private:
  void byte(std::uint8_t b) {
    hash_ ^= b;
    hash_ *= 0x100000001b3ull;
  }
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

// ---------------------------------------------------------- table emitter --

/// Shared byte pool: delimiters, const keys, condition values and every
/// other blob the engine needs land here once; records carry (off, len).
class BytePool {
 public:
  std::pair<std::uint32_t, std::uint32_t> add(BytesView data) {
    const auto off = static_cast<std::uint32_t>(bytes_.size());
    bytes_.insert(bytes_.end(), data.begin(), data.end());
    return {off, static_cast<std::uint32_t>(data.size())};
  }
  const Bytes& bytes() const { return bytes_; }

 private:
  Bytes bytes_;
};

std::string u32_of(std::uint64_t v) { return std::to_string(v); }

std::string id_of(NodeId id) {
  return id == kNoNode ? std::string("kNoId") : std::to_string(id);
}

void emit_u8_array(std::ostringstream& out, const char* name,
                   const Bytes& data) {
  out << "constexpr u8 " << name << "[] = {";
  if (data.empty()) {
    out << "0";  // zero-size arrays are ill-formed; counts gate all access
  } else {
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (i % 16 == 0) out << "\n    ";
      out << static_cast<unsigned>(data[i]) << ",";
    }
    out << "\n";
  }
  out << "};\n";
}

void emit_u32_array(std::ostringstream& out, const char* name,
                    const std::vector<std::uint32_t>& data) {
  out << "constexpr u32 " << name << "[] = {";
  if (data.empty()) {
    out << "0";
  } else {
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (i % 12 == 0) out << "\n    ";
      out << data[i] << ",";
    }
    out << "\n";
  }
  out << "};\n";
}

std::string escaped(std::string_view text) {
  std::string out;
  for (const char c : text) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// The prologue: includes and the record types the tables instantiate.
constexpr const char kSectionPrologue[] = R"npro(
// ===================== native serving ABI (po_native) =====================
// Appended by protoobf's generator: constexpr protocol tables plus a
// self-contained wire-syntax engine, exported through the extern "C"
// po_native_* entry points for dlopen-based serving (src/native).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace po_native {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using buf = std::vector<u8>;

constexpr u32 kNoId = 0xFFFFFFFFu;

// Numeric mirrors of the host enums. The generator emits table values via
// static_cast of the host enumerators, so these constants only need to
// match the host declaration order (graph/node.hpp, transform/journal.hpp).
enum : u32 { T_TERM = 0, T_SEQ = 1, T_OPT = 2, T_REP = 3, T_TAB = 4 };
enum : u32 {
  B_FIXED = 0, B_DELIM = 1, B_LEN = 2, B_COUNTER = 3,
  B_END = 4, B_DELEG = 5, B_HALF = 6
};
enum : u32 { E_BIN = 0, E_ASCII = 1 };
enum : u32 { C_ALWAYS = 0, C_EQ = 1, C_NE = 2, C_ONEOF = 3, C_NONZERO = 4 };
enum : u32 {
  TK_SPLIT_ADD = 0, TK_SPLIT_SUB = 1, TK_SPLIT_XOR = 2, TK_SPLIT_CAT = 3,
  TK_CONST_ADD = 4, TK_CONST_SUB = 5, TK_CONST_XOR = 6, TK_BOUNDARY = 7,
  TK_PAD = 8, TK_MIRROR = 9, TK_TAB_SPLIT = 10, TK_REP_SPLIT = 11,
  TK_CHILD_MOVE = 12
};

// One wire-graph arena node (index == NodeId; detached nodes included).
struct NRec {
  u32 type, boundary, encoding, mirrored, fixed_size, ref;
  u32 delim_off, delim_len;
  u32 cond_kind, cond_ref, cond_off, cond_cnt;
  u32 kid_off, kid_cnt;
};

// One journal entry (transform/journal.hpp's AppliedTransform).
struct JRec {
  u32 kind, target, created_seq, created_a, created_b, created_c, created_d,
      element;
  u32 key_off, key_len, split_point, pad_index, pad_size, len_width,
      len_ascii;
  i32 child_i, child_j;
};

// One holder lineage record (transform/lineage.hpp's HolderInfo).
struct HRec {
  u32 origin, top, chain_off, chain_cnt;
};

// One condition value (a slice of the byte pool).
struct VRec {
  u32 off, len;
};

}  // namespace po_native
)npro";

void emit_tables(std::ostringstream& out, const ObfuscatedProtocol& protocol,
                 std::uint64_t fingerprint) {
  const Graph& wire = protocol.wire_graph();
  const Journal& journal = protocol.journal();
  const HolderTable holders = build_holder_table(protocol.original(), journal);

  BytePool pool;
  std::vector<std::uint32_t> kids;
  std::vector<std::uint32_t> chains;
  std::ostringstream nodes, jout, hout, vout;
  std::size_t cond_count = 0;

  for (NodeId id = 0; id < wire.arena_size(); ++id) {
    const Node& n = wire.node(id);
    const auto delim = pool.add(n.delimiter);
    const auto cond_off = static_cast<std::uint32_t>(cond_count);
    for (const Bytes& v : n.condition.values) {
      const auto ref = pool.add(v);
      vout << "    {" << ref.first << "," << ref.second << "},\n";
      ++cond_count;
    }
    const auto kid_off = static_cast<std::uint32_t>(kids.size());
    for (const NodeId child : n.children) {
      kids.push_back(child);
    }
    nodes << "    {" << u32_of(static_cast<unsigned>(n.type)) << ","
          << u32_of(static_cast<unsigned>(n.boundary)) << ","
          << u32_of(static_cast<unsigned>(n.encoding)) << ","
          << (n.mirrored ? 1 : 0) << "," << u32_of(n.fixed_size) << ","
          << id_of(n.ref) << "," << delim.first << "," << delim.second << ","
          << u32_of(static_cast<unsigned>(n.condition.kind)) << ","
          << id_of(n.condition.ref) << "," << cond_off << ","
          << n.condition.values.size() << "," << kid_off << ","
          << n.children.size() << "},\n";
  }

  for (const AppliedTransform& e : journal) {
    const auto key = pool.add(e.key);
    jout << "    {" << u32_of(static_cast<unsigned>(e.kind)) << ","
         << id_of(e.target) << "," << id_of(e.created_seq) << ","
         << id_of(e.created_a) << "," << id_of(e.created_b) << ","
         << id_of(e.created_c) << "," << id_of(e.created_d) << ","
         << id_of(e.element) << "," << key.first << "," << key.second << ","
         << u32_of(e.split_point) << "," << u32_of(e.pad_index) << ","
         << u32_of(e.pad_size) << "," << u32_of(e.len_width) << ","
         << (e.len_ascii ? 1 : 0) << "," << e.child_i << "," << e.child_j
         << "},\n";
  }

  for (const HolderInfo& h : holders.holders) {
    const auto chain_off = static_cast<std::uint32_t>(chains.size());
    for (const std::size_t idx : h.chain) {
      chains.push_back(static_cast<std::uint32_t>(idx));
    }
    hout << "    {" << id_of(h.origin) << "," << id_of(h.top) << ","
         << chain_off << "," << h.chain.size() << "},\n";
  }

  out << "namespace po_native {\n\n"
      << "constexpr u32 kRoot = " << wire.root() << ";\n"
      << "constexpr u64 kUnitFingerprint = 0x" << std::hex << fingerprint
      << std::dec << "ull;\n"
      << "constexpr char kProtocolName[] = \""
      << escaped(wire.protocol_name()) << "\";\n";
  emit_u8_array(out, "kPool", pool.bytes());
  emit_u32_array(out, "kKids", kids);
  emit_u32_array(out, "kChains", chains);
  out << "constexpr VRec kCondVals[] = {\n"
      << (cond_count == 0 ? "    {0,0},\n" : vout.str()) << "};\n"
      << "constexpr NRec kNodes[] = {\n" << nodes.str() << "};\n"
      << "constexpr JRec kJournal[] = {\n"
      << (journal.empty() ? "    {0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,-1,-1},\n"
                          : jout.str())
      << "};\n"
      << "constexpr HRec kHolders[] = {\n"
      << (holders.holders.empty() ? "    {0,0,0,0},\n" : hout.str())
      << "};\n"
      << "constexpr std::size_t kJournalCount = " << journal.size() << ";\n"
      << "constexpr std::size_t kHolderCount = " << holders.holders.size()
      << ";\n\n}  // namespace po_native\n";
}

// ----------------------------------------------------------------- engine --
//
// Split across two raw strings only to stay below the compiler's literal
// length limits; the split point is arbitrary.

constexpr const char kEngineA[] = R"neng(
namespace po_native {
namespace {

// ------------------------------------------------------------- primitives --

struct Rng {
  u64 s;
  explicit Rng(u64 seed) : s(seed) {}
  u64 next() {
    u64 z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  u8 byte() { return static_cast<u8>(next() & 0xff); }
  void fill(buf& out, std::size_t n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = byte();
  }
};

inline const u8* pool_at(u32 off) { return kPool + off; }

inline void add_into(buf& dst, const buf& a, const buf& b) {
  dst.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    dst[i] = static_cast<u8>(a[i] + b[i]);
}
inline void sub_into(buf& dst, const buf& a, const buf& b) {
  dst.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    dst[i] = static_cast<u8>(a[i] - b[i]);
}
inline void xor_into(buf& dst, const buf& a, const buf& b) {
  dst.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    dst[i] = static_cast<u8>(a[i] ^ b[i]);
}

inline void be_encode_into(buf& dst, u64 value, std::size_t width) {
  dst.resize(width);
  for (std::size_t i = 0; i < width; ++i)
    dst[width - 1 - i] = static_cast<u8>(value >> (8 * i));
}

inline u64 be_decode(const u8* p, std::size_t n) {
  u64 value = 0;
  for (std::size_t i = 0; i < n; ++i) value = (value << 8) | p[i];
  return value;
}

inline void ascii_dec_encode_into(buf& dst, u64 value, std::size_t min_width) {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  const std::size_t width = n < min_width ? min_width : n;
  dst.assign(width, static_cast<u8>('0'));
  for (std::size_t i = 0; i < n; ++i)
    dst[width - 1 - i] = static_cast<u8>(digits[i]);
}

inline bool ascii_dec_decode(const u8* p, std::size_t n, u64& out) {
  if (n == 0 || n > 20) return false;
  u64 value = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] < '0' || p[i] > '9') return false;
    const u64 next = value * 10 + (p[i] - '0');
    if (next < value) return false;  // overflow
    value = next;
  }
  out = value;
  return true;
}

inline bool starts_with(const u8* d, std::size_t dn, const u8* pre,
                        std::size_t pn) {
  return dn >= pn && (pn == 0 || std::memcmp(d, pre, pn) == 0);
}

// Mirrors the host's find(): needle within data[0, dn), scanning from
// `from`; empty needles and out-of-range starts never match.
inline bool find_in(const u8* d, std::size_t dn, const u8* needle,
                    std::size_t nn, std::size_t from, std::size_t& at) {
  if (nn == 0 || from > dn || nn > dn) return false;
  const u8* it = std::search(d + from, d + dn, needle, needle + nn);
  if (it == d + dn) return false;
  at = static_cast<std::size_t>(it - d);
  return true;
}

// ------------------------------------------------------------------- tree --

struct EN {
  u32 schema = 0;
  bool present = true;
  buf value;
  std::vector<EN*> kids;
};

// Slab pool mirroring the host's InstPool: checked-out nodes keep their
// payload/children capacity across messages, so steady-state serving stops
// touching the allocator.
class Pool {
 public:
  EN* make(u32 schema) {
    if (free_.empty()) grow();
    EN* n = free_.back();
    free_.pop_back();
    n->schema = schema;
    n->present = true;
    n->value.clear();
    n->kids.clear();
    return n;
  }
  // Null-tolerant (moved-out child slots) and recursive.
  void release(EN* n) {
    if (n == nullptr) return;
    for (EN* k : n->kids) release(k);
    n->kids.clear();
    free_.push_back(n);
  }

 private:
  void grow() {
    slabs_.emplace_back(new EN[kSlab]);
    EN* slab = slabs_.back().get();
    for (std::size_t i = 0; i < kSlab; ++i) free_.push_back(&slab[i]);
  }
  static constexpr std::size_t kSlab = 64;
  std::vector<std::unique_ptr<EN[]>> slabs_;
  std::vector<EN*> free_;
};

class Scopes {
 public:
  Scopes() { push(); }
  void push() {
    if (depth_ == scopes_.size()) {
      scopes_.emplace_back();
    } else {
      scopes_[depth_].clear();
    }
    ++depth_;
  }
  void pop() { --depth_; }
  void add(EN* inst) { scopes_[depth_ - 1].emplace_back(inst->schema, inst); }
  EN* lookup(u32 id) const {
    for (std::size_t i = depth_; i-- > 0;) {
      const auto& entries = scopes_[i];
      for (std::size_t k = entries.size(); k-- > 0;) {
        if (entries[k].first == id) return entries[k].second;
      }
    }
    return nullptr;
  }
  void reset() {
    depth_ = 0;
    push();
  }

 private:
  std::vector<std::vector<std::pair<u32, EN*>>> scopes_;
  std::size_t depth_ = 0;
};

// status codes shared with the ABI: 0 ok, 1 truncated, 2 malformed.
struct Err {
  i32 status = 0;
  std::size_t off = static_cast<std::size_t>(-1);
  std::size_t need = 0;
};

struct Ctx {
  Pool pool;
  Scopes scopes;
  Err err;
  std::vector<buf> spare;  // mirrored-region scratch, capacity-recycled
  buf tlv, out, measure, encoded;

  buf acquire() {
    if (spare.empty()) return buf();
    buf b = std::move(spare.back());
    spare.pop_back();
    b.clear();
    return b;
  }
  void put_back(buf b) { spare.push_back(std::move(b)); }
};

thread_local Ctx g_ctx;

inline bool mfail(Ctx& c, std::size_t off) {
  c.err.status = 2;
  c.err.off = off;
  c.err.need = 0;
  return false;
}

// Out-of-bytes against a soft end is a truncation (need clamped >= 1, like
// the host's Unexpected::truncated); against a hard region, malformed.
inline bool short_fail(Ctx& c, bool soft, std::size_t off, std::size_t need) {
  if (!soft) return mfail(c, off);
  c.err.status = 1;
  c.err.off = off;
  c.err.need = need > 0 ? need : 1;
  return false;
}

// Transform-algebra failure: malformed with no wire offset, mirroring the
// host's plain Unexpected from exec.cpp.
inline bool xfail(Ctx& c) {
  c.err.status = 2;
  c.err.off = static_cast<std::size_t>(-1);
  c.err.need = 0;
  return false;
}

EN* copy_tree(Ctx& c, const EN* src) {
  EN* n = c.pool.make(src->schema);
  n->present = src->present;
  n->value = src->value;
  n->kids.reserve(src->kids.size());
  for (const EN* k : src->kids) n->kids.push_back(copy_tree(c, k));
  return n;
}

inline const HRec* find_by_top(u32 top) {
  for (std::size_t i = 0; i < kHolderCount; ++i) {
    if (kHolders[i].top == top) return &kHolders[i];
  }
  return nullptr;
}

// ------------------------------------------- transforms (transform/exec) --

template <typename Op>
bool for_each_match(Ctx& c, EN*& p, u32 match, Op&& op) {
  if (p->schema == match) return op(p);
  if (!p->present) return true;
  for (EN*& child : p->kids) {
    if (!for_each_match(c, child, match, op)) return false;
  }
  return true;
}

bool forward_split(Ctx& c, EN*& p, const JRec& e, Rng& rng) {
  EN* first = c.pool.make(e.created_a);
  EN* second = c.pool.make(e.created_b);
  const buf& v = p->value;
  switch (e.kind) {
    case TK_SPLIT_ADD:
      rng.fill(first->value, v.size());
      add_into(second->value, v, first->value);
      break;
    case TK_SPLIT_SUB:
      rng.fill(first->value, v.size());
      sub_into(second->value, v, first->value);
      break;
    case TK_SPLIT_XOR:
      rng.fill(first->value, v.size());
      xor_into(second->value, v, first->value);
      break;
    case TK_SPLIT_CAT:
      if (v.size() < e.split_point) {
        c.pool.release(first);
        c.pool.release(second);
        return xfail(c);
      }
      first->value.assign(v.begin(), v.begin() + e.split_point);
      second->value.assign(v.begin() + e.split_point, v.end());
      break;
    default:
      c.pool.release(first);
      c.pool.release(second);
      return xfail(c);
  }
  EN* seq = c.pool.make(e.created_seq);
  seq->kids.reserve(2);
  seq->kids.push_back(first);
  seq->kids.push_back(second);
  c.pool.release(p);
  p = seq;
  return true;
}

bool inverse_split(Ctx& c, EN*& p, const JRec& e) {
  if (p->kids.size() != 2) return xfail(c);
  const buf& a = p->kids[0]->value;
  const buf& b = p->kids[1]->value;
  if (e.kind != TK_SPLIT_CAT && a.size() != b.size()) return xfail(c);
  EN* merged = c.pool.make(e.target);
  switch (e.kind) {
    case TK_SPLIT_ADD: sub_into(merged->value, b, a); break;
    case TK_SPLIT_SUB: add_into(merged->value, b, a); break;
    case TK_SPLIT_XOR: xor_into(merged->value, b, a); break;
    case TK_SPLIT_CAT:
      merged->value.assign(a.begin(), a.end());
      merged->value.insert(merged->value.end(), b.begin(), b.end());
      break;
    default:
      c.pool.release(merged);
      return xfail(c);
  }
  c.pool.release(p);
  p = merged;
  return true;
}

void apply_const(EN* p, const JRec& e, bool forward) {
  const u8* key = pool_at(e.key_off);
  const std::size_t kn = e.key_len;
  if (kn == 0) return;
  u32 kind = e.kind;
  if (!forward) {  // add <-> sub; xor is self-inverse
    if (kind == TK_CONST_ADD) kind = TK_CONST_SUB;
    else if (kind == TK_CONST_SUB) kind = TK_CONST_ADD;
  }
  buf& v = p->value;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const u8 k = key[i % kn];
    if (kind == TK_CONST_ADD) v[i] = static_cast<u8>(v[i] + k);
    else if (kind == TK_CONST_SUB) v[i] = static_cast<u8>(v[i] - k);
    else v[i] = static_cast<u8>(v[i] ^ k);
  }
}

bool forward_boundary_change(Ctx& c, EN*& p, const JRec& e) {
  EN* length = c.pool.make(e.created_a);
  if (e.len_ascii != 0) {
    ascii_dec_encode_into(length->value, 0, e.len_width);
  } else {
    length->value.assign(e.len_width, 0);
  }
  EN* seq = c.pool.make(e.created_seq);
  seq->kids.reserve(2);
  seq->kids.push_back(length);
  seq->kids.push_back(p);
  p = seq;
  return true;
}

bool inverse_boundary_change(Ctx& c, EN*& p, const JRec& e) {
  if (p->kids.size() != 2 || p->kids[1]->schema != e.target) return xfail(c);
  EN* data = p->kids[1];
  p->kids.pop_back();
  c.pool.release(p);
  p = data;
  return true;
}

bool forward_pad(Ctx& c, EN* p, const JRec& e, Rng& rng) {
  if (e.pad_index > p->kids.size()) return xfail(c);
  EN* pad = c.pool.make(e.created_a);
  rng.fill(pad->value, e.pad_size);
  p->kids.insert(p->kids.begin() + e.pad_index, pad);
  return true;
}

bool inverse_pad(Ctx& c, EN* p, const JRec& e) {
  if (e.pad_index >= p->kids.size() ||
      p->kids[e.pad_index]->schema != e.created_a) {
    return xfail(c);
  }
  c.pool.release(p->kids[e.pad_index]);
  p->kids.erase(p->kids.begin() + e.pad_index);
  return true;
}

bool forward_group_split(Ctx& c, EN*& p, const JRec& e, u32 cnt_node,
                         u32 t1_node, u32 t2_node, u32 rest_node) {
  std::vector<EN*> elements;
  elements.swap(p->kids);
  EN* firsts = c.pool.make(t1_node);
  EN* seconds = c.pool.make(t2_node);
  firsts->kids.reserve(elements.size());
  seconds->kids.reserve(elements.size());
  for (std::size_t idx = 0; idx < elements.size(); ++idx) {
    EN* element = elements[idx];
    if (element->kids.size() < 2) {
      c.pool.release(firsts);
      c.pool.release(seconds);
      for (std::size_t r = idx; r < elements.size(); ++r)
        c.pool.release(elements[r]);
      return xfail(c);
    }
    firsts->kids.push_back(element->kids[0]);
    element->kids[0] = nullptr;
    if (rest_node == kNoId) {
      seconds->kids.push_back(element->kids[1]);
      element->kids[1] = nullptr;
    } else {
      EN* rest = c.pool.make(rest_node);
      rest->kids.reserve(element->kids.size() - 1);
      for (std::size_t i = 1; i < element->kids.size(); ++i) {
        rest->kids.push_back(element->kids[i]);
        element->kids[i] = nullptr;
      }
      seconds->kids.push_back(rest);
    }
    c.pool.release(element);
  }
  const std::size_t m = firsts->kids.size();
  EN* seq = c.pool.make(e.created_seq);
  seq->kids.reserve(cnt_node != kNoId ? 3 : 2);
  if (cnt_node != kNoId) {
    EN* cnt = c.pool.make(cnt_node);
    be_encode_into(cnt->value, static_cast<u64>(m), 2);
    seq->kids.push_back(cnt);
  }
  seq->kids.push_back(firsts);
  seq->kids.push_back(seconds);
  c.pool.release(p);
  p = seq;
  return true;
}

bool inverse_group_split(Ctx& c, EN*& p, const JRec& e, bool has_cnt,
                         u32 rest_node) {
  const std::size_t expected = has_cnt ? 3 : 2;
  if (p->kids.size() != expected) return xfail(c);
  EN* t1 = p->kids[expected - 2];
  EN* t2 = p->kids[expected - 1];
  if (t1->kids.size() != t2->kids.size()) return xfail(c);
  EN* merged = c.pool.make(e.target);
  merged->kids.reserve(t1->kids.size());
  for (std::size_t k = 0; k < t1->kids.size(); ++k) {
    EN* element = c.pool.make(e.element);
    element->kids.push_back(t1->kids[k]);
    t1->kids[k] = nullptr;
    if (rest_node == kNoId) {
      element->kids.push_back(t2->kids[k]);
      t2->kids[k] = nullptr;
    } else {
      EN* rest = t2->kids[k];
      for (EN*& sub : rest->kids) {
        element->kids.push_back(sub);
        sub = nullptr;
      }
    }
    merged->kids.push_back(element);
  }
  c.pool.release(p);  // count field, emptied halves and rest wrappers
  p = merged;
  return true;
}

bool child_move(Ctx& c, EN* p, const JRec& e) {
  const std::size_t i = static_cast<std::size_t>(e.child_i);
  const std::size_t j = static_cast<std::size_t>(e.child_j);
  // The host checks j only; i out of range cannot occur on shape-checked
  // trees, so the extra guard is UB-avoidance, not a semantic difference.
  if (j >= p->kids.size() || i >= p->kids.size()) return xfail(c);
  std::swap(p->kids[i], p->kids[j]);
  return true;
}

bool forward_entry(Ctx& c, EN*& root, const JRec& e, Rng& rng) {
  switch (e.kind) {
    case TK_SPLIT_ADD:
    case TK_SPLIT_SUB:
    case TK_SPLIT_XOR:
    case TK_SPLIT_CAT:
      return for_each_match(c, root, e.target, [&](EN*& p) {
        return forward_split(c, p, e, rng);
      });
    case TK_CONST_ADD:
    case TK_CONST_SUB:
    case TK_CONST_XOR:
      return for_each_match(c, root, e.target, [&](EN*& p) {
        apply_const(p, e, /*forward=*/true);
        return true;
      });
    case TK_BOUNDARY:
      return for_each_match(c, root, e.target, [&](EN*& p) {
        return forward_boundary_change(c, p, e);
      });
    case TK_PAD:
      return for_each_match(c, root, e.target, [&](EN*& p) {
        return forward_pad(c, p, e, rng);
      });
    case TK_MIRROR:
      return true;  // handled at emission/parse time
    case TK_TAB_SPLIT:
      return for_each_match(c, root, e.target, [&](EN*& p) {
        return forward_group_split(c, p, e, kNoId, e.created_a, e.created_b,
                                   e.created_c);
      });
    case TK_REP_SPLIT:
      return for_each_match(c, root, e.target, [&](EN*& p) {
        return forward_group_split(c, p, e, e.created_a, e.created_b,
                                   e.created_c, e.created_d);
      });
    case TK_CHILD_MOVE:
      return for_each_match(c, root, e.target,
                            [&](EN*& p) { return child_move(c, p, e); });
    default:
      return true;
  }
}

bool inverse_entry(Ctx& c, EN*& root, const JRec& e) {
  switch (e.kind) {
    case TK_SPLIT_ADD:
    case TK_SPLIT_SUB:
    case TK_SPLIT_XOR:
    case TK_SPLIT_CAT:
      return for_each_match(c, root, e.created_seq,
                            [&](EN*& p) { return inverse_split(c, p, e); });
    case TK_CONST_ADD:
    case TK_CONST_SUB:
    case TK_CONST_XOR:
      return for_each_match(c, root, e.target, [&](EN*& p) {
        apply_const(p, e, /*forward=*/false);
        return true;
      });
    case TK_BOUNDARY:
      return for_each_match(c, root, e.created_seq, [&](EN*& p) {
        return inverse_boundary_change(c, p, e);
      });
    case TK_PAD:
      return for_each_match(c, root, e.target,
                            [&](EN*& p) { return inverse_pad(c, p, e); });
    case TK_MIRROR:
      return true;
    case TK_TAB_SPLIT:
      return for_each_match(c, root, e.created_seq, [&](EN*& p) {
        return inverse_group_split(c, p, e, /*has_cnt=*/false, e.created_c);
      });
    case TK_REP_SPLIT:
      return for_each_match(c, root, e.created_seq, [&](EN*& p) {
        return inverse_group_split(c, p, e, /*has_cnt=*/true, e.created_d);
      });
    case TK_CHILD_MOVE:
      return for_each_match(c, root, e.target,
                            [&](EN*& p) { return child_move(c, p, e); });
    default:
      return true;
  }
}

bool inverse_all(Ctx& c, EN*& root) {
  for (std::size_t i = kJournalCount; i-- > 0;) {
    if (!inverse_entry(c, root, kJournal[i])) return false;
  }
  return true;
}

// invert_clone: pool-copy + full-journal inversion, like the host's.
EN* invert_clone(Ctx& c, const EN* subtree) {
  EN* copy = copy_tree(c, subtree);
  if (!inverse_all(c, copy)) {
    c.pool.release(copy);
    return nullptr;
  }
  return copy;
}

EN* rerun_chain(Ctx& c, u32 origin, const buf& logical_value,
                const HRec& holder, Rng& rng) {
  EN* p = c.pool.make(origin);
  p->value = logical_value;
  for (u32 i = 0; i < holder.chain_cnt; ++i) {
    if (!forward_entry(c, p, kJournal[kChains[holder.chain_off + i]], rng)) {
      c.pool.release(p);
      return nullptr;
    }
  }
  return p;
}
)neng";

constexpr const char kEngineB[] = R"neng(
// ----------------------------------------------- parse (runtime/parse.cpp) --

struct Reader {
  const u8* data;
  std::size_t pos;
  std::size_t end;
  bool soft;  // see runtime/parse.cpp: input end vs region end
  std::size_t remaining() const { return end - pos; }
};

bool eval_cond(const NRec& n, const buf& v) {
  const auto eq = [&](const VRec& r) {
    return v.size() == r.len &&
           (r.len == 0 || std::memcmp(v.data(), pool_at(r.off), r.len) == 0);
  };
  switch (n.cond_kind) {
    case C_EQ: return n.cond_cnt != 0 && eq(kCondVals[n.cond_off]);
    case C_NE: return n.cond_cnt == 0 || !eq(kCondVals[n.cond_off]);
    case C_ONEOF:
      for (u32 i = 0; i < n.cond_cnt; ++i) {
        if (eq(kCondVals[n.cond_off + i])) return true;
      }
      return false;
    case C_NONZERO:
      for (const u8 b : v) {
        if (b != 0) return true;
      }
      return false;
    default:
      return true;
  }
}

class Parser {
 public:
  Parser(Ctx& c, bool prefix) : c_(c), prefix_(prefix) {}

  EN* parse(const u8* data, std::size_t len, std::size_t* consumed) {
    c_.scopes.reset();
    Reader r{data, 0, len, /*soft=*/true};
    EN* root = parse_node(kRoot, r);
    if (root == nullptr) return nullptr;
    if (prefix_) {
      if (consumed != nullptr) *consumed = r.pos;
    } else if (r.pos != r.end) {
      c_.pool.release(root);
      mfail(c_, r.pos);  // trailing bytes after message
      return nullptr;
    }
    return root;
  }

 private:
  // Logical value of an already-parsed reference target. nullptr => err set.
  EN* logical_tree(const EN* holder, const Reader& r) {
    EN* logical = invert_clone(c_, holder);
    if (logical == nullptr) return nullptr;
    if (!logical->kids.empty()) {
      c_.pool.release(logical);
      mfail(c_, r.pos);  // reference target does not invert to a terminal
      return nullptr;
    }
    return logical;
  }

  bool scalar(u32 ref, const EN* holder, const Reader& r, u64& out) {
    EN* logical = logical_tree(holder, r);
    if (logical == nullptr) return false;
    const buf& bytes = logical->value;
    const HRec* info = find_by_top(ref);
    const u32 origin = info != nullptr ? info->origin : ref;
    const NRec& n = kNodes[origin];
    bool ok;
    if (n.encoding == E_ASCII) {
      ok = ascii_dec_decode(bytes.data(), bytes.size(), out);
      if (!ok) mfail(c_, r.pos);  // holder is not a decimal number
    } else if (bytes.size() > 8) {
      ok = false;
      mfail(c_, r.pos);  // holder wider than 8 bytes
    } else {
      out = be_decode(bytes.data(), bytes.size());
      ok = true;
    }
    c_.pool.release(logical);
    return ok;
  }

  EN* lookup(u32 ref, const Reader& r) {
    EN* found = c_.scopes.lookup(ref);
    if (found == nullptr) {
      mfail(c_, r.pos);  // reference target not yet parsed
      return nullptr;
    }
    return found;
  }

  EN* parse_node(u32 id, Reader& r) {
    return parse_node_impl(id, r, /*ignore_mirror=*/false);
  }

  EN* parse_node_impl(u32 id, Reader& r, bool ignore_mirror) {
    const NRec& n = kNodes[id];
    bool has_region = false;
    std::size_t region_end = 0;
    const bool stop_marker_rep = n.type == T_REP && n.boundary == B_DELIM;
    if (ignore_mirror) {
      // Re-entry on the reversed copy of a mirrored region: the buffer *is*
      // the region, whatever the declared boundary says.
      return parse_with_region(n, id, r, true, r.end, stop_marker_rep);
    }
    switch (n.boundary) {
      case B_FIXED:
        if (r.remaining() < n.fixed_size) {
          return fail_node(short_fail(c_, r.soft, r.pos,
                                      n.fixed_size - r.remaining()));
        }
        has_region = true;
        region_end = r.pos + n.fixed_size;
        break;
      case B_HALF:
        if (prefix_ && r.soft) return fail_node(mfail(c_, r.pos));
        if (r.remaining() % 2 != 0) return fail_node(mfail(c_, r.pos));
        has_region = true;
        region_end = r.pos + r.remaining() / 2;
        break;
      case B_LEN: {
        EN* holder = lookup(n.ref, r);
        if (holder == nullptr) return nullptr;
        u64 length = 0;
        if (!scalar(n.ref, holder, r, length)) return nullptr;
        if (length > r.remaining()) {
          return fail_node(short_fail(
              c_, r.soft, r.pos,
              static_cast<std::size_t>(length - r.remaining())));
        }
        has_region = true;
        region_end = r.pos + static_cast<std::size_t>(length);
        break;
      }
      case B_END:
        if (prefix_ && r.soft) {
          if (n.type != T_SEQ || n.mirrored != 0) {
            return fail_node(mfail(c_, r.pos));  // not self-delimiting
          }
          break;  // sequence copes: region stays undetermined
        }
        has_region = true;
        region_end = r.end;
        break;
      case B_DELIM:
        if (!stop_marker_rep) {
          std::size_t at = 0;
          if (!find_in(r.data, r.end, pool_at(n.delim_off), n.delim_len,
                       r.pos, at)) {
            return fail_node(short_fail(c_, r.soft, r.pos, 1));
          }
          has_region = true;
          region_end = at;
        }
        break;
      case B_DELEG:
      case B_COUNTER:
        break;
      default:
        break;
    }

    if (n.mirrored != 0 && !ignore_mirror) {
      if (!has_region) return fail_node(mfail(c_, r.pos));
      buf temp = c_.acquire();
      temp.assign(std::reverse_iterator<const u8*>(r.data + region_end),
                  std::reverse_iterator<const u8*>(r.data + r.pos));
      Reader mirror{temp.data(), 0, temp.size(), /*soft=*/false};
      EN* inst = parse_node_impl(id, mirror, /*ignore_mirror=*/true);
      const bool consumed_all = mirror.pos == mirror.end;
      c_.put_back(std::move(temp));
      if (inst == nullptr) return nullptr;
      if (!consumed_all) {
        c_.pool.release(inst);
        return fail_node(mfail(c_, r.pos));  // mirror not fully consumed
      }
      r.pos = region_end;
      c_.scopes.add(inst);
      return inst;
    }

    return parse_with_region(n, id, r, has_region, region_end,
                             stop_marker_rep);
  }

  EN* parse_with_region(const NRec& n, u32 id, Reader& r, bool has_region,
                        std::size_t region_end, bool stop_marker_rep) {
    // Only an `end` region inherits the reader's softness.
    const bool sub_soft = r.soft && n.boundary == B_END;
    EN* inst = nullptr;
    switch (n.type) {
      case T_TERM: {
        // A region-less terminal cannot occur in a validated graph; the
        // host would dereference an empty optional here.
        if (!has_region) return fail_node(mfail(c_, r.pos));
        inst = c_.pool.make(id);
        inst->value.assign(r.data + r.pos, r.data + region_end);
        r.pos = region_end;
        break;
      }
      case T_SEQ: {
        inst = c_.pool.make(id);
        if (has_region) {
          Reader sub{r.data, r.pos, region_end, sub_soft};
          for (u32 ci = 0; ci < n.kid_cnt; ++ci) {
            EN* parsed = parse_node(kKids[n.kid_off + ci], sub);
            if (parsed == nullptr) return drop(inst);
            inst->kids.push_back(parsed);
          }
          if (sub.pos != sub.end) {
            c_.pool.release(inst);
            return fail_node(mfail(c_, sub.pos));  // trailing bytes in region
          }
          r.pos = region_end;
        } else {
          for (u32 ci = 0; ci < n.kid_cnt; ++ci) {
            EN* parsed = parse_node(kKids[n.kid_off + ci], r);
            if (parsed == nullptr) return drop(inst);
            inst->kids.push_back(parsed);
          }
        }
        break;
      }
      case T_OPT: {
        bool present = true;
        if (n.cond_kind != C_ALWAYS) {
          EN* ref = lookup(n.cond_ref, r);
          if (ref == nullptr) return nullptr;
          EN* logical = logical_tree(ref, r);
          if (logical == nullptr) return nullptr;
          present = eval_cond(n, logical->value);
          c_.pool.release(logical);
        }
        inst = c_.pool.make(id);
        if (present) {
          EN* child = parse_node(kKids[n.kid_off], r);
          if (child == nullptr) return drop(inst);
          inst->kids.push_back(child);
        } else {
          inst->present = false;
        }
        break;
      }
      case T_REP: {
        inst = c_.pool.make(id);
        if (stop_marker_rep) {
          const u8* delim = pool_at(n.delim_off);
          const std::size_t dn = n.delim_len;
          while (true) {
            const u8* w = r.data + r.pos;
            const std::size_t wn = r.end - r.pos;
            if (starts_with(w, wn, delim, dn)) {
              r.pos += dn;
              break;
            }
            if (r.soft && wn < dn && std::memcmp(w, delim, wn) == 0) {
              // Undecided against the stream end: the input stops inside
              // what may be the stop marker.
              c_.pool.release(inst);
              return fail_node(short_fail(c_, true, r.pos, dn - wn));
            }
            if (r.pos >= r.end) {
              c_.pool.release(inst);
              return fail_node(short_fail(c_, r.soft, r.pos, dn));
            }
            EN* element = parse_element(kKids[n.kid_off], r, true);
            if (element == nullptr) return drop(inst);
            inst->kids.push_back(element);
          }
        } else {
          if (!has_region) return fail_node(mfail(c_, r.pos));
          Reader sub{r.data, r.pos, region_end, sub_soft};
          while (sub.pos < sub.end) {
            EN* element = parse_element(kKids[n.kid_off], sub, true);
            if (element == nullptr) return drop(inst);
            inst->kids.push_back(element);
          }
          r.pos = region_end;
        }
        break;
      }
      case T_TAB: {
        EN* holder = lookup(n.ref, r);
        if (holder == nullptr) return nullptr;
        u64 count = 0;
        if (!scalar(n.ref, holder, r, count)) return nullptr;
        inst = c_.pool.make(id);
        for (u64 k = 0; k < count; ++k) {
          // Tabular elements may be legitimately empty: the count, not
          // progress, terminates the loop.
          EN* element = parse_element(kKids[n.kid_off], r, false);
          if (element == nullptr) return drop(inst);
          inst->kids.push_back(element);
        }
        break;
      }
      default:
        return fail_node(mfail(c_, r.pos));
    }

    // Consume the delimiter of scanned (non-repetition) nodes.
    if (n.boundary == B_DELIM && !stop_marker_rep) {
      if (r.pos != region_end) {
        c_.pool.release(inst);
        return fail_node(mfail(c_, r.pos));  // region not fully consumed
      }
      r.pos = region_end + n.delim_len;
    }

    c_.scopes.add(inst);
    return inst;
  }

  EN* parse_element(u32 element, Reader& r, bool require_progress) {
    const std::size_t before = r.pos;
    c_.scopes.push();
    EN* parsed = parse_node(element, r);
    if (parsed == nullptr) {
      c_.scopes.pop();
      return nullptr;
    }
    c_.scopes.pop();
    if (require_progress && r.pos == before) {
      c_.pool.release(parsed);
      return fail_node(mfail(c_, r.pos));  // element consumed no input
    }
    return parsed;
  }

  EN* drop(EN* inst) {
    c_.pool.release(inst);
    return nullptr;
  }
  EN* fail_node(bool) { return nullptr; }

  Ctx& c_;
  bool prefix_;
};

// ------------------------------------------------ emit (runtime/emit.cpp) --

bool emit_node(Ctx& c, const EN* inst, buf& out) {
  const NRec& n = kNodes[inst->schema];
  const std::size_t start = out.size();
  switch (n.type) {
    case T_TERM:
      if (n.boundary == B_FIXED && inst->value.size() != n.fixed_size) {
        return xfail(c);  // value does not match fixed size
      }
      out.insert(out.end(), inst->value.begin(), inst->value.end());
      break;
    case T_SEQ:
      for (const EN* child : inst->kids) {
        if (!emit_node(c, child, out)) return false;
      }
      break;
    case T_OPT:
      if (inst->present) {
        if (inst->kids.size() != 1) return xfail(c);
        if (!emit_node(c, inst->kids[0], out)) return false;
      }
      break;
    case T_REP:
    case T_TAB:
      for (const EN* element : inst->kids) {
        const std::size_t element_start = out.size();
        if (!emit_node(c, element, out)) return false;
        if (n.type == T_REP && out.size() == element_start) {
          return xfail(c);  // repetition element serialized empty
        }
        if (n.type == T_REP && n.boundary == B_DELIM &&
            starts_with(out.data() + element_start,
                        out.size() - element_start, pool_at(n.delim_off),
                        n.delim_len)) {
          return xfail(c);  // element starts with the stop marker
        }
      }
      break;
    default:
      return xfail(c);
  }

  if (n.mirrored != 0) {
    std::reverse(out.begin() + start, out.end());
  }

  if (n.boundary == B_DELIM) {
    if (n.type != T_REP) {
      std::size_t at = 0;
      if (find_in(out.data() + start, out.size() - start,
                  pool_at(n.delim_off), n.delim_len, 0, at)) {
        return xfail(c);  // content contains its own delimiter
      }
    }
    out.insert(out.end(), pool_at(n.delim_off),
               pool_at(n.delim_off) + n.delim_len);
  }

  if (n.boundary == B_FIXED && n.type != T_TERM &&
      out.size() - start != n.fixed_size) {
    return xfail(c);  // composite size mismatch
  }
  return true;
}

// ----------------------------------- fix_holders (runtime/derive.cpp) --

template <typename Pre>
bool walk_scoped(Ctx& c, EN* inst, Pre& pre) {
  if (!pre(inst)) return false;
  const NRec& n = kNodes[inst->schema];
  if (inst->present) {
    const bool element_scope = n.type == T_REP || n.type == T_TAB;
    for (EN* child : inst->kids) {
      if (element_scope) c.scopes.push();
      const bool ok = walk_scoped(c, child, pre);
      if (element_scope) c.scopes.pop();
      if (!ok) return false;
    }
  }
  c.scopes.add(inst);
  return true;
}

bool encode_holder(Ctx& c, buf& out, u32 holder, u64 value) {
  const NRec& n = kNodes[holder];
  if (n.encoding == E_ASCII) {
    const std::size_t width = n.boundary == B_FIXED ? n.fixed_size : 0;
    ascii_dec_encode_into(out, value, width);
    if (width != 0 && out.size() != width) return xfail(c);
    return true;
  }
  if (n.boundary != B_FIXED) return xfail(c);
  if (n.fixed_size < 8 && value >= (1ull << (8 * n.fixed_size))) {
    return xfail(c);  // derived value overflows the field
  }
  be_encode_into(out, value, n.fixed_size);
  return true;
}

struct DPair {
  EN* holder;
  EN* measured;
  bool is_counter;
};

bool fix_holders(Ctx& c, EN* root, u64 msg_seed) {
  buf& encoded = c.encoded;
  std::vector<DPair> pairs;
  for (int iter = 0; iter < 16; ++iter) {
    pairs.clear();
    c.scopes.reset();
    auto pre = [&](EN* inst) -> bool {
      const NRec& n = kNodes[inst->schema];
      if (n.boundary != B_LEN && n.boundary != B_COUNTER) return true;
      EN* holder = c.scopes.lookup(n.ref);
      if (holder == nullptr) return xfail(c);  // target not in scope
      pairs.push_back({holder, inst, n.boundary == B_COUNTER});
      return true;
    };
    if (!walk_scoped(c, root, pre)) return false;
    bool changed = false;
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const DPair& pair = pairs[k];
      u64 value = 0;
      if (pair.is_counter) {
        value = pair.measured->kids.size();
      } else {
        c.measure.clear();
        if (!emit_node(c, pair.measured, c.measure)) return false;
        value = c.measure.size();
      }
      const HRec* info = find_by_top(pair.holder->schema);
      if (info == nullptr) return xfail(c);  // no lineage for holder
      if (!encode_holder(c, encoded, info->origin, value)) return false;

      // Skip the rebuild if the holder already carries this logical value.
      // An inversion failure is swallowed (like the host's `if (current &&
      // ...)` on an errored Expected) and forces the rebuild.
      EN* current = invert_clone(c, pair.holder);
      if (current != nullptr) {
        const bool keep =
            current->schema == info->origin && current->value == encoded;
        c.pool.release(current);
        if (keep) continue;
      } else {
        c.err = Err{};
      }

      Rng rng(msg_seed ^ (0x9e3779b97f4a7c15ull * (k + 1)));
      EN* rebuilt = rerun_chain(c, info->origin, encoded, *info, rng);
      if (rebuilt == nullptr) return false;
      // The host move-assigns into the holder node (identity preserved);
      // swap the buffers the same way.
      pair.holder->schema = rebuilt->schema;
      pair.holder->present = rebuilt->present;
      pair.holder->value.swap(rebuilt->value);
      pair.holder->kids.swap(rebuilt->kids);
      c.pool.release(rebuilt);
      changed = true;
    }
    if (!changed) return true;
  }
  return xfail(c);  // wire holder derivation did not converge
}

// --------------------------------------------------------------- TLV codec --
//
// Host <-> unit tree interchange, a lockstep walk of the wire graph:
//   Terminal            u32 length + bytes
//   Sequence            children inline (count fixed by the graph)
//   Optional            u8 present + child when present
//   Repetition/Tabular  u32 count + elements
// Little-endian u32s; the host side lives in src/native/protocol.cpp.

inline void put_u32(buf& out, u32 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 24));
}

inline u32 get_u32(const u8* p) {
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

void encode_tlv(const EN* inst, buf& out) {
  const NRec& n = kNodes[inst->schema];
  switch (n.type) {
    case T_TERM:
      put_u32(out, static_cast<u32>(inst->value.size()));
      out.insert(out.end(), inst->value.begin(), inst->value.end());
      break;
    case T_SEQ:
      for (const EN* child : inst->kids) encode_tlv(child, out);
      break;
    case T_OPT: {
      const bool present = inst->present && !inst->kids.empty();
      out.push_back(present ? 1 : 0);
      if (present) encode_tlv(inst->kids[0], out);
      break;
    }
    case T_REP:
    case T_TAB:
      put_u32(out, static_cast<u32>(inst->kids.size()));
      for (const EN* child : inst->kids) encode_tlv(child, out);
      break;
    default:
      break;
  }
}

EN* decode_tlv(Ctx& c, u32 id, const u8* tlv, std::size_t len,
               std::size_t& pos) {
  const NRec& n = kNodes[id];
  switch (n.type) {
    case T_TERM: {
      if (len - pos < 4) break;
      const u32 vn = get_u32(tlv + pos);
      pos += 4;
      if (len - pos < vn) break;
      EN* t = c.pool.make(id);
      t->value.assign(tlv + pos, tlv + pos + vn);
      pos += vn;
      return t;
    }
    case T_SEQ: {
      EN* s = c.pool.make(id);
      for (u32 i = 0; i < n.kid_cnt; ++i) {
        EN* child = decode_tlv(c, kKids[n.kid_off + i], tlv, len, pos);
        if (child == nullptr) {
          c.pool.release(s);
          return nullptr;
        }
        s->kids.push_back(child);
      }
      return s;
    }
    case T_OPT: {
      if (pos >= len) break;
      const u8 present = tlv[pos++];
      EN* o = c.pool.make(id);
      if (present != 0) {
        EN* child = decode_tlv(c, kKids[n.kid_off], tlv, len, pos);
        if (child == nullptr) {
          c.pool.release(o);
          return nullptr;
        }
        o->kids.push_back(child);
      } else {
        o->present = false;
      }
      return o;
    }
    case T_REP:
    case T_TAB: {
      if (len - pos < 4) break;
      const u32 cnt = get_u32(tlv + pos);
      pos += 4;
      EN* rep = c.pool.make(id);
      for (u32 i = 0; i < cnt; ++i) {
        EN* child = decode_tlv(c, kKids[n.kid_off], tlv, len, pos);
        if (child == nullptr) {
          c.pool.release(rep);
          return nullptr;
        }
        rep->kids.push_back(child);
      }
      return rep;
    }
    default:
      break;
  }
  mfail(c, pos);  // corrupt tree interchange
  return nullptr;
}

}  // namespace
}  // namespace po_native

// ------------------------------------------------------------ C entry ABI --

extern "C" {

std::uint32_t po_native_abi_version(void) { return 1u; }

std::uint64_t po_native_fingerprint(void) {
  return po_native::kUnitFingerprint;
}

const char* po_native_protocol(void) { return po_native::kProtocolName; }

// status: 0 parsed (sink receives the raw wire tree as TLV, *consumed set
// in prefix mode), 1 truncated (*need set), 2 malformed. *err_off is the
// wire offset of the failure, SIZE_MAX when none applies.
std::int32_t po_native_parse(const std::uint8_t* data, std::size_t len,
                             std::int32_t prefix, std::size_t* consumed,
                             std::size_t* need, std::size_t* err_off,
                             void (*sink)(void*, const std::uint8_t*,
                                          std::size_t),
                             void* sink_ctx) {
  using namespace po_native;
  Ctx& c = g_ctx;
  c.err = Err{};
  Parser parser(c, prefix != 0);
  std::size_t local_consumed = 0;
  EN* root = parser.parse(data, len, &local_consumed);
  if (root == nullptr) {
    if (need != nullptr) *need = c.err.need;
    if (err_off != nullptr) *err_off = c.err.off;
    return c.err.status == 1 ? 1 : 2;
  }
  c.tlv.clear();
  encode_tlv(root, c.tlv);
  c.pool.release(root);
  if (consumed != nullptr) *consumed = local_consumed;
  sink(sink_ctx, c.tlv.data(), c.tlv.size());
  return 0;
}

// `tlv` describes a forward-transformed wire tree; the unit runs the holder
// fixpoint with `msg_seed` and emits the final wire image through `sink`.
// status: 0 ok, 2 malformed.
std::int32_t po_native_fix_emit(const std::uint8_t* tlv, std::size_t tlv_len,
                                std::uint64_t msg_seed,
                                void (*sink)(void*, const std::uint8_t*,
                                             std::size_t),
                                void* sink_ctx) {
  using namespace po_native;
  Ctx& c = g_ctx;
  c.err = Err{};
  std::size_t pos = 0;
  EN* root = decode_tlv(c, kRoot, tlv, tlv_len, pos);
  if (root == nullptr) return 2;
  if (pos != tlv_len) {
    c.pool.release(root);
    return 2;
  }
  if (!fix_holders(c, root, msg_seed)) {
    c.pool.release(root);
    return 2;
  }
  c.out.clear();
  if (!emit_node(c, root, c.out)) {
    c.pool.release(root);
    return 2;
  }
  c.pool.release(root);
  sink(sink_ctx, c.out.data(), c.out.size());
  return 0;
}

}  // extern "C"
)neng";

}  // namespace

std::uint64_t native_fingerprint(const ObfuscatedProtocol& protocol) {
  const Graph& wire = protocol.wire_graph();
  Fnv1a h;
  h.mix(std::string_view(wire.protocol_name()));
  h.mix(static_cast<std::uint64_t>(kNativeAbiVersion));
  h.mix(static_cast<std::uint64_t>(wire.root()));
  h.mix(static_cast<std::uint64_t>(wire.arena_size()));
  for (NodeId id = 0; id < wire.arena_size(); ++id) {
    const Node& n = wire.node(id);
    h.mix(static_cast<std::uint64_t>(n.type));
    h.mix(static_cast<std::uint64_t>(n.boundary));
    h.mix(static_cast<std::uint64_t>(n.encoding));
    h.mix(static_cast<std::uint64_t>(n.mirrored));
    h.mix(static_cast<std::uint64_t>(n.fixed_size));
    h.mix(static_cast<std::uint64_t>(n.ref));
    h.mix(BytesView(n.delimiter));
    h.mix(static_cast<std::uint64_t>(n.condition.kind));
    h.mix(static_cast<std::uint64_t>(n.condition.ref));
    for (const Bytes& v : n.condition.values) h.mix(BytesView(v));
    h.mix(static_cast<std::uint64_t>(n.children.size()));
    for (const NodeId child : n.children) {
      h.mix(static_cast<std::uint64_t>(child));
    }
  }
  const Journal& journal = protocol.journal();
  h.mix(static_cast<std::uint64_t>(journal.size()));
  for (const AppliedTransform& e : journal) {
    h.mix(static_cast<std::uint64_t>(e.kind));
    h.mix(static_cast<std::uint64_t>(e.target));
    h.mix(static_cast<std::uint64_t>(e.created_seq));
    h.mix(static_cast<std::uint64_t>(e.created_a));
    h.mix(static_cast<std::uint64_t>(e.created_b));
    h.mix(static_cast<std::uint64_t>(e.created_c));
    h.mix(static_cast<std::uint64_t>(e.created_d));
    h.mix(static_cast<std::uint64_t>(e.element));
    h.mix(BytesView(e.key));
    h.mix(static_cast<std::uint64_t>(e.split_point));
    h.mix(static_cast<std::uint64_t>(e.pad_index));
    h.mix(static_cast<std::uint64_t>(e.pad_size));
    h.mix(static_cast<std::uint64_t>(e.child_i));
    h.mix(static_cast<std::uint64_t>(e.child_j));
    h.mix(static_cast<std::uint64_t>(e.len_width));
    h.mix(static_cast<std::uint64_t>(e.len_ascii));
  }
  const HolderTable holders =
      build_holder_table(protocol.original(), journal);
  h.mix(static_cast<std::uint64_t>(holders.holders.size()));
  for (const HolderInfo& info : holders.holders) {
    h.mix(static_cast<std::uint64_t>(info.origin));
    h.mix(static_cast<std::uint64_t>(info.top));
    h.mix(static_cast<std::uint64_t>(info.chain.size()));
    for (const std::size_t idx : info.chain) {
      h.mix(static_cast<std::uint64_t>(idx));
    }
  }
  return h.value();
}

std::string generate_native_section(const ObfuscatedProtocol& protocol) {
  std::ostringstream out;
  out << kSectionPrologue;
  emit_tables(out, protocol, native_fingerprint(protocol));
  out << kEngineA << kEngineB;
  return out.str();
}

}  // namespace protoobf
