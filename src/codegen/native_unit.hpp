// Native serving ABI section of the generated unit.
//
// generate_cpp() appends this section to every generated translation unit:
// a self-contained C++17 engine (no protoobf headers — the unit must build
// with nothing but a system compiler) plus constexpr tables describing the
// wire graph, the transformation journal and the holder lineage. Compiled
// with `c++ -O2 -fPIC -shared` and dlopen'd (src/native), the unit serves
// the wire-syntax half of the hot path:
//
//   po_native_parse     wire bytes -> raw (untransformed) wire tree as TLV
//   po_native_fix_emit  forward-transformed wire tree as TLV -> wire bytes
//                       (holder fixpoint + emission inside the unit)
//
// The host keeps the transform algebra on logical trees (inverse_all /
// canonicalize / fill_consts on the parse side, canonicalize / forward_all
// on the serialize side), so parse results are bit-identical to the
// interpreter by construction and serialization is property-tested
// byte-identical (tests/native_test.cpp).
//
// The engine is a transliteration of src/runtime/{parse,derive,emit}.cpp
// and src/transform/exec.cpp over the embedded tables; any semantic change
// there must be mirrored here (the fuzz agreement arm and the byte-identity
// suite are the tripwires).
#pragma once

#include <cstdint>
#include <string>

#include "runtime/protocol.hpp"

namespace protoobf {

/// Bumped whenever the po_native_* contract changes shape. Units report
/// theirs through po_native_abi_version(); loaders reject mismatches.
inline constexpr std::uint32_t kNativeAbiVersion = 1;

/// Identity of a protocol's native tables: FNV-1a 64 over a canonical dump
/// of the protocol name, wire-graph arena, root, journal and holder table.
/// Embedded in the generated unit (po_native_fingerprint()) and recomputed
/// by the loader, so a stale or corrupted cached .so can never serve a
/// different protocol than the one it was compiled for.
std::uint64_t native_fingerprint(const ObfuscatedProtocol& protocol);

/// The native section appended by generate_cpp(): tables + engine +
/// extern "C" entry points. Self-contained and C++17-clean.
std::string generate_native_section(const ObfuscatedProtocol& protocol);

}  // namespace protoobf
