#include "core/protoobf.hpp"

#include <algorithm>

namespace protoobf {

InstPtr make_skeleton(const Graph& graph, NodeId node) {
  const Node& n = graph.node(node);
  switch (n.type) {
    case NodeType::Terminal:
      return ast::deferred(node);
    case NodeType::Sequence: {
      std::vector<InstPtr> children;
      children.reserve(n.children.size());
      for (NodeId child : n.children) {
        children.push_back(make_skeleton(graph, child));
      }
      return ast::composite(node, std::move(children));
    }
    case NodeType::Optional:
      return ast::absent(node);
    case NodeType::Repetition:
    case NodeType::Tabular:
      return ast::composite(node, {});
  }
  return nullptr;
}

Message::Message(const Graph& g1)
    : graph_(&g1), root_(make_skeleton(g1, g1.root())) {}

namespace {

/// Walks the instance tree along the schema ancestor chain of `target`,
/// presenting absent optionals when `materialize` is set. Fails at
/// repetitions (an explicit indexed path is required there).
Expected<Inst*> walk_by_schema(const Graph& g, Inst& root, NodeId target,
                               bool materialize) {
  std::vector<NodeId> chain = g.ancestors(target);  // target's parents, root last
  std::reverse(chain.begin(), chain.end());
  chain.push_back(target);
  if (chain.front() != root.schema) {
    return Unexpected("node is not under the message root");
  }
  Inst* cursor = &root;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const Node& here = g.node(cursor->schema);
    if (here.type == NodeType::Repetition || here.type == NodeType::Tabular) {
      return Unexpected("field '" + g.node(target).name +
                        "' sits under a repetition; use an indexed path");
    }
    if (here.type == NodeType::Optional && !cursor->present) {
      if (!materialize) {
        return Unexpected("optional '" + here.name + "' is absent");
      }
      cursor->present = true;
      cursor->children.clear();
      cursor->children.push_back(make_skeleton(g, here.children[0]));
    }
    Inst* next = nullptr;
    for (auto& child : cursor->children) {
      if (child->schema == chain[i]) {
        next = child.get();
        break;
      }
    }
    if (next == nullptr) {
      return Unexpected("internal: skeleton missing node '" +
                        g.node(chain[i]).name + "'");
    }
    cursor = next;
  }
  return cursor;
}

}  // namespace

Expected<Inst*> Message::resolve(std::string_view path) const {
  return const_cast<Message*>(this)->locate(path, /*materialize=*/false);
}

Expected<Inst*> Message::locate(std::string_view path, bool materialize) {
  if (Inst* found = ast::find_path(*graph_, *root_, path)) return found;

  // Anchored convenience resolution: the first segment may be any uniquely
  // named node of the specification ("rh_addr", "wrs_values[2].wrs_reg",
  // "headers[0].header.name"), with optionals on the way materialized.
  const std::size_t dot = path.find('.');
  std::string_view head = path.substr(0, dot);
  const std::string_view rest =
      dot == std::string_view::npos ? std::string_view{} : path.substr(dot + 1);

  long index = -1;
  const std::size_t bracket = head.find('[');
  if (bracket != std::string_view::npos && head.back() == ']') {
    index = std::strtol(
        std::string(head.substr(bracket + 1, head.size() - bracket - 2))
            .c_str(),
        nullptr, 10);
    head = head.substr(0, bracket);
  }

  const auto id = graph_->find_by_name(head);
  if (!id) {
    return Unexpected("path '" + std::string(path) + "' does not resolve");
  }
  auto anchor = walk_by_schema(*graph_, *root_, *id, materialize);
  if (!anchor) return anchor;
  Inst* cursor = *anchor;
  if (index >= 0) {
    const Node& n = graph_->node(cursor->schema);
    if (n.type != NodeType::Repetition && n.type != NodeType::Tabular) {
      // Built up in place: `"'" + std::string(head)` takes a rvalue-insert
      // path that GCC 12's -Wrestrict misdiagnoses under -O2 (PR 105329).
      std::string msg = "'";
      msg += head;
      msg += "' is not repeated";
      return Unexpected(std::move(msg));
    }
    if (static_cast<std::size_t>(index) >= cursor->children.size()) {
      return Unexpected("index " + std::to_string(index) + " out of range in '" +
                        std::string(head) + "'");
    }
    cursor = cursor->children[static_cast<std::size_t>(index)].get();
  }
  if (rest.empty()) return cursor;
  if (Inst* found = ast::find_path(*graph_, *cursor, rest)) return found;
  // The remainder may itself start with the cursor's node name
  // ("headers[0].header.name" anchors at the element "header").
  if (Inst* found = ast::find_path(
          *graph_, *cursor,
          std::string(graph_->node(cursor->schema).name) + "." +
              std::string(rest))) {
    return found;
  }
  return Unexpected("path '" + std::string(path) + "' does not resolve");
}

Status Message::set(std::string_view path, Bytes value) {
  auto inst = locate(path, /*materialize=*/true);
  if (!inst) return Unexpected(inst.error());
  const Node& n = graph_->node((*inst)->schema);
  if (n.type != NodeType::Terminal) {
    return Unexpected("path '" + std::string(path) + "' is not a terminal");
  }
  (*inst)->value = std::move(value);
  return Status::success();
}

Status Message::set_text(std::string_view path, std::string_view text) {
  return set(path, to_bytes(text));
}

Status Message::set_uint(std::string_view path, std::uint64_t value) {
  auto inst = locate(path, /*materialize=*/true);
  if (!inst) return Unexpected(inst.error());
  const Node& n = graph_->node((*inst)->schema);
  if (n.type != NodeType::Terminal) {
    return Unexpected("path '" + std::string(path) + "' is not a terminal");
  }
  if (n.encoding == Encoding::AsciiDec) {
    (*inst)->value = ascii_dec_encode(
        value, n.boundary == BoundaryKind::Fixed ? n.fixed_size : 0);
    return Status::success();
  }
  if (n.boundary != BoundaryKind::Fixed) {
    return Unexpected("set_uint on non-fixed binary field '" + n.name + "'");
  }
  (*inst)->value = be_encode(value, n.fixed_size);
  return Status::success();
}

Status Message::set_present(std::string_view path, bool present) {
  auto inst = locate(path, /*materialize=*/present);
  if (!inst) return Unexpected(inst.error());
  Inst& opt = **inst;
  const Node& n = graph_->node(opt.schema);
  if (n.type != NodeType::Optional) {
    return Unexpected("path '" + std::string(path) + "' is not optional");
  }
  if (present && !opt.present) {
    opt.present = true;
    opt.children.clear();
    opt.children.push_back(make_skeleton(*graph_, n.children[0]));
  } else if (!present) {
    opt.present = false;
    opt.children.clear();
  }
  return Status::success();
}

Expected<std::size_t> Message::append(std::string_view path) {
  auto inst = locate(path, /*materialize=*/true);
  if (!inst) return Unexpected(inst.error());
  Inst& rep = **inst;
  const Node& n = graph_->node(rep.schema);
  if (n.type != NodeType::Repetition && n.type != NodeType::Tabular) {
    return Unexpected("path '" + std::string(path) + "' is not repeated");
  }
  rep.children.push_back(make_skeleton(*graph_, n.children[0]));
  return rep.children.size() - 1;
}

Expected<Bytes> Message::get(std::string_view path) const {
  auto inst = resolve(path);
  if (!inst) return Unexpected(inst.error());
  return (*inst)->value;
}

Expected<std::string> Message::get_text(std::string_view path) const {
  auto bytes = get(path);
  if (!bytes) return Unexpected(bytes.error());
  return to_text(*bytes);
}

Expected<std::uint64_t> Message::get_uint(std::string_view path) const {
  auto inst = resolve(path);
  if (!inst) return Unexpected(inst.error());
  const Node& n = graph_->node((*inst)->schema);
  if (n.encoding == Encoding::AsciiDec) {
    auto value = ascii_dec_decode((*inst)->value);
    if (!value) return Unexpected("field is not a decimal number");
    return *value;
  }
  if ((*inst)->value.size() > 8) return Unexpected("field wider than 8 bytes");
  return be_decode((*inst)->value);
}

}  // namespace protoobf
