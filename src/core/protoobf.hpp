// ProtoObf — public entry point of the framework (paper §IV, Fig. 2).
//
// Typical use:
//
//   auto graph = protoobf::Framework::load_spec(kMyProtocolSpec).value();
//   protoobf::ObfuscationConfig config;
//   config.seed = 42;          // regenerate with a new seed at any time
//   config.per_node = 2;       // obfuscations per node (paper: 0..4)
//   auto protocol =
//       protoobf::Framework::generate(graph, config).value();
//
//   protoobf::Message msg(protocol.original());
//   msg.set_uint("transaction", 7);
//   msg.set("payload", protoobf::to_bytes("hello"));
//   auto wire = protocol.serialize(msg.root(), /*msg_seed=*/1).value();
//   auto back = protocol.parse(wire).value();
//
// The Message accessor interface is defined entirely by the *original*
// specification: application code is identical no matter which
// transformations were selected — the paper's requirement that "building a
// message should use the same interface, even in presence of obfuscations".
#pragma once

#include <string_view>

#include "graph/dot.hpp"
#include "graph/graph.hpp"
#include "runtime/protocol.hpp"
#include "spec/parser.hpp"
#include "transform/engine.hpp"
#include "util/result.hpp"

namespace protoobf {

class Framework {
 public:
  /// Parses and validates a ProtoSpec text into a message format graph G1.
  static Expected<Graph> load_spec(std::string_view spec_text) {
    return parse_spec(spec_text);
  }

  /// Applies the configured obfuscation rounds and returns the runtime
  /// serializer/parser pair for the transformed protocol.
  static Expected<ObfuscatedProtocol> generate(const Graph& g1,
                                               const ObfuscationConfig& config) {
    return ObfuscatedProtocol::create(g1, config);
  }
};

/// Stable, path-addressed accessor facade over a logical message tree.
///
/// Paths are dotted node names with optional element indices:
///   "adu.tail.fn"            — nested field
///   "headers[2].header.name" — third element of a repetition
/// A unique trailing segment is enough ("fn" instead of the full path) as
/// long as it is unambiguous in the specification.
class Message {
 public:
  explicit Message(const Graph& g1);

  /// Raw bytes setter. Creates optional subtrees on demand when the path
  /// crosses a present-able Optional.
  Status set(std::string_view path, Bytes value);
  Status set_text(std::string_view path, std::string_view text);

  /// Encodes per the terminal's declared width and encoding.
  Status set_uint(std::string_view path, std::uint64_t value);

  /// Marks an Optional present (materializing its subtree) or absent.
  Status set_present(std::string_view path, bool present);

  /// Appends one element to a Repetition/Tabular; returns its index.
  Expected<std::size_t> append(std::string_view path);

  Expected<Bytes> get(std::string_view path) const;
  Expected<std::string> get_text(std::string_view path) const;
  Expected<std::uint64_t> get_uint(std::string_view path) const;

  Inst& root() { return *root_; }
  const Inst& root() const { return *root_; }
  const Graph& graph() const { return *graph_; }

 private:
  Expected<Inst*> resolve(std::string_view path) const;
  Expected<Inst*> locate(std::string_view path, bool materialize);

  const Graph* graph_;
  InstPtr root_;
};

/// Builds the skeleton instance of a (sub)graph: empty terminals, absent
/// optionals, zero-element repetitions.
InstPtr make_skeleton(const Graph& graph, NodeId node);

}  // namespace protoobf
