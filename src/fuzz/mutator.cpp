#include "fuzz/mutator.hpp"

#include <algorithm>
#include <string>

#include "fuzz/random_message.hpp"

namespace protoobf::fuzz {
namespace {

// Strategy table. Order is load-bearing only for the names; selection is
// uniform over the entries.
enum Strategy : std::size_t {
  kBitFlipEdge,
  kByteFlip,
  kLengthSkew,
  kDelimCorrupt,
  kDelimPrefix,
  kTruncate,
  kSplice,
  kGarbageAppend,
  kValid,
  kStrategyCount,
};

const char* kStrategyNames[kStrategyCount] = {
    "bit-flip-edge",  "byte-flip",      "length-skew",
    "delim-corrupt",  "delim-prefix",   "truncate",
    "splice",         "garbage-append", "valid",
};

std::vector<std::size_t> edges_of(const SeedFrame& seed) {
  std::vector<std::size_t> edges;
  edges.push_back(0);
  for (const FieldSpan& span : seed.spans) {
    edges.push_back(span.offset);
    edges.push_back(span.offset + span.length);
  }
  edges.push_back(seed.wire.size());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  // A span can in principle report past-the-end offsets under exotic
  // transformation stacks; keep the anchors inside the wire.
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [&](std::size_t e) { return e > seed.wire.size(); }),
              edges.end());
  return edges;
}

}  // namespace

Expected<WireMutator> WireMutator::create(const ObfuscatedProtocol& protocol,
                                          std::uint64_t rng_seed,
                                          Config config) {
  WireMutator m(protocol, rng_seed, config);
  if (m.seeds_.empty()) {
    return Unexpected(
        "wire mutator: no serializable random message found for '" +
        protocol.original().protocol_name() + "'");
  }
  return m;
}

WireMutator::WireMutator(const ObfuscatedProtocol& protocol,
                         std::uint64_t rng_seed, Config config)
    : protocol_(&protocol), config_(config), rng_(rng_seed) {
  const Graph& g1 = protocol.original();
  const Graph& wire_graph = protocol.wire_graph();

  // Mutation bases: random valid messages with their region accounting.
  for (std::size_t i = 0; i < config_.seed_frames; ++i) {
    for (std::size_t attempt = 0; attempt < config_.draw_tries; ++attempt) {
      InstPtr msg = config_.generator ? config_.generator(g1, rng_)
                                      : random_message(g1, rng_);
      SeedFrame seed;
      auto wire = protocol.serialize(*msg, config_.msg_seed0 + i, &seed.spans);
      if (!wire.ok()) continue;  // draw violated a constraint; redraw
      seed.wire = std::move(*wire);
      seed.edges = edges_of(seed);
      for (std::size_t s = 0; s < seed.spans.size(); ++s) {
        const NodeId schema = seed.spans[s].schema;
        if (wire_graph.is_length_target(schema) ||
            wire_graph.is_counter_target(schema)) {
          seed.holder_spans.push_back(s);
        }
      }
      seeds_.push_back(std::move(seed));
      break;
    }
  }

  // Delimiter/stop-marker byte strings of the wire format, longest first so
  // prefix-collision mutants prefer the multi-byte markers (the ambiguous
  // ones).
  for (const NodeId id : wire_graph.dfs_order()) {
    const Bytes& d = wire_graph.node(id).delimiter;
    if (d.empty()) continue;
    if (std::find(delimiters_.begin(), delimiters_.end(), d) ==
        delimiters_.end()) {
      delimiters_.push_back(d);
    }
  }
  std::sort(delimiters_.begin(), delimiters_.end(),
            [](const Bytes& a, const Bytes& b) { return a.size() > b.size(); });
}

Mutant WireMutator::next() {
  // Strategies can be inapplicable to a given base (no holders to skew, no
  // delimiter occurrence to corrupt); redraw a few times, then fall back to
  // the always-applicable byte flip.
  for (int tries = 0; tries < 8; ++tries) {
    const std::size_t strategy = rng_.below(kStrategyCount);
    const SeedFrame& seed = seeds_[rng_.below(seeds_.size())];
    Mutant out;
    if (apply(strategy, seed, out)) return out;
  }
  const SeedFrame& seed = seeds_[rng_.below(seeds_.size())];
  Mutant out;
  apply(kByteFlip, seed, out);
  return out;
}

bool WireMutator::apply(std::size_t strategy, const SeedFrame& seed,
                        Mutant& out) {
  const Bytes& wire = seed.wire;
  out.strategy = kStrategyNames[strategy];
  switch (strategy) {
    case kBitFlipEdge: {
      // Flip one bit in the byte at (or just before) a region edge: the
      // first byte of a field, or the last byte of the one before it.
      if (wire.empty()) return false;
      std::size_t pos = seed.edges[rng_.below(seed.edges.size())];
      if (pos >= wire.size() || (pos > 0 && rng_.chance(0.5))) --pos;
      out.wire = wire;
      out.wire[pos] ^= static_cast<Byte>(1u << rng_.below(8));
      return true;
    }
    case kByteFlip: {
      if (wire.empty()) return false;
      out.wire = wire;
      out.wire[rng_.below(out.wire.size())] ^=
          static_cast<Byte>(rng_.between(1, 255));
      return true;
    }
    case kLengthSkew: {
      // Corrupt a length/counter holder's wire bytes — the canonical
      // structure attack. Even transformed holders sit somewhere on the
      // wire; skewing those bytes skews the recovered logical value.
      if (seed.holder_spans.empty()) return false;
      const FieldSpan& span =
          seed.spans[seed.holder_spans[rng_.below(seed.holder_spans.size())]];
      if (span.length == 0 || span.offset + span.length > wire.size()) {
        return false;
      }
      out.wire = wire;
      switch (rng_.below(4)) {
        case 0:  // +1 on the low-order byte
          out.wire[span.offset + span.length - 1] =
              static_cast<Byte>(out.wire[span.offset + span.length - 1] + 1);
          break;
        case 1:  // -1 on the low-order byte
          out.wire[span.offset + span.length - 1] =
              static_cast<Byte>(out.wire[span.offset + span.length - 1] - 1);
          break;
        case 2:  // saturate high: a length pointing far past the buffer
          for (std::size_t i = 0; i < span.length; ++i) {
            out.wire[span.offset + i] = 0xff;
          }
          break;
        default:  // zero: empty regions where content was expected
          for (std::size_t i = 0; i < span.length; ++i) {
            out.wire[span.offset + i] = 0x00;
          }
          break;
      }
      return true;
    }
    case kDelimCorrupt: {
      // Corrupt one byte of an actual delimiter/stop-marker occurrence so
      // the scan that expects it runs into the following field instead.
      if (delimiters_.empty() || wire.empty()) return false;
      const Bytes& d = delimiters_[rng_.below(delimiters_.size())];
      if (d.empty() || d.size() > wire.size()) return false;
      std::vector<std::size_t> hits;
      for (std::size_t i = 0; i + d.size() <= wire.size(); ++i) {
        if (std::equal(d.begin(), d.end(), wire.begin() + i)) hits.push_back(i);
      }
      if (hits.empty()) return false;
      const std::size_t at = hits[rng_.below(hits.size())];
      out.wire = wire;
      out.wire[at + rng_.below(d.size())] ^=
          static_cast<Byte>(rng_.between(1, 255));
      return true;
    }
    case kDelimPrefix: {
      // Prefix collision: plant bytes that *start* like a delimiter (the
      // proper prefix of a multi-byte marker, the marker itself for 1-byte
      // ones) inside a field region, so incremental matchers see a partial
      // match against the soft end — the undecided-stop-marker path.
      if (delimiters_.empty() || wire.empty()) return false;
      const Bytes& d = delimiters_[rng_.below(delimiters_.size())];
      if (d.empty()) return false;
      const std::size_t take =
          d.size() > 1 ? 1 + rng_.below(d.size() - 1) : d.size();
      const std::size_t at = rng_.below(wire.size() + 1);
      out.wire.clear();
      out.wire.reserve(wire.size() + take);
      out.wire.insert(out.wire.end(), wire.begin(),
                      wire.begin() + static_cast<std::ptrdiff_t>(at));
      out.wire.insert(out.wire.end(), d.begin(),
                      d.begin() + static_cast<std::ptrdiff_t>(take));
      out.wire.insert(out.wire.end(),
                      wire.begin() + static_cast<std::ptrdiff_t>(at),
                      wire.end());
      return true;
    }
    case kTruncate: {
      if (wire.empty()) return false;
      // Half the cuts land exactly on region edges (the interesting
      // places), half anywhere inside the wire.
      std::size_t cut;
      if (rng_.chance(0.5) && seed.edges.size() > 1) {
        cut = seed.edges[rng_.below(seed.edges.size() - 1)];
      } else {
        cut = rng_.below(wire.size());
      }
      out.wire.assign(wire.begin(),
                      wire.begin() + static_cast<std::ptrdiff_t>(cut));
      return true;
    }
    case kSplice: {
      // Front of one valid frame + tail of another, both cut on edges:
      // structurally plausible on each side of the joint, inconsistent
      // across it (holders of frame A delimiting content of frame B).
      const SeedFrame& other = seeds_[rng_.below(seeds_.size())];
      if (seed.edges.size() < 2 || other.edges.size() < 2) return false;
      const std::size_t cut_a =
          seed.edges[1 + rng_.below(seed.edges.size() - 1)];
      const std::size_t cut_b =
          other.edges[rng_.below(other.edges.size() - 1)];
      out.wire.assign(wire.begin(),
                      wire.begin() + static_cast<std::ptrdiff_t>(cut_a));
      out.wire.insert(out.wire.end(),
                      other.wire.begin() + static_cast<std::ptrdiff_t>(cut_b),
                      other.wire.end());
      return true;
    }
    case kGarbageAppend: {
      // Trailing garbage after a complete frame: a prefix parse must stop
      // at the message end and leave the garbage unconsumed.
      out.wire = wire;
      const std::size_t extra = rng_.between(1, 16);
      for (std::size_t i = 0; i < extra; ++i) out.wire.push_back(rng_.byte());
      return true;
    }
    case kValid: {
      out.wire = wire;
      return true;
    }
    default:
      return false;
  }
}

std::vector<Mutant> WireMutator::truncation_sweep(std::size_t which) const {
  std::vector<Mutant> cuts;
  const SeedFrame& seed = seeds_[which];
  for (const std::size_t edge : seed.edges) {
    if (edge >= seed.wire.size()) continue;
    Mutant m;
    m.strategy = "truncate-sweep";
    m.wire.assign(seed.wire.begin(),
                  seed.wire.begin() + static_cast<std::ptrdiff_t>(edge));
    cuts.push_back(std::move(m));
  }
  return cuts;
}

}  // namespace protoobf::fuzz
