// Structure-aware wire mutation (the grammar-aware half of the fuzz loop).
//
// Random byte corruption of an obfuscated wire image almost always dies in
// the first reference inversion — it exercises one error path over and
// over. Per the protocol-fuzzing survey (PAPERS.md), the mutations that
// find parser bugs are the ones aimed *at the structure*: a skewed length
// holder, a corrupted delimiter, a stop marker that suddenly collides with
// element data, a frame cut exactly on a region edge, two valid frames
// spliced mid-field.
//
// A WireMutator recovers that structure without parsing anything by hand:
// it draws random valid messages (fuzz/random_message.hpp), serializes
// them through the protocol under test, and keeps the ground-truth region
// accounting the emitter produces — the FieldSpan wire map, the same
// region ends parse_wire_prefix tracks as soft/hard boundaries on the way
// back in. Field starts/ends become mutation anchors; the uncovered gaps
// between terminal spans are exactly the delimiter/stop-marker/pad bytes;
// the wire graph names the delimiter byte strings worth colliding with.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/emit.hpp"
#include "runtime/protocol.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace protoobf::fuzz {

/// A valid wire image kept as a mutation base, with its recovered
/// structure: the ground-truth terminal spans and the sorted, unique set
/// of region edges (0, every span start/end, the wire size).
struct SeedFrame {
  Bytes wire;
  std::vector<FieldSpan> spans;
  std::vector<std::size_t> edges;
  std::vector<std::size_t> holder_spans;  // span indices of length/counter
                                          // holders (length-skew targets)
};

/// One fuzz input: the mutated bytes plus the strategy that produced them
/// (static string, for failure reports and corpus notes).
struct Mutant {
  Bytes wire;
  const char* strategy = "";
};

class WireMutator {
 public:
  struct Config {
    std::size_t seed_frames = 8;   // valid frames kept as mutation bases
    std::size_t draw_tries = 64;   // random-message draws per kept frame
    std::uint64_t msg_seed0 = 0x5eed;  // serialization seed of frame 0
    // Message generator for the seed frames; null uses the generic
    // fuzz::random_message. Heavily constrained protocols (whose generic
    // random draws rarely serialize) supply their own.
    std::function<InstPtr(const Graph&, Rng&)> generator;
  };

  /// Compiles the mutation bases. Fails when the generator cannot produce
  /// a single serializable message for the spec (heavily constrained
  /// protocols; the error names the last serializer rejection).
  static Expected<WireMutator> create(const ObfuscatedProtocol& protocol,
                                      std::uint64_t rng_seed, Config config);
  static Expected<WireMutator> create(const ObfuscatedProtocol& protocol,
                                      std::uint64_t rng_seed) {
    return create(protocol, rng_seed, Config());
  }

  /// One mutant per call; strategies are drawn at random. Occasionally
  /// returns an unmutated valid frame ("valid" strategy) so the
  /// must-still-parse oracle stays exercised.
  Mutant next();

  /// Deterministic truncation sweep: seed frame `which` cut at every
  /// region edge (message end excluded — that cut is the frame itself).
  /// Every resulting input must be Truncated or a parsed proper prefix,
  /// never Malformed: the taxonomy-correctness oracle.
  std::vector<Mutant> truncation_sweep(std::size_t which) const;

  const std::vector<SeedFrame>& seeds() const { return seeds_; }
  const std::vector<Bytes>& delimiters() const { return delimiters_; }

 private:
  WireMutator(const ObfuscatedProtocol& protocol, std::uint64_t rng_seed,
              Config config);

  bool apply(std::size_t strategy, const SeedFrame& seed, Mutant& out);

  const ObfuscatedProtocol* protocol_;
  Config config_;
  Rng rng_;
  std::vector<SeedFrame> seeds_;
  std::vector<Bytes> delimiters_;  // delimiter/stop-marker strings of the
                                   // wire graph, longest first
};

}  // namespace protoobf::fuzz
