#include "fuzz/random_message.hpp"

namespace protoobf::fuzz {

std::unordered_set<NodeId> derived_nodes(const Graph& g) {
  std::unordered_set<NodeId> derived;
  for (const NodeId id : g.dfs_order()) {
    const Node& n = g.node(id);
    if (n.ref != kNoNode) derived.insert(n.ref);
  }
  return derived;
}

InstPtr random_instance(const Graph& g, NodeId id, Rng& rng,
                        const std::unordered_set<NodeId>& derived,
                        std::unordered_map<NodeId, const Inst*>& built) {
  const Node& n = g.node(id);
  InstPtr inst;
  switch (n.type) {
    case NodeType::Terminal: {
      inst = ast::deferred(id);
      if (!n.has_const && derived.count(id) == 0) {
        const std::size_t size =
            n.boundary == BoundaryKind::Fixed
                ? n.fixed_size
                : static_cast<std::size_t>(rng.between(1, 10));
        Bytes value(size);
        for (Byte& b : value) {
          b = n.encoding == Encoding::AsciiDec
                  ? static_cast<Byte>(rng.between('0', '9'))
                  : static_cast<Byte>(rng.between('a', 'z'));
        }
        inst->value = std::move(value);
      }
      break;
    }
    case NodeType::Sequence: {
      inst = std::make_unique<Inst>(id);
      for (const NodeId child : n.children) {
        inst->children.push_back(
            random_instance(g, child, rng, derived, built));
      }
      break;
    }
    case NodeType::Optional: {
      bool present = n.condition.kind == Condition::Kind::Always;
      if (!present) {
        const auto ref = built.find(n.condition.ref);
        if (ref != built.end()) {
          const Node& holder = g.node(n.condition.ref);
          present = n.condition.evaluate(
              holder.has_const ? holder.const_value : ref->second->value);
        }
      }
      if (present) {
        inst = std::make_unique<Inst>(id);
        inst->children.push_back(
            random_instance(g, n.children[0], rng, derived, built));
      } else {
        inst = ast::absent(id);
      }
      break;
    }
    case NodeType::Repetition:
    case NodeType::Tabular: {
      inst = std::make_unique<Inst>(id);
      const std::uint64_t count = rng.between(1, 2);
      for (std::uint64_t k = 0; k < count; ++k) {
        inst->children.push_back(
            random_instance(g, n.children[0], rng, derived, built));
      }
      break;
    }
  }
  built[id] = inst.get();
  return inst;
}

InstPtr random_message(const Graph& g, Rng& rng) {
  const std::unordered_set<NodeId> derived = derived_nodes(g);
  std::unordered_map<NodeId, const Inst*> built;
  return random_instance(g, g.root(), rng, derived, built);
}

}  // namespace protoobf::fuzz
