// Random valid logical messages for arbitrary specifications.
//
// The structure-aware fuzzer (src/fuzz/mutator.hpp) and the CLI's --emit /
// fuzz modes all need the same primitive: given any message format graph,
// draw a logical message the serializer will accept, without per-protocol
// builder code. The draw is best-effort — specs can constrain values in
// ways a blind generator cannot see (a delimiter occurring inside a drawn
// payload, say) — so callers retry rejected draws; letters/digits keep the
// common delimiter/stop-marker collisions rare.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "ast/ast.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace protoobf::fuzz {

/// Nodes referenced by some Length/Counter boundary: the serializer derives
/// their values, so a generator must leave them empty.
std::unordered_set<NodeId> derived_nodes(const Graph& g);

/// Random instance of the subtree rooted at `id`: letters/digits in user
/// terminals, derived and const fields left for the serializer, Optional
/// presence chosen consistently with its condition (conditions reference
/// fields that parse earlier, so the referenced value is already drawn when
/// the Optional is reached). `built` maps node ids to the instances drawn
/// so far; pass a fresh map per message.
InstPtr random_instance(const Graph& g, NodeId id, Rng& rng,
                        const std::unordered_set<NodeId>& derived,
                        std::unordered_map<NodeId, const Inst*>& built);

/// Whole-message convenience wrapper over random_instance().
InstPtr random_message(const Graph& g, Rng& rng);

}  // namespace protoobf::fuzz
