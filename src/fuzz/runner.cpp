#include "fuzz/runner.hpp"

#include <algorithm>

#include "ast/ast.hpp"
#include "util/bytes.hpp"

namespace protoobf::fuzz {
namespace {

using Clock = std::chrono::steady_clock;

Verdict verdict_of_error(const Error& error) {
  Verdict v;
  v.kind = error.truncated() ? Verdict::Kind::Truncated
                             : Verdict::Kind::Malformed;
  return v;
}

}  // namespace

const char* to_string(Verdict::Kind kind) {
  switch (kind) {
    case Verdict::Kind::Parsed:
      return "Parsed";
    case Verdict::Kind::Truncated:
      return "Truncated";
    case Verdict::Kind::Malformed:
      return "Malformed";
  }
  return "?";
}

FuzzRunner::FuzzRunner(const ObfuscatedProtocol& protocol, Config config)
    : protocol_(&protocol),
      config_(config),
      lint_(analysis::analyze(protocol)) {}

FuzzRunner::Attempt FuzzRunner::parse_full(BytesView wire) {
  Attempt a;
  if (config_.whole_message) {
    auto tree = protocol_->parse(wire, &arena_.scratch(), &arena_.scopes(),
                                 &arena_.nodes(), &arena_.derive());
    if (tree.ok()) {
      a.verdict.kind = Verdict::Kind::Parsed;
      a.verdict.consumed = wire.size();
      a.tree = std::move(*tree);
    } else {
      a.verdict = verdict_of_error(tree.error());
    }
    return a;
  }
  std::size_t consumed = 0;
  auto tree =
      protocol_->parse_prefix(wire, &consumed, &arena_.scratch(),
                              &arena_.scopes(), &arena_.nodes(),
                              &arena_.derive(), /*resume=*/nullptr);
  if (tree.ok()) {
    a.verdict.kind = Verdict::Kind::Parsed;
    a.verdict.consumed = consumed;
    a.tree = std::move(*tree);
  } else {
    a.verdict = verdict_of_error(tree.error());
  }
  return a;
}

/// parse_full through the native backend: same entry points, same arena
/// pools, the compiled unit doing the wire-syntax work.
FuzzRunner::Attempt FuzzRunner::parse_native(BytesView wire) {
  Attempt a;
  if (config_.whole_message) {
    auto tree = protocol_->parse_with(native_, wire, &arena_.scratch(),
                                      &arena_.scopes(), &arena_.nodes(),
                                      &arena_.derive());
    if (tree.ok()) {
      a.verdict.kind = Verdict::Kind::Parsed;
      a.verdict.consumed = wire.size();
      a.tree = std::move(*tree);
    } else {
      a.verdict = verdict_of_error(tree.error());
    }
    return a;
  }
  std::size_t consumed = 0;
  auto tree = protocol_->parse_prefix_with(native_, wire, &consumed,
                                           &arena_.scratch(), &arena_.scopes(),
                                           &arena_.nodes(), &arena_.derive());
  if (tree.ok()) {
    a.verdict.kind = Verdict::Kind::Parsed;
    a.verdict.consumed = consumed;
    a.tree = std::move(*tree);
  } else {
    a.verdict = verdict_of_error(tree.error());
  }
  return a;
}

FuzzRunner::Attempt FuzzRunner::replay_chunked(BytesView wire, Rng& chunks) {
  // A checkpoint left by a previous input describes a different buffer
  // front; it must never leak into this replay.
  resume_.invalidate();
  Attempt a;
  const auto start = Clock::now();
  std::size_t fed = 0;
  for (;;) {
    // Mostly tiny chunks (every byte a suspend/restore), sometimes a large
    // one (mixed progress within a single attempt).
    std::size_t step = chunks.chance(0.15) && wire.size() > fed
                           ? chunks.between(1, wire.size() - fed)
                           : chunks.between(1, config_.max_chunk);
    fed = std::min(wire.size(), fed + step);
    std::size_t consumed = 0;
    auto tree = protocol_->parse_prefix(
        wire.first(fed), &consumed, &arena_.scratch(), &arena_.scopes(),
        &arena_.nodes(), &arena_.derive(), &resume_);
    if (tree.ok()) {
      a.verdict.kind = Verdict::Kind::Parsed;
      a.verdict.consumed = consumed;
      a.tree = std::move(*tree);
      break;
    }
    if (!tree.error().truncated()) {
      a.verdict = verdict_of_error(tree.error());
      break;
    }
    if (fed >= wire.size()) {
      a.verdict.kind = Verdict::Kind::Truncated;
      break;
    }
    if (Clock::now() - start > config_.deadline) {
      a.verdict.kind = Verdict::Kind::Truncated;
      a.verdict.deadline_exceeded = true;
      break;
    }
  }
  // A truncated replay leaves a live checkpoint over `wire`'s front; the
  // next input is a different buffer, so the state is worthless now.
  resume_.invalidate();
  return a;
}

Verdict FuzzRunner::one_shot(BytesView wire) {
  return parse_full(wire).verdict;
}

Verdict FuzzRunner::resumed_replay(BytesView wire, Rng& chunks) {
  return replay_chunked(wire, chunks).verdict;
}

std::string FuzzRunner::check(BytesView wire, Rng& chunks) {
  ++totals_.inputs;
  const std::size_t live_before = arena_.nodes().stats().live;
  std::string violation;

  {
    const auto start = Clock::now();
    Attempt full = parse_full(wire);
    if (Clock::now() - start > config_.deadline) {
      violation = "one-shot parse exceeded the deadline";
    }

    switch (full.verdict.kind) {
      case Verdict::Kind::Parsed:
        ++totals_.parsed;
        break;
      case Verdict::Kind::Truncated:
        ++totals_.truncated;
        break;
      case Verdict::Kind::Malformed:
        ++totals_.malformed;
        break;
    }

    if (violation.empty() && !config_.whole_message) {
      Attempt replayed = replay_chunked(wire, chunks);
      if (replayed.verdict.deadline_exceeded) {
        violation = "chunked replay exceeded the deadline";
      } else if (!(replayed.verdict == full.verdict)) {
        violation = std::string("verdict disagreement: one-shot ") +
                    to_string(full.verdict.kind) + " (consumed " +
                    std::to_string(full.verdict.consumed) + ") vs resumed " +
                    to_string(replayed.verdict.kind) + " (consumed " +
                    std::to_string(replayed.verdict.consumed) + ")";
      } else if (full.verdict.kind == Verdict::Kind::Parsed &&
                 !ast::equal(*full.tree, *replayed.tree)) {
        violation = "resumed parse produced a different tree";
      }
    }

    if (violation.empty() && native_ != nullptr) {
      Attempt native = parse_native(wire);
      if (!(native.verdict == full.verdict)) {
        violation = std::string("native verdict disagreement: interpreter ") +
                    to_string(full.verdict.kind) + " (consumed " +
                    std::to_string(full.verdict.consumed) + ") vs native " +
                    to_string(native.verdict.kind) + " (consumed " +
                    std::to_string(native.verdict.consumed) + ")";
      } else if (full.verdict.kind == Verdict::Kind::Parsed &&
                 !ast::equal(*full.tree, *native.tree)) {
        violation = "native parse produced a different tree";
      }
    }
  }  // trees drop here, recycling their nodes

  if (violation.empty() &&
      arena_.nodes().stats().live != live_before) {
    violation = "parse leaked " +
                std::to_string(arena_.nodes().stats().live - live_before) +
                " pooled nodes";
  }
  if (!violation.empty()) {
    ++totals_.violations;
    // The static/dynamic cross-oracle: on a lint-clean spec the parser had
    // no excuse, so the bug is in the runtime — or in the analyzer that
    // called the spec clean. Either way the stamp routes the triage.
    violation += lint_.clean()
                     ? " [spec lint-clean: runtime or analyzer at fault]"
                     : " [spec lint: " + analysis::summary(lint_) + "]";
  }
  return violation;
}

}  // namespace protoobf::fuzz
