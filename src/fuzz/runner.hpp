// Adversarial parse harness: one input, every invariant.
//
// The parser's contract against hostile bytes has four clauses, and the
// FuzzRunner checks all of them for every input it is handed:
//
//   1. no crash — trivially, by running;
//   2. no hang — a per-input deadline is checked between parse attempts
//      (a wedged single attempt is caught by the test-level timeout);
//   3. bounded memory — trees drop back into the runner's arena pool after
//      every input (live-node count returns to zero), and slab growth over
//      a whole campaign stays flat instead of tracking the input count;
//   4. correct taxonomy, stable across delivery — the verdict (Parsed /
//      Truncated / Malformed, plus the consumed count and the tree itself)
//      of a one-shot parse of the full buffer must equal the verdict of
//      the same bytes trickled through randomized chunk splits with a
//      ParseResume continuing each truncated attempt. Disagreement means a
//      suspend/restore path lost or invented state.
//
// A fifth, optional clause: with a native backend attached
// (set_native_backend), every input is additionally parsed through the
// compiled generated unit and its verdict, consumed count and tree must
// agree with the interpreter's — the cross-implementation oracle that
// keeps the native engine honest against hostile bytes, not just valid
// round-trips.
//
// The runner also lints the protocol once at construction (the static
// analyzer over the same wire graph) and stamps every violation with that
// verdict: a taxonomy violation on a lint-clean spec means either the
// runtime or the analyzer is wrong — the static/dynamic cross-oracle.
//
// The runner owns one SessionArena and one ParseResume and reuses them
// across inputs — exactly the shape of a long-lived connection fed by an
// adversary, which is the scenario under test.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "analysis/analyzer.hpp"
#include "runtime/protocol.hpp"
#include "runtime/resume.hpp"
#include "session/arena.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace protoobf::fuzz {

struct Verdict {
  enum class Kind : std::uint8_t { Parsed, Truncated, Malformed };
  Kind kind = Kind::Malformed;
  std::size_t consumed = 0;  // Parsed: the message's wire size
  bool deadline_exceeded = false;

  bool operator==(const Verdict& other) const {
    return kind == other.kind &&
           (kind != Kind::Parsed || consumed == other.consumed);
  }
};

const char* to_string(Verdict::Kind kind);

class FuzzRunner {
 public:
  struct Config {
    // Per-input wall-clock budget across all parse attempts.
    std::chrono::milliseconds deadline{2000};
    // Chunk-split replay: most chunks are tiny (1..max_chunk bytes, the
    // suspend-heavy regime), a fraction are large to hit the mixed paths.
    std::size_t max_chunk = 7;
    // Non-stream-safe specs cannot prefix-parse: fall back to whole-buffer
    // parse() and skip the chunked replay.
    bool whole_message = false;
  };

  FuzzRunner(const ObfuscatedProtocol& protocol, Config config);
  explicit FuzzRunner(const ObfuscatedProtocol& protocol)
      : FuzzRunner(protocol, Config()) {}

  /// Full-buffer parse, no resume state involved.
  Verdict one_shot(BytesView wire);

  /// Trickles `wire` through randomized chunk splits, resuming each
  /// truncated attempt from its checkpoint. `chunks` drives the split
  /// sizes only, so a replay is reproducible from its seed.
  Verdict resumed_replay(BytesView wire, Rng& chunks);

  /// Runs every oracle on one input. Returns the empty string when all
  /// invariants hold, else a description of the violation (for the test's
  /// failure message and the corpus note).
  std::string check(BytesView wire, Rng& chunks);

  /// Accounting across the campaign.
  struct Totals {
    std::uint64_t inputs = 0;
    std::uint64_t parsed = 0;
    std::uint64_t truncated = 0;
    std::uint64_t malformed = 0;
    std::uint64_t violations = 0;
  };
  const Totals& totals() const { return totals_; }

  const ParseResume::Stats& resume_stats() const { return resume_.stats(); }
  SessionArena& arena() { return arena_; }
  const ObfuscatedProtocol& protocol() const { return *protocol_; }

  /// Attaches the native==interpreter agreement arm: every check() also
  /// parses through `backend` and compares verdict/consumed/tree. Pass
  /// nullptr to detach. The backend must outlive the runner.
  void set_native_backend(const WireBackend* backend) { native_ = backend; }

  /// The static analyzer's verdict on the protocol under test, computed
  /// once at construction. check() stamps violations with it: a violation
  /// on a lint-clean spec is a bug in the runtime or in the analyzer.
  const analysis::Report& lint() const { return lint_; }

 private:
  struct Attempt {
    Verdict verdict;
    InstPtr tree;  // Parsed only; drawn from arena_'s pool
  };

  Attempt parse_full(BytesView wire);
  Attempt parse_native(BytesView wire);
  Attempt replay_chunked(BytesView wire, Rng& chunks);

  const ObfuscatedProtocol* protocol_;
  Config config_;
  SessionArena arena_;
  ParseResume resume_;  // reused across replays; invalidated between inputs
  const WireBackend* native_ = nullptr;
  analysis::Report lint_;
  Totals totals_;
};

}  // namespace protoobf::fuzz
