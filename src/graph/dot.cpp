#include "graph/dot.hpp"

#include <sstream>

namespace protoobf {

namespace {

const char* type_tag(NodeType t) {
  switch (t) {
    case NodeType::Terminal: return "Te";
    case NodeType::Sequence: return "S";
    case NodeType::Optional: return "O";
    case NodeType::Repetition: return "R";
    case NodeType::Tabular: return "Ta";
  }
  return "?";
}

std::string boundary_tag(const Graph& g, const Node& n) {
  switch (n.boundary) {
    case BoundaryKind::Fixed:
      return "F(" + std::to_string(n.fixed_size) + ")";
    case BoundaryKind::Delimited:
      return "De";
    case BoundaryKind::Length:
      return "L(" + g.node(n.ref).name + ")";
    case BoundaryKind::Counter:
      return "C(" + g.node(n.ref).name + ")";
    case BoundaryKind::End:
      return "E";
    case BoundaryKind::Delegated:
      return "Dgt";
    case BoundaryKind::Half:
      return "H";
  }
  return "?";
}

}  // namespace

std::string to_dot(const Graph& graph) {
  std::ostringstream out;
  out << "digraph \"" << graph.protocol_name() << "\" {\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId id : graph.dfs_order()) {
    const Node& n = graph.node(id);
    out << "  n" << id << " [label=\"" << n.name << "\\n" << type_tag(n.type)
        << " " << boundary_tag(graph, n);
    if (n.mirrored) out << " mirr";
    out << "\"];\n";
    for (NodeId child : n.children) {
      out << "  n" << id << " -> n" << child << ";\n";
    }
    if (n.ref != kNoNode) {
      out << "  n" << id << " -> n" << n.ref << " [style=dashed];\n";
    }
    if (n.type == NodeType::Optional && n.condition.ref != kNoNode) {
      out << "  n" << id << " -> n" << n.condition.ref
          << " [style=dotted, label=\"cond\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_outline(const Graph& graph) {
  std::ostringstream out;
  const auto pos = graph.dfs_positions();
  for (NodeId id : graph.dfs_order()) {
    const Node& n = graph.node(id);
    out << std::string(graph.ancestors(id).size() * 2, ' ') << n.name << " ["
        << type_tag(n.type) << " " << boundary_tag(graph, n);
    if (n.has_const) out << " const";
    if (n.mirrored) out << " mirrored";
    out << "]\n";
  }
  (void)pos;
  return out.str();
}

}  // namespace protoobf
