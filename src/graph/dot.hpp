// Graphviz DOT rendering of a message format graph (paper Fig. 3 style).
//
// Nodes are labelled with the paper's shorthand: Te/S/O/R/Ta for the type and
// F(n)/De/L(x)/C(x)/E/Dgt for the boundary. Length/Counter references are
// drawn as dashed arrows, exactly as in Fig. 3.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace protoobf {

std::string to_dot(const Graph& graph);

/// Human-readable indented outline of the graph (for terminals/examples).
std::string to_outline(const Graph& graph);

}  // namespace protoobf
