#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>

namespace protoobf {

bool Condition::evaluate(BytesView ref_value) const {
  const auto equals = [&](const Bytes& v) {
    return v.size() == ref_value.size() &&
           std::equal(v.begin(), v.end(), ref_value.begin());
  };
  switch (kind) {
    case Kind::Always:
      return true;
    case Kind::Equals:
      return !values.empty() && equals(values[0]);
    case Kind::NotEquals:
      return values.empty() || !equals(values[0]);
    case Kind::OneOf:
      return std::any_of(values.begin(), values.end(), equals);
    case Kind::NonZero:
      return std::any_of(ref_value.begin(), ref_value.end(),
                         [](Byte b) { return b != 0; });
  }
  return false;
}

const char* to_string(NodeType type) {
  switch (type) {
    case NodeType::Terminal: return "Terminal";
    case NodeType::Sequence: return "Sequence";
    case NodeType::Optional: return "Optional";
    case NodeType::Repetition: return "Repetition";
    case NodeType::Tabular: return "Tabular";
  }
  return "?";
}

const char* to_string(BoundaryKind boundary) {
  switch (boundary) {
    case BoundaryKind::Fixed: return "Fixed";
    case BoundaryKind::Delimited: return "Delimited";
    case BoundaryKind::Length: return "Length";
    case BoundaryKind::Counter: return "Counter";
    case BoundaryKind::End: return "End";
    case BoundaryKind::Delegated: return "Delegated";
    case BoundaryKind::Half: return "Half";
  }
  return "?";
}

NodeId Graph::add_node(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node.id = id;
  nodes_.push_back(std::move(node));
  return id;
}

void Graph::dfs_visit(NodeId id, std::vector<NodeId>& order) const {
  order.push_back(id);
  for (NodeId child : nodes_[id].children) dfs_visit(child, order);
}

std::vector<NodeId> Graph::dfs_order() const {
  std::vector<NodeId> order;
  if (root_ != kNoNode) {
    order.reserve(nodes_.size());
    dfs_visit(root_, order);
  }
  return order;
}

std::vector<std::size_t> Graph::dfs_positions() const {
  std::vector<std::size_t> pos(nodes_.size(), static_cast<std::size_t>(-1));
  const auto order = dfs_order();
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  return pos;
}

std::optional<NodeId> Graph::find_by_name(std::string_view name) const {
  std::optional<NodeId> found;
  for (NodeId id : dfs_order()) {
    if (nodes_[id].name == name) {
      if (found) return std::nullopt;  // ambiguous
      found = id;
    }
  }
  return found;
}

std::string Graph::path_of(NodeId id) const {
  std::string path = nodes_[id].name;
  for (NodeId p = nodes_[id].parent; p != kNoNode; p = nodes_[p].parent) {
    path = nodes_[p].name + "." + path;
  }
  return path;
}

int Graph::child_index(NodeId parent, NodeId child) const {
  const auto& kids = nodes_[parent].children;
  const auto it = std::find(kids.begin(), kids.end(), child);
  return it == kids.end() ? -1 : static_cast<int>(it - kids.begin());
}

void Graph::replace_child(NodeId parent, NodeId old_child, NodeId new_child) {
  const int idx = child_index(parent, old_child);
  assert(idx >= 0);
  nodes_[parent].children[static_cast<std::size_t>(idx)] = new_child;
  nodes_[new_child].parent = parent;
  nodes_[old_child].parent = kNoNode;
}

void Graph::replace_root(NodeId new_root) {
  nodes_[new_root].parent = kNoNode;
  root_ = new_root;
}

std::vector<NodeId> Graph::referers_of(NodeId target) const {
  std::vector<NodeId> out;
  for (NodeId id : dfs_order()) {
    const Node& n = nodes_[id];
    if (n.ref == target) out.push_back(id);
    if (n.type == NodeType::Optional && n.condition.ref == target) {
      out.push_back(id);
    }
  }
  return out;
}

bool Graph::is_length_target(NodeId target) const {
  for (NodeId id : dfs_order()) {
    const Node& n = nodes_[id];
    if (n.boundary == BoundaryKind::Length && n.ref == target) return true;
  }
  return false;
}

bool Graph::is_counter_target(NodeId target) const {
  for (NodeId id : dfs_order()) {
    const Node& n = nodes_[id];
    if (n.boundary == BoundaryKind::Counter && n.ref == target) return true;
  }
  return false;
}

std::vector<NodeId> Graph::ancestors(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId p = nodes_[id].parent; p != kNoNode; p = nodes_[p].parent) {
    out.push_back(p);
  }
  return out;
}

std::size_t Graph::depth() const {
  std::size_t best = 0;
  for (NodeId id : dfs_order()) {
    const std::size_t d = ancestors(id).size() + 1;
    best = std::max(best, d);
  }
  return best;
}

}  // namespace protoobf
