// Message format graph container (paper §IV / §V-A).
//
// The graph G1 describes every AST compliant with the specification S; the
// obfuscation engine rewrites it in place, producing G2..G(n+1). Node ids
// are stable across rewrites (nodes are stored in an arena and detached
// nodes simply become unreachable), which lets the transformation journal
// reference pattern nodes from any intermediate graph.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/node.hpp"
#include "util/result.hpp"

namespace protoobf {

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string protocol_name)
      : protocol_name_(std::move(protocol_name)) {}

  const std::string& protocol_name() const { return protocol_name_; }
  void set_protocol_name(std::string name) { protocol_name_ = std::move(name); }

  /// Adds a node to the arena; assigns and returns its id.
  NodeId add_node(Node node);

  Node& node(NodeId id) { return nodes_[id]; }
  const Node& node(NodeId id) const { return nodes_[id]; }

  NodeId root() const { return root_; }
  void set_root(NodeId id) { root_ = id; }

  /// Total arena size (including detached nodes).
  std::size_t arena_size() const { return nodes_.size(); }

  /// Number of nodes reachable from the root.
  std::size_t size() const { return dfs_order().size(); }

  /// Pre-order depth-first traversal from the root — the serialization order.
  std::vector<NodeId> dfs_order() const;

  /// Position of every reachable node in DFS order (kNoNode-sized table,
  /// unreachable nodes map to npos).
  std::vector<std::size_t> dfs_positions() const;

  /// Finds a reachable node by exact name; nullopt if absent or ambiguous.
  std::optional<NodeId> find_by_name(std::string_view name) const;

  /// Dotted path of a node from the root, e.g. "adu.tail.fn".
  std::string path_of(NodeId id) const;

  /// Index of `child` in `parent`'s child list, or -1.
  int child_index(NodeId parent, NodeId child) const;

  /// Replaces `old_child` with `new_child` in the parent's child list and
  /// fixes both parent links. `old_child` becomes detached.
  void replace_child(NodeId parent, NodeId old_child, NodeId new_child);

  /// Replaces the root node with a new node (used when a transformation
  /// rewrites the root itself).
  void replace_root(NodeId new_root);

  /// All reachable nodes whose boundary/condition references `target`.
  std::vector<NodeId> referers_of(NodeId target) const;

  /// True if some reachable node has a Length boundary referencing `target`.
  bool is_length_target(NodeId target) const;

  /// True if some reachable node has a Counter boundary referencing `target`.
  bool is_counter_target(NodeId target) const;

  /// Walks ancestors of `id` (excluding `id` itself), root last.
  std::vector<NodeId> ancestors(NodeId id) const;

  /// Maximum node depth (root = 1); an input to the call-graph depth metric.
  std::size_t depth() const;

  /// Deep copy (same ids).
  Graph clone() const { return *this; }

 private:
  void dfs_visit(NodeId id, std::vector<NodeId>& order) const;

  std::string protocol_name_;
  std::vector<Node> nodes_;
  NodeId root_ = kNoNode;
};

}  // namespace protoobf
