// Message format graph node model (paper §V-A).
//
// A node is defined by five attributes: Name, Type, SubNodes, Parent and
// Boundary. The Type or Boundary attributes may carry an implicit reference
// to another node (Length/Counter boundaries, Optional presence conditions).
// Two attributes extend the paper's model to make the reproduction concrete:
//  * `encoding` distinguishes binary big-endian fields (Modbus) from ASCII
//    decimal fields (HTTP Content-Length style values);
//  * `mirrored` carries the ReadFromEnd transformation, which reverses the
//    serialization of the node's subtree on the wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace protoobf {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Paper §V-A node types.
enum class NodeType : std::uint8_t {
  Terminal,    // holds user data or message-related information
  Sequence,    // ordered sub-nodes
  Optional,    // present depending on the value of another node
  Repetition,  // repetition of the same sub-node, count not carried in data
  Tabular,     // repetition whose count is given by another node
};

/// Paper §V-A boundary methods, plus the internal `Half` boundary that the
/// Split* transformations introduce (each half of a split terminal occupies
/// half of the enclosing region; see DESIGN.md §5).
enum class BoundaryKind : std::uint8_t {
  Fixed,      // fixed size defined in the specification
  Delimited,  // ends with a predefined byte sequence
  Length,     // size given by another node
  Counter,    // Tabular only: repetition count given by another node
  End,        // extends to the end of the enclosing region
  Delegated,  // size is the sum of the sub-node sizes
  Half,       // internal: exactly half of the enclosing region
};

/// Terminal value encodings for derived (length/count) fields.
enum class Encoding : std::uint8_t {
  Binary,    // big-endian binary integer
  AsciiDec,  // ASCII decimal digits
};

/// Presence condition attached to Optional nodes.
struct Condition {
  enum class Kind : std::uint8_t {
    Always,    // unconditionally present (building block, not used by specs)
    Equals,    // ref value == values[0]
    NotEquals, // ref value != values[0]
    OneOf,     // ref value in values
    NonZero,   // ref value has at least one non-zero byte
  };

  Kind kind = Kind::Always;
  NodeId ref = kNoNode;
  std::vector<Bytes> values;

  /// Evaluates the condition against the referenced node's logical value.
  bool evaluate(BytesView ref_value) const;
};

const char* to_string(NodeType type);
const char* to_string(BoundaryKind boundary);

/// One node of a message format graph.
struct Node {
  NodeId id = kNoNode;
  std::string name;
  NodeType type = NodeType::Terminal;
  BoundaryKind boundary = BoundaryKind::Delegated;

  // Boundary parameters -----------------------------------------------------
  std::size_t fixed_size = 0;  // Fixed
  Bytes delimiter;             // Delimited (emitted after the node content)
  NodeId ref = kNoNode;        // Length: size holder; Counter: count holder.
                               // A Counter ref may also point at a Tabular
                               // whose element count must match (RepSplit).

  // Terminal parameters -----------------------------------------------------
  Encoding encoding = Encoding::Binary;
  Bytes const_value;        // non-empty => constant field, auto-filled
  bool has_const = false;

  // Optional parameters -----------------------------------------------------
  Condition condition;

  // Transformation flags ----------------------------------------------------
  bool mirrored = false;  // ReadFromEnd: subtree serialized right-to-left

  // Tree links ----------------------------------------------------------------
  std::vector<NodeId> children;
  NodeId parent = kNoNode;

  bool is_composite() const { return type != NodeType::Terminal; }
};

}  // namespace protoobf
