#include "graph/validate.hpp"

#include <algorithm>

namespace protoobf {

namespace {

Unexpected fail(const Graph& g, NodeId id, const std::string& what) {
  return Unexpected("node '" + g.path_of(id) + "': " + what);
}

bool boundary_allowed(NodeType type, BoundaryKind b) {
  switch (type) {
    case NodeType::Terminal:
      // Paper: "a Terminal field must be delimited either with a Fixed
      // boundary, a Delimited boundary, a Length boundary or an End
      // boundary". Half is the internal split boundary.
      return b == BoundaryKind::Fixed || b == BoundaryKind::Delimited ||
             b == BoundaryKind::Length || b == BoundaryKind::End ||
             b == BoundaryKind::Half;
    case NodeType::Sequence:
      return b == BoundaryKind::Delegated || b == BoundaryKind::Fixed ||
             b == BoundaryKind::Delimited || b == BoundaryKind::Length ||
             b == BoundaryKind::End || b == BoundaryKind::Half;
    case NodeType::Optional:
      // Extent is always the child's extent.
      return b == BoundaryKind::Delegated;
    case NodeType::Repetition:
      // A repetition needs an end: a stop marker (Delimited), the enclosing
      // region (End) or an explicit size (Length).
      return b == BoundaryKind::Delimited || b == BoundaryKind::End ||
             b == BoundaryKind::Length;
    case NodeType::Tabular:
      return b == BoundaryKind::Counter;
  }
  return false;
}

/// True when `maybe_ancestor` is an ancestor of (or equal to) `id`.
bool in_subtree(const Graph& g, NodeId id, NodeId maybe_ancestor) {
  for (NodeId n = id; n != kNoNode; n = g.node(n).parent) {
    if (n == maybe_ancestor) return true;
  }
  return false;
}

/// Innermost Optional ancestor of `id` (or kNoNode).
NodeId optional_ancestor(const Graph& g, NodeId id) {
  for (NodeId n = g.node(id).parent; n != kNoNode; n = g.node(n).parent) {
    if (g.node(n).type == NodeType::Optional) return n;
  }
  return kNoNode;
}

Status check_reference(const Graph& g, NodeId from, NodeId to,
                       const std::vector<std::size_t>& pos,
                       const char* what) {
  if (to == kNoNode || to >= g.arena_size()) {
    return fail(g, from, std::string(what) + " reference is unset");
  }
  if (pos[to] == static_cast<std::size_t>(-1)) {
    return fail(g, from, std::string(what) + " references detached node '" +
                             g.node(to).name + "'");
  }
  if (pos[to] >= pos[from]) {
    return fail(g, from, std::string(what) + " reference '" +
                             g.path_of(to) +
                             "' does not precede the dependant in parse "
                             "order");
  }
  // The reference must be evaluable whenever the dependant is parsed: every
  // Optional ancestor of the target must also enclose the dependant.
  for (NodeId opt = optional_ancestor(g, to); opt != kNoNode;
       opt = optional_ancestor(g, opt)) {
    if (!in_subtree(g, from, opt)) {
      return fail(g, from, std::string(what) + " reference '" +
                               g.path_of(to) +
                               "' sits inside an Optional subtree that does "
                               "not enclose the dependant");
    }
  }
  // A target inside a repeated element is instantiated once per element; it
  // is only unambiguous for dependants inside the same element (the TLV
  // pattern). Every Repetition/Tabular ancestor of the target must
  // therefore also be an ancestor of the dependant.
  for (NodeId a = g.node(to).parent; a != kNoNode; a = g.node(a).parent) {
    const NodeType t = g.node(a).type;
    if ((t == NodeType::Repetition || t == NodeType::Tabular) &&
        !in_subtree(g, from, a)) {
      return fail(g, from, std::string(what) + " reference '" +
                               g.path_of(to) +
                               "' sits inside a repeated element the "
                               "dependant is outside of");
    }
  }
  return Status::success();
}

}  // namespace

Status validate_parse_order(const Graph& graph) {
  const auto pos = graph.dfs_positions();
  for (NodeId id : graph.dfs_order()) {
    const Node& n = graph.node(id);
    if (n.boundary == BoundaryKind::Length) {
      if (Status s = check_reference(graph, id, n.ref, pos, "Length"); !s) {
        return s;
      }
    }
    if (n.boundary == BoundaryKind::Counter) {
      if (Status s = check_reference(graph, id, n.ref, pos, "Counter"); !s) {
        return s;
      }
    }
    if (n.type == NodeType::Optional &&
        n.condition.kind != Condition::Kind::Always) {
      if (Status s =
              check_reference(graph, id, n.condition.ref, pos, "Condition");
          !s) {
        return s;
      }
    }
  }
  return Status::success();
}

Status validate(const Graph& graph) {
  if (graph.root() == kNoNode) return Unexpected("graph has no root");
  const auto order = graph.dfs_order();

  for (NodeId id : order) {
    const Node& n = graph.node(id);
    if (n.name.empty()) return fail(graph, id, "empty name");

    if (!boundary_allowed(n.type, n.boundary)) {
      return fail(graph, id,
                  std::string("boundary ") + to_string(n.boundary) +
                      " is not consistent with type " + to_string(n.type));
    }

    switch (n.type) {
      case NodeType::Terminal:
        if (!n.children.empty()) {
          return fail(graph, id, "terminal must not have sub-nodes");
        }
        break;
      case NodeType::Sequence:
        if (n.children.empty()) {
          return fail(graph, id, "sequence needs at least one sub-node");
        }
        break;
      case NodeType::Optional:
      case NodeType::Repetition:
      case NodeType::Tabular:
        if (n.children.size() != 1) {
          return fail(graph, id, "node needs exactly one sub-node");
        }
        break;
    }

    if (n.boundary == BoundaryKind::Fixed) {
      if (n.fixed_size == 0) return fail(graph, id, "fixed size of zero");
      if (n.has_const && n.const_value.size() != n.fixed_size) {
        return fail(graph, id, "const value size differs from fixed size");
      }
    }
    if (n.boundary == BoundaryKind::Delimited && n.delimiter.empty()) {
      return fail(graph, id, "delimited boundary with empty delimiter");
    }

    // Length/Counter references may target any node: after transformations
    // the holder terminal can be wrapped in created structure, and its
    // logical value is recovered through the journal. (The spec parser
    // guarantees the *original* target is a terminal simply because only a
    // terminal's value can hold a number.)

    // Child parent links must be coherent.
    for (NodeId child : n.children) {
      if (graph.node(child).parent != id) {
        return fail(graph, id, "child/parent link mismatch");
      }
    }
  }

  return validate_parse_order(graph);
}

}  // namespace protoobf
