// Consistency rules for message format graphs.
//
// Encodes the paper's type/boundary compatibility matrix ("the Boundary
// attribute must be consistent with the type of the field", §V-A) plus the
// parse-order rule that makes every Length/Counter/Optional reference
// resolvable by a single left-to-right pass: a referenced node must occur
// strictly before its dependant in the depth-first serialization order, and
// must not sit inside an Optional subtree the dependant is outside of.
// The obfuscation engine re-validates after every rewrite; a transformation
// that would break these rules is rejected (or rolled back for ChildMove).
#pragma once

#include "graph/graph.hpp"
#include "util/result.hpp"

namespace protoobf {

/// Full structural validation: tree shape, type/boundary consistency,
/// reference resolvability and parse order. Returns the first violation.
Status validate(const Graph& graph);

/// Just the reference parse-order rule (cheaper; used after ChildMove).
Status validate_parse_order(const Graph& graph);

}  // namespace protoobf
