#include "native/cache.hpp"

#include "codegen/native_unit.hpp"
#include "obs/families.hpp"

namespace protoobf::native {

namespace {

std::size_t mix_hash(std::size_t h, std::size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

}  // namespace

std::size_t NativeCache::KeyHash::operator()(const Key& k) const {
  std::size_t h = std::hash<std::uint64_t>{}(k.spec_hash);
  h = mix_hash(h, std::hash<std::uint64_t>{}(k.seed));
  h = mix_hash(h, std::hash<int>{}(k.per_node));
  for (const TransformKind kind : k.enabled) {
    h = mix_hash(h, static_cast<std::size_t>(kind));
  }
  return h;
}

NativeCache::NativeCache(std::size_t capacity, NativeCompiler::Options options,
                         std::chrono::milliseconds poison_ttl)
    : compiler_(std::move(options)),
      capacity_(capacity > 0 ? capacity : 1),
      poison_ttl_(poison_ttl) {}

NativeCache::~NativeCache() { wait_idle(); }

NativeCache::Key NativeCache::make_key(std::uint64_t spec_hash,
                                       const ObfuscationConfig& config) {
  Key key;
  key.spec_hash = spec_hash;
  key.seed = config.seed;
  key.per_node = static_cast<int>(config.per_node);
  key.enabled = config.enabled;
  return key;
}

Expected<NativeCache::Backend> NativeCache::build(
    const ObfuscatedProtocol& protocol, const Key& key,
    std::uint64_t fingerprint) {
  const std::string base = NativeCompiler::cache_file_base(
      protocol, key.spec_hash, key.seed,
      static_cast<std::size_t>(key.per_node));
  const std::uint64_t t0 = obs::now_ns();
  auto compiled = compiler_.compile(protocol, base);
  if (!compiled) return Unexpected(compiled.error());
  obs::NativeMetrics& m = obs::NativeMetrics::get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (compiled->disk_hit) ++stats_.disk_hits;
    if (compiled->recompiled) ++stats_.recompiles;
  }
  if (compiled->disk_hit) m.disk_hits.add(1);
  if (compiled->recompiled) {
    m.recompiles.add(1);
    // Only a true compiler run lands in the latency histogram — a
    // fingerprint-validated disk reuse is a different population.
    m.compile_ns.record(obs::now_ns() - t0);
  }
  if (compiled->unit->fingerprint() != fingerprint) {
    return Unexpected("native unit fingerprint mismatch after build");
  }
  return std::make_shared<const NativeProtocol>(protocol,
                                                std::move(compiled->unit));
}

std::optional<Error> NativeCache::check_poison(const Key& key,
                                               std::uint64_t fingerprint) {
  auto it = poisoned_.find(key);
  if (it == poisoned_.end() || it->second.fingerprint != fingerprint) {
    return std::nullopt;
  }
  if (std::chrono::steady_clock::now() >= it->second.until) {
    poisoned_.erase(it);  // TTL over — the next request retries the build
    return std::nullopt;
  }
  ++stats_.poisoned;
  obs::NativeMetrics::get().poisoned.add(1);
  return it->second.error;
}

Expected<NativeCache::Backend> NativeCache::get_or_compile(
    const ObfuscatedProtocol& protocol, std::uint64_t spec_hash,
    const ObfuscationConfig& config) {
  const Key key = make_key(spec_hash, config);
  const std::uint64_t fingerprint = native_fingerprint(protocol);

  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = index_.find(key); it != index_.end()) {
      if (it->second->fingerprint == fingerprint) {
        ++stats_.hits;
        obs::NativeMetrics::get().hits.add(1);
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->backend;
      }
      // Key collision (same tuple, different tables): fall through to a
      // one-off build below, leaving the cached entry alone.
    }
    if (auto poison = check_poison(key, fingerprint)) {
      return Unexpected(*poison);
    }
    if (auto it = inflight_.find(key);
        it != inflight_.end() && it->second->fingerprint == fingerprint) {
      flight = it->second;
      ++stats_.coalesced;
      obs::NativeMetrics::get().coalesced.add(1);
    } else {
      flight = std::make_shared<InFlight>();
      flight->fingerprint = fingerprint;
      inflight_[key] = flight;
      leader = true;
      ++stats_.misses;
      obs::NativeMetrics::get().misses.add(1);
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    return *flight->result;
  }

  Expected<Backend> result = build(protocol, key, fingerprint);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Only erase our own rendezvous: a collision build may have replaced it.
    if (auto it = inflight_.find(key);
        it != inflight_.end() && it->second == flight) {
      inflight_.erase(it);
    }
    if (result) {
      if (auto it = index_.find(key); it != index_.end()) {
        it->second->fingerprint = fingerprint;
        it->second->backend = *result;
        lru_.splice(lru_.begin(), lru_, it->second);
      } else {
        lru_.push_front(Slot{key, fingerprint, *result});
        index_[key] = lru_.begin();
        while (lru_.size() > capacity_) {
          index_.erase(lru_.back().key);
          lru_.pop_back();
        }
      }
      stats_.size = lru_.size();
      obs::NativeMetrics::get().cache_size.set(
          static_cast<std::int64_t>(lru_.size()));
    } else {
      // Count the failure once, then poison the key: every request inside
      // the TTL fails fast with this error instead of re-running a build
      // that will fail the same way (compile_and_attach callers keep
      // serving interpreted throughout).
      ++stats_.errors;
      obs::NativeMetrics::get().errors.add(1);
      poisoned_[key] = Poison{fingerprint,
                              std::chrono::steady_clock::now() + poison_ttl_,
                              result.error()};
    }
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->result = result;
    flight->done = true;
  }
  flight->cv.notify_all();
  return result;
}

void NativeCache::compile_and_attach(
    std::shared_ptr<const ObfuscatedProtocol> protocol,
    std::uint64_t spec_hash, const ObfuscationConfig& config) {
  if (protocol == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  // A poisoned key does not even rate a worker thread: the protocol keeps
  // serving interpreted and the error has already been surfaced once.
  if (check_poison(make_key(spec_hash, config),
                   native_fingerprint(*protocol))) {
    return;
  }
  ++stats_.background;
  workers_.emplace_back(
      [this, protocol = std::move(protocol), spec_hash, config] {
        auto backend = get_or_compile(*protocol, spec_hash, config);
        if (backend) protocol->attach_wire_backend(*backend);
        // Failures already counted in stats().errors by get_or_compile;
        // the protocol keeps serving interpreted.
      });
}

void NativeCache::wait_idle() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

NativeCache::Stats NativeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void NativeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  poisoned_.clear();
  stats_.size = 0;
}

}  // namespace protoobf::native
