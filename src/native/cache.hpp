// NativeCache: process-wide cache of compiled native units.
//
// Mirrors session/ProtocolCache one level down: where ProtocolCache
// memoizes *obfuscation* (graph work) per (spec hash, seed, per_node,
// enabled-transform set), NativeCache memoizes *toolchain runs* per the
// same key — generate + `c++ -shared` + dlopen is milliseconds-to-seconds,
// so it must happen at most once per key per machine. Three layers:
//
//   memory   LRU of loaded units (shared_ptr keeps evicted units alive
//            for whoever already serves from them);
//   disk     NativeCompiler's <key+fingerprint>.so files, shared across
//            processes and validated before reuse;
//   dedup    in-flight leader/follower rendezvous so a miss storm on one
//            key runs the compiler exactly once.
//
// The intended serving pattern is compile_and_attach(): a cold key keeps
// serving interpreted while a background thread builds the unit, then the
// backend swaps into the (shared) ObfuscatedProtocol mid-flight.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "native/compiler.hpp"
#include "native/protocol.hpp"
#include "transform/engine.hpp"

namespace protoobf::native {

class NativeCache {
 public:
  using Backend = std::shared_ptr<const NativeProtocol>;

  struct Stats {
    std::size_t hits = 0;        // served from the in-memory LRU
    std::size_t misses = 0;      // required compiler work or a disk load
    std::size_t disk_hits = 0;   // misses satisfied by a valid on-disk .so
    std::size_t recompiles = 0;  // invalid/corrupt cached .so rebuilt
    std::size_t coalesced = 0;   // misses that waited on an in-flight build
    std::size_t background = 0;  // compile_and_attach jobs started
    std::size_t errors = 0;      // builds that failed (toolchain, codegen)
    std::size_t poisoned = 0;    // requests refused by a poisoned key
    std::size_t size = 0;
  };

  /// `poison_ttl` is how long a key whose build failed stays poisoned:
  /// further requests for it fail fast (stats().poisoned) instead of
  /// re-running the same doomed toolchain invocation on every miss, and
  /// compile_and_attach callers keep serving interpreted. After the TTL
  /// the next request retries (the failure may have been transient — a
  /// full disk, an OOM-killed compiler).
  explicit NativeCache(std::size_t capacity = 16,
                       NativeCompiler::Options options = {},
                       std::chrono::milliseconds poison_ttl =
                           std::chrono::seconds(30));
  ~NativeCache();

  /// Blocking get: returns the native backend for `protocol`, compiling
  /// (or loading from disk) on a miss. `spec_hash` and `config` form the
  /// cache key, exactly as in ProtocolCache; the unit fingerprint guards
  /// against key collisions and stale disk artifacts.
  Expected<Backend> get_or_compile(const ObfuscatedProtocol& protocol,
                                   std::uint64_t spec_hash,
                                   const ObfuscationConfig& config);

  /// Non-blocking serve-then-swap: starts a background build (deduped by
  /// key) and attaches the resulting backend to `protocol` when it lands.
  /// Until then the protocol keeps serving interpreted. Failures count in
  /// stats().errors and leave the protocol untouched.
  void compile_and_attach(std::shared_ptr<const ObfuscatedProtocol> protocol,
                          std::uint64_t spec_hash,
                          const ObfuscationConfig& config);

  /// Joins all outstanding background builds (tests and shutdown).
  void wait_idle();

  Stats stats() const;
  void clear();

  const NativeCompiler& compiler() const { return compiler_; }

 private:
  struct Key {
    std::uint64_t spec_hash = 0;
    std::uint64_t seed = 0;
    int per_node = 0;
    std::vector<TransformKind> enabled;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  // `fingerprint` verifies a key match (like ProtocolCache's Slot::source):
  // a spec-hash collision degrades to a compile-without-caching instead of
  // serving another protocol's unit.
  struct Slot {
    Key key;
    std::uint64_t fingerprint = 0;
    Backend backend;
  };
  using LruList = std::list<Slot>;

  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::uint64_t fingerprint = 0;
    std::optional<Expected<Backend>> result;
  };

  // A failed build parks its key here until `until`; the original error is
  // replayed to fast-failed requests so callers see *why* without paying
  // for another compile.
  struct Poison {
    std::uint64_t fingerprint = 0;
    std::chrono::steady_clock::time_point until;
    Error error;
  };

  static Key make_key(std::uint64_t spec_hash, const ObfuscationConfig& config);
  Expected<Backend> build(const ObfuscatedProtocol& protocol, const Key& key,
                          std::uint64_t fingerprint);
  /// Locked check: replays the poison error while it is fresh, lazily
  /// expires it otherwise. Call with mu_ held.
  std::optional<Error> check_poison(const Key& key, std::uint64_t fingerprint);

  NativeCompiler compiler_;
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::chrono::milliseconds poison_ttl_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  std::unordered_map<Key, std::shared_ptr<InFlight>, KeyHash> inflight_;
  std::unordered_map<Key, Poison, KeyHash> poisoned_;
  std::vector<std::thread> workers_;
  Stats stats_;
};

}  // namespace protoobf::native
