#include "native/compiler.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "codegen/generator.hpp"
#include "codegen/native_unit.hpp"

#ifndef PROTOOBF_NATIVE_CXX
#define PROTOOBF_NATIVE_CXX "c++"
#endif
#ifndef PROTOOBF_NATIVE_FLAGS
#define PROTOOBF_NATIVE_FLAGS ""
#endif

namespace protoobf::native {

namespace fs = std::filesystem;

namespace {

std::string default_cache_dir() {
  if (const char* env = std::getenv("PROTOOBF_NATIVE_CACHE");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "/tmp/protoobf-native-" + std::to_string(::getuid());
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string sanitized(std::string_view name) {
  std::string out;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("protocol") : out;
}

Status write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Unexpected("cannot write " + path);
  return {};
}

/// Runs `<compiler> <fixed flags> <extra> -o <out> <src>`, stderr captured
/// to `<out>.log`. Paths are double-quoted; extra_flags is trusted text
/// from the build system / caller, inserted verbatim.
Status run_compiler(const std::string& compiler,
                    const std::string& extra_flags, const std::string& src,
                    const std::string& out) {
  std::ostringstream cmd;
  cmd << compiler << " -std=c++17 -O2 -fPIC -shared";
  if (!extra_flags.empty()) cmd << " " << extra_flags;
  cmd << " -o \"" << out << "\" \"" << src << "\" 2> \"" << out << ".log\"";
  const int rc = std::system(cmd.str().c_str());
  if (rc != 0) {
    std::string detail;
    std::ifstream log(out + ".log");
    std::string line;
    while (std::getline(log, line) && detail.size() < 512) {
      detail += line;
      detail += "; ";
    }
    return Unexpected("native compile failed (exit " + std::to_string(rc) +
                      "): " + detail + "see " + out + ".log");
  }
  return {};
}

struct ToolchainProbe {
  bool available = false;
  std::string reason;
};

/// One real compile + dlopen + call with the default options: the only
/// trustworthy way to know the native path works in this build mode (a
/// present compiler is not enough — e.g. gcc's static libasan makes
/// sanitized .so files fail at dlopen time).
ToolchainProbe probe_toolchain() {
  ToolchainProbe probe;
  const std::string dir = default_cache_dir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    probe.reason = "cannot create cache dir " + dir + ": " + ec.message();
    return probe;
  }
  const std::string base =
      dir + "/toolchain-probe-" + std::to_string(::getpid());
  const std::string src = base + ".cpp";
  const std::string so = base + ".so";
  if (Status s = write_file(
          src, "extern \"C\" int po_native_probe(void) { return 42; }\n");
      !s) {
    probe.reason = s.error().message;
    return probe;
  }
  if (Status s = run_compiler(PROTOOBF_NATIVE_CXX, PROTOOBF_NATIVE_FLAGS, src,
                              so);
      !s) {
    probe.reason = s.error().message;
    fs::remove(src, ec);
    return probe;
  }
  void* handle = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    probe.reason = std::string("probe dlopen failed: ") +
                   (err != nullptr ? err : "unknown");
  } else {
    using ProbeFn = int (*)(void);
    auto fn =
        reinterpret_cast<ProbeFn>(::dlsym(handle, "po_native_probe"));
    if (fn == nullptr || fn() != 42) {
      probe.reason = "probe symbol did not resolve or misbehaved";
    } else {
      probe.available = true;
    }
    ::dlclose(handle);
  }
  fs::remove(src, ec);
  fs::remove(so, ec);
  fs::remove(so + ".log", ec);
  return probe;
}

const ToolchainProbe& toolchain_probe() {
  static const ToolchainProbe probe = probe_toolchain();
  return probe;
}

}  // namespace

// ---------------------------------------------------------------- NativeUnit

NativeUnit::NativeUnit(void* handle, UnitApi api, std::string path)
    : handle_(handle), api_(api), path_(std::move(path)) {}

NativeUnit::~NativeUnit() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

Expected<std::shared_ptr<const NativeUnit>> NativeUnit::load(
    const std::string& so_path, std::uint64_t expect_fingerprint) {
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    return Unexpected("dlopen " + so_path + " failed: " +
                      (err != nullptr ? err : "unknown error"));
  }
  UnitApi api;
  const auto resolve = [&](const char* name) -> void* {
    return ::dlsym(handle, name);
  };
  api.abi_version = reinterpret_cast<decltype(api.abi_version)>(
      resolve("po_native_abi_version"));
  api.fingerprint = reinterpret_cast<decltype(api.fingerprint)>(
      resolve("po_native_fingerprint"));
  api.protocol =
      reinterpret_cast<decltype(api.protocol)>(resolve("po_native_protocol"));
  api.parse = reinterpret_cast<decltype(api.parse)>(resolve("po_native_parse"));
  api.fix_emit =
      reinterpret_cast<decltype(api.fix_emit)>(resolve("po_native_fix_emit"));
  const auto reject = [&](const std::string& why) {
    ::dlclose(handle);
    return Unexpected("native unit " + so_path + " rejected: " + why);
  };
  if (api.abi_version == nullptr || api.fingerprint == nullptr ||
      api.protocol == nullptr || api.parse == nullptr ||
      api.fix_emit == nullptr) {
    return reject("missing po_native_* symbols");
  }
  if (api.abi_version() != kNativeAbiVersion) {
    return reject("ABI version " + std::to_string(api.abi_version()) +
                  " != host " + std::to_string(kNativeAbiVersion));
  }
  if (expect_fingerprint != 0 && api.fingerprint() != expect_fingerprint) {
    return reject("fingerprint mismatch (stale cache entry)");
  }
  return std::shared_ptr<const NativeUnit>(
      new NativeUnit(handle, api, so_path));
}

// ------------------------------------------------------------ NativeCompiler

NativeCompiler::NativeCompiler(Options options) : options_(std::move(options)) {
  if (options_.cache_dir.empty()) options_.cache_dir = default_cache_dir();
  if (options_.compiler.empty()) options_.compiler = PROTOOBF_NATIVE_CXX;
  if (options_.extra_flags.empty()) options_.extra_flags = PROTOOBF_NATIVE_FLAGS;
}

std::string NativeCompiler::cache_file_base(const ObfuscatedProtocol& protocol,
                                            std::uint64_t spec_hash,
                                            std::uint64_t seed,
                                            std::size_t per_node) {
  return sanitized(protocol.wire_graph().protocol_name()) + "-" +
         hex64(spec_hash) + "-" + std::to_string(seed) + "-" +
         std::to_string(per_node) + "-" +
         hex64(native_fingerprint(protocol));
}

bool NativeCompiler::toolchain_available() {
  return toolchain_probe().available;
}

const std::string& NativeCompiler::toolchain_status() {
  return toolchain_probe().reason;
}

Expected<NativeCompiler::Result> NativeCompiler::compile(
    const ObfuscatedProtocol& protocol, const std::string& key_base) const {
  std::error_code ec;
  fs::create_directories(options_.cache_dir, ec);
  if (ec) {
    return Unexpected("cannot create native cache dir " + options_.cache_dir +
                      ": " + ec.message());
  }
  const std::uint64_t fingerprint = native_fingerprint(protocol);
  const std::string base = options_.cache_dir + "/" + sanitized(key_base);
  const std::string so = base + ".so";

  Result result;
  if (fs::exists(so, ec)) {
    // Cache hygiene: a cached artifact is only served once its embedded
    // ABI/fingerprint probes validate; otherwise it is deleted and rebuilt.
    auto unit = NativeUnit::load(so, fingerprint);
    if (unit) {
      result.unit = std::move(*unit);
      result.disk_hit = true;
      return result;
    }
    fs::remove(so, ec);
    result.recompiled = true;
  }

  GeneratedCode code = generate_cpp(protocol);
  auto unit = build(code.source, base, fingerprint, &result.compile_ms);
  if (!unit) return Unexpected(unit.error());
  result.unit = std::move(*unit);
  return result;
}

Expected<std::shared_ptr<const NativeUnit>> NativeCompiler::build(
    const std::string& source, const std::string& base,
    std::uint64_t fingerprint, double* compile_ms) const {
  const std::string pid = std::to_string(::getpid());
  const std::string cpp = base + ".cpp";
  const std::string tmp_cpp = cpp + ".tmp." + pid;
  const std::string so = base + ".so";
  const std::string tmp_so = so + ".tmp." + pid;

  if (Status s = write_file(tmp_cpp, source); !s) {
    return Unexpected(s.error());
  }
  std::error_code ec;
  fs::rename(tmp_cpp, cpp, ec);
  if (ec) {
    return Unexpected("cannot place generated source " + cpp + ": " +
                      ec.message());
  }

  const auto start = std::chrono::steady_clock::now();
  Status compiled =
      run_compiler(options_.compiler, options_.extra_flags, cpp, tmp_so);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (compile_ms != nullptr) {
    *compile_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
  }
  if (!compiled) {
    if (!options_.keep_source) fs::remove(cpp, ec);
    return Unexpected(compiled.error());
  }
  // tmp-compile + rename keeps concurrent processes from ever seeing a
  // half-written .so; last writer wins with an identical artifact.
  fs::rename(tmp_so, so, ec);
  if (ec) {
    return Unexpected("cannot place native unit " + so + ": " + ec.message());
  }
  fs::remove(tmp_so + ".log", ec);
  if (!options_.keep_source) fs::remove(cpp, ec);
  return NativeUnit::load(so, fingerprint);
}

}  // namespace protoobf::native
