// NativeCompiler: generated unit -> shared object -> dlopen'd NativeUnit.
//
// Takes codegen::generate_cpp() output (whose tail is the po_native ABI
// section, see codegen/native_unit.hpp), writes it to a scratch/cache
// directory, invokes the system toolchain (`c++ -std=c++17 -O2 -fPIC
// -shared`, with the host build's CXX flags appended so sanitizer builds
// produce sanitizer-coherent units) and loads the result behind RAII.
//
// On-disk layout (shared across processes): one `<base>.so` per protocol,
// where <base> encodes the cache key and the table fingerprint —
//   <name>-<spec_hash hex>-<seed>-<per_node>-<fingerprint hex>
// A cached .so is only served after its embedded ABI version, fingerprint
// and protocol name check out; anything stale, truncated or corrupted is
// deleted and recompiled, never dlopen'd blind beyond those probes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/protocol.hpp"
#include "util/result.hpp"

namespace protoobf::native {

/// The extern "C" surface of a loaded unit (resolved via dlsym).
struct UnitApi {
  using Sink = void (*)(void*, const std::uint8_t*, std::size_t);
  std::uint32_t (*abi_version)(void) = nullptr;
  std::uint64_t (*fingerprint)(void) = nullptr;
  const char* (*protocol)(void) = nullptr;
  std::int32_t (*parse)(const std::uint8_t* data, std::size_t len,
                        std::int32_t prefix, std::size_t* consumed,
                        std::size_t* need, std::size_t* err_off, Sink sink,
                        void* ctx) = nullptr;
  std::int32_t (*fix_emit)(const std::uint8_t* tlv, std::size_t tlv_len,
                           std::uint64_t msg_seed, Sink sink,
                           void* ctx) = nullptr;
};

/// A dlopen'd generated unit. RTLD_LOCAL keeps the po_native symbols
/// per-handle, so units for different protocols coexist in one process.
/// The handle closes when the last shared_ptr drops.
class NativeUnit {
 public:
  /// Loads and validates `so_path`: all five symbols must resolve, the ABI
  /// version must match the host's, and when `expect_fingerprint` is
  /// nonzero the unit's embedded fingerprint must equal it.
  static Expected<std::shared_ptr<const NativeUnit>> load(
      const std::string& so_path, std::uint64_t expect_fingerprint);

  ~NativeUnit();
  NativeUnit(const NativeUnit&) = delete;
  NativeUnit& operator=(const NativeUnit&) = delete;

  const UnitApi& api() const { return api_; }
  const std::string& path() const { return path_; }
  std::uint64_t fingerprint() const { return api_.fingerprint(); }

 private:
  NativeUnit(void* handle, UnitApi api, std::string path);
  void* handle_;
  UnitApi api_;
  std::string path_;
};

class NativeCompiler {
 public:
  struct Options {
    /// Where .so/.cpp/.log files live. Default: $PROTOOBF_NATIVE_CACHE,
    /// else /tmp/protoobf-native-<uid>. Created on demand.
    std::string cache_dir;
    /// Compiler driver. Default: the compiler that built this binary
    /// (PROTOOBF_NATIVE_CXX), else "c++".
    std::string compiler;
    /// Extra flags appended after the fixed set — defaults to the host
    /// build's CMAKE_CXX_FLAGS so -fsanitize and friends propagate.
    std::string extra_flags;
    /// Keep the generated .cpp beside the .so (useful for debugging; the
    /// source is always kept while compiling for diagnostics).
    bool keep_source = true;
  };

  struct Result {
    std::shared_ptr<const NativeUnit> unit;
    /// A valid on-disk .so was reused; no compiler run.
    bool disk_hit = false;
    /// A cached .so existed but failed validation and was rebuilt.
    bool recompiled = false;
    /// Wall-clock of the toolchain run (0 on disk hits).
    double compile_ms = 0.0;
  };

  NativeCompiler() : NativeCompiler(Options{}) {}
  explicit NativeCompiler(Options options);

  /// Generates the unit for `protocol`, compiles it (unless a valid .so for
  /// the same key+fingerprint is already on disk) and loads it. `key_base`
  /// names the artifact files — pass cache_file_base() output.
  Expected<Result> compile(const ObfuscatedProtocol& protocol,
                           const std::string& key_base) const;

  const Options& options() const { return options_; }

  /// File-name base for a protocol's artifacts: sanitized protocol name +
  /// cache key (spec hash, seed, per_node) + table fingerprint.
  static std::string cache_file_base(const ObfuscatedProtocol& protocol,
                                     std::uint64_t spec_hash,
                                     std::uint64_t seed, std::size_t per_node);

  /// One-time probe: compiles and dlopens a minimal unit with the
  /// configured defaults. False when no toolchain is installed or when
  /// loading fails in this build mode (e.g. static-libasan setups cannot
  /// dlopen sanitized objects) — callers skip the native path and log why.
  static bool toolchain_available();

  /// Human-readable reason for the last toolchain_available() == false,
  /// empty when available. Stable after the first probe.
  static const std::string& toolchain_status();

 private:
  Expected<std::shared_ptr<const NativeUnit>> build(
      const std::string& source, const std::string& base,
      std::uint64_t fingerprint, double* compile_ms) const;

  Options options_;
};

}  // namespace protoobf::native
