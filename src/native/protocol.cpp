#include "native/protocol.hpp"

namespace protoobf::native {

namespace {

// Host half of the TLV interchange (the unit half lives in the generated
// engine, codegen/native_unit.cpp): u32 little-endian lengths/counts, a
// lockstep walk of the wire graph supplying all structure.

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<Byte>(v));
  out.push_back(static_cast<Byte>(v >> 8));
  out.push_back(static_cast<Byte>(v >> 16));
  out.push_back(static_cast<Byte>(v >> 24));
}

bool get_u32(BytesView tlv, std::size_t& pos, std::uint32_t& v) {
  if (tlv.size() - pos < 4) return false;
  v = static_cast<std::uint32_t>(tlv[pos]) |
      (static_cast<std::uint32_t>(tlv[pos + 1]) << 8) |
      (static_cast<std::uint32_t>(tlv[pos + 2]) << 16) |
      (static_cast<std::uint32_t>(tlv[pos + 3]) << 24);
  pos += 4;
  return true;
}

Status flatten(const Graph& g, const Inst& inst, NodeId id, Bytes& out) {
  if (inst.schema != id) {
    return Unexpected("native tlv: tree does not match the wire graph");
  }
  const Node& n = g.node(id);
  switch (n.type) {
    case NodeType::Terminal:
      put_u32(out, static_cast<std::uint32_t>(inst.value.size()));
      out.insert(out.end(), inst.value.begin(), inst.value.end());
      return {};
    case NodeType::Sequence: {
      if (inst.children.size() != n.children.size()) {
        return Unexpected("native tlv: sequence arity mismatch");
      }
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (Status s = flatten(g, *inst.children[i], n.children[i], out); !s) {
          return s;
        }
      }
      return {};
    }
    case NodeType::Optional: {
      const bool present = inst.present && !inst.children.empty();
      out.push_back(present ? 1 : 0);
      if (present) {
        return flatten(g, *inst.children[0], n.children[0], out);
      }
      return {};
    }
    case NodeType::Repetition:
    case NodeType::Tabular: {
      put_u32(out, static_cast<std::uint32_t>(inst.children.size()));
      for (const InstPtr& child : inst.children) {
        if (Status s = flatten(g, *child, n.children[0], out); !s) return s;
      }
      return {};
    }
  }
  return Unexpected("native tlv: unknown node type");
}

Expected<InstPtr> unflatten(const Graph& g, NodeId id, BytesView tlv,
                            std::size_t& pos, InstPool* nodes) {
  const Node& n = g.node(id);
  switch (n.type) {
    case NodeType::Terminal: {
      std::uint32_t len = 0;
      if (!get_u32(tlv, pos, len) || tlv.size() - pos < len) {
        return Unexpected("native tlv corrupt: terminal out of bounds");
      }
      InstPtr t = ast::terminal(nodes, id, tlv.subspan(pos, len));
      pos += len;
      return t;
    }
    case NodeType::Sequence: {
      InstPtr s = ast::make(nodes, id);
      s->children.reserve(n.children.size());
      for (const NodeId child : n.children) {
        auto parsed = unflatten(g, child, tlv, pos, nodes);
        if (!parsed) return parsed;
        s->children.push_back(std::move(*parsed));
      }
      return s;
    }
    case NodeType::Optional: {
      if (pos >= tlv.size()) {
        return Unexpected("native tlv corrupt: optional out of bounds");
      }
      const Byte present = tlv[pos++];
      if (present == 0) return ast::absent(nodes, id);
      InstPtr o = ast::make(nodes, id);
      auto child = unflatten(g, n.children[0], tlv, pos, nodes);
      if (!child) return child;
      o->children.push_back(std::move(*child));
      return o;
    }
    case NodeType::Repetition:
    case NodeType::Tabular: {
      std::uint32_t count = 0;
      if (!get_u32(tlv, pos, count)) {
        return Unexpected("native tlv corrupt: count out of bounds");
      }
      InstPtr rep = ast::make(nodes, id);
      rep->children.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        auto element = unflatten(g, n.children[0], tlv, pos, nodes);
        if (!element) return element;
        rep->children.push_back(std::move(*element));
      }
      return rep;
    }
  }
  return Unexpected("native tlv corrupt: unknown node type");
}

void bytes_sink(void* ctx, const std::uint8_t* data, std::size_t n) {
  Bytes& out = *static_cast<Bytes*>(ctx);
  if (n == 0) {
    out.clear();
    return;
  }
  out.assign(data, data + n);
}

// One interchange buffer per thread: steady-state serving round-trips
// through recycled capacity, matching the interpreter's allocation profile.
Bytes& tlv_scratch() {
  thread_local Bytes scratch;
  return scratch;
}

}  // namespace

NativeProtocol::NativeProtocol(const ObfuscatedProtocol& protocol,
                               std::shared_ptr<const NativeUnit> unit)
    : wire_(protocol.wire_graph().clone()), unit_(std::move(unit)) {}

Expected<InstPtr> NativeProtocol::parse_wire_tree(BytesView wire, bool prefix,
                                                  std::size_t* consumed,
                                                  InstPool* nodes) const {
  Bytes& tlv = tlv_scratch();
  std::size_t need = 0;
  std::size_t err_off = static_cast<std::size_t>(-1);
  const std::int32_t status = unit_->api().parse(
      wire.data(), wire.size(), prefix ? 1 : 0, consumed, &need, &err_off,
      &bytes_sink, &tlv);
  if (status == 1) {
    return Unexpected::truncated("truncated wire (native)", err_off, need);
  }
  if (status != 0) {
    return Unexpected("malformed wire (native)", err_off);
  }
  std::size_t pos = 0;
  auto tree = unflatten(wire_, wire_.root(), BytesView(tlv), pos, nodes);
  if (!tree) return tree;
  if (pos != tlv.size()) {
    return Unexpected("native tlv corrupt: trailing bytes");
  }
  return tree;
}

Status NativeProtocol::fix_emit(const Inst& wire_tree, std::uint64_t msg_seed,
                                Bytes& out) const {
  Bytes& tlv = tlv_scratch();
  tlv.clear();
  if (Status s = flatten(wire_, wire_tree, wire_.root(), tlv); !s) return s;
  const std::int32_t status =
      unit_->api().fix_emit(tlv.data(), tlv.size(), msg_seed, &bytes_sink,
                            &out);
  if (status != 0) {
    return Unexpected("native serialization failed (fixpoint or emission)");
  }
  return {};
}

}  // namespace protoobf::native
