// NativeProtocol: WireBackend over a dlopen'd generated unit.
//
// Bridges the host's pooled Inst trees and the unit's internal tree
// representation through a compact TLV interchange (lockstep walk of the
// wire graph, see the codec section of codegen/native_unit.cpp):
//
//   parse      wire bytes --unit--> TLV --host--> raw wire tree (pooled)
//   fix_emit   wire tree --host--> TLV --unit--> fixpoint + wire bytes
//
// The adapter owns a clone of the protocol's wire graph (no back-pointer
// into the ObfuscatedProtocol it serves, so attachment cannot cycle) and a
// shared reference to the unit, which keeps the .so mapped. Thread-safe
// the same way the interpreter is: the unit's engine state is
// thread_local, the host scratch here too.
#pragma once

#include <memory>

#include "native/compiler.hpp"
#include "runtime/backend.hpp"

namespace protoobf::native {

class NativeProtocol : public WireBackend {
 public:
  NativeProtocol(const ObfuscatedProtocol& protocol,
                 std::shared_ptr<const NativeUnit> unit);

  Expected<InstPtr> parse_wire_tree(BytesView wire, bool prefix,
                                    std::size_t* consumed,
                                    InstPool* nodes) const override;

  Status fix_emit(const Inst& wire_tree, std::uint64_t msg_seed,
                  Bytes& out) const override;

  const NativeUnit& unit() const { return *unit_; }

 private:
  Graph wire_;
  std::shared_ptr<const NativeUnit> unit_;
};

}  // namespace protoobf::native
