#include "net/capture.hpp"

namespace protoobf::net {

void TrafficCapture::record_out(BytesView frame) {
  std::lock_guard<std::mutex> lock(mu_);
  out_.emplace_back(frame.begin(), frame.end());
}

void TrafficCapture::record_in(BytesView chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  in_.emplace_back(chunk.begin(), chunk.end());
}

std::vector<Bytes> TrafficCapture::out_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return out_;
}

std::vector<Bytes> TrafficCapture::in_chunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_;
}

Bytes TrafficCapture::in_stream() const {
  std::lock_guard<std::mutex> lock(mu_);
  Bytes stream;
  for (const Bytes& chunk : in_) {
    stream.insert(stream.end(), chunk.begin(), chunk.end());
  }
  return stream;
}

Expected<std::vector<Bytes>> TrafficCapture::deframe_in(Framer& framer) const {
  const Bytes stream = in_stream();
  std::vector<Bytes> payloads;
  std::size_t off = 0;
  while (off < stream.size()) {
    FrameDecode d = framer.decode(BytesView(stream).subspan(off));
    switch (d.kind) {
      case FrameDecode::Kind::Frame:
        payloads.emplace_back(d.payload.begin(), d.payload.end());
        off += d.consumed;
        break;
      case FrameDecode::Kind::NeedMore:
        return Unexpected::truncated(
            "captured stream ends mid-frame at offset " + std::to_string(off),
            off, d.need);
      case FrameDecode::Kind::Error:
        return Unexpected(d.error);
    }
  }
  return payloads;
}

std::size_t TrafficCapture::bytes_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const Bytes& f : out_) total += f.size();
  return total;
}

std::size_t TrafficCapture::bytes_in() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const Bytes& c : in_) total += c.size();
  return total;
}

void TrafficCapture::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  out_.clear();
  in_.clear();
}

}  // namespace protoobf::net
