// Wire tap for resilience measurement.
//
// The pre-instruments (src/pre) grade obfuscation quality, but until now
// they only ever saw bytes produced in-process by a serializer — never
// bytes that crossed a real socket, with the kernel deciding chunk sizes
// and coalescing frames. A TrafficCapture records exactly what a
// Connection puts on and takes off the wire:
//
//   * record_out: one entry per framed message, as handed to the kernel —
//     frame boundaries preserved, because the sender knows them;
//   * record_in: one entry per read() slice, exactly as the kernel
//     delivered it — boundaries NOT preserved, because an observer on the
//     wire does not get them either.
//
// deframe() recovers message payloads from the inbound stream the honest
// way: by running a fresh Framer over the concatenated capture, the same
// reassembly any endpoint would do. What the DPI instruments are fed is
// therefore real loopback traffic, not a synthetic approximation.
//
// Thread-safe: a capture is typically written by an event-loop thread and
// read by the test thread after the loop stops.
#pragma once

#include <mutex>
#include <vector>

#include "stream/framer.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace protoobf::net {

class TrafficCapture {
 public:
  /// One framed message, boundaries intact (sender side).
  void record_out(BytesView frame);

  /// One kernel read() slice, boundaries as delivered (receiver side).
  void record_in(BytesView chunk);

  std::vector<Bytes> out_frames() const;
  std::vector<Bytes> in_chunks() const;

  /// The inbound capture as one contiguous stream, in arrival order.
  Bytes in_stream() const;

  /// Recovers the framed payloads from the inbound stream by running
  /// `framer` over it (the framer must be fresh: its decode state becomes
  /// this stream's). Fails if the stream ends mid-frame or a frame is
  /// malformed — a capture of a clean conversation contains whole frames.
  Expected<std::vector<Bytes>> deframe_in(Framer& framer) const;

  std::size_t bytes_out() const;
  std::size_t bytes_in() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Bytes> out_;
  std::vector<Bytes> in_;
};

}  // namespace protoobf::net
