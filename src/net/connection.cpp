#include "net/connection.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.hpp"

namespace protoobf::net {

FramerFactory length_prefix_framer_factory(LengthPrefixFramer::Config config) {
  return [config]() -> Expected<std::unique_ptr<Framer>> {
    return std::unique_ptr<Framer>(new LengthPrefixFramer(config));
  };
}

FramerFactory obfuscated_framer_factory(
    std::shared_ptr<const ObfuscatedProtocol> framing,
    ObfuscatedFramer::Config config) {
  return [framing = std::move(framing),
          config]() -> Expected<std::unique_ptr<Framer>> {
    auto framer = ObfuscatedFramer::create(framing, config);
    if (!framer) return Unexpected(framer.error());
    return std::unique_ptr<Framer>(std::move(*framer));
  };
}

Connection::Connection(EventLoop& loop, Fd fd,
                       std::shared_ptr<const ObfuscatedProtocol> protocol,
                       std::unique_ptr<Framer> framer, Config config)
    : loop_(loop),
      fd_(std::move(fd)),
      config_(config),
      metrics_(config.metrics != nullptr ? *config.metrics
                                         : obs::NetMetrics::client()),
      trace_id_(obs::Tracer::global().next_conn_id()),
      session_(std::move(protocol)),
      framer_(std::move(framer)),
      channel_(session_, *framer_) {
  read_buf_.resize(config_.read_chunk > 0 ? config_.read_chunk : 4096);
  touch();
}

Connection::~Connection() {
  // Destroyed live (owner teardown): detach quietly, no handlers.
  if (state_ != State::Closed) {
    if (idle_timer_ != 0) loop_.cancel_timer(idle_timer_);
    if (drain_timer_ != 0) loop_.cancel_timer(drain_timer_);
    loop_.unwatch(fd_.get());
    ops().on_close(fd_.get());
    state_ = State::Closed;
    if (counted_active_) {
      counted_active_ = false;
      metrics_.active.sub(1);
      metrics_.closed.add(1);
    }
  }
}

Status Connection::open() {
  // Nagle off: obfuscated exchanges are small-frame request/response
  // traffic, the classic pathological case for delayed coalescing.
  (void)set_nodelay(fd_.get());
  if (Status s = set_send_buffer(fd_.get(), config_.send_buffer); !s) return s;
  // send() — and even close() — before open() is legal (Connector hands
  // out unopened connections; accept handlers may greet-and-close).
  // Anything queued needs EPOLLOUT from the first arm, want_write_ must
  // reflect the installed mask, and a connection already Draining must
  // not listen for input it would ignore (a level-triggered EPOLLIN it
  // never reads would spin the loop).
  want_write_ = queued() > 0;
  const std::uint32_t base =
      state_ == State::Draining ? 0u : static_cast<std::uint32_t>(EPOLLIN);
  const std::uint32_t events =
      base | (want_write_ ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  if (Status s = loop_.watch(fd_.get(), events,
                             [this](std::uint32_t ev) { handle_events(ev); });
      !s) {
    return s;
  }
  ops().on_open(fd_.get());
  metrics_.accepted.add(1);
  metrics_.active.add(1);
  counted_active_ = true;
  if (config_.idle_timeout > std::chrono::milliseconds::zero()) {
    // One periodic check instead of a re-armed one-shot per byte: activity
    // just stamps a timestamp, and the sweep fires at most one period late.
    idle_timer_ = loop_.add_timer(config_.idle_timeout,
                                  [this] { check_idle(); },
                                  config_.idle_timeout);
  }
  return Status::success();
}

Status Connection::send(const Inst& message, std::uint64_t msg_seed) {
  if (state_ != State::Open) {
    return Unexpected("send on a closed connection");
  }
  auto framed = channel_.send(message, msg_seed);
  if (!framed) return Unexpected(framed.error());
  if (config_.capture != nullptr) config_.capture->record_out(*framed);

  // Fast path: nothing queued, so the kernel may take the frame directly.
  std::size_t off = 0;
  if (queued() == 0) {
    while (off < framed->size()) {
      // MSG_NOSIGNAL: a peer that vanished must surface as EPIPE on this
      // connection, not as a process-wide SIGPIPE.
      const ssize_t n = ops().send(fd_.get(), framed->data() + off,
                                   framed->size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        stats_.bytes_out += static_cast<std::uint64_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      fail_close(transport_error("write: " +
                                 std::string(std::strerror(errno))));
      return Unexpected("send failed: connection closed");
    }
  }
  if (off > 0) metrics_.bytes_out.add(off);
  if (off < framed->size()) {
    append(outbuf_, framed->subspan(off));
    want_write(true);
    if (!writable() && !above_watermark_) {
      above_watermark_ = true;
      metrics_.backpressure.add(1);
      obs::Tracer::global().record(trace_id_, obs::TraceEvent::Backpressure,
                                   queued());
    }
  }
  ++stats_.messages_out;
  metrics_.messages_out.add(1);
  obs::Tracer::global().record(trace_id_, obs::TraceEvent::FrameOut,
                               framed->size());
  touch();
  return Status::success();
}

void Connection::close() {
  // Already Draining: a second graceful close is a no-op — re-entering
  // would orphan the armed drain timer (it would outlive the connection).
  if (state_ != State::Open) return;
  if (queued() == 0) {
    do_close(nullptr);
    return;
  }
  // Half-close discipline: stop reading, keep EPOLLOUT armed until the
  // queue drains, then finish in handle_writable().
  state_ = State::Draining;
  want_write_ = true;
  (void)loop_.rearm(fd_.get(), EPOLLOUT);
  if (config_.drain_timeout > std::chrono::milliseconds::zero()) {
    // A peer whose receive window never opens would otherwise pin this
    // fd (and up to high_watermark queued bytes) forever.
    drain_timer_ = loop_.add_timer(config_.drain_timeout, [this] {
      if (state_ == State::Draining) {
        fail_close(transport_error("drain timeout: peer stopped reading"));
      }
    });
  }
}

void Connection::abort() {
  if (state_ == State::Closed) return;
  outbuf_.clear();
  outhead_ = 0;
  do_close(nullptr);
}

void Connection::handle_events(std::uint32_t events) {
  if (state_ == State::Closed) return;
  if ((events & EPOLLIN) != 0 && state_ == State::Open) {
    handle_readable();
    if (state_ == State::Closed) return;
  }
  if ((events & EPOLLOUT) != 0) {
    handle_writable();
    if (state_ == State::Closed) return;
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    const int err = take_socket_error(fd_.get());
    if (err == 0 && (events & EPOLLERR) == 0) {
      // Plain hang-up with no pending error: the read path has already
      // consumed everything it will get; treat as peer close.
      if (channel_.reader().buffered() > 0) {
        fail_close(transport_error("peer hung up mid-frame"));
      } else {
        do_close(nullptr);
      }
      return;
    }
    fail_close(transport_error(
        "socket error: " + std::string(std::strerror(err != 0 ? err : EIO))));
  }
}

void Connection::handle_readable() {
  for (;;) {
    const ssize_t n = ops().recv(fd_.get(), read_buf_.data(),
                                 read_buf_.size());
    if (n > 0) {
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      metrics_.bytes_in.add(static_cast<std::uint64_t>(n));
      touch();
      if (config_.capture != nullptr) {
        config_.capture->record_in(
            BytesView(read_buf_).first(static_cast<std::size_t>(n)));
      }
      // Frame latency per readable slice: decode + parse of everything this
      // read delivered. Two clock reads per recv(), so the cost is tied to
      // syscall rate, not message rate.
      const std::uint64_t t0 = obs::now_ns();
      channel_.on_bytes(BytesView(read_buf_).first(static_cast<std::size_t>(n)));
      pump_receive();
      metrics_.frame_ns.record(obs::now_ns() - t0);
      if (state_ != State::Open) return;
      if (static_cast<std::size_t>(n) < read_buf_.size()) return;
      continue;  // the slice was full — more may be pending
    }
    if (n == 0) {
      // EOF. Anything still buffered is the front of a frame that will
      // never complete: a truncation by definition, not a malformation.
      if (channel_.reader().buffered() > 0) {
        fail_close(transport_error("peer closed mid-frame"));
      } else {
        do_close(nullptr);
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    fail_close(
        transport_error("read: " + std::string(std::strerror(errno))));
    return;
  }
}

void Connection::handle_writable() {
  if (Status s = flush_out(); !s) {
    fail_close(transport_error(s.error().message));
    return;
  }
  // Half-drain hysteresis: the producer is told to resume as soon as the
  // queue dips under half the watermark — not only at empty — so it can
  // refill while the kernel keeps draining. The callback may send (and
  // even re-trip the watermark) or close; both are re-checked below.
  if (above_watermark_ && queued() < config_.high_watermark / 2) {
    above_watermark_ = false;
    if (writable_cb_ && state_ == State::Open) writable_cb_(*this);
    if (state_ == State::Closed) return;
  }
  if (queued() > 0) return;
  if (state_ == State::Draining) {
    do_close(nullptr);
    return;
  }
  want_write(false);
}

void Connection::pump_receive() {
  while (auto message = channel_.receive()) {
    ++stats_.messages_in;
    metrics_.messages_in.add(1);
    obs::Tracer::global().record(trace_id_, obs::TraceEvent::FrameIn,
                                 stats_.messages_in);
    if (message_cb_) message_cb_(*this, std::move(*message));
    if (state_ != State::Open) return;  // handler closed the connection
  }
  if (channel_.failed()) {
    // A framing error is sticky and unrecoverable for a connection (no
    // resync policy over TCP: the peer is speaking a different protocol).
    fail_close(Error(channel_.error()));
  }
}

Status Connection::flush_out() {
  while (outhead_ < outbuf_.size()) {
    const ssize_t n = ops().send(fd_.get(), outbuf_.data() + outhead_,
                                 outbuf_.size() - outhead_, MSG_NOSIGNAL);
    if (n > 0) {
      outhead_ += static_cast<std::size_t>(n);
      stats_.bytes_out += static_cast<std::uint64_t>(n);
      metrics_.bytes_out.add(static_cast<std::uint64_t>(n));
      touch();
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return Unexpected("write: " + std::string(std::strerror(errno)));
  }
  if (outhead_ == outbuf_.size()) {
    outbuf_.clear();
    outhead_ = 0;
  } else if (outhead_ > 64 * 1024 && outhead_ >= outbuf_.size() - outhead_) {
    // Same amortized compaction rule as StreamReader::feed.
    outbuf_.erase(outbuf_.begin(),
                  outbuf_.begin() + static_cast<std::ptrdiff_t>(outhead_));
    outhead_ = 0;
  }
  return Status::success();
}

void Connection::want_write(bool enable) {
  if (enable == want_write_) return;
  want_write_ = enable;
  const std::uint32_t base =
      state_ == State::Draining ? 0u : static_cast<std::uint32_t>(EPOLLIN);
  (void)loop_.rearm(
      fd_.get(), base | (enable ? static_cast<std::uint32_t>(EPOLLOUT) : 0u));
}

void Connection::check_idle() {
  if (state_ == State::Closed) return;
  const auto idle = std::chrono::steady_clock::now() - last_activity_;
  if (idle < config_.idle_timeout) return;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(idle).count();
  fail_close(transport_error("idle timeout after " + std::to_string(ms) +
                             "ms"));
}

Error Connection::transport_error(std::string what) {
  // Transport failures — the peer vanished, the kernel gave up, the idle
  // sweep struck — mean the byte stream ended or broke before the
  // conversation did. That is the taxonomy's Truncated, whatever the
  // buffer held; Malformed stays reserved for framing/parse failures
  // (bytes that can never parse no matter what follows).
  return Error{std::move(what), Error::kNoOffset, ErrorKind::Truncated,
               channel_.need_bytes()};
}

void Connection::fail_close(Error err) { do_close(&err); }

void Connection::do_close(const Error* err) {
  if (state_ == State::Closed) return;
  state_ = State::Closed;
  if (counted_active_) {
    counted_active_ = false;
    metrics_.active.sub(1);
    metrics_.closed.add(1);
  }
  // Close taxonomy: clean (no error), Truncated (transport broke), or
  // Malformed (framing/parse failure) — the DPI-facing distinction.
  std::uint64_t taxonomy = 0;
  if (err != nullptr) {
    if (err->kind == ErrorKind::Malformed) {
      taxonomy = 2;
      metrics_.close_malformed.add(1);
      obs::Tracer::global().record(trace_id_, obs::TraceEvent::ParseError,
                                   channel_.reader().buffered());
    } else {
      taxonomy = 1;
      metrics_.close_truncated.add(1);
    }
  } else {
    metrics_.close_clean.add(1);
  }
  obs::Tracer::global().record(trace_id_, obs::TraceEvent::Close, taxonomy);
  if (idle_timer_ != 0) {
    loop_.cancel_timer(idle_timer_);
    idle_timer_ = 0;
  }
  if (drain_timer_ != 0) {
    loop_.cancel_timer(drain_timer_);
    drain_timer_ = 0;
  }
  loop_.unwatch(fd_.get());
  ops().on_close(fd_.get());
  fd_.reset();
  if (close_cb_) close_cb_(*this, err);
  // Owner reclaim runs last — it may schedule this object's destruction.
  if (owner_hook_) owner_hook_(*this);
}

}  // namespace protoobf::net
