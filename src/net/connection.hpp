// One obfuscated TCP connection: socket ↔ Channel glue.
//
// A Connection binds a nonblocking socket to its own Session (per-connection
// arenas and node pool), its own Framer (per-connection decode state), and a
// Channel on top of both. It adds what real sockets force on the streaming
// API and an in-memory byte stream never shows:
//
//   * a write queue — send() serializes and frames through the channel,
//     writes as much as the kernel takes, queues the rest, and re-arms
//     EPOLLOUT until the queue drains; writable()/on_writable expose a
//     high-watermark backpressure signal so producers stop queueing
//     unboundedly against a slow peer;
//   * read-chunk delivery — readiness-driven reads feed Channel::on_bytes
//     in read_chunk slices, and every complete message is handed to
//     on_message (parse errors per message included: the stream continues
//     past them, exactly as the Channel contract says);
//   * close semantics — close() flushes the queue then closes (graceful),
//     abort() drops it and closes now; a peer that disappears mid-frame is
//     reported through the existing ErrorKind taxonomy: the close error is
//     Truncated (the stream ended before the message did), never Malformed;
//   * an idle timeout — a connection with no traffic for idle_timeout gets
//     closed with a Truncated "idle" error.
//
// Threading: a Connection lives on its event loop's thread. Every method —
// send() included — must be called from that thread (use EventLoop::post
// from elsewhere). Parse trees handed to on_message are pooled by this
// connection's session: drop them inside the handler.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "net/capture.hpp"
#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "net/socket.hpp"
#include "obs/families.hpp"
#include "session/session.hpp"
#include "stream/channel.hpp"

namespace protoobf::net {

/// Builds one framer per connection (per-connection decode state is a hard
/// requirement of the streaming layer). Used by Server for accepted
/// connections and ReliableClient for each dial attempt; factories for the
/// two stock framers are below. A custom factory can close over whatever
/// state it needs — it runs on the owning loop's thread.
using FramerFactory = std::function<Expected<std::unique_ptr<Framer>>()>;

FramerFactory length_prefix_framer_factory(
    LengthPrefixFramer::Config config = {});
FramerFactory obfuscated_framer_factory(
    std::shared_ptr<const ObfuscatedProtocol> framing,
    ObfuscatedFramer::Config config = {});

class Connection {
 public:
  struct Config {
    std::size_t read_chunk = 16 * 1024;  // bytes per read() slice
    // send() keeps accepting above this, but writable() turns false and
    // on_writable fires when the queue drains back under half of it.
    std::size_t high_watermark = 256 * 1024;
    std::chrono::milliseconds idle_timeout{0};  // 0 = no idle timer
    // How long a graceful close() waits for the peer to drain the write
    // queue before giving up (a peer with a full receive window would
    // otherwise pin the fd and up to high_watermark bytes forever).
    // 0 = wait indefinitely.
    std::chrono::milliseconds drain_timeout{5000};
    int send_buffer = 0;  // SO_SNDBUF override; 0 = kernel default
    // Optional wire tap (net/capture.hpp): outbound frames and inbound
    // read() slices are recorded exactly as they hit the socket. Must
    // outlive the connection; null = no capture.
    TrafficCapture* capture = nullptr;
    // Syscall seam (net/fault.hpp): every recv/send goes through it, and
    // Connector consults its connect gate before dialing. Null = the real
    // syscalls; a FaultInjector here puts the connection on a replayable
    // hostile network. Must outlive the connection.
    SocketOps* ops = nullptr;
    // Registry bundle this connection's traffic lands in. Server wires the
    // owning shard's bundle; null = the process-wide "client" series
    // (outbound dials). Instruments live for the process lifetime.
    obs::NetMetrics* metrics = nullptr;
  };

  struct Stats {
    std::uint64_t messages_in = 0;
    std::uint64_t messages_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
  };

  /// `err` is null for a clean peer close or a locally requested close,
  /// non-null when the connection died: framing failure (Malformed), peer
  /// gone mid-frame or idle timeout (Truncated), socket errors.
  using MessageHandler = std::function<void(Connection&, Expected<InstPtr>)>;
  using CloseHandler = std::function<void(Connection&, const Error* err)>;
  using WritableHandler = std::function<void(Connection&)>;

  /// Takes ownership of `fd` (already connected, nonblocking) and `framer`;
  /// builds the per-connection Session over the shared compiled protocol.
  Connection(EventLoop& loop, Fd fd,
             std::shared_ptr<const ObfuscatedProtocol> protocol,
             std::unique_ptr<Framer> framer, Config config);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void on_message(MessageHandler handler) { message_cb_ = std::move(handler); }
  void on_close(CloseHandler handler) { close_cb_ = std::move(handler); }
  void on_writable(WritableHandler handler) {
    writable_cb_ = std::move(handler);
  }

  /// Installed by the owning container (Server); runs after the user close
  /// handler so the owner can reclaim the connection object.
  void set_owner_hook(std::function<void(Connection&)> hook) {
    owner_hook_ = std::move(hook);
  }

  /// Registers with the event loop and starts the idle timer. Call after
  /// the handlers are installed.
  Status open();

  /// Serializes + frames `message` through the channel and writes it,
  /// queueing whatever the kernel does not take immediately. Fails when
  /// serialization fails or the connection is closed/draining — never
  /// because of backpressure (check writable() to throttle).
  Status send(const Inst& message, std::uint64_t msg_seed);

  /// Flushes the write queue, then closes. With an empty queue this closes
  /// immediately; otherwise reading stops and the close completes when the
  /// queue drains. The close handler runs either way (err == nullptr).
  void close();

  /// Closes now, discarding any queued bytes (err == nullptr).
  void abort();

  bool open_for_traffic() const { return state_ == State::Open; }
  bool closed() const { return state_ == State::Closed; }

  /// Backpressure signal: false while the write queue sits at or above the
  /// high watermark. on_writable fires when it drains below half of it.
  bool writable() const { return queued() < config_.high_watermark; }
  std::size_t queued() const { return outbuf_.size() - outhead_; }

  int fd() const { return fd_.get(); }
  /// When the connection last moved bytes (the idle sweep's clock); the
  /// overload shedder uses it to pick least-recently-active victims.
  std::chrono::steady_clock::time_point last_activity() const {
    return last_activity_;
  }
  Session& session() { return session_; }
  Channel& channel() { return channel_; }
  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  /// Tracer connection id — correlates this connection's ring events.
  std::uint64_t trace_id() const { return trace_id_; }

 private:
  enum class State { Open, Draining, Closed };

  void handle_events(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  void pump_receive();
  Status flush_out();
  void want_write(bool enable);
  void touch() { last_activity_ = std::chrono::steady_clock::now(); }
  void check_idle();
  /// Transport failures close with ErrorKind::Truncated — the stream broke
  /// before the conversation ended. Malformed is reserved for framing and
  /// parse failures surfaced through the channel.
  Error transport_error(std::string what);
  void fail_close(Error err);
  void do_close(const Error* err);
  SocketOps& ops() const {
    return config_.ops != nullptr ? *config_.ops : SocketOps::real();
  }

  EventLoop& loop_;
  Fd fd_;
  Config config_;
  obs::NetMetrics& metrics_;
  std::uint64_t trace_id_;
  bool counted_active_ = false;  // active gauge incremented, not yet undone
  Session session_;                 // per-connection arenas + node pool
  std::unique_ptr<Framer> framer_;  // per-connection decode state
  Channel channel_;

  Bytes outbuf_;              // pending wire bytes [outhead_, size)
  std::size_t outhead_ = 0;   // consumed prefix of outbuf_
  bool want_write_ = false;   // EPOLLOUT currently armed
  bool above_watermark_ = false;
  Bytes read_buf_;            // read() landing zone, read_chunk bytes

  State state_ = State::Open;
  EventLoop::TimerId idle_timer_ = 0;
  EventLoop::TimerId drain_timer_ = 0;  // Draining-state deadline
  std::chrono::steady_clock::time_point last_activity_;

  MessageHandler message_cb_;
  CloseHandler close_cb_;
  WritableHandler writable_cb_;
  std::function<void(Connection&)> owner_hook_;
  Stats stats_;
};

}  // namespace protoobf::net
