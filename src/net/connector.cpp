#include "net/connector.hpp"

#include <poll.h>
#include <sys/epoll.h>

#include <cstring>
#include <thread>

namespace protoobf::net {

Expected<std::unique_ptr<Connection>> Connector::dial(
    EventLoop& loop, const Endpoint& ep,
    std::shared_ptr<const ObfuscatedProtocol> protocol,
    std::unique_ptr<Framer> framer, Connection::Config config,
    std::chrono::milliseconds timeout, BackoffPolicy backoff) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Jitter seeded from the endpoint so concurrent dialers to different
  // servers draw different schedules while a given call site stays
  // deterministic under test.
  Backoff delays(backoff, 0x6469616cull ^ ep.port);
  int refused = 0;

  for (;;) {
    // The fault seam's connect gate stands in for a refusing server — a
    // gated attempt consumes a retry exactly like a real RST would.
    int err = config.ops != nullptr ? config.ops->connect_gate() : 0;
    Expected<Fd> fd = Unexpected("gated");
    if (err == 0) {
      fd = connect_tcp(ep);
      if (!fd) {
        // Loopback refusals can surface synchronously from connect(2)
        // instead of via SO_ERROR; fold them into the same retry path.
        if (fd.error().message.find(std::strerror(ECONNREFUSED)) !=
            std::string::npos) {
          err = ECONNREFUSED;
        } else {
          return Unexpected(fd.error());
        }
      }
    }
    if (err == 0) {
      pollfd pfd{fd->get(), POLLOUT, 0};
      int ready;
      for (;;) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        ready = ::poll(&pfd, 1,
                       left.count() > 0 ? static_cast<int>(left.count()) : 0);
        if (ready >= 0) break;
        // A stray signal (SIGCHLD, a profiler tick) must not fail the
        // dial; retry with whatever deadline remains.
        if (errno != EINTR) {
          return Unexpected("poll: " + std::string(std::strerror(errno)));
        }
      }
      if (ready == 0) {
        return Unexpected("connect " + ep.host + ":" +
                          std::to_string(ep.port) + " timed out");
      }
      err = take_socket_error(fd->get());
      if (err == 0) {
        return std::make_unique<Connection>(loop, std::move(*fd),
                                            std::move(protocol),
                                            std::move(framer), config);
      }
    }
    if (err != ECONNREFUSED) {
      return Unexpected("connect " + ep.host + ":" + std::to_string(ep.port) +
                        ": " + std::strerror(err));
    }
    // Refused: the server may simply not be listening *yet* (the start-up
    // race every client/server test loses without help). Back off and
    // retry while the deadline allows.
    ++refused;
    const auto delay = delays.next();
    if (std::chrono::steady_clock::now() + delay >= deadline) {
      return Unexpected("connect " + ep.host + ":" + std::to_string(ep.port) +
                        ": " + std::strerror(ECONNREFUSED) + " (" +
                        std::to_string(refused) + " attempts)");
    }
    std::this_thread::sleep_for(delay);
  }
}

void Connector::connect(const Endpoint& ep,
                        std::shared_ptr<const ObfuscatedProtocol> protocol,
                        std::unique_ptr<Framer> framer,
                        Connection::Config config, ConnectHandler handler) {
  auto fd = connect_tcp(ep);
  if (!fd) {
    handler(Unexpected(fd.error()));
    return;
  }

  // Everything the completion needs, shared so the watch callback stays
  // copyable (std::function) while owning move-only pieces.
  struct Pending {
    Fd fd;
    Endpoint ep;
    std::shared_ptr<const ObfuscatedProtocol> protocol;
    std::unique_ptr<Framer> framer;
    Connection::Config config;
    ConnectHandler handler;
  };
  auto pending = std::make_shared<Pending>();
  pending->fd = std::move(*fd);
  pending->ep = ep;
  pending->protocol = std::move(protocol);
  pending->framer = std::move(framer);
  pending->config = config;
  pending->handler = std::move(handler);

  const int raw = pending->fd.get();
  EventLoop& loop = loop_;
  const Status watched = loop.watch(
      raw, EPOLLOUT, [&loop, raw, pending](std::uint32_t) {
        loop.unwatch(raw);
        if (const int err = take_socket_error(raw); err != 0) {
          pending->handler(Unexpected(
              "connect " + pending->ep.host + ":" +
              std::to_string(pending->ep.port) + ": " + std::strerror(err)));
          return;
        }
        pending->handler(std::make_unique<Connection>(
            loop, std::move(pending->fd), std::move(pending->protocol),
            std::move(pending->framer), pending->config));
      });
  if (!watched) pending->handler(Unexpected(watched.error()));
}

}  // namespace protoobf::net
