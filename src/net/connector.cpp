#include "net/connector.hpp"

#include <poll.h>
#include <sys/epoll.h>

#include <cstring>

namespace protoobf::net {

Expected<std::unique_ptr<Connection>> Connector::dial(
    EventLoop& loop, const Endpoint& ep,
    std::shared_ptr<const ObfuscatedProtocol> protocol,
    std::unique_ptr<Framer> framer, Connection::Config config,
    std::chrono::milliseconds timeout) {
  auto fd = connect_tcp(ep);
  if (!fd) return Unexpected(fd.error());

  pollfd pfd{fd->get(), POLLOUT, 0};
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  int ready;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    ready = ::poll(&pfd, 1,
                   left.count() > 0 ? static_cast<int>(left.count()) : 0);
    if (ready >= 0) break;
    // A stray signal (SIGCHLD, a profiler tick) must not fail the dial;
    // retry with whatever deadline remains.
    if (errno != EINTR) {
      return Unexpected("poll: " + std::string(std::strerror(errno)));
    }
  }
  if (ready == 0) {
    return Unexpected("connect " + ep.host + ":" + std::to_string(ep.port) +
                      " timed out");
  }
  if (const int err = take_socket_error(fd->get()); err != 0) {
    return Unexpected("connect " + ep.host + ":" + std::to_string(ep.port) +
                      ": " + std::strerror(err));
  }
  return std::make_unique<Connection>(loop, std::move(*fd),
                                      std::move(protocol), std::move(framer),
                                      config);
}

void Connector::connect(const Endpoint& ep,
                        std::shared_ptr<const ObfuscatedProtocol> protocol,
                        std::unique_ptr<Framer> framer,
                        Connection::Config config, ConnectHandler handler) {
  auto fd = connect_tcp(ep);
  if (!fd) {
    handler(Unexpected(fd.error()));
    return;
  }

  // Everything the completion needs, shared so the watch callback stays
  // copyable (std::function) while owning move-only pieces.
  struct Pending {
    Fd fd;
    Endpoint ep;
    std::shared_ptr<const ObfuscatedProtocol> protocol;
    std::unique_ptr<Framer> framer;
    Connection::Config config;
    ConnectHandler handler;
  };
  auto pending = std::make_shared<Pending>();
  pending->fd = std::move(*fd);
  pending->ep = ep;
  pending->protocol = std::move(protocol);
  pending->framer = std::move(framer);
  pending->config = config;
  pending->handler = std::move(handler);

  const int raw = pending->fd.get();
  EventLoop& loop = loop_;
  const Status watched = loop.watch(
      raw, EPOLLOUT, [&loop, raw, pending](std::uint32_t) {
        loop.unwatch(raw);
        if (const int err = take_socket_error(raw); err != 0) {
          pending->handler(Unexpected(
              "connect " + pending->ep.host + ":" +
              std::to_string(pending->ep.port) + ": " + std::strerror(err)));
          return;
        }
        pending->handler(std::make_unique<Connection>(
            loop, std::move(pending->fd), std::move(pending->protocol),
            std::move(pending->framer), pending->config));
      });
  if (!watched) pending->handler(Unexpected(watched.error()));
}

}  // namespace protoobf::net
