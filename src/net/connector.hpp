// Client side of the socket transport.
//
// Two ways to reach a server:
//
//   * Connector::dial() — synchronous: completes the TCP handshake (with a
//     deadline), wraps the socket in a Connection bound to `loop`, and
//     returns it unopened. Install handlers, then open(). The natural
//     shape for CLIs, benches and tests that set up before the loop runs.
//
//   * Connector::connect() — asynchronous: starts a nonblocking connect
//     and watches it on the loop; the handler receives the unopened
//     Connection (or the error) on the loop thread once the handshake
//     resolves. The natural shape for dialing out of a running server.
#pragma once

#include <chrono>
#include <memory>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/reconnect.hpp"
#include "net/socket.hpp"

namespace protoobf::net {

class Connector {
 public:
  using ConnectHandler =
      std::function<void(Expected<std::unique_ptr<Connection>>)>;

  explicit Connector(EventLoop& loop) : loop_(loop) {}

  /// Blocking connect with a deadline. A refused connection — the classic
  /// client-raced-the-server startup window, or the fault injector's
  /// connect gate — is retried with capped-exponential backoff (full
  /// jitter, `backoff`) until the overall `timeout` elapses; every other
  /// failure is immediate. config.ops supplies the connect gate.
  static Expected<std::unique_ptr<Connection>> dial(
      EventLoop& loop, const Endpoint& ep,
      std::shared_ptr<const ObfuscatedProtocol> protocol,
      std::unique_ptr<Framer> framer, Connection::Config config,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000),
      BackoffPolicy backoff = {});

  /// Nonblocking connect resolved on the loop thread. Must be called from
  /// the loop thread (or before the loop runs).
  void connect(const Endpoint& ep,
               std::shared_ptr<const ObfuscatedProtocol> protocol,
               std::unique_ptr<Framer> framer, Connection::Config config,
               ConnectHandler handler);

 private:
  EventLoop& loop_;
};

}  // namespace protoobf::net
