#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace protoobf::net {

namespace {

constexpr int kMaxEvents = 64;

Unexpected errno_error(const std::string& what) {
  return Unexpected(what + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_.reset(::epoll_create1(EPOLL_CLOEXEC));
  wakeup_.reset(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  timerfd_.reset(::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC));
  // The two plumbing fds are registered with generation 0, which watch()
  // never hands out — dispatch recognizes them by fd before consulting the
  // watch table.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = pack(wakeup_.get(), 0);
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_.get(), &ev);
  ev.data.u64 = pack(timerfd_.get(), 0);
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, timerfd_.get(), &ev);
}

EventLoop::~EventLoop() = default;

Status EventLoop::watch(int fd, std::uint32_t events, FdCallback cb,
                        bool edge) {
  if (watches_.count(fd) > 0) {
    return Unexpected("fd " + std::to_string(fd) + " is already watched");
  }
  Watch w;
  w.gen = next_gen_++;
  if (next_gen_ == 0) next_gen_ = 1;  // keep 0 reserved for plumbing fds
  w.events = events;
  w.edge = edge;
  w.cb = std::move(cb);

  epoll_event ev{};
  ev.events = events | (edge ? static_cast<std::uint32_t>(EPOLLET) : 0u);
  ev.data.u64 = pack(fd, w.gen);
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return errno_error("epoll_ctl(ADD)");
  }
  watches_.emplace(fd, std::move(w));
  return Status::success();
}

Status EventLoop::rearm(int fd, std::uint32_t events) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) {
    return Unexpected("fd " + std::to_string(fd) + " is not watched");
  }
  epoll_event ev{};
  ev.events =
      events | (it->second.edge ? static_cast<std::uint32_t>(EPOLLET) : 0u);
  ev.data.u64 = pack(fd, it->second.gen);
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return errno_error("epoll_ctl(MOD)");
  }
  it->second.events = events;
  return Status::success();
}

void EventLoop::unwatch(int fd) {
  if (watches_.erase(fd) > 0) {
    // The caller may already have closed the fd (kernel auto-removes it
    // from the epoll set then), so a DEL failure is not actionable.
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  }
}

EventLoop::TimerId EventLoop::add_timer(std::chrono::milliseconds delay,
                                        Task cb,
                                        std::chrono::milliseconds interval) {
  Timer t;
  t.deadline = std::chrono::steady_clock::now() + delay;
  t.id = next_timer_++;
  t.interval = interval;
  t.cb = std::move(cb);
  const TimerId id = t.id;
  timers_.push_back(std::move(t));
  std::push_heap(timers_.begin(), timers_.end(), std::greater<>());
  arm_timerfd();
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  if (id == firing_timer_) firing_cancelled_ = true;
  for (Timer& t : timers_) {
    if (t.id == id) {
      // Lazy: the entry stays heaped until its deadline pops it; firing
      // skips it then. Rearming for a cancel is not worth the heap fixup.
      t.cancelled = true;
      return;
    }
  }
}

void EventLoop::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; short writes
  // cannot happen on an 8-byte eventfd write.
  (void)!::write(wakeup_.get(), &one, sizeof one);
}

void EventLoop::run() {
  running_.store(true, std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_relaxed)) {
    run_once(-1);
  }
  // A post() racing stop() may land after the final round's drain; run
  // those stragglers instead of silently dropping them (teardown tasks —
  // server shutdown, deferred closes — travel exactly this way).
  drain_tasks();
  running_.store(false, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);  // allow a later re-run
}

int EventLoop::run_once(int timeout_ms) {
  epoll_event events[kMaxEvents];
  int n = ::epoll_wait(epoll_.get(), events, kMaxEvents, timeout_ms);
  if (n < 0) {
    // EINTR is routine; anything else (a dead epoll fd from construction
    // under fd exhaustion, EBADF) would make run() hot-spin at 100% CPU —
    // stop the loop instead.
    if (errno != EINTR) stop_.store(true, std::memory_order_relaxed);
    n = 0;
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = static_cast<int>(events[i].data.u64 >> 32);
    const std::uint32_t gen =
        static_cast<std::uint32_t>(events[i].data.u64 & 0xffffffffu);
    if (fd == wakeup_.get() && gen == 0) {
      drain_wakeup();
      continue;
    }
    if (fd == timerfd_.get() && gen == 0) {
      fire_timers();
      continue;
    }
    const auto it = watches_.find(fd);
    if (it == watches_.end() || it->second.gen != gen) {
      continue;  // unwatched (or replaced) earlier in this very batch
    }
    // The callback may unwatch this fd or mutate the table — dispatch
    // through a copy so iterator invalidation cannot bite.
    const FdCallback cb = it->second.cb;
    cb(events[i].events);
    ++dispatched;
  }
  drain_tasks();
  return dispatched;
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_relaxed);
  post([] {});  // kick the wait
}

void EventLoop::arm_timerfd() {
  itimerspec spec{};
  if (!timers_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    auto delta = timers_.front().deadline - now;
    if (delta < std::chrono::nanoseconds(1)) {
      delta = std::chrono::nanoseconds(1);  // overdue: fire immediately
    }
    const auto secs =
        std::chrono::duration_cast<std::chrono::seconds>(delta);
    spec.it_value.tv_sec = secs.count();
    spec.it_value.tv_nsec = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                delta - secs)
                                .count();
  }
  // An all-zero spec disarms; no pending timers means no timer wakeups.
  ::timerfd_settime(timerfd_.get(), 0, &spec, nullptr);
}

void EventLoop::fire_timers() {
  std::uint64_t expirations = 0;
  (void)!::read(timerfd_.get(), &expirations, sizeof expirations);

  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() &&
         (timers_.front().cancelled || timers_.front().deadline <= now)) {
    std::pop_heap(timers_.begin(), timers_.end(), std::greater<>());
    Timer t = std::move(timers_.back());
    timers_.pop_back();
    if (t.cancelled) continue;

    firing_timer_ = t.id;
    firing_cancelled_ = false;
    t.cb();
    firing_timer_ = 0;

    if (t.interval > std::chrono::milliseconds::zero() && !firing_cancelled_) {
      t.deadline = now + t.interval;
      timers_.push_back(std::move(t));
      std::push_heap(timers_.begin(), timers_.end(), std::greater<>());
    }
  }
  arm_timerfd();
}

void EventLoop::drain_wakeup() {
  std::uint64_t count = 0;
  while (::read(wakeup_.get(), &count, sizeof count) > 0) {
  }
}

void EventLoop::drain_tasks() {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    running_tasks_.swap(tasks_);
  }
  // Tasks posted by a running task land in tasks_ and run next round (the
  // post() wakeup guarantees there is one).
  for (Task& task : running_tasks_) task();
  running_tasks_.clear();
}

}  // namespace protoobf::net
