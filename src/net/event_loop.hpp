// Nonblocking epoll event loop — the heartbeat of the socket transport.
//
// One EventLoop runs one thread (Server starts one per shard). It owns
// three kinds of wake-ups:
//
//   * fd readiness   — watch(fd, events, callback), level-triggered by
//     default with opt-in edge-triggered mode (EPOLLET); callbacks receive
//     the ready event mask;
//   * timers         — a single timerfd armed to the earliest deadline of a
//     min-heap, so N idle timeouts cost one kernel timer, not N;
//   * cross-thread   — post(fn) enqueues a task from any thread and kicks
//     an eventfd so the loop runs it promptly; the Server uses this for
//     round-robin fd handoff and for teardown.
//
// Dispatch safety: callbacks may unwatch fds (including their own) and
// cancel timers mid-batch. Watches carry a generation counter packed into
// the epoll user data, so an event for a watch that was removed — or
// removed-and-replaced — earlier in the same epoll_wait batch is dropped
// instead of dispatched to the wrong owner.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"
#include "util/result.hpp"

namespace protoobf::net {

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (borrowed, not owned) for `events` (EPOLLIN/EPOLLOUT
  /// combination). `edge` opts into edge-triggered readiness — the callback
  /// must then drain until EAGAIN. One watch per fd.
  Status watch(int fd, std::uint32_t events, FdCallback cb, bool edge = false);

  /// Changes the event mask of an existing watch.
  Status rearm(int fd, std::uint32_t events);

  /// Drops the watch. Safe from inside any callback, including the watch's
  /// own; any event already harvested for it in this batch is discarded.
  void unwatch(int fd);

  /// One-shot (`interval` zero) or periodic timer. The callback runs on the
  /// loop thread. Returns an id for cancel_timer().
  TimerId add_timer(std::chrono::milliseconds delay, Task cb,
                    std::chrono::milliseconds interval =
                        std::chrono::milliseconds::zero());

  /// Cancels a pending timer. Safe from callbacks; cancelling an already-
  /// fired one-shot timer is a no-op.
  void cancel_timer(TimerId id);

  /// Enqueues `task` to run on the loop thread. Thread-safe; wakes the
  /// loop. Posted from the loop thread itself, the task still runs only
  /// after the current dispatch batch completes.
  void post(Task task);

  /// Dispatches until stop(). Must be called from exactly one thread — the
  /// thread that becomes the loop thread.
  void run();

  /// One epoll_wait round: dispatches whatever is ready within
  /// `timeout_ms` (-1 blocks). Returns the number of events dispatched.
  /// Tests and single-threaded drivers pump the loop with this.
  int run_once(int timeout_ms);

  /// Stops run() after the current batch. Thread-safe.
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Number of active fd watches (wakeup/timer plumbing excluded).
  std::size_t watch_count() const { return watches_.size(); }

 private:
  struct Watch {
    std::uint32_t gen = 0;
    std::uint32_t events = 0;
    bool edge = false;
    FdCallback cb;
  };

  struct Timer {
    std::chrono::steady_clock::time_point deadline;
    TimerId id = 0;
    std::chrono::milliseconds interval{0};
    Task cb;
    bool cancelled = false;

    bool operator>(const Timer& other) const {
      return deadline > other.deadline ||
             (deadline == other.deadline && id > other.id);
    }
  };

  static std::uint64_t pack(int fd, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd)) << 32) |
           gen;
  }

  void arm_timerfd();
  void fire_timers();
  void drain_wakeup();
  void drain_tasks();

  Fd epoll_;
  Fd wakeup_;   // eventfd: post() kicks it
  Fd timerfd_;  // armed to the earliest heap deadline
  std::uint32_t next_gen_ = 1;
  std::unordered_map<int, Watch> watches_;

  std::vector<Timer> timers_;  // min-heap via std::push_heap/greater
  TimerId next_timer_ = 1;
  TimerId firing_timer_ = 0;       // timer whose callback is running
  bool firing_cancelled_ = false;  // that callback cancelled itself

  std::mutex task_mu_;
  std::vector<Task> tasks_;
  std::vector<Task> running_tasks_;  // swap target, avoids realloc per drain

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace protoobf::net
