#include "net/fault.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "obs/families.hpp"
#include "obs/trace.hpp"

namespace protoobf::net {

namespace {

// Registry mirror of every injected fault, keyed by the same taxonomy as
// FaultInjector::Stats — the soak test cross-checks the two tallies. `kind`
// doubles as the trace-event argument so a ring dump shows which fault hit.
enum FaultOrd : std::uint64_t {
  kShortRead = 0, kShortWrite, kEagain, kReset, kEpipe, kFin, kRefused
};

void count_fault(obs::Counter& counter, FaultOrd kind) {
  counter.add(1);
  obs::Tracer::global().record(0, obs::TraceEvent::FaultInjected, kind);
}

/// SplitMix64-style mix so nearby connection indexes get unrelated streams.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ssize_t SocketOps::recv(int fd, void* buf, std::size_t len) {
  return ::recv(fd, buf, len, 0);
}

ssize_t SocketOps::send(int fd, const void* buf, std::size_t len, int flags) {
  return ::send(fd, buf, len, flags);
}

int SocketOps::connect_gate() { return 0; }
void SocketOps::on_open(int) {}
void SocketOps::on_close(int) {}

SocketOps& SocketOps::real() {
  static SocketOps instance;
  return instance;
}

// --- FaultInjector ----------------------------------------------------------

bool FaultInjector::roll(FlowState& flow, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // 53-bit uniform: plenty for test probabilities.
  const double draw =
      static_cast<double>(flow.rng.next_u64() >> 11) * 0x1.0p-53;
  return draw < p;
}

void FaultInjector::on_open(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  // The schedule is keyed by open order: replaying a seed redraws the same
  // per-connection fates no matter which fd numbers the kernel hands out.
  FlowState flow(mix_seed(plan_.seed, next_flow_++));
  ++stats_.connections;
  obs::FaultMetrics::get().connections.add(1);
  if (roll(flow, plan_.kill_rate)) {
    flow.kill_at = plan_.kill_window_bytes > 0
                       ? flow.rng.below(plan_.kill_window_bytes)
                       : 0;
    KillKind kinds[3];
    std::size_t n = 0;
    if (plan_.kill_reset) kinds[n++] = KillKind::Reset;
    if (plan_.kill_epipe) kinds[n++] = KillKind::Epipe;
    if (plan_.kill_fin) kinds[n++] = KillKind::Fin;
    flow.kill = n > 0 ? kinds[flow.rng.below(n)] : KillKind::None;
  }
  flows_.erase(fd);  // fd recycled before on_close (shouldn't happen; safe)
  flows_.emplace(fd, std::move(flow));
}

void FaultInjector::on_close(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  flows_.erase(fd);
}

ssize_t FaultInjector::maybe_kill_recv(FlowState& flow) {
  flow.dead = true;
  if (flow.kill == KillKind::Fin) {
    ++stats_.fins;
    count_fault(obs::FaultMetrics::get().fins, kFin);
    return 0;  // mid-frame FIN: clean EOF while bytes are still buffered
  }
  ++stats_.resets;
  count_fault(obs::FaultMetrics::get().resets, kReset);
  errno = ECONNRESET;
  return -1;
}

ssize_t FaultInjector::maybe_kill_send(FlowState& flow) {
  flow.dead = true;
  ++stats_.epipes;
  count_fault(obs::FaultMetrics::get().epipes, kEpipe);
  errno = EPIPE;
  return -1;
}

ssize_t FaultInjector::recv(int fd, void* buf, std::size_t len) {
  std::size_t want = len;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flows_.find(fd);
    if (it != flows_.end()) {
      FlowState& flow = it->second;
      if (flow.dead) {
        errno = ECONNRESET;
        return -1;
      }
      if ((flow.kill == KillKind::Reset || flow.kill == KillKind::Fin) &&
          flow.bytes >= flow.kill_at) {
        // EPIPE kills wait for a send; echo traffic always sends soon.
        return maybe_kill_recv(flow);
      }
      if (roll(flow, plan_.eagain)) {
        ++stats_.eagains;
        count_fault(obs::FaultMetrics::get().eagains, kEagain);
        errno = EAGAIN;
        return -1;
      }
      if (len > 1 && roll(flow, plan_.short_read)) {
        ++stats_.short_reads;
        count_fault(obs::FaultMetrics::get().short_reads, kShortRead);
        want = 1 + static_cast<std::size_t>(flow.rng.below(len - 1));
      }
    }
  }
  const ssize_t n = SocketOps::recv(fd, buf, want);
  if (n > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = flows_.find(fd); it != flows_.end()) {
      it->second.bytes += static_cast<std::uint64_t>(n);
    }
  }
  return n;
}

ssize_t FaultInjector::send(int fd, const void* buf, std::size_t len,
                            int flags) {
  std::size_t want = len;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flows_.find(fd);
    if (it != flows_.end()) {
      FlowState& flow = it->second;
      if (flow.dead) {
        errno = EPIPE;
        return -1;
      }
      if (flow.kill == KillKind::Epipe && flow.bytes >= flow.kill_at) {
        return maybe_kill_send(flow);
      }
      if (roll(flow, plan_.eagain)) {
        ++stats_.eagains;
        count_fault(obs::FaultMetrics::get().eagains, kEagain);
        errno = EAGAIN;
        return -1;
      }
      if (len > 1 && roll(flow, plan_.short_write)) {
        ++stats_.short_writes;
        count_fault(obs::FaultMetrics::get().short_writes, kShortWrite);
        want = 1 + static_cast<std::size_t>(flow.rng.below(len - 1));
      }
    }
  }
  const ssize_t n = SocketOps::send(fd, buf, want, flags);
  if (n > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = flows_.find(fd); it != flows_.end()) {
      it->second.bytes += static_cast<std::uint64_t>(n);
    }
  }
  return n;
}

int FaultInjector::connect_gate() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t attempt = next_attempt_++;
  if (plan_.refuse_every > 0 && attempt % plan_.refuse_every == 0) {
    ++stats_.refused;
    count_fault(obs::FaultMetrics::get().refused, kRefused);
    return ECONNREFUSED;
  }
  return 0;
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t FaultInjector::kills() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.resets + stats_.epipes + stats_.fins;
}

}  // namespace protoobf::net
