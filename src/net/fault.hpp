// Deterministic transport fault injection for the socket layer.
//
// The paper's obfuscated protocols only matter if the transport carrying
// them survives a hostile, lossy network: DPI boxes reset flows mid-frame,
// middleboxes rate-limit until send() sees EAGAIN storms, peers vanish
// between a frame's header and its body. Reproducing those conditions
// against real kernels is flaky; this layer makes them a *schedule*.
//
// Three pieces:
//
//   * SocketOps — the syscall seam. Connection performs every recv/send
//     through a SocketOps (Config::ops); the default instance forwards to
//     the real syscalls, so production pays one virtual call and nothing
//     else. Connector::dial consults the same seam before dialing, which
//     is where connect refusals are injected (deterministically, without
//     needing a cooperating kernel).
//
//   * FaultPlan — the *parameters* of a hostile network: per-operation
//     probabilities for short reads/writes and EAGAIN storms, scheduled
//     connection kills (ECONNRESET on recv, EPIPE on send, or a mid-frame
//     FIN) expressed as byte offsets, and a connect-refusal pattern. A
//     plan plus a seed is a complete, replayable description of every
//     fault a run will see.
//
//   * FaultInjector — a SocketOps that executes the plan. Each connection
//     (identified by the on_open() call order, NOT the fd number, so a
//     replay with different fd assignment draws the same schedule) gets
//     its own SplitMix64 stream seeded from (plan seed, connection index).
//     The kernel's interleaving still varies run to run; the *decisions*
//     — which ops are shortened, at which byte offset a connection dies —
//     do not.
//
// All faults respect the transport taxonomy: an injected kill surfaces
// exactly like a real one (errno from the op), so Connection reports it
// Truncated, never Malformed — the soak test pins that end to end.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "util/rng.hpp"

namespace protoobf::net {

/// The syscall seam Connection and Connector route through. The base class
/// IS the real transport (forwards to ::recv/::send); subclasses intercept.
/// One instance may serve many connections concurrently across shard
/// threads — implementations must be thread-safe.
class SocketOps {
 public:
  virtual ~SocketOps() = default;

  /// recv(2) semantics: bytes read, 0 on EOF, -1 with errno set.
  virtual ssize_t recv(int fd, void* buf, std::size_t len);

  /// send(2) semantics (flags carried through, e.g. MSG_NOSIGNAL).
  virtual ssize_t send(int fd, const void* buf, std::size_t len, int flags);

  /// Consulted by Connector before a dial. Returning nonzero makes the
  /// dial fail with that errno (ECONNREFUSED, ETIMEDOUT) without touching
  /// the network — the deterministic stand-in for a refusing/blackholed
  /// server. The default never refuses.
  virtual int connect_gate();

  /// Lifecycle notifications so per-connection fault state can be set up
  /// and reclaimed (fd numbers are recycled by the kernel; an injector
  /// must not leak one connection's schedule into the next). Defaults do
  /// nothing.
  virtual void on_open(int fd);
  virtual void on_close(int fd);

  /// The process-wide pass-through instance (used when Config::ops is
  /// null). Stateless and thread-safe.
  static SocketOps& real();
};

/// Everything a hostile network does to a flow, as replayable parameters.
/// Probabilities are per qualifying operation; byte offsets count the
/// bytes that actually crossed the seam on that connection.
struct FaultPlan {
  std::uint64_t seed = 1;  // the logged seed — same seed, same schedule

  // Degradations (recoverable: the op is retried or shortened).
  double short_read = 0.0;   // P(read delivers a 1..n-1 byte prefix)
  double short_write = 0.0;  // P(send accepts a 1..n-1 byte prefix)
  double eagain = 0.0;       // P(op reports EAGAIN instead of running)

  // Kills (fatal for the connection; at-least-once recovery's job).
  // Each connection draws one kill verdict from its own stream: with
  // probability kill_rate it dies once its cumulative traffic (in+out)
  // crosses a uniformly drawn offset in [0, kill_window_bytes).
  double kill_rate = 0.0;
  std::size_t kill_window_bytes = 16 * 1024;
  // How a killed connection dies, drawn uniformly from the enabled set:
  bool kill_reset = true;  // recv -> ECONNRESET
  bool kill_epipe = true;  // send -> EPIPE
  bool kill_fin = true;    // recv -> 0 (mid-frame FIN)

  // Dialing: every refuse_every-th connect attempt is refused with
  // ECONNREFUSED (0 = never). Deterministic in attempt order, so a retry
  // loop provably rides through it.
  std::uint32_t refuse_every = 0;
};

/// SocketOps that executes a FaultPlan. Thread-safe; one injector may be
/// shared by a whole server (every accepted connection draws its own
/// schedule) and any number of clients.
class FaultInjector : public SocketOps {
 public:
  struct Stats {
    std::uint64_t short_reads = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t eagains = 0;
    std::uint64_t resets = 0;   // ECONNRESET injected
    std::uint64_t epipes = 0;   // EPIPE injected
    std::uint64_t fins = 0;     // mid-frame FIN injected
    std::uint64_t refused = 0;  // connects gated off
    std::uint64_t connections = 0;
  };

  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  ssize_t recv(int fd, void* buf, std::size_t len) override;
  ssize_t send(int fd, const void* buf, std::size_t len, int flags) override;
  int connect_gate() override;
  void on_open(int fd) override;
  void on_close(int fd) override;

  const FaultPlan& plan() const { return plan_; }
  Stats stats() const;

  /// Total faults that terminated a connection (resets + epipes + fins).
  std::uint64_t kills() const;

 private:
  enum class KillKind : std::uint8_t { None, Reset, Epipe, Fin };

  // Per-connection schedule, drawn once at on_open() from the connection-
  // index-keyed stream (see file comment for why not the fd).
  struct FlowState {
    Rng rng;
    std::uint64_t bytes = 0;      // cumulative traffic through the seam
    std::uint64_t kill_at = 0;    // offset the kill triggers at
    KillKind kill = KillKind::None;
    bool dead = false;  // kill delivered; subsequent ops keep failing
    explicit FlowState(std::uint64_t seed) : rng(seed) {}
  };

  /// Draws against a probability from the flow's own stream.
  static bool roll(FlowState& flow, double p);
  ssize_t maybe_kill_recv(FlowState& flow);
  ssize_t maybe_kill_send(FlowState& flow);

  FaultPlan plan_;
  mutable std::mutex mu_;
  std::unordered_map<int, FlowState> flows_;
  std::uint64_t next_flow_ = 0;     // connection index, the schedule key
  std::uint64_t next_attempt_ = 0;  // connect_gate() call order
  Stats stats_;
};

}  // namespace protoobf::net
