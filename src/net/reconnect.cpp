#include "net/reconnect.hpp"

#include <sys/epoll.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "ast/ast.hpp"
#include "obs/families.hpp"
#include "obs/trace.hpp"

namespace protoobf::net {

std::chrono::milliseconds Backoff::next() {
  // Grow the ceiling multiplicatively, stopping at the cap (the loop bound
  // also keeps a large attempt count from overflowing the double).
  double ceiling = static_cast<double>(policy_.initial.count());
  const double cap = static_cast<double>(policy_.cap.count());
  for (std::uint32_t i = 0; i < attempt_ && ceiling < cap; ++i) {
    ceiling *= policy_.multiplier;
  }
  if (ceiling > cap) ceiling = cap;
  ++attempt_;
  auto ms = static_cast<std::uint64_t>(ceiling);
  if (policy_.full_jitter && ms > 0) ms = rng_.below(ms + 1);
  return std::chrono::milliseconds(ms);
}

ReliableClient::ReliableClient(
    EventLoop& loop, std::shared_ptr<const ObfuscatedProtocol> protocol,
    Config config)
    : loop_(loop),
      protocol_(std::move(protocol)),
      config_(std::move(config)),
      backoff_(config_.backoff, config_.seed) {}

ReliableClient::~ReliableClient() {
  // Quiet teardown: no handlers fire. The alive_ token expires here, which
  // defuses any posted sweep or dial watch still queued on the loop.
  if (dial_timer_ != 0) loop_.cancel_timer(dial_timer_);
  if (retry_timer_ != 0) loop_.cancel_timer(retry_timer_);
  if (dial_fd_.valid()) loop_.unwatch(dial_fd_.get());
  conn_.reset();
  graveyard_.clear();
}

void ReliableClient::start() {
  if (state_ != State::Idle) return;
  if (config_.lifetime > std::chrono::milliseconds::zero()) {
    deadline_ = std::chrono::steady_clock::now() + config_.lifetime;
  }
  dial();
}

Expected<std::uint64_t> ReliableClient::send(const Inst& message) {
  if (state_ == State::Stopped) {
    return Unexpected("send on a stopped client");
  }
  if (queue_.size() >= config_.max_unacked) {
    ++stats_.overflows;
    obs::ReconnectMetrics::get().overflows.add(1);
    above_queue_watermark_ = true;
    if (backpressure_cb_) backpressure_cb_(queue_.size());
    return Unexpected("resend queue full (" +
                      std::to_string(config_.max_unacked) +
                      " unacked messages)");
  }
  const std::uint64_t seq = next_seq_++;
  // The clone (not the caller's tree) lives in the queue: the caller may
  // hand us a pooled node whose session dies with its connection.
  queue_.push_back(Pending{seq, ast::clone(message)});
  ++stats_.sent;
  if (connected()) {
    if (Status s = conn_->send(message, /*msg_seed=*/seq); !s) {
      if (conn_ != nullptr) {
        // The connection survived, so this was a serialization failure —
        // permanent for this message, no point keeping it queued. (A
        // transport failure would have run the close path, which nulls
        // conn_ and leaves the message queued for the next connection.)
        queue_.pop_back();
        --stats_.sent;
        next_seq_ = seq;
        return Unexpected(s.error());
      }
    }
  }
  // Counted only once the message is actually queued for delivery — the
  // serialization-failure branch above unwinds the local stats instead.
  obs::ReconnectMetrics::get().sent.add(1);
  obs::ReconnectMetrics::get().unacked.set(
      static_cast<std::int64_t>(queue_.size()));
  return seq;
}

void ReliableClient::ack(std::uint64_t seq) {
  while (!queue_.empty() && queue_.front().seq <= seq) {
    queue_.pop_front();
    ++stats_.acked;
    obs::ReconnectMetrics::get().acked.add(1);
  }
  obs::ReconnectMetrics::get().unacked.set(
      static_cast<std::int64_t>(queue_.size()));
  if (above_queue_watermark_ && queue_.size() < config_.max_unacked / 2) {
    above_queue_watermark_ = false;
  }
}

void ReliableClient::stop() {
  if (state_ == State::Stopped) return;
  state_ = State::Stopped;
  if (dial_timer_ != 0) {
    loop_.cancel_timer(dial_timer_);
    dial_timer_ = 0;
  }
  if (retry_timer_ != 0) {
    loop_.cancel_timer(retry_timer_);
    retry_timer_ = 0;
  }
  abandon_dial();
  if (conn_ != nullptr) conn_->close();  // flushes, then handle_drop parks it
}

void ReliableClient::dial() {
  state_ = State::Dialing;
  ++stats_.dials;
  obs::ReconnectMetrics::get().dials.add(1);
  obs::Tracer::global().record(0, obs::TraceEvent::Dial, stats_.dials);

  // The injector's connect gate stands in for a refusing/blackholed server
  // (see net/fault.hpp) — a refused attempt backs off like a real one.
  if (const int gate = ops().connect_gate(); gate != 0) {
    schedule_retry(Error{"connect " + config_.endpoint.host + ":" +
                             std::to_string(config_.endpoint.port) + ": " +
                             std::strerror(gate),
                         Error::kNoOffset, ErrorKind::Truncated});
    return;
  }

  auto fd = connect_tcp(config_.endpoint);
  if (!fd) {
    schedule_retry(fd.error());
    return;
  }
  dial_fd_ = std::move(*fd);
  const int raw = dial_fd_.get();
  const Status watched = loop_.watch(
      raw, EPOLLOUT, [this, token = std::weak_ptr<int>(alive_)](std::uint32_t) {
        if (token.expired()) return;
        handle_dial_ready();
      });
  if (!watched) {
    dial_fd_.reset();
    schedule_retry(watched.error());
    return;
  }
  dial_timer_ = loop_.add_timer(config_.dial_timeout, [this] {
    dial_timer_ = 0;
    if (state_ != State::Dialing) return;
    abandon_dial();
    schedule_retry(Error{"connect " + config_.endpoint.host + ":" +
                             std::to_string(config_.endpoint.port) +
                             " timed out",
                         Error::kNoOffset, ErrorKind::Truncated});
  });
}

void ReliableClient::handle_dial_ready() {
  loop_.unwatch(dial_fd_.get());
  if (dial_timer_ != 0) {
    loop_.cancel_timer(dial_timer_);
    dial_timer_ = 0;
  }
  if (const int err = take_socket_error(dial_fd_.get()); err != 0) {
    dial_fd_.reset();
    schedule_retry(Error{"connect " + config_.endpoint.host + ":" +
                             std::to_string(config_.endpoint.port) + ": " +
                             std::strerror(err),
                         Error::kNoOffset, ErrorKind::Truncated});
    return;
  }
  attach(std::move(dial_fd_));
}

void ReliableClient::attach(Fd fd) {
  auto framer = config_.framer_factory();
  if (!framer) {
    // A factory that cannot build a framer is misconfiguration, not
    // weather — retrying would fail identically forever.
    give_up(framer.error());
    return;
  }
  conn_ = std::make_unique<Connection>(loop_, std::move(fd), protocol_,
                                       std::move(*framer), config_.connection);
  conn_->on_message([this](Connection&, Expected<InstPtr> message) {
    // Traffic is flowing again: the next drop restarts the backoff ladder
    // from the bottom instead of inheriting this outage's delay.
    backoff_.reset();
    if (message_cb_) message_cb_(std::move(message));
  });
  conn_->on_close(
      [this](Connection&, const Error* err) { handle_drop(err); });
  if (Status s = conn_->open(); !s) {
    conn_.reset();  // never registered; safe to destroy inline
    schedule_retry(s.error());
    return;
  }
  state_ = State::Connected;
  if (ever_connected_) {
    ++stats_.reconnects;
    obs::ReconnectMetrics::get().reconnects.add(1);
    obs::Tracer::global().record(conn_->trace_id(),
                                 obs::TraceEvent::Reconnect, queue_.size());
  }
  ever_connected_ = true;
  if (state_cb_) state_cb_(true);
  resend_unacked();
}

void ReliableClient::handle_drop(const Error* err) {
  // Runs inside the dying connection's close path: park the object in the
  // graveyard and destroy it only after the stack unwinds (Server uses the
  // same discipline for the same reason).
  graveyard_.push_back(std::move(conn_));
  if (graveyard_.size() == 1) {
    loop_.post([this, token = std::weak_ptr<int>(alive_)] {
      if (token.expired()) return;
      graveyard_.clear();
    });
  }
  if (state_cb_) state_cb_(false);
  if (state_ == State::Stopped) return;  // stop() asked for this close

  if (err != nullptr && err->kind == ErrorKind::Malformed) {
    // A framing/parse failure means the peer speaks a different protocol
    // (or a different spec seed). Reconnecting reproduces it bit for bit.
    give_up(*err);
    return;
  }
  ++stats_.drops;
  obs::ReconnectMetrics::get().drops.add(1);
  schedule_retry(err != nullptr
                     ? *err
                     : Error{"peer closed", Error::kNoOffset,
                             ErrorKind::Truncated});
}

void ReliableClient::schedule_retry(const Error& reason) {
  if (state_ == State::Stopped) return;
  if (deadline_ != std::chrono::steady_clock::time_point{} &&
      std::chrono::steady_clock::now() >= deadline_) {
    give_up(Error{"gave up after lifetime deadline: " + reason.message,
                  reason.offset, reason.kind});
    return;
  }
  state_ = State::Waiting;
  const auto delay = backoff_.next();
  retry_timer_ = loop_.add_timer(delay, [this] {
    retry_timer_ = 0;
    if (state_ != State::Waiting) return;
    dial();
  });
}

void ReliableClient::give_up(Error err) {
  state_ = State::Stopped;
  if (dial_timer_ != 0) {
    loop_.cancel_timer(dial_timer_);
    dial_timer_ = 0;
  }
  if (retry_timer_ != 0) {
    loop_.cancel_timer(retry_timer_);
    retry_timer_ = 0;
  }
  abandon_dial();
  if (gave_up_cb_) gave_up_cb_(err);
}

void ReliableClient::resend_unacked() {
  // In-order retransmission of everything unconfirmed. msg_seed == seq
  // makes each retransmission byte-identical to the original send — the
  // determinism property the whole framework is built on.
  for (const Pending& pending : queue_) {
    if (conn_ == nullptr || !conn_->open_for_traffic()) return;  // dropped
    ++stats_.resent;
    obs::ReconnectMetrics::get().resent.add(1);
    (void)conn_->send(*pending.message, pending.seq);
  }
}

void ReliableClient::abandon_dial() {
  if (!dial_fd_.valid()) return;
  loop_.unwatch(dial_fd_.get());
  dial_fd_.reset();
}

}  // namespace protoobf::net
