// Self-healing client: capped-exponential backoff and ReliableClient.
//
// A bare Connector client dies with its first RST: a DPI box that resets
// the flow mid-frame (the ScrambleSuit threat model) kills the session and
// loses every queued message. This layer adds the two things a client
// needs to ride through that:
//
//   * Backoff — capped exponential delay with full jitter (AWS style:
//     delay = uniform(0, min(cap, initial * mult^attempt))), seeded so a
//     test run's retry schedule is replayable. Connector::dial uses it
//     between refused attempts; ReliableClient uses it between re-dials.
//
//   * ReliableClient — wraps the dial/Connection lifecycle behind an
//     at-least-once message contract:
//       - send() assigns a monotonically increasing sequence number,
//         clones the message into a bounded resend queue, and transmits it
//         if a connection is up;
//       - any transport-level drop (Truncated close, reset, mid-frame FIN
//         — anything except a Malformed framing failure, which means the
//         peer speaks a different protocol and retrying cannot help) is
//         absorbed: the client re-dials with backoff and re-sends every
//         unacknowledged message in order on the new connection;
//       - the application acknowledges delivery with ack(seq) (cumulative,
//         like TCP) once its own protocol confirms processing — an echoed
//         reply, an application-level ack frame, whatever the protocol
//         carries. Unacked messages survive any number of reconnects.
//
// The contract is at-least-once: a message processed by the server just
// before the connection died is re-sent on the next one, so receivers
// dedupe by the sequence number their protocol carries. The resend queue
// is bounded (Config::max_unacked); when full, send() fails and the
// backpressure callback fires — the caller throttles, exactly like
// Connection::writable() one layer down.
//
// Threading: like Connection, a ReliableClient lives on its event loop's
// thread; every method must be called from it (or before the loop runs).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace protoobf::net {

/// Capped exponential backoff with full jitter. next() advances the
/// attempt counter; reset() re-arms after the link proves healthy again.
struct BackoffPolicy {
  std::chrono::milliseconds initial{20};
  std::chrono::milliseconds cap{2000};
  double multiplier = 2.0;
  /// Full jitter draws uniformly in [0, ceiling]; without it, a fleet of
  /// clients dropped by the same reset re-dials in lockstep.
  bool full_jitter = true;
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {}, std::uint64_t seed = 1)
      : policy_(policy), rng_(seed) {}

  /// Delay before the next attempt (advances the attempt counter).
  std::chrono::milliseconds next();

  /// Back to the initial delay (call after a healthy round trip).
  void reset() { attempt_ = 0; }

  std::uint32_t attempts() const { return attempt_; }
  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  std::uint32_t attempt_ = 0;
};

class ReliableClient {
 public:
  struct Config {
    Endpoint endpoint;
    FramerFactory framer_factory;  // fresh decode state per attempt
    Connection::Config connection;  // ops seam and capture ride along
    BackoffPolicy backoff;
    /// Per-attempt handshake deadline: a dial that neither completes nor
    /// fails within it is abandoned and counts as a failed attempt.
    std::chrono::milliseconds dial_timeout{2000};
    /// Lifetime deadline for regaining a connection: once a drop or dial
    /// failure happens later than this after start(), the client gives
    /// up (on_gave_up fires). 0 = retry forever.
    std::chrono::milliseconds lifetime{0};
    /// Resend-queue bound in messages. A full queue fails send() and
    /// fires on_backpressure; ack() drains it.
    std::size_t max_unacked = 1024;
    /// Seeds the backoff jitter (replayable retry schedules).
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::uint64_t sent = 0;        // distinct messages accepted by send()
    std::uint64_t resent = 0;      // retransmissions after reconnects
    std::uint64_t acked = 0;       // messages released by ack()
    std::uint64_t dials = 0;       // dial attempts (incl. the first)
    std::uint64_t reconnects = 0;  // connections established after a drop
    std::uint64_t drops = 0;       // transport failures absorbed
    std::uint64_t overflows = 0;   // sends rejected on a full queue
  };

  /// Parsed messages from the current connection, in stream order.
  /// Per-message parse errors pass through; the stream continues.
  using MessageHandler = std::function<void(Expected<InstPtr>)>;
  /// Connection state edges (true = up, false = lost). Reconnection is
  /// automatic; this is for logging/metrics.
  using StateHandler = std::function<void(bool connected)>;
  /// The resend queue hit max_unacked: stop sending until acks drain it.
  using BackpressureHandler = std::function<void(std::size_t unacked)>;
  /// Retries are over (lifetime deadline, or a Malformed close). The
  /// client is stopped; unacked() messages were never confirmed.
  using GaveUpHandler = std::function<void(const Error&)>;

  ReliableClient(EventLoop& loop,
                 std::shared_ptr<const ObfuscatedProtocol> protocol,
                 Config config);
  ~ReliableClient();

  ReliableClient(const ReliableClient&) = delete;
  ReliableClient& operator=(const ReliableClient&) = delete;

  void on_message(MessageHandler handler) { message_cb_ = std::move(handler); }
  void on_state(StateHandler handler) { state_cb_ = std::move(handler); }
  void on_backpressure(BackpressureHandler handler) {
    backpressure_cb_ = std::move(handler);
  }
  void on_gave_up(GaveUpHandler handler) { gave_up_cb_ = std::move(handler); }

  /// Starts the first dial (asynchronous; messages may be send()-queued
  /// before it completes).
  void start();

  /// Queues `message` under the next sequence number and transmits it if
  /// the connection is up. The message is serialized with msg_seed == its
  /// sequence number, so a retransmission is byte-identical (determinism
  /// is the framework's core property). Fails when the resend queue is
  /// full (backpressure) or the client is stopped.
  Expected<std::uint64_t> send(const Inst& message);

  /// Cumulative acknowledgement: releases every queued message with
  /// seq <= `seq`. Call when the application protocol confirms processing.
  void ack(std::uint64_t seq);

  /// Stops retrying and closes the current connection gracefully. The
  /// client cannot be restarted.
  void stop();

  bool connected() const { return conn_ != nullptr && conn_->open_for_traffic(); }
  /// The live connection, or null between attempts (loop thread only —
  /// the pointer dies with the next drop).
  Connection* connection() { return conn_.get(); }
  bool stopped() const { return state_ == State::Stopped; }
  std::size_t unacked() const { return queue_.size(); }
  const Stats& stats() const { return stats_; }
  Backoff& backoff() { return backoff_; }

 private:
  enum class State { Idle, Dialing, Connected, Waiting, Stopped };

  struct Pending {
    std::uint64_t seq = 0;
    InstPtr message;  // heap clone, independent of any connection pool
  };

  void dial();
  void handle_dial_ready();
  void attach(Fd fd);
  void handle_drop(const Error* err);
  void schedule_retry(const Error& reason);
  void give_up(Error err);
  void resend_unacked();
  void abandon_dial();
  SocketOps& ops() const {
    return config_.connection.ops != nullptr ? *config_.connection.ops
                                             : SocketOps::real();
  }

  EventLoop& loop_;
  std::shared_ptr<const ObfuscatedProtocol> protocol_;
  Config config_;
  Backoff backoff_;
  State state_ = State::Idle;
  bool ever_connected_ = false;

  std::unique_ptr<Connection> conn_;
  std::vector<std::unique_ptr<Connection>> graveyard_;  // deferred deletes
  // Posted graveyard sweeps and dial watches may outlive this object in a
  // still-running loop; they hold a weak copy of this token and no-op once
  // it expires.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  Fd dial_fd_;  // in-flight nonblocking connect (watched)
  EventLoop::TimerId dial_timer_ = 0;   // per-attempt deadline
  EventLoop::TimerId retry_timer_ = 0;  // backoff delay
  std::chrono::steady_clock::time_point deadline_{};  // lifetime (if set)

  std::deque<Pending> queue_;  // unacked, seq ascending
  std::uint64_t next_seq_ = 1;
  bool above_queue_watermark_ = false;

  MessageHandler message_cb_;
  StateHandler state_cb_;
  BackpressureHandler backpressure_cb_;
  GaveUpHandler gave_up_cb_;
  Stats stats_;
};

}  // namespace protoobf::net
