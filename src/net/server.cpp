#include "net/server.hpp"

#include <sys/epoll.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <thread>

#include "obs/trace.hpp"

namespace protoobf::net {

Server::Server(std::shared_ptr<const ObfuscatedProtocol> protocol,
               FramerFactory framer_factory, Config config)
    : protocol_(std::move(protocol)),
      framer_factory_(std::move(framer_factory)),
      config_(config) {
  if (config_.shards == 0) config_.shards = 1;
}

Server::~Server() { stop(); }

Status Server::start() {
  if (started_) return Unexpected("server already started");

  std::vector<std::unique_ptr<Shard>> shards;
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards.push_back(std::make_unique<Shard>());
    shards.back()->index = i;
    shards.back()->metrics = &obs::NetMetrics::for_shard(i);
  }

  // Bind. In reuse_port mode every shard listens; the first bind resolves
  // an ephemeral port and the others join it.
  Endpoint ep = config_.endpoint;
  const std::size_t listeners = config_.reuse_port ? shards.size() : 1;
  for (std::size_t i = 0; i < listeners; ++i) {
    auto fd = listen_tcp(ep, config_.backlog,
                         /*reuse_port=*/config_.reuse_port);
    if (!fd) return Unexpected(fd.error());
    if (i == 0) {
      auto bound = local_port(fd->get());
      if (!bound) return Unexpected(bound.error());
      port_ = *bound;
      ep.port = port_;  // sibling listeners must join this exact port
    }
    shards[i]->listen = std::move(*fd);
  }

  // Register the accept watches before any thread runs, then start the
  // shard threads. `shards_` is immutable from here until stop().
  shards_ = std::move(shards);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (shard.listen.valid()) {
      if (Status s =
              shard.loop.watch(shard.listen.get(), EPOLLIN,
                               [this, &shard](std::uint32_t) {
                                 handle_accept(shard);
                               });
          !s) {
        shards_.clear();
        return s;
      }
    }
    if (config_.shard_pending_limit != 0) {
      shard.loop.add_timer(config_.pending_sweep_interval,
                           [this, &shard] { sweep_pending(shard); },
                           config_.pending_sweep_interval);
    }
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.thread = std::thread([&shard] { shard.loop.run(); });
  }
  started_ = true;
  return Status::success();
}

void Server::stop() {
  if (!started_) {
    shards_.clear();
    return;
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.loop.post([this, &shard] {
      if (shard.listen.valid()) {
        shard.loop.unwatch(shard.listen.get());
        shard.listen.reset();
      }
      // abort() detaches each connection through its close path (handlers
      // fire with err == nullptr) and parks it in the graveyard.
      std::vector<Connection*> live;
      live.reserve(shard.conns.size());
      for (auto& [fd, conn] : shard.conns) live.push_back(conn.get());
      for (Connection* conn : live) conn->abort();
    });
    shard.loop.stop();
  }
  for (auto& shard_ptr : shards_) {
    if (shard_ptr->thread.joinable()) shard_ptr->thread.join();
  }
  // Loop threads are gone: remaining connections (if a shard never ran its
  // teardown task) and graveyards die with the shards.
  shards_.clear();
  started_ = false;
}

void Server::drain(std::chrono::milliseconds grace) {
  if (!started_) return;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.loop.post([&shard] {
      if (shard.listen.valid()) {
        shard.loop.unwatch(shard.listen.get());
        shard.listen.reset();
      }
      // Graceful close: reading stops, the write queue flushes, then the
      // close completes (each connection's own drain_timeout bounds a
      // peer that stops reading).
      std::vector<Connection*> live;
      live.reserve(shard.conns.size());
      for (auto& [fd, conn] : shard.conns) live.push_back(conn.get());
      for (Connection* conn : live) conn->close();
    });
  }
  obs::Tracer::global().record(0, obs::TraceEvent::Drain, total_occupancy());
  const auto deadline = std::chrono::steady_clock::now() + grace;
  while (total_occupancy() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop();
  if (config_.log_drain_snapshot) {
    std::fprintf(stderr, "[drain] final metrics snapshot:\n%s",
                 obs::MetricsRegistry::global().json_snapshot().c_str());
  }
}

Server::Stats Server::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    total.accepted += shard->accepted.load(std::memory_order_relaxed);
    total.rejected += shard->rejected.load(std::memory_order_relaxed);
    total.closed += shard->closed.load(std::memory_order_relaxed);
    total.shed += shard->shed.load(std::memory_order_relaxed);
  }
  // Clamped: the counters are read one by one while shard threads run, so
  // a close can land between the accepted and closed snapshots — without
  // the clamp the unsigned subtraction would wrap to ~1.8e19.
  const std::uint64_t gone = total.rejected + total.closed;
  total.active = total.accepted >= gone ? total.accepted - gone : 0;
  return total;
}

std::size_t Server::shard_occupancy(std::size_t i) const {
  if (i >= shards_.size()) return 0;
  const auto occ = shards_[i]->occupancy.load(std::memory_order_acquire);
  return occ > 0 ? static_cast<std::size_t>(occ) : 0;
}

std::size_t Server::total_occupancy() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->occupancy.load(std::memory_order_acquire);
  }
  return total > 0 ? static_cast<std::size_t>(total) : 0;
}

std::size_t Server::per_shard_cap() const {
  if (config_.shard_max_connections != 0) return config_.shard_max_connections;
  if (config_.max_connections == 0) return 0;
  return (config_.max_connections + shards_.size() - 1) / shards_.size();
}

Server::Shard& Server::pick_target() {
  // Round-robin with a cap-aware skip: the cursor's shard takes the fd
  // unless it is at its connection ceiling, in which case the next shard
  // with room does. With every shard full the least-loaded one still
  // adopts — a handed-off fd is never dropped; stopping intake is the
  // global cap's job in handle_accept.
  const std::size_t cap = per_shard_cap();
  const std::size_t n = shards_.size();
  std::size_t fallback = next_shard_;
  std::int64_t fallback_load = std::numeric_limits<std::int64_t>::max();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t idx = (next_shard_ + probe) % n;
    const auto load = shards_[idx]->occupancy.load(std::memory_order_acquire);
    if (cap == 0 || load < static_cast<std::int64_t>(cap)) {
      next_shard_ = (idx + 1) % n;
      return *shards_[idx];
    }
    if (load < fallback_load) {
      fallback_load = load;
      fallback = idx;
    }
  }
  next_shard_ = (fallback + 1) % n;
  return *shards_[fallback];
}

void Server::maybe_resume_accepts() {
  if (config_.max_connections == 0) return;
  const std::size_t low =
      config_.low_watermark != 0
          ? config_.low_watermark
          : config_.max_connections -
                std::max<std::size_t>(1, config_.max_connections / 8);
  if (total_occupancy() > low) return;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    // exchange() makes each pause resume exactly once, whichever shard's
    // retire gets here first; the task re-checks the listener because a
    // teardown may have closed it in between.
    if (shard.accept_paused.exchange(false, std::memory_order_acq_rel)) {
      shard.loop.post([this, &shard] {
        if (!shard.listen.valid()) return;
        (void)shard.loop.rearm(shard.listen.get(), EPOLLIN);
        handle_accept(shard);
      });
    }
  }
}

void Server::sweep_pending(Shard& shard) {
  std::size_t pending = 0;
  for (const auto& [fd, conn] : shard.conns) pending += conn->queued();
  if (pending <= config_.shard_pending_limit) return;
  // Over the ceiling: shed the connections actually holding queued bytes,
  // least-recently-active first (the peers that stopped reading longest
  // ago are the least likely to ever drain what they owe).
  std::vector<Connection*> victims;
  for (const auto& [fd, conn] : shard.conns) {
    if (conn->queued() > 0) victims.push_back(conn.get());
  }
  std::sort(victims.begin(), victims.end(),
            [](const Connection* a, const Connection* b) {
              return a->last_activity() < b->last_activity();
            });
  for (Connection* conn : victims) {
    if (pending <= config_.shard_pending_limit) break;
    pending -= conn->queued();
    shard.shed.fetch_add(1, std::memory_order_relaxed);
    shard.metrics->shed.add(1);
    obs::Tracer::global().record(conn->trace_id(), obs::TraceEvent::Shed,
                                 conn->queued());
    conn->abort();  // discards the queue; retire() parks the object
  }
}

void Server::handle_accept(Shard& shard) {
  for (;;) {
    // Overload gate: at the cap, stop watching the listener instead of
    // accepting fds there is no budget for. Pending peers queue in the
    // kernel backlog; retire() resumes the watch at the low watermark.
    if (config_.max_connections != 0 &&
        total_occupancy() >= config_.max_connections) {
      shard.accept_paused.store(true, std::memory_order_release);
      (void)shard.loop.rearm(shard.listen.get(), 0);
      return;
    }
    auto fd = accept_tcp(shard.listen.get());
    if (!fd) {
      // Hard accept failure (EMFILE/ENFILE under fd pressure): the
      // pending connection stays in the backlog, so a level-triggered
      // listen watch would refire instantly and spin the shard at 100%
      // CPU. Park the watch and retry shortly — by then fds may have
      // freed up (or the teardown closed the listener).
      (void)shard.loop.rearm(shard.listen.get(), 0);
      shard.loop.add_timer(std::chrono::milliseconds(100),
                           [this, &shard] {
                             if (!shard.listen.valid()) return;
                             (void)shard.loop.rearm(shard.listen.get(),
                                                    EPOLLIN);
                             handle_accept(shard);
                           });
      return;
    }
    if (!fd->valid()) return;   // backlog drained
    if (config_.reuse_port || shards_.size() == 1) {
      shard.occupancy.fetch_add(1, std::memory_order_acq_rel);
      adopt(shard, std::move(*fd));
      continue;
    }
    // Round-robin handoff. The socket travels inside a shared_ptr (an Fd
    // is move-only but std::function wants copyable captures) so that a
    // task discarded by loop teardown still closes it on destruction
    // instead of leaking the fd and hanging the peer. Occupancy is charged
    // here, not in adopt(), so the cap sees handoffs still in flight.
    Shard& target = pick_target();
    target.occupancy.fetch_add(1, std::memory_order_acq_rel);
    auto carried = std::make_shared<Fd>(std::move(*fd));
    target.loop.post(
        [this, &target, carried] { adopt(target, std::move(*carried)); });
  }
}

void Server::adopt(Shard& shard, Fd fd) {
  shard.accepted.fetch_add(1, std::memory_order_relaxed);
  auto framer = framer_factory_();
  if (!framer) {
    shard.rejected.fetch_add(1, std::memory_order_relaxed);
    shard.metrics->rejected.add(1);
    shard.occupancy.fetch_sub(1, std::memory_order_acq_rel);
    maybe_resume_accepts();
    return;  // fd closes on scope exit — the peer sees a reset
  }
  Connection::Config conn_config = config_.connection;
  conn_config.metrics = shard.metrics;  // traffic lands in this shard's series
  auto conn = std::make_unique<Connection>(shard.loop, std::move(fd),
                                           protocol_, std::move(*framer),
                                           conn_config);
  Connection& ref = *conn;
  // The close path resets the connection's fd before the owner hook runs,
  // so the table key is captured here while it is still valid.
  ref.set_owner_hook([this, &shard, key = ref.fd()](Connection& c) {
    retire(shard, key, c);
  });
  if (accept_cb_) accept_cb_(ref);
  if (ref.closed()) {
    // The handler rejected the peer (abort()/close()): retire() already
    // accounted it as closed, and open() on a dead fd must not run (it
    // would double-count the connection as rejected too).
    return;
  }
  if (Status s = ref.open(); !s) {
    shard.rejected.fetch_add(1, std::memory_order_relaxed);
    shard.metrics->rejected.add(1);
    shard.occupancy.fetch_sub(1, std::memory_order_acq_rel);
    maybe_resume_accepts();
    return;  // conn (and its fd) dies here; open() registered nothing
  }
  obs::Tracer::global().record(ref.trace_id(), obs::TraceEvent::Accept,
                               shard.index);
  shard.conns.emplace(ref.fd(), std::move(conn));
}

void Server::retire(Shard& shard, int key, Connection& conn) {
  // Runs inside the connection's close path: move it out of the table now
  // (so its old fd number can be reused by the very next accept) but
  // destroy it only after the stack unwinds. The pointer check guards
  // against the key having been recycled onto a younger connection.
  if (auto it = shard.conns.find(key);
      it != shard.conns.end() && it->second.get() == &conn) {
    shard.graveyard.push_back(std::move(it->second));
    shard.conns.erase(it);
  }
  shard.closed.fetch_add(1, std::memory_order_relaxed);
  shard.occupancy.fetch_sub(1, std::memory_order_acq_rel);
  maybe_resume_accepts();
  if (shard.graveyard.size() == 1) {
    shard.loop.post([&shard] { shard.graveyard.clear(); });
  }
}

}  // namespace protoobf::net
