#include "net/server.hpp"

#include <sys/epoll.h>

namespace protoobf::net {

FramerFactory length_prefix_framer_factory(LengthPrefixFramer::Config config) {
  return [config]() -> Expected<std::unique_ptr<Framer>> {
    return std::unique_ptr<Framer>(new LengthPrefixFramer(config));
  };
}

FramerFactory obfuscated_framer_factory(
    std::shared_ptr<const ObfuscatedProtocol> framing,
    ObfuscatedFramer::Config config) {
  return [framing = std::move(framing),
          config]() -> Expected<std::unique_ptr<Framer>> {
    auto framer = ObfuscatedFramer::create(framing, config);
    if (!framer) return Unexpected(framer.error());
    return std::unique_ptr<Framer>(std::move(*framer));
  };
}

Server::Server(std::shared_ptr<const ObfuscatedProtocol> protocol,
               FramerFactory framer_factory, Config config)
    : protocol_(std::move(protocol)),
      framer_factory_(std::move(framer_factory)),
      config_(config) {
  if (config_.shards == 0) config_.shards = 1;
}

Server::~Server() { stop(); }

Status Server::start() {
  if (started_) return Unexpected("server already started");

  std::vector<std::unique_ptr<Shard>> shards;
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards.push_back(std::make_unique<Shard>());
  }

  // Bind. In reuse_port mode every shard listens; the first bind resolves
  // an ephemeral port and the others join it.
  Endpoint ep = config_.endpoint;
  const std::size_t listeners = config_.reuse_port ? shards.size() : 1;
  for (std::size_t i = 0; i < listeners; ++i) {
    auto fd = listen_tcp(ep, config_.backlog,
                         /*reuse_port=*/config_.reuse_port);
    if (!fd) return Unexpected(fd.error());
    if (i == 0) {
      auto bound = local_port(fd->get());
      if (!bound) return Unexpected(bound.error());
      port_ = *bound;
      ep.port = port_;  // sibling listeners must join this exact port
    }
    shards[i]->listen = std::move(*fd);
  }

  // Register the accept watches before any thread runs, then start the
  // shard threads. `shards_` is immutable from here until stop().
  shards_ = std::move(shards);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (shard.listen.valid()) {
      if (Status s =
              shard.loop.watch(shard.listen.get(), EPOLLIN,
                               [this, &shard](std::uint32_t) {
                                 handle_accept(shard);
                               });
          !s) {
        shards_.clear();
        return s;
      }
    }
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.thread = std::thread([&shard] { shard.loop.run(); });
  }
  started_ = true;
  return Status::success();
}

void Server::stop() {
  if (!started_) {
    shards_.clear();
    return;
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.loop.post([this, &shard] {
      if (shard.listen.valid()) {
        shard.loop.unwatch(shard.listen.get());
        shard.listen.reset();
      }
      // abort() detaches each connection through its close path (handlers
      // fire with err == nullptr) and parks it in the graveyard.
      std::vector<Connection*> live;
      live.reserve(shard.conns.size());
      for (auto& [fd, conn] : shard.conns) live.push_back(conn.get());
      for (Connection* conn : live) conn->abort();
    });
    shard.loop.stop();
  }
  for (auto& shard_ptr : shards_) {
    if (shard_ptr->thread.joinable()) shard_ptr->thread.join();
  }
  // Loop threads are gone: remaining connections (if a shard never ran its
  // teardown task) and graveyards die with the shards.
  shards_.clear();
  started_ = false;
}

Server::Stats Server::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    total.accepted += shard->accepted.load(std::memory_order_relaxed);
    total.rejected += shard->rejected.load(std::memory_order_relaxed);
    total.closed += shard->closed.load(std::memory_order_relaxed);
  }
  // Clamped: the counters are read one by one while shard threads run, so
  // a close can land between the accepted and closed snapshots — without
  // the clamp the unsigned subtraction would wrap to ~1.8e19.
  const std::uint64_t gone = total.rejected + total.closed;
  total.active = total.accepted >= gone ? total.accepted - gone : 0;
  return total;
}

void Server::handle_accept(Shard& shard) {
  for (;;) {
    auto fd = accept_tcp(shard.listen.get());
    if (!fd) {
      // Hard accept failure (EMFILE/ENFILE under fd pressure): the
      // pending connection stays in the backlog, so a level-triggered
      // listen watch would refire instantly and spin the shard at 100%
      // CPU. Park the watch and retry shortly — by then fds may have
      // freed up (or the teardown closed the listener).
      (void)shard.loop.rearm(shard.listen.get(), 0);
      shard.loop.add_timer(std::chrono::milliseconds(100),
                           [this, &shard] {
                             if (!shard.listen.valid()) return;
                             (void)shard.loop.rearm(shard.listen.get(),
                                                    EPOLLIN);
                             handle_accept(shard);
                           });
      return;
    }
    if (!fd->valid()) return;   // backlog drained
    if (config_.reuse_port || shards_.size() == 1) {
      adopt(shard, std::move(*fd));
      continue;
    }
    // Round-robin handoff. The socket travels inside a shared_ptr (an Fd
    // is move-only but std::function wants copyable captures) so that a
    // task discarded by loop teardown still closes it on destruction
    // instead of leaking the fd and hanging the peer.
    Shard& target = *shards_[next_shard_];
    next_shard_ = (next_shard_ + 1) % shards_.size();
    auto carried = std::make_shared<Fd>(std::move(*fd));
    target.loop.post(
        [this, &target, carried] { adopt(target, std::move(*carried)); });
  }
}

void Server::adopt(Shard& shard, Fd fd) {
  shard.accepted.fetch_add(1, std::memory_order_relaxed);
  auto framer = framer_factory_();
  if (!framer) {
    shard.rejected.fetch_add(1, std::memory_order_relaxed);
    return;  // fd closes on scope exit — the peer sees a reset
  }
  auto conn = std::make_unique<Connection>(shard.loop, std::move(fd),
                                           protocol_, std::move(*framer),
                                           config_.connection);
  Connection& ref = *conn;
  // The close path resets the connection's fd before the owner hook runs,
  // so the table key is captured here while it is still valid.
  ref.set_owner_hook([this, &shard, key = ref.fd()](Connection& c) {
    retire(shard, key, c);
  });
  if (accept_cb_) accept_cb_(ref);
  if (ref.closed()) {
    // The handler rejected the peer (abort()/close()): retire() already
    // accounted it as closed, and open() on a dead fd must not run (it
    // would double-count the connection as rejected too).
    return;
  }
  if (Status s = ref.open(); !s) {
    shard.rejected.fetch_add(1, std::memory_order_relaxed);
    return;  // conn (and its fd) dies here; open() registered nothing
  }
  shard.conns.emplace(ref.fd(), std::move(conn));
}

void Server::retire(Shard& shard, int key, Connection& conn) {
  // Runs inside the connection's close path: move it out of the table now
  // (so its old fd number can be reused by the very next accept) but
  // destroy it only after the stack unwinds. The pointer check guards
  // against the key having been recycled onto a younger connection.
  if (auto it = shard.conns.find(key);
      it != shard.conns.end() && it->second.get() == &conn) {
    shard.graveyard.push_back(std::move(it->second));
    shard.conns.erase(it);
  }
  shard.closed.fetch_add(1, std::memory_order_relaxed);
  if (shard.graveyard.size() == 1) {
    shard.loop.post([&shard] { shard.graveyard.clear(); });
  }
}

}  // namespace protoobf::net
