// Obfuscated TCP server: N event-loop shards owning N sets of Channels.
//
// The Server is the end of the road the repo has been building toward: the
// compiled protocol is shared (one ProtocolCache entry), but every accepted
// connection gets its own Session (arenas, node pool) and its own Framer
// from a pluggable factory — per-connection decode state, as the streaming
// layer requires. Two sharding modes:
//
//   * reuse_port (default) — every shard binds its own SO_REUSEPORT listen
//     socket on the same endpoint and the kernel spreads accepts across
//     them; no cross-thread handoff at all;
//   * round-robin — shard 0 owns the only listen socket and hands accepted
//     fds to shards via EventLoop::post; useful where SO_REUSEPORT is
//     unavailable or connection balance must be exact.
//
// Handlers run on shard threads. The per-connection callbacks installed in
// on_accept stay on that connection's shard for its whole life, so handler
// code needs no locking as long as it keeps to per-connection state.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace protoobf::net {

/// Builds one framer per connection. Factories for the two stock framers
/// are below; a custom one can close over whatever state it needs (it runs
/// on shard threads, one call per accepted connection).
using FramerFactory = std::function<Expected<std::unique_ptr<Framer>>()>;

FramerFactory length_prefix_framer_factory(
    LengthPrefixFramer::Config config = {});
FramerFactory obfuscated_framer_factory(
    std::shared_ptr<const ObfuscatedProtocol> framing,
    ObfuscatedFramer::Config config = {});

class Server {
 public:
  struct Config {
    Endpoint endpoint;          // port 0 = ephemeral, read back via port()
    std::size_t shards = 1;     // event-loop threads
    bool reuse_port = true;     // per-shard listeners vs round-robin handoff
    int backlog = 128;
    Connection::Config connection;
  };

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;  // framer factory / registration failures
    std::uint64_t closed = 0;
    std::uint64_t active = 0;
  };

  /// Runs on the owning shard's thread right after a connection is
  /// created and before it starts reading — install on_message/on_close/
  /// on_writable here.
  using AcceptHandler = std::function<void(Connection&)>;

  Server(std::shared_ptr<const ObfuscatedProtocol> protocol,
         FramerFactory framer_factory, Config config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void on_accept(AcceptHandler handler) { accept_cb_ = std::move(handler); }

  /// Binds, listens, and starts the shard threads. Fails without side
  /// effects (no threads) when binding fails.
  Status start();

  /// Stops accepting, aborts the remaining connections, stops the loops
  /// and joins the shard threads. Idempotent.
  void stop();

  /// The bound port (meaningful after start(); resolves endpoint.port 0).
  std::uint16_t port() const { return port_; }

  Stats stats() const;
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    EventLoop loop;
    std::thread thread;
    Fd listen;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    // Close handlers run inside Connection frames; dead connections rest
    // here until a posted sweep destroys them off that stack.
    std::vector<std::unique_ptr<Connection>> graveyard;
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> closed{0};
  };

  void handle_accept(Shard& shard);
  void adopt(Shard& shard, Fd fd);
  void retire(Shard& shard, int key, Connection& conn);

  std::shared_ptr<const ObfuscatedProtocol> protocol_;
  FramerFactory framer_factory_;
  Config config_;
  AcceptHandler accept_cb_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t next_shard_ = 0;  // round-robin cursor (shard-0 thread only)
  std::uint16_t port_ = 0;
  bool started_ = false;
};

}  // namespace protoobf::net
