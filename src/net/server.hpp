// Obfuscated TCP server: N event-loop shards owning N sets of Channels.
//
// The Server is the end of the road the repo has been building toward: the
// compiled protocol is shared (one ProtocolCache entry), but every accepted
// connection gets its own Session (arenas, node pool) and its own Framer
// from a pluggable factory — per-connection decode state, as the streaming
// layer requires. Two sharding modes:
//
//   * reuse_port (default) — every shard binds its own SO_REUSEPORT listen
//     socket on the same endpoint and the kernel spreads accepts across
//     them; no cross-thread handoff at all;
//   * round-robin — shard 0 owns the only listen socket and hands accepted
//     fds to shards via EventLoop::post; useful where SO_REUSEPORT is
//     unavailable or connection balance must be exact.
//
// Handlers run on shard threads. The per-connection callbacks installed in
// on_accept stay on that connection's shard for its whole life, so handler
// code needs no locking as long as it keeps to per-connection state.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace protoobf::net {

class Server {
 public:
  struct Config {
    Endpoint endpoint;          // port 0 = ephemeral, read back via port()
    std::size_t shards = 1;     // event-loop threads
    bool reuse_port = true;     // per-shard listeners vs round-robin handoff
    int backlog = 128;
    Connection::Config connection;

    // Overload protection. At max_connections the listeners stop being
    // watched (pending peers wait in the kernel backlog instead of
    // consuming fds and sessions); accepting resumes once closes bring the
    // count down to low_watermark (0 = 7/8 of the cap). 0 = no cap.
    std::size_t max_connections = 0;
    std::size_t low_watermark = 0;
    // Per-shard connection ceiling consulted by the round-robin handoff:
    // an at-cap shard is skipped in favour of the next one with room (the
    // fd is never dropped — if every shard is full the least-loaded one
    // takes it; the global cap is what actually stops intake). 0 = derive
    // ceil(max_connections / shards), unlimited when that is 0 too.
    std::size_t shard_max_connections = 0;
    // Per-shard ceiling on summed write-queue bytes. A periodic sweep
    // sheds connections — oldest activity first, queue discarded — until
    // the shard is back under. 0 = no ceiling.
    std::size_t shard_pending_limit = 0;
    std::chrono::milliseconds pending_sweep_interval{100};
    // drain() logs a final registry snapshot (JSON, stderr) once every
    // connection is gone — the operator's shutdown report. Off by default;
    // `protoobf serve` turns it on unless --no-metrics.
    bool log_drain_snapshot = false;
  };

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;  // framer factory / registration failures
    std::uint64_t closed = 0;
    std::uint64_t shed = 0;      // aborted by the pending-byte sweep
    std::uint64_t active = 0;
  };

  /// Runs on the owning shard's thread right after a connection is
  /// created and before it starts reading — install on_message/on_close/
  /// on_writable here.
  using AcceptHandler = std::function<void(Connection&)>;

  Server(std::shared_ptr<const ObfuscatedProtocol> protocol,
         FramerFactory framer_factory, Config config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void on_accept(AcceptHandler handler) { accept_cb_ = std::move(handler); }

  /// Binds, listens, and starts the shard threads. Fails without side
  /// effects (no threads) when binding fails.
  Status start();

  /// Stops accepting, aborts the remaining connections, stops the loops
  /// and joins the shard threads. Idempotent.
  void stop();

  /// Graceful shutdown (the SIGTERM path): closes the listeners, asks
  /// every connection to close gracefully — write queues flush first —
  /// then waits up to `grace` for them to finish before stop(). Call from
  /// outside the shard threads (a signal-handling main thread).
  void drain(std::chrono::milliseconds grace = std::chrono::milliseconds(5000));

  /// The bound port (meaningful after start(); resolves endpoint.port 0).
  std::uint16_t port() const { return port_; }

  Stats stats() const;
  std::size_t shard_count() const { return shards_.size(); }

  /// Live connections currently owned by shard `i` (handoffs in flight
  /// included). Exposed so tests can pin the handoff balance.
  std::size_t shard_occupancy(std::size_t i) const;

 private:
  struct Shard {
    std::size_t index = 0;
    obs::NetMetrics* metrics = nullptr;  // this shard's registry bundle
    EventLoop loop;
    std::thread thread;
    Fd listen;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    // Close handlers run inside Connection frames; dead connections rest
    // here until a posted sweep destroys them off that stack.
    std::vector<std::unique_ptr<Connection>> graveyard;
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> shed{0};
    // Connections owned + handoffs posted but not yet adopted. Written by
    // the accepting shard, read by every shard's retire path.
    std::atomic<std::int64_t> occupancy{0};
    std::atomic<bool> accept_paused{false};
  };

  void handle_accept(Shard& shard);
  void adopt(Shard& shard, Fd fd);
  void retire(Shard& shard, int key, Connection& conn);
  Shard& pick_target();
  std::size_t per_shard_cap() const;
  std::size_t total_occupancy() const;
  void maybe_resume_accepts();
  void sweep_pending(Shard& shard);

  std::shared_ptr<const ObfuscatedProtocol> protocol_;
  FramerFactory framer_factory_;
  Config config_;
  AcceptHandler accept_cb_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t next_shard_ = 0;  // round-robin cursor (shard-0 thread only)
  std::uint16_t port_ = 0;
  bool started_ = false;
};

}  // namespace protoobf::net
