#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace protoobf::net {

namespace {

Unexpected errno_error(const std::string& what) {
  return Unexpected(what + ": " + std::strerror(errno));
}

Expected<sockaddr_in> resolve(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Unexpected("cannot parse IPv4 address '" + ep.host + "'");
  }
  return addr;
}

Expected<Fd> new_socket() {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd) return errno_error("socket");
  return fd;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Expected<Fd> listen_tcp(const Endpoint& ep, int backlog, bool reuse_port) {
  auto addr = resolve(ep);
  if (!addr) return Unexpected(addr.error());
  auto fd = new_socket();
  if (!fd) return fd;

  const int one = 1;
  // SO_REUSEADDR so restarts do not trip over TIME_WAIT remnants of the
  // previous instance; SO_REUSEPORT only on request (sharded acceptors).
  (void)::setsockopt(fd->get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuse_port &&
      ::setsockopt(fd->get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) !=
          0) {
    return errno_error("setsockopt(SO_REUSEPORT)");
  }
  if (::bind(fd->get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof *addr) != 0) {
    return errno_error("bind " + ep.host + ":" + std::to_string(ep.port));
  }
  if (::listen(fd->get(), backlog) != 0) return errno_error("listen");
  return fd;
}

Expected<Fd> connect_tcp(const Endpoint& ep) {
  auto addr = resolve(ep);
  if (!addr) return Unexpected(addr.error());
  auto fd = new_socket();
  if (!fd) return fd;
  if (::connect(fd->get(), reinterpret_cast<const sockaddr*>(&*addr),
                sizeof *addr) != 0 &&
      errno != EINPROGRESS) {
    return errno_error("connect " + ep.host + ":" + std::to_string(ep.port));
  }
  return fd;
}

Expected<Fd> accept_tcp(int listen_fd) {
  const int fd =
      ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd >= 0) return Fd(fd);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
      errno == EINTR) {
    return Fd();  // backlog drained (or a connection died in it) — no error
  }
  return errno_error("accept");
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return errno_error("fcntl(O_NONBLOCK)");
  }
  return Status::success();
}

Status set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) != 0) {
    return errno_error("setsockopt(TCP_NODELAY)");
  }
  return Status::success();
}

Status set_send_buffer(int fd, int bytes) {
  if (bytes <= 0) return Status::success();
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes) != 0) {
    return errno_error("setsockopt(SO_SNDBUF)");
  }
  return Status::success();
}

Expected<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_error("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

int take_socket_error(int fd) {
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

}  // namespace protoobf::net
