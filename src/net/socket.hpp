// POSIX socket primitives of the transport layer.
//
// Everything above this file speaks Fd and Endpoint; everything below it is
// ::socket/::bind/::listen plumbing. All sockets the subsystem creates are
// nonblocking and close-on-exec — the event loop owns readiness, never the
// kernel's blocking behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "util/result.hpp"

namespace protoobf::net {

/// Owning file-descriptor handle. Close-on-destroy, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Hands ownership to the caller.
  int release() { return std::exchange(fd_, -1); }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A TCP address. Port 0 asks the kernel for an ephemeral port — read the
/// actual one back with local_port() after binding.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Creates a nonblocking listening socket bound to `ep` (IPv4 dotted quad
/// or "localhost"). `reuse_port` additionally sets SO_REUSEPORT, letting N
/// sharded acceptors bind the same endpoint and have the kernel spread
/// incoming connections across them.
Expected<Fd> listen_tcp(const Endpoint& ep, int backlog,
                        bool reuse_port = false);

/// Starts a nonblocking connect to `ep`. The returned socket is usually
/// still connecting: wait for writability, then check take_socket_error().
Expected<Fd> connect_tcp(const Endpoint& ep);

/// Accepts one pending connection as a nonblocking socket. An empty Fd
/// (valid() == false) means the backlog is drained (EAGAIN) — not an error.
Expected<Fd> accept_tcp(int listen_fd);

Status set_nonblocking(int fd);

/// Disables Nagle coalescing — an obfuscated request/response exchange is
/// latency-bound on small frames.
Status set_nodelay(int fd);

/// Shrinks/pins SO_SNDBUF (0 = leave the kernel default). Tests use a tiny
/// send buffer to force partial writes and exercise backpressure.
Status set_send_buffer(int fd, int bytes);

/// Port the kernel actually bound (resolves port-0 ephemeral binds).
Expected<std::uint16_t> local_port(int fd);

/// Pending asynchronous error (SO_ERROR), cleared by reading; 0 = none.
int take_socket_error(int fd);

}  // namespace protoobf::net
