#include "obs/export.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>

#include "obs/families.hpp"
#include "obs/trace.hpp"

namespace protoobf::obs {

namespace {
constexpr std::size_t kMaxRequestBytes = 4096;

std::string http_response(int status, const std::string& content_type,
                          const std::string& body) {
  const char* reason = status == 200 ? "OK" : "Not Found";
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}
}  // namespace

AdminServer::AdminServer(Config config, MetricsRegistry* registry)
    : config_(std::move(config)), registry_(registry) {}

AdminServer::~AdminServer() { stop(); }

Status AdminServer::start() {
  if (started_) return {};
  touch_all();  // a scrape of an idle process still shows the whole catalog
  auto listener = net::listen_tcp(config_.endpoint, /*backlog=*/16);
  if (!listener) return Unexpected(listener.error());
  listen_ = std::move(*listener);
  auto port = net::local_port(listen_.get());
  if (!port) return Unexpected(port.error());
  port_ = *port;

  Status st = loop_.watch(listen_.get(), EPOLLIN,
                          [this](std::uint32_t) { handle_accept(); });
  if (!st) return st;

  started_ = true;
  thread_ = std::thread([this] { loop_.run(); });
  return {};
}

void AdminServer::stop() {
  if (!started_) return;
  started_ = false;
  loop_.post([this] {
    // Tear down watches on the loop thread, then stop the loop.
    for (auto& [fd, client] : clients_) loop_.unwatch(fd);
    clients_.clear();
    loop_.unwatch(listen_.get());
    loop_.stop();
  });
  if (thread_.joinable()) thread_.join();
  listen_.reset();
  port_ = 0;
}

void AdminServer::handle_accept() {
  for (;;) {
    auto accepted = net::accept_tcp(listen_.get());
    if (!accepted || !accepted->valid()) return;  // drained or error
    auto client = std::make_unique<Client>();
    client->fd = std::move(*accepted);
    const int fd = client->fd.get();
    clients_.emplace(fd, std::move(client));
    Status st = loop_.watch(
        fd, EPOLLIN, [this, fd](std::uint32_t ev) { handle_client(fd, ev); });
    if (!st) drop(fd);
  }
}

void AdminServer::handle_client(int fd, std::uint32_t events) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client& c = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    drop(fd);
    return;
  }

  if (c.out.empty() && (events & EPOLLIN)) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        if (c.in.size() > kMaxRequestBytes) {
          drop(fd);
          return;
        }
        continue;
      }
      if (n == 0) {  // peer closed before a full request
        if (c.in.find("\r\n\r\n") == std::string::npos &&
            c.in.find('\n') == std::string::npos) {
          drop(fd);
          return;
        }
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      drop(fd);
      return;
    }
    // A request is complete at the header terminator; curl sends it in one
    // segment, but accept a bare request line too.
    if (c.in.find("\r\n\r\n") != std::string::npos ||
        c.in.find('\n') != std::string::npos) {
      respond(c);
      loop_.rearm(fd, EPOLLOUT);
    }
  }

  if (!c.out.empty() && (events & (EPOLLOUT | EPOLLIN))) {
    while (c.out_head < c.out.size()) {
      const ssize_t n = ::send(fd, c.out.data() + c.out_head,
                               c.out.size() - c.out_head, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_head += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      break;  // peer vanished — close below
    }
    drop(fd);  // HTTP/1.0 close-after-response
  }
}

void AdminServer::respond(Client& c) {
  // "GET /path HTTP/1.x" — everything except the path is decoration.
  std::string path = "/";
  const std::size_t sp1 = c.in.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = c.in.find(' ', sp1 + 1);
    path = c.in.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                         : sp2 - sp1 - 1);
  }
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  const std::string body = body_for(path, content_type, status);
  c.out = http_response(status, content_type, body);
  c.out_head = 0;
}

std::string AdminServer::body_for(const std::string& path,
                                  std::string& content_type, int& status) {
  if (path == "/metrics") return registry_->prometheus_text();
  if (path == "/metrics.json" || path == "/json") {
    content_type = "application/json";
    return registry_->json_snapshot();
  }
  if (path == "/trace") {
    content_type = "text/plain; charset=utf-8";
    return Tracer::global().dump();
  }
  if (path == "/healthz") {
    content_type = "text/plain; charset=utf-8";
    return "ok\n";
  }
  status = 404;
  content_type = "text/plain; charset=utf-8";
  return "not found\n";
}

void AdminServer::drop(int fd) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  loop_.unwatch(fd);
  clients_.erase(it);  // Fd destructor closes
}

}  // namespace protoobf::obs
