// Admin exposition endpoint: a tiny HTTP/1.0 server on its own EventLoop
// thread, serving the metrics registry and the trace ring.
//
//   GET /metrics       Prometheus text exposition
//   GET /metrics.json  flat JSON snapshot (what `protoobf top` polls)
//   GET /trace         trace-ring dump, oldest-first
//   GET /healthz       "ok"
//
// This is deliberately not a Connection/Channel stack: admin traffic is
// plaintext HTTP for curl and scrapers, one request per connection,
// close-after-response. It shares nothing with the serving path except the
// EventLoop class, so a scrape can never perturb protocol state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace protoobf::obs {

class AdminServer {
 public:
  struct Config {
    net::Endpoint endpoint;  // default 127.0.0.1:0 — port 0 = ephemeral
  };

  explicit AdminServer(Config config = Config(),
                       MetricsRegistry* registry = &MetricsRegistry::global());
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds the listener and starts the loop thread. Fails fast on a busy
  /// port. Registers the full metric catalog (touch_all) so the first
  /// scrape already shows every family.
  Status start();
  void stop();

  /// Port actually bound (resolves ephemeral binds). 0 before start().
  std::uint16_t port() const { return port_; }

 private:
  struct Client {
    net::Fd fd;
    std::string in;
    std::string out;
    std::size_t out_head = 0;
  };

  void handle_accept();
  void handle_client(int fd, std::uint32_t events);
  void respond(Client& c);
  void drop(int fd);
  std::string body_for(const std::string& path, std::string& content_type,
                       int& status);

  Config config_;
  MetricsRegistry* registry_;
  net::EventLoop loop_;
  net::Fd listen_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  bool started_ = false;
  std::unordered_map<int, std::unique_ptr<Client>> clients_;
};

}  // namespace protoobf::obs
