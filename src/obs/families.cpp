#include "obs/families.hpp"

#include <mutex>
#include <string>
#include <vector>

namespace protoobf::obs {

namespace {

NetMetrics* make_net(const std::string& shard) {
  MetricsRegistry& r = MetricsRegistry::global();
  const Labels l{{"shard", shard}};
  return new NetMetrics{
      r.counter("protoobf_net_connections_accepted_total",
                "Connections accepted (server shards) or dialed (client).", l),
      r.counter("protoobf_net_connections_closed_total",
                "Connections fully closed.", l),
      r.counter("protoobf_net_connections_rejected_total",
                "Accepts rejected at the overload gate.", l),
      r.counter("protoobf_net_connections_shed_total",
                "Connections shed by the pending-byte sweeper.", l),
      r.gauge("protoobf_net_connections_active",
              "Live connections right now.", l),
      r.counter("protoobf_net_bytes_in_total", "Payload bytes received.", l),
      r.counter("protoobf_net_bytes_out_total", "Payload bytes sent.", l),
      r.counter("protoobf_net_messages_in_total",
                "Frames decoded and parsed into messages.", l),
      r.counter("protoobf_net_messages_out_total",
                "Messages serialized and framed for send.", l),
      r.counter("protoobf_net_close_clean_total",
                "Closes without a transport or parse error.", l),
      r.counter("protoobf_net_close_truncated_total",
                "Closes from transport-level failures (Truncated).", l),
      r.counter("protoobf_net_close_malformed_total",
                "Closes from framing/parse failures (Malformed).", l),
      r.counter("protoobf_net_backpressure_total",
                "Send-queue high-watermark trips.", l),
      r.histogram("protoobf_net_frame_ns",
                  "Decode+parse latency per readable slice, nanoseconds.", l),
  };
}

// Shard bundles are created on demand and cached; the list is walked by
// NetMetrics::sum() for cross-shard aggregates.
std::mutex g_net_mu;
std::vector<NetMetrics*>& net_shards() {
  static std::vector<NetMetrics*>* v = new std::vector<NetMetrics*>();
  return *v;
}

}  // namespace

NetMetrics& NetMetrics::for_shard(std::size_t shard) {
  std::lock_guard<std::mutex> lock(g_net_mu);
  auto& shards = net_shards();
  while (shards.size() <= shard) {
    shards.push_back(make_net(std::to_string(shards.size())));
  }
  return *shards[shard];
}

NetMetrics& NetMetrics::client() {
  static NetMetrics* m = make_net("client");
  return *m;
}

std::uint64_t NetMetrics::sum(Counter& (*field)(NetMetrics&),
                              bool include_client) {
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(g_net_mu);
    for (NetMetrics* m : net_shards()) total += field(*m).value();
  }
  if (include_client) total += field(client()).value();
  return total;
}

std::int64_t NetMetrics::sum(Gauge& (*field)(NetMetrics&),
                             bool include_client) {
  std::int64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(g_net_mu);
    for (NetMetrics* m : net_shards()) total += field(*m).value();
  }
  if (include_client) total += field(client()).value();
  return total;
}

SessionMetrics& SessionMetrics::get() {
  static SessionMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    return new SessionMetrics{
        r.counter("protoobf_session_serialized_total",
                  "Messages serialized by the session layer."),
        r.counter("protoobf_session_parsed_total",
                  "Messages parsed by the session layer."),
        r.counter("protoobf_session_serialize_errors_total",
                  "Serialize failures."),
        r.counter("protoobf_session_parse_errors_total", "Parse failures."),
        r.histogram("protoobf_session_serialize_ns",
                    "Serialize latency, nanoseconds (sampled 1/64)."),
        r.histogram("protoobf_session_parse_ns",
                    "Parse latency, nanoseconds (sampled 1/64)."),
        r.gauge("protoobf_session_arena_retained_bytes",
                "High-water mark of session arena wire capacity."),
        r.counter("protoobf_session_protocol_cache_hits_total",
                  "ProtocolCache lookups served from cache."),
        r.counter("protoobf_session_protocol_cache_misses_total",
                  "ProtocolCache lookups that built a protocol."),
        r.counter("protoobf_session_protocol_cache_evictions_total",
                  "ProtocolCache LRU evictions."),
    };
  }();
  return *m;
}

NativeMetrics& NativeMetrics::get() {
  static NativeMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    return new NativeMetrics{
        r.counter("protoobf_native_cache_hits_total",
                  "NativeCache lookups served from memory."),
        r.counter("protoobf_native_cache_misses_total",
                  "NativeCache lookups that required a compile."),
        r.counter("protoobf_native_disk_hits_total",
                  "Compiles satisfied by the fingerprinted on-disk unit."),
        r.counter("protoobf_native_recompiles_total",
                  "Full compiler invocations."),
        r.counter("protoobf_native_coalesced_total",
                  "Lookups that joined an in-flight compile."),
        r.counter("protoobf_native_errors_total", "Failed builds."),
        r.counter("protoobf_native_poisoned_total",
                  "Lookups short-circuited by the poison TTL."),
        r.gauge("protoobf_native_cache_size", "Entries resident in the LRU."),
        r.histogram("protoobf_native_compile_ns",
                    "Cold native compile latency, nanoseconds."),
    };
  }();
  return *m;
}

ReconnectMetrics& ReconnectMetrics::get() {
  static ReconnectMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    return new ReconnectMetrics{
        r.counter("protoobf_reconnect_sent_total",
                  "Messages handed to the wire at least once."),
        r.counter("protoobf_reconnect_resent_total",
                  "Retransmissions after reconnect."),
        r.counter("protoobf_reconnect_acked_total",
                  "Messages confirmed by cumulative ack."),
        r.counter("protoobf_reconnect_dials_total", "Dial attempts."),
        r.counter("protoobf_reconnect_reconnects_total",
                  "Successful re-dials after a drop."),
        r.counter("protoobf_reconnect_drops_total",
                  "Established connections lost."),
        r.counter("protoobf_reconnect_overflows_total",
                  "Sends rejected because the resend queue was full."),
        r.gauge("protoobf_reconnect_unacked",
                "Ack lag: sent-but-unacknowledged messages."),
    };
  }();
  return *m;
}

ResumeMetrics& ResumeMetrics::get() {
  static ResumeMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    return new ResumeMetrics{
        r.counter("protoobf_resume_attempts_total",
                  "Frame decode attempts through ParseResume."),
        r.counter("protoobf_resume_resumed_total",
                  "Decodes resumed from a suspended prefix parse."),
        r.counter("protoobf_resume_suspensions_total",
                  "Prefix parses suspended on Truncated."),
        r.counter("protoobf_resume_invalidations_total",
                  "Suspended states discarded (buffer rewound/changed)."),
        r.counter("protoobf_resume_scanned_bytes_total",
                  "Bytes scanned by prefix parsing, including rescans."),
    };
  }();
  return *m;
}

FaultMetrics& FaultMetrics::get() {
  static FaultMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    const char* name = "protoobf_fault_injected_total";
    const char* help = "Faults injected by kind (test/soak harness).";
    return new FaultMetrics{
        r.counter(name, help, {{"kind", "short_read"}}),
        r.counter(name, help, {{"kind", "short_write"}}),
        r.counter(name, help, {{"kind", "eagain"}}),
        r.counter(name, help, {{"kind", "reset"}}),
        r.counter(name, help, {{"kind", "epipe"}}),
        r.counter(name, help, {{"kind", "fin"}}),
        r.counter(name, help, {{"kind", "refused"}}),
        r.counter(name, help, {{"kind", "connection"}}),
    };
  }();
  return *m;
}

void touch_all() {
  NetMetrics::client();
  SessionMetrics::get();
  NativeMetrics::get();
  ReconnectMetrics::get();
  ResumeMetrics::get();
  FaultMetrics::get();
}

}  // namespace protoobf::obs
