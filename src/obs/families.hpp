// The metric catalog: one bundle of pre-registered instruments per
// subsystem, so hot paths hold raw Counter/Gauge/Histogram references and
// never touch the registry after construction. Accessors are function-local
// statics against the global registry; touch_all() forces every family to
// exist so a scrape of a freshly started process already shows the full
// catalog at zero (Prometheus treats absent and zero very differently).
//
// Naming: protoobf_<layer>_<what>[_total|_ns|_bytes], labels only where a
// dimension is genuinely per-series (shard="0".."N-1" | "client",
// kind="..." for fault taxonomy).
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"

namespace protoobf::obs {

/// Per-shard transport metrics. Server shards use for_shard(i); outbound
/// (Connector / ReliableClient) connections share the "client" series.
struct NetMetrics {
  Counter& accepted;        // connections accepted (server) / dialed (client)
  Counter& closed;          // connections fully closed
  Counter& rejected;        // accepts dropped at the overload gate
  Counter& shed;            // connections shed by the pending-byte sweeper
  Gauge& active;            // live connections right now
  Counter& bytes_in;        // payload bytes received
  Counter& bytes_out;       // payload bytes sent
  Counter& messages_in;     // frames decoded + parsed to messages
  Counter& messages_out;    // messages serialized + framed for send
  Counter& close_clean;     // close taxonomy: graceful / local close
  Counter& close_truncated; // transport-level failures (ErrorKind::Truncated)
  Counter& close_malformed; // framing/parse failures (ErrorKind::Malformed)
  Counter& backpressure;    // send-queue high-watermark trips
  Histogram& frame_ns;      // decode+parse latency per readable wakeup slice

  static NetMetrics& for_shard(std::size_t shard);
  static NetMetrics& client();
  /// Sums an instrument across every shard series created so far (server
  /// shards only, or including the client series). The members are
  /// references, so the field is picked by a capture-free selector:
  ///   NetMetrics::sum([](NetMetrics& m) -> Counter& { return m.bytes_in; },
  ///                   /*include_client=*/true)
  static std::uint64_t sum(Counter& (*field)(NetMetrics&),
                           bool include_client);
  static std::int64_t sum(Gauge& (*field)(NetMetrics&), bool include_client);
};

/// Session-layer (serialize/parse) metrics, process-wide.
struct SessionMetrics {
  Counter& serialized;          // messages serialized
  Counter& parsed;              // messages parsed
  Counter& serialize_errors;
  Counter& parse_errors;
  Histogram& serialize_ns;      // sampled (1 in kSampleEvery)
  Histogram& parse_ns;          // sampled
  Gauge& arena_retained_bytes;  // high-water of arena wire capacity
  Counter& cache_hits;          // ProtocolCache
  Counter& cache_misses;
  Counter& cache_evictions;

  static constexpr std::uint32_t kSampleEvery = 64;  // latency sampling period
  /// True once every kSampleEvery calls on this thread — keeps the two
  /// steady_clock reads off the common per-message path.
  static bool sample() {
    thread_local std::uint32_t tick = 0;
    return (++tick & (kSampleEvery - 1)) == 0;
  }
  static SessionMetrics& get();
};

/// Native-backend (generated-code compile + cache) metrics.
struct NativeMetrics {
  Counter& hits;
  Counter& misses;
  Counter& disk_hits;
  Counter& recompiles;
  Counter& coalesced;
  Counter& errors;
  Counter& poisoned;
  Gauge& cache_size;
  Histogram& compile_ns;  // cold compile latency

  static NativeMetrics& get();
};

/// ReliableClient reconnect/resend metrics, process-wide.
struct ReconnectMetrics {
  Counter& sent;
  Counter& resent;
  Counter& acked;
  Counter& dials;
  Counter& reconnects;
  Counter& drops;
  Counter& overflows;
  Gauge& unacked;  // ack lag: sent-but-unacknowledged messages

  static ReconnectMetrics& get();
};

/// ParseResume (suspended prefix parse) metrics, process-wide; mirrored
/// from per-framer ParseResume::Stats deltas.
struct ResumeMetrics {
  Counter& attempts;
  Counter& resumed;
  Counter& suspensions;
  Counter& invalidations;
  Counter& scanned_bytes;

  static ResumeMetrics& get();
};

/// FaultInjector tallies, labeled by fault kind so the soak test can match
/// them one-for-one against FaultInjector::Stats.
struct FaultMetrics {
  Counter& short_reads;
  Counter& short_writes;
  Counter& eagains;
  Counter& resets;
  Counter& epipes;
  Counter& fins;
  Counter& refused;
  Counter& connections;

  static FaultMetrics& get();
};

/// Forces every family above into the registry (plus net shard "client")
/// so exposition covers the complete catalog before any traffic flows.
void touch_all();

}  // namespace protoobf::obs
