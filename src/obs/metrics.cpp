#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace protoobf::obs {

namespace {
std::atomic<bool> g_enabled{true};

bool env_disabled() {
  const char* v = std::getenv("PROTOOBF_NO_METRICS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Formats a double with enough precision for quantiles without trailing
// noise; integers render without a decimal point.
std::string fmt_double(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 1e15 && v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}
}  // namespace

bool enabled() {
  static const bool env_off = env_disabled();
  if (env_off) return false;
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {
std::size_t thread_slot() {
  // Dense ids handed out once per thread; modulo keeps neighbours on
  // different slots until more than kSlots threads are live.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kSlots;
  return slot;
}
}  // namespace detail

void Histogram::aggregate(std::array<std::uint64_t, kBuckets>& out,
                          Snapshot& snap) const {
  out.fill(0);
  for (const auto& b : blocks_) {
    snap.count += b.count.load(std::memory_order_relaxed);
    snap.sum += b.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, b.max.load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out[i] += b.buckets[i].load(std::memory_order_relaxed);
    }
  }
}

namespace {
// Quantile from an aggregated bucket array: walk to the bucket holding the
// q-th sample, estimate at its midpoint (exact for unit-wide buckets).
double quantile_from(const std::array<std::uint64_t, Histogram::kBuckets>& b,
                     std::uint64_t count, double q) {
  if (count == 0) return 0.0;
  // Nearest-rank (ceil) of the target sample, 1-based, clamped into
  // [1, count] — q close to 1.0 lands on the max's bucket.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    seen += b[i];
    if (seen >= rank) {
      const std::uint64_t floor = Histogram::bucket_floor(i);
      const std::uint64_t width = Histogram::bucket_width(i);
      return width <= 1 ? static_cast<double>(floor)
                        : static_cast<double>(floor) +
                              static_cast<double>(width) / 2.0;
    }
  }
  return 0.0;  // unreachable: counts sum to `count`
}
}  // namespace

Histogram::Snapshot Histogram::snapshot() const {
  std::array<std::uint64_t, kBuckets> agg;
  Snapshot s;
  aggregate(agg, s);
  s.p50 = quantile_from(agg, s.count, 0.50);
  s.p95 = quantile_from(agg, s.count, 0.95);
  s.p99 = quantile_from(agg, s.count, 0.99);
  return s;
}

double Histogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> agg;
  Snapshot s;
  aggregate(agg, s);
  return quantile_from(agg, s.count, q);
}

void Histogram::reset() {
  for (auto& b : blocks_) {
    for (auto& bucket : b.buckets) bucket.store(0, std::memory_order_relaxed);
    b.count.store(0, std::memory_order_relaxed);
    b.sum.store(0, std::memory_order_relaxed);
    b.max.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

std::string MetricsRegistry::render_series(std::string_view name,
                                           const Labels& labels) {
  std::string out(name);
  if (labels.empty()) return out;
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        std::string_view help,
                                                        Labels labels,
                                                        Kind kind) {
  std::string series = render_series(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->series == series) return *e;
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->labels = std::move(labels);
  e->series = std::move(series);
  e->kind = kind;
  switch (kind) {
    case Kind::Counter:
      e->counter = std::make_unique<Counter>();
      break;
    case Kind::Gauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case Kind::Histogram:
      e->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  return *find_or_create(name, help, std::move(labels), Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  return *find_or_create(name, help, std::move(labels), Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help, Labels labels) {
  return *find_or_create(name, help, std::move(labels), Kind::Histogram)
              .histogram;
}

std::string MetricsRegistry::prometheus_text() const {
  // Snapshot the entry list under the lock, render outside it: series
  // addresses are stable and instrument reads are lock-free.
  std::vector<const Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& e : entries_) entries.push_back(e.get());
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->name < b->name;
                   });

  std::string out;
  out.reserve(entries.size() * 96);
  std::string_view last_family;
  for (const Entry* e : entries) {
    if (e->name != last_family) {
      last_family = e->name;
      out += "# HELP ";
      out += e->name;
      out.push_back(' ');
      out += e->help;
      out.push_back('\n');
      out += "# TYPE ";
      out += e->name;
      out += e->kind == Kind::Counter    ? " counter\n"
             : e->kind == Kind::Gauge    ? " gauge\n"
                                         : " summary\n";
    }
    switch (e->kind) {
      case Kind::Counter:
        out += e->series;
        out.push_back(' ');
        out += std::to_string(e->counter->value());
        out.push_back('\n');
        break;
      case Kind::Gauge:
        out += e->series;
        out.push_back(' ');
        out += std::to_string(e->gauge->value());
        out.push_back('\n');
        break;
      case Kind::Histogram: {
        const Histogram::Snapshot s = e->histogram->snapshot();
        // Quantile series share the family's existing labels.
        const auto q_series = [&](const char* q) {
          std::string series(e->name);
          series.push_back('{');
          for (const auto& [k, v] : e->labels) {
            series += k;
            series += "=\"";
            series += v;
            series += "\",";
          }
          series += "quantile=\"";
          series += q;
          series += "\"}";
          return series;
        };
        out += q_series("0.5") + " " + fmt_double(s.p50) + "\n";
        out += q_series("0.95") + " " + fmt_double(s.p95) + "\n";
        out += q_series("0.99") + " " + fmt_double(s.p99) + "\n";
        out += render_series(e->name + "_sum", e->labels) + " " +
               std::to_string(s.sum) + "\n";
        out += render_series(e->name + "_count", e->labels) + " " +
               std::to_string(s.count) + "\n";
        out += render_series(e->name + "_max", e->labels) + " " +
               std::to_string(s.max) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::json_snapshot() const {
  std::vector<const Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& e : entries_) entries.push_back(e.get());
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->series < b->series;
                   });

  std::string counters, gauges, histograms;
  for (const Entry* e : entries) {
    std::string key = "\"";
    json_escape_into(key, e->series);
    key += "\"";
    switch (e->kind) {
      case Kind::Counter:
        if (!counters.empty()) counters += ",";
        counters += key + ":" + std::to_string(e->counter->value());
        break;
      case Kind::Gauge:
        if (!gauges.empty()) gauges += ",";
        gauges += key + ":" + std::to_string(e->gauge->value());
        break;
      case Kind::Histogram: {
        const Histogram::Snapshot s = e->histogram->snapshot();
        if (!histograms.empty()) histograms += ",";
        histograms += key + ":{\"count\":" + std::to_string(s.count) +
                      ",\"sum\":" + std::to_string(s.sum) +
                      ",\"max\":" + std::to_string(s.max) +
                      ",\"mean\":" + fmt_double(s.mean()) +
                      ",\"p50\":" + fmt_double(s.p50) +
                      ",\"p95\":" + fmt_double(s.p95) +
                      ",\"p99\":" + fmt_double(s.p99) + "}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}\n";
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    switch (e->kind) {
      case Kind::Counter:
        e->counter->reset();
        break;
      case Kind::Gauge:
        e->gauge->reset();
        break;
      case Kind::Histogram:
        e->histogram->reset();
        break;
    }
  }
}

}  // namespace protoobf::obs
