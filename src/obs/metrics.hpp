// Process-wide metrics: sharded counters, gauges, log-bucketed histograms,
// and a registry that exposes them as Prometheus text or a flat JSON
// snapshot.
//
// Design constraints, in order:
//   1. Hot-path cost is one uncontended relaxed add. Counters and histograms
//      spread increments over cache-line-padded slots indexed by a per-thread
//      hash, so two shard threads bumping the same logical counter never
//      bounce a line. Aggregation happens on read, which is rare (a scrape).
//   2. Registration is slow-path only. Components look their instruments up
//      once at construction (mutex-protected, deduplicated by name+labels)
//      and keep raw references; instrument addresses are stable for the
//      registry's lifetime.
//   3. Everything is readable concurrently with writers. Reads are relaxed
//      sums — a scrape sees a consistent-enough snapshot, never torn values.
//
// Histograms are log-linear (HdrHistogram-style): each power-of-two octave
// is split into kSubBuckets linear sub-buckets, giving a bounded relative
// error of 1/kSubBuckets on any recorded value while covering the full
// uint64 range in a few hundred buckets. Quantiles interpolate within the
// winning bucket.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace protoobf::obs {

/// Global kill-switch (PROTOOBF_NO_METRICS=1 in the environment, or
/// set_enabled(false)). Instruments still exist and read as zero; the
/// hot-path add degrades to one relaxed load and a predictable branch.
bool enabled();
void set_enabled(bool on);

/// Monotonic nanoseconds — the timebase every histogram record and trace
/// event uses, so exposition output is internally comparable.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace detail {
/// Dense per-thread slot index in [0, kSlots): threads hash onto padded
/// slots so concurrent increments land on distinct cache lines.
inline constexpr std::size_t kSlots = 8;
std::size_t thread_slot();
}  // namespace detail

/// Monotonic counter. add() is a single relaxed fetch_add on a
/// thread-private cache line; value() sums the slots.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    slots_[detail::thread_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, detail::kSlots> slots_{};
};

/// Signed point-in-time value (occupancy, queue depth, retained bytes).
/// Single atomic: gauges move at connection/lifecycle rate, not per-message.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  /// set() if `v` exceeds the current value (racy max — fine for high-water
  /// marks sampled from one writer at a time).
  void set_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-linear histogram over uint64 values (latency in ns, sizes in bytes).
/// record() touches one thread-private padded block: bucket add + count add
/// + sum add + relaxed max. Quantiles are estimated at bucket midpoints,
/// bounded relative error 1 / kSubBuckets (12.5%); values below
/// kSubBuckets*2 are exact (unit-wide buckets).
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  // Highest octave is bit 63: index(h=63, sub=7) + 1.
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) * kSubBuckets;

  void record(std::uint64_t v) {
    if (!enabled()) return;
    Block& b = blocks_[detail::thread_slot()];
    b.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    b.count.fetch_add(1, std::memory_order_relaxed);
    b.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = b.max.load(std::memory_order_relaxed);
    while (v > cur &&
           !b.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
  };
  /// Aggregates all slots and derives the standard quantiles.
  Snapshot snapshot() const;
  /// Arbitrary quantile (q in [0,1]) from a fresh aggregation.
  double quantile(double q) const;

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& b : blocks_)
      total += b.count.load(std::memory_order_relaxed);
    return total;
  }
  void reset();

  /// Bucket geometry, exposed for the oracle test.
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int h = std::bit_width(v) - 1;  // position of the MSB, >= kSubBits
    const std::size_t sub =
        static_cast<std::size_t>(v >> (h - kSubBits)) - kSubBuckets;
    return static_cast<std::size_t>(h - kSubBits + 1) * kSubBuckets + sub;
  }
  static std::uint64_t bucket_floor(std::size_t idx) {
    if (idx < kSubBuckets) return idx;
    const std::size_t o = idx >> kSubBits;  // >= 1
    const std::size_t sub = idx & (kSubBuckets - 1);
    return (kSubBuckets + sub) << (o - 1);
  }
  static std::uint64_t bucket_width(std::size_t idx) {
    if (idx < kSubBuckets) return 1;
    return std::uint64_t{1} << ((idx >> kSubBits) - 1);
  }

 private:
  struct alignas(64) Block {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  void aggregate(std::array<std::uint64_t, kBuckets>& out,
                 Snapshot& snap) const;
  std::array<Block, detail::kSlots> blocks_{};
};

/// Times a scope into a histogram in nanoseconds. Null histogram → no-op.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram* h) : h_(h), t0_(h ? now_ns() : 0) {}
  ~ScopedTimerNs() {
    if (h_) h_->record(now_ns() - t0_);
  }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram* h_;
  std::uint64_t t0_;
};

/// Label set attached to an instrument; rendered `{k="v",...}` in
/// exposition. Order is preserved as given (callers pass a stable order).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Named instruments, deduplicated by (name, labels). Lookup is
/// mutex-protected and meant for component construction; returned
/// references stay valid for the registry's lifetime. Exposition renders
/// families sorted by name with their label series in registration order.
class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem instruments into.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {});

  /// Prometheus text exposition. Counters/gauges map directly; histograms
  /// render as summaries (quantile series + _sum/_count) plus a `_max`
  /// gauge, which keeps a scrape to a handful of series per family.
  std::string prometheus_text() const;

  /// Flat JSON snapshot: {"counters":{"name{labels}":v,...},"gauges":{...},
  /// "histograms":{"name{labels}":{"count":..,"sum":..,"max":..,"mean":..,
  /// "p50":..,"p95":..,"p99":..},...}}. Keys match the Prometheus series
  /// names so `protoobf top` can join them trivially.
  std::string json_snapshot() const;

  /// Zeroes every instrument's value; registrations (and addresses)
  /// survive. Test isolation for the process-global registry.
  void reset_values();

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    std::string series;  // name{labels} — the dedup and exposition key
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(std::string_view name, std::string_view help,
                        Labels labels, Kind kind);
  static std::string render_series(std::string_view name, const Labels& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace protoobf::obs
