#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/metrics.hpp"

namespace protoobf::obs {

const char* trace_event_name(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::Dial: return "Dial";
    case TraceEvent::Accept: return "Accept";
    case TraceEvent::FrameIn: return "FrameIn";
    case TraceEvent::FrameOut: return "FrameOut";
    case TraceEvent::ParseError: return "ParseError";
    case TraceEvent::Backpressure: return "Backpressure";
    case TraceEvent::FaultInjected: return "FaultInjected";
    case TraceEvent::Reconnect: return "Reconnect";
    case TraceEvent::Drain: return "Drain";
    case TraceEvent::Shed: return "Shed";
    case TraceEvent::Close: return "Close";
  }
  return "Unknown";
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

Tracer::Tracer() : epoch_ns_(now_ns()) {}

std::uint64_t Tracer::elapsed_ns() const { return now_ns() - epoch_ns_; }

std::string Tracer::dump(std::size_t max_events) const {
  struct Ev {
    std::uint64_t seq, conn, kind_arg, t_ns;
  };
  std::vector<Ev> evs;
  evs.reserve(kCapacity);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0) continue;
    Ev e{s1, s.conn.load(std::memory_order_relaxed),
         s.kind_arg.load(std::memory_order_relaxed),
         s.t_ns.load(std::memory_order_relaxed)};
    // Re-check: a writer racing us bumped or zeroed seq; drop torn slots.
    if (s.seq.load(std::memory_order_acquire) != s1) continue;
    evs.push_back(e);
  }
  std::sort(evs.begin(), evs.end(),
            [](const Ev& a, const Ev& b) { return a.seq < b.seq; });
  if (max_events != 0 && evs.size() > max_events) {
    evs.erase(evs.begin(), evs.end() - static_cast<std::ptrdiff_t>(max_events));
  }

  std::string out;
  out.reserve(evs.size() * 48);
  char line[128];
  for (const Ev& e : evs) {
    const auto ev = static_cast<TraceEvent>(e.kind_arg >> 56);
    const std::uint64_t arg = e.kind_arg & 0x00FFFFFFFFFFFFFFull;
    std::snprintf(line, sizeof(line),
                  "+%lluus conn=%llu %s arg=%llu\n",
                  static_cast<unsigned long long>(e.t_ns / 1000),
                  static_cast<unsigned long long>(e.conn),
                  trace_event_name(ev), static_cast<unsigned long long>(arg));
    out += line;
  }
  return out;
}

void Tracer::clear() {
  for (auto& s : slots_) s.seq.store(0, std::memory_order_release);
}

}  // namespace protoobf::obs
