// Bounded-ring per-connection lifecycle tracer.
//
// Writers claim a slot with one relaxed fetch_add on a global cursor, store
// the event fields into that slot's atomics, then release-publish the slot's
// sequence number. Readers acquire-load the sequence, copy the fields, and
// re-check the sequence — a slot overwritten mid-read fails the re-check and
// is dropped. Every field is an atomic scalar (no strings, no pointers), so
// the ring is TSan-clean by construction and a record() costs a handful of
// relaxed stores.
//
// The ring holds the most recent kCapacity events; dump() renders the
// survivors oldest-first. Connection ids come from next_conn_id() so events
// from one connection can be grepped across layers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace protoobf::obs {

enum class TraceEvent : std::uint8_t {
  Dial = 1,       // outbound connect issued (arg: attempt #)
  Accept,         // inbound connection adopted (arg: shard)
  FrameIn,        // frame decoded + parsed (arg: payload bytes)
  FrameOut,       // message framed for send (arg: payload bytes)
  ParseError,     // framing/parse verdict went Malformed (arg: buffered bytes)
  Backpressure,   // send queue crossed the high watermark (arg: queued bytes)
  FaultInjected,  // harness injected a fault (arg: FaultKind ordinal)
  Reconnect,      // ReliableClient re-established (arg: resent count)
  Drain,          // graceful drain initiated (arg: live connections)
  Shed,           // connection shed by the pending sweeper (arg: pending bytes)
  Close,          // connection closed (arg: 0 clean / 1 truncated / 2 malformed)
};

const char* trace_event_name(TraceEvent ev);

class Tracer {
 public:
  static constexpr std::size_t kCapacity = 4096;  // power of two

  /// The process-wide ring every subsystem records into.
  static Tracer& global();

  Tracer();

  /// Hands out connection ids for correlating events across layers.
  std::uint64_t next_conn_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(std::uint64_t conn_id, TraceEvent ev, std::uint64_t arg = 0) {
    if (!enabled()) return;
    const std::uint64_t ticket =
        cursor_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & (kCapacity - 1)];
    // Invalidate while writing: a reader that started before this store
    // sees a sequence mismatch and drops the slot.
    s.seq.store(0, std::memory_order_release);
    s.conn.store(conn_id, std::memory_order_relaxed);
    s.kind_arg.store((static_cast<std::uint64_t>(ev) << 56) |
                         (arg & 0x00FFFFFFFFFFFFFFull),
                     std::memory_order_relaxed);
    s.t_ns.store(elapsed_ns(), std::memory_order_relaxed);
    s.seq.store(ticket + 1, std::memory_order_release);  // 0 means empty
  }

  /// Number of events ever recorded (monotonic; ring keeps the last
  /// kCapacity of them).
  std::uint64_t recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Renders surviving events oldest-first, one per line:
  ///   +123456us conn=42 FrameIn arg=512
  /// `max_events` caps the output (0 = whole ring).
  std::string dump(std::size_t max_events = 0) const;

  /// Drops all events (test isolation). Racy against concurrent writers,
  /// which is fine — those events are simply kept.
  void clear();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // ticket + 1; 0 = never written
    std::atomic<std::uint64_t> conn{0};
    std::atomic<std::uint64_t> kind_arg{0};  // event << 56 | arg
    std::atomic<std::uint64_t> t_ns{0};
  };

  std::uint64_t elapsed_ns() const;

  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> enabled_{true};
  std::uint64_t epoch_ns_;  // process-start reference for readable offsets
  Slot slots_[kCapacity];
};

}  // namespace protoobf::obs
