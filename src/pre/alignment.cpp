#include "pre/alignment.hpp"

#include <algorithm>

namespace protoobf::pre {

Alignment align(BytesView a, BytesView b, AlignScores scores) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // Dynamic-programming table, row-major (n+1) x (m+1).
  std::vector<int> dp((n + 1) * (m + 1), 0);
  const auto at = [m](std::size_t i, std::size_t j) {
    return i * (m + 1) + j;
  };
  for (std::size_t i = 1; i <= n; ++i) dp[at(i, 0)] = static_cast<int>(i) * scores.gap;
  for (std::size_t j = 1; j <= m; ++j) dp[at(0, j)] = static_cast<int>(j) * scores.gap;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const int diag = dp[at(i - 1, j - 1)] +
                       (a[i - 1] == b[j - 1] ? scores.match : scores.mismatch);
      const int up = dp[at(i - 1, j)] + scores.gap;
      const int left = dp[at(i, j - 1)] + scores.gap;
      dp[at(i, j)] = std::max({diag, up, left});
    }
  }

  Alignment out;
  out.score = dp[at(n, m)];
  // Traceback.
  std::size_t i = n;
  std::size_t j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        dp[at(i, j)] == dp[at(i - 1, j - 1)] +
                            (a[i - 1] == b[j - 1] ? scores.match
                                                  : scores.mismatch)) {
      out.a.push_back(a[i - 1]);
      out.b.push_back(b[j - 1]);
      --i;
      --j;
    } else if (i > 0 && dp[at(i, j)] == dp[at(i - 1, j)] + scores.gap) {
      out.a.push_back(a[i - 1]);
      out.b.push_back(-1);
      --i;
    } else {
      out.a.push_back(-1);
      out.b.push_back(b[j - 1]);
      --j;
    }
  }
  std::reverse(out.a.begin(), out.a.end());
  std::reverse(out.b.begin(), out.b.end());
  return out;
}

double similarity(BytesView a, BytesView b, AlignScores scores) {
  if (a.empty() && b.empty()) return 1.0;
  const std::size_t longest = std::max(a.size(), b.size());
  const Alignment al = align(a, b, scores);
  // score is at most match * max_len; at least gap * (len_a + len_b).
  const double best = static_cast<double>(scores.match) *
                      static_cast<double>(longest);
  const double worst = static_cast<double>(scores.gap) *
                       static_cast<double>(a.size() + b.size());
  if (best <= worst) return 0.0;
  const double norm = (static_cast<double>(al.score) - worst) / (best - worst);
  return std::clamp(norm, 0.0, 1.0);
}

}  // namespace protoobf::pre
