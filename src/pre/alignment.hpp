// Sequence alignment — the core of network-based PRE tools (paper §II-B).
//
// The PI project introduced Needleman–Wunsch alignment for message
// classification and format inference in 2004; "shortly afterwards, several
// tools were developed using this algorithm" (Netzob among them). This is a
// textbook byte-level implementation: global alignment with configurable
// match/mismatch/gap scores, plus the normalized similarity used as the
// clustering distance.
//
// It is the measurement instrument of the resilience experiment (§VII-D):
// obfuscation succeeds when messages of one type stop aligning well.
#pragma once

#include <vector>

#include "util/bytes.hpp"

namespace protoobf::pre {

struct AlignScores {
  int match = 1;
  int mismatch = -1;
  int gap = -1;
};

/// Aligned sequences use -1 as the gap symbol, byte values otherwise.
struct Alignment {
  int score = 0;
  std::vector<int> a;  // first sequence with gaps
  std::vector<int> b;  // second sequence with gaps
};

/// Global (Needleman–Wunsch) alignment of two byte strings.
Alignment align(BytesView a, BytesView b, AlignScores scores = {});

/// Normalized similarity in [0, 1]: identical strings score 1, strings with
/// nothing in common score 0.
double similarity(BytesView a, BytesView b, AlignScores scores = {});

}  // namespace protoobf::pre
