#include "pre/clustering.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "pre/alignment.hpp"

namespace protoobf::pre {

std::vector<std::vector<std::size_t>> cluster_messages(
    const std::vector<Bytes>& messages, double distance_threshold) {
  const std::size_t n = messages.size();
  std::vector<std::vector<std::size_t>> clusters;
  if (n == 0) return clusters;

  // Pairwise distance matrix.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      dist[i][j] = dist[j][i] = 1.0 - similarity(messages[i], messages[j]);
    }
  }

  for (std::size_t i = 0; i < n; ++i) clusters.push_back({i});

  while (clusters.size() > 1) {
    // Closest pair under average linkage.
    double best = 1e18;
    std::size_t bi = 0;
    std::size_t bj = 1;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        double total = 0.0;
        for (std::size_t a : clusters[i]) {
          for (std::size_t b : clusters[j]) total += dist[a][b];
        }
        const double avg =
            total / static_cast<double>(clusters[i].size() *
                                        clusters[j].size());
        if (avg < best) {
          best = avg;
          bi = i;
          bj = j;
        }
      }
    }
    if (best > distance_threshold) break;
    auto merged = clusters[bi];
    merged.insert(merged.end(), clusters[bj].begin(), clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
    clusters[bi] = std::move(merged);
  }
  return clusters;
}

ClusterQuality score_clustering(
    const std::vector<std::vector<std::size_t>>& clusters,
    const std::vector<int>& labels) {
  ClusterQuality q;
  q.clusters = clusters.size();
  q.true_types = std::set<int>(labels.begin(), labels.end()).size();
  std::size_t total = 0;
  std::size_t majority_sum = 0;
  for (const auto& cluster : clusters) {
    std::map<int, std::size_t> counts;
    for (std::size_t idx : cluster) ++counts[labels[idx]];
    std::size_t majority = 0;
    for (const auto& [label, count] : counts) {
      majority = std::max(majority, count);
    }
    majority_sum += majority;
    total += cluster.size();
  }
  q.purity = total == 0 ? 0.0
                        : static_cast<double>(majority_sum) /
                              static_cast<double>(total);
  q.fragmentation = q.true_types == 0
                        ? 0.0
                        : static_cast<double>(q.clusters) /
                              static_cast<double>(q.true_types);
  return q;
}

}  // namespace protoobf::pre
