// Message classification by hierarchical clustering (paper §II-C.3).
//
// "Classification in PRE is mainly based on similarity measures. It is a
// key step in PRE as the efficiency of the inference depends on the quality
// of this classification." UPGMA agglomerative clustering over the
// alignment distance (1 - similarity), cut at a threshold — the structure
// PI/Netzob-style tools use to recover message types from a trace.
//
// The quality measures below quantify the two failure modes §II-C.3
// describes: too many clusters (same-type messages look different) and
// merged clusters (different types look alike).
#pragma once

#include <cstddef>
#include <vector>

#include "util/bytes.hpp"

namespace protoobf::pre {

/// UPGMA (average-linkage) clustering; merging stops when the closest pair
/// of clusters is farther than `distance_threshold`. Returns clusters as
/// index sets into `messages`.
std::vector<std::vector<std::size_t>> cluster_messages(
    const std::vector<Bytes>& messages, double distance_threshold);

struct ClusterQuality {
  std::size_t clusters = 0;      // recovered classes
  std::size_t true_types = 0;    // ground-truth classes
  double purity = 0.0;           // weighted majority-label fraction
  double fragmentation = 0.0;    // clusters / true_types
};

/// Scores a clustering against ground-truth type labels.
ClusterQuality score_clustering(
    const std::vector<std::vector<std::size_t>>& clusters,
    const std::vector<int>& labels);

}  // namespace protoobf::pre
