#include "pre/dpi.hpp"

#include <algorithm>
#include <array>
#include <string_view>

namespace protoobf::pre {

const char* to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::Unknown: return "unknown";
    case Protocol::ModbusTcp: return "modbus-tcp";
    case Protocol::Http: return "http";
  }
  return "?";
}

bool looks_like_modbus(BytesView p) {
  if (p.size() < 8) return false;
  // MBAP: transaction(2) protocol(2)=0 length(2) unit(1), then PDU.
  if (p[2] != 0 || p[3] != 0) return false;
  const std::size_t length = (static_cast<std::size_t>(p[4]) << 8) | p[5];
  if (length != p.size() - 6) return false;
  if (length < 2) return false;
  const Byte fn = p[7];
  const Byte base_fn = fn & 0x7f;
  static constexpr Byte kKnown[] = {1, 2, 3, 4, 5, 6, 15, 16};
  if (std::find(std::begin(kKnown), std::end(kKnown), base_fn) ==
      std::end(kKnown)) {
    return false;
  }
  const std::size_t pdu = length - 2;  // bytes after unit id + fn
  if (fn & 0x80) return pdu == 1;      // exception: one code byte
  switch (base_fn) {
    case 1: case 2: case 3: case 4:
      // Request: addr+qty (4). Response: bytecount + data.
      return pdu == 4 || (pdu >= 2 && p.size() > 8 && p[8] == pdu - 1);
    case 5: case 6:
      return pdu == 4;
    case 15: case 16:
      // Request: addr+qty+bytecount+payload. Response: addr+qty.
      return pdu == 4 || (pdu >= 6 && p.size() > 12 && p[12] == pdu - 5);
    default:
      return false;
  }
}

bool looks_like_http(BytesView p) {
  static constexpr std::string_view kMethods[] = {
      "GET ", "POST ", "PUT ", "HEAD ", "DELETE ", "OPTIONS ", "PATCH "};
  const std::string_view text(reinterpret_cast<const char*>(p.data()),
                              p.size());
  const bool method = std::any_of(
      std::begin(kMethods), std::end(kMethods),
      [&](std::string_view m) { return text.substr(0, m.size()) == m; });
  if (!method) return false;
  const std::size_t line_end = text.find("\r\n");
  if (line_end == std::string_view::npos) return false;
  const std::string_view line = text.substr(0, line_end);
  // Request line: METHOD SP URI SP HTTP/1.x
  const std::size_t version = line.rfind(" HTTP/1.");
  if (version == std::string_view::npos) return false;
  const std::size_t first_space = line.find(' ');
  if (first_space == std::string_view::npos || first_space >= version) {
    return false;
  }
  // At least one header-shaped line or the terminating blank line.
  const std::string_view rest = text.substr(line_end + 2);
  return rest.substr(0, 2) == "\r\n" ||
         rest.find(": ") != std::string_view::npos;
}

Protocol classify(BytesView payload) {
  if (looks_like_modbus(payload)) return Protocol::ModbusTcp;
  if (looks_like_http(payload)) return Protocol::Http;
  return Protocol::Unknown;
}

}  // namespace protoobf::pre
