// Signature-based deep packet inspection (nDPI-style protocol detection).
//
// The repro substitutes the paper's human-expert Netzob assessment (§VII-D)
// with automated instruments; this one answers the coarsest PRE question —
// "which protocol is this?" — the way production DPI engines do: structural
// signatures on the first payload of a flow. Obfuscation succeeds when the
// plain protocol is detected and the obfuscated one is not.
//
//  * Modbus/TCP: MBAP header checks — protocol id 0x0000 at offset 2, the
//    16-bit length field matching the remaining byte count, a known
//    function code, and per-function PDU length sanity.
//  * HTTP: a known method token, a space-separated request line ending in
//    "HTTP/1.x\r\n", and header-shaped lines after it.
#pragma once

#include "util/bytes.hpp"

namespace protoobf::pre {

enum class Protocol {
  Unknown,
  ModbusTcp,
  Http,
};

const char* to_string(Protocol protocol);

bool looks_like_modbus(BytesView payload);
bool looks_like_http(BytesView payload);

/// First-match classification, Modbus before HTTP (it is the stricter
/// signature).
Protocol classify(BytesView payload);

}  // namespace protoobf::pre
