#include "pre/field_inference.hpp"

#include <algorithm>
#include <cmath>

#include "pre/alignment.hpp"

namespace protoobf::pre {

InferredFormat infer_format(const std::vector<Bytes>& cluster) {
  InferredFormat out;
  if (cluster.empty()) return out;
  const Bytes& ref = cluster.front();
  out.constant.assign(ref.size(), true);
  std::vector<bool> seen(ref.size(), false);

  for (std::size_t k = 1; k < cluster.size(); ++k) {
    const Alignment al = align(ref, cluster[k]);
    std::size_t ref_pos = 0;
    for (std::size_t i = 0; i < al.a.size(); ++i) {
      if (al.a[i] < 0) continue;  // gap in reference: insertion, ignore
      if (ref_pos < ref.size()) {
        if (al.b[i] < 0 || al.b[i] != al.a[i]) out.constant[ref_pos] = false;
        seen[ref_pos] = true;
      }
      ++ref_pos;
    }
  }
  (void)seen;

  // Field boundaries where the constant/variable classification flips.
  if (!ref.empty()) out.boundaries.push_back(0);
  for (std::size_t i = 1; i < ref.size(); ++i) {
    if (out.constant[i] != out.constant[i - 1]) out.boundaries.push_back(i);
  }
  return out;
}

BoundaryScore score_boundaries(const std::vector<std::size_t>& inferred,
                               const std::vector<std::size_t>& truth,
                               std::size_t tolerance) {
  BoundaryScore score;
  if (inferred.empty() || truth.empty()) return score;
  const auto near = [&](std::size_t x, const std::vector<std::size_t>& set) {
    return std::any_of(set.begin(), set.end(), [&](std::size_t y) {
      return (x > y ? x - y : y - x) <= tolerance;
    });
  };
  std::size_t hit_inferred = 0;
  for (std::size_t b : inferred) {
    if (near(b, truth)) ++hit_inferred;
  }
  std::size_t hit_truth = 0;
  for (std::size_t b : truth) {
    if (near(b, inferred)) ++hit_truth;
  }
  score.precision = static_cast<double>(hit_inferred) /
                    static_cast<double>(inferred.size());
  score.recall =
      static_cast<double>(hit_truth) / static_cast<double>(truth.size());
  if (score.precision + score.recall > 0.0) {
    score.f1 = 2.0 * score.precision * score.recall /
               (score.precision + score.recall);
  }
  return score;
}

}  // namespace protoobf::pre
