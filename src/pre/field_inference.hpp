// Message format inference from a cluster of same-type messages.
//
// PI-project style: align every message to a reference, project onto the
// reference's coordinates, mark each position constant (same byte in every
// message) or variable, and cut field boundaries where the classification
// flips. Comparing the inferred boundaries with the serializer's
// ground-truth field map (runtime/emit.hpp FieldSpan) yields the
// precision/recall/F1 scores the resilience benchmark reports.
//
// The paper's "fields delimitation" challenge (§II-C.2) predicts exactly
// what the benchmark shows: with delimiters removed and values split or
// rewritten, these scores collapse.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bytes.hpp"

namespace protoobf::pre {

struct InferredFormat {
  /// Byte offsets (within the reference message) where a field starts.
  std::vector<std::size_t> boundaries;
  /// Per position of the reference: true if constant across the cluster.
  std::vector<bool> constant;
};

/// Infers the format of a cluster (>= 1 message). The first message is the
/// reference.
InferredFormat infer_format(const std::vector<Bytes>& cluster);

struct BoundaryScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Scores inferred boundaries against the true field starts, with a
/// +-tolerance window (PRE surveys typically allow 1 byte).
BoundaryScore score_boundaries(const std::vector<std::size_t>& inferred,
                               const std::vector<std::size_t>& truth,
                               std::size_t tolerance = 1);

}  // namespace protoobf::pre
