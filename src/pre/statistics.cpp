#include "pre/statistics.hpp"

#include <array>
#include <cmath>

namespace protoobf::pre {

namespace {
std::array<std::size_t, 256> histogram(BytesView data) {
  std::array<std::size_t, 256> counts{};
  for (Byte b : data) ++counts[b];
  return counts;
}
}  // namespace

double shannon_entropy(BytesView data) {
  if (data.empty()) return 0.0;
  const auto counts = histogram(data);
  const double n = static_cast<double>(data.size());
  double entropy = 0.0;
  for (std::size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double printable_ratio(BytesView data) {
  if (data.empty()) return 0.0;
  std::size_t printable = 0;
  for (Byte b : data) {
    if (b >= 0x20 && b <= 0x7e) ++printable;
  }
  return static_cast<double>(printable) / static_cast<double>(data.size());
}

double chi_square_uniform(BytesView data) {
  if (data.empty()) return 0.0;
  const auto counts = histogram(data);
  const double expected = static_cast<double>(data.size()) / 256.0;
  double chi = 0.0;
  for (std::size_t count : counts) {
    const double d = static_cast<double>(count) - expected;
    chi += d * d / expected;
  }
  return chi / static_cast<double>(data.size());
}

TrafficProfile profile(BytesView data) {
  return {shannon_entropy(data), printable_ratio(data),
          chi_square_uniform(data)};
}

const char* to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::TextLike: return "text-like";
    case TrafficClass::StructuredBinary: return "structured-binary";
    case TrafficClass::RandomLike: return "random-like";
  }
  return "?";
}

TrafficClass classify_profile(const TrafficProfile& p) {
  if (p.printable > 0.85) return TrafficClass::TextLike;
  // High per-byte entropy relative to what the message length permits
  // indicates randomized content.
  if (p.entropy > 5.5) return TrafficClass::RandomLike;
  return TrafficClass::StructuredBinary;
}

}  // namespace protoobf::pre
