// Statistical traffic fingerprinting.
//
// Beyond signatures, DPI engines and censors classify flows by byte-level
// statistics (paper §III-B: randomization "must prevent fingerprinting and
// any inference of any statistical characteristics"). These are the
// standard instruments: Shannon entropy, printable-byte ratio, and a
// chi-square distance from the uniform distribution. They quantify *what
// kind* of traffic the obfuscation produces: plain Modbus is low-entropy
// binary, plain HTTP is printable text, obfuscated traffic drifts towards
// high-entropy noise (which is detectable as such — the paper's reason for
// combining obfuscation with cover traffic is out of scope).
#pragma once

#include "util/bytes.hpp"

namespace protoobf::pre {

/// Shannon entropy in bits per byte (0..8).
double shannon_entropy(BytesView data);

/// Fraction of bytes in the printable ASCII range [0x20, 0x7e].
double printable_ratio(BytesView data);

/// Chi-square statistic against the uniform byte distribution, normalized
/// by sample size (0 for perfectly uniform, grows with structure).
double chi_square_uniform(BytesView data);

struct TrafficProfile {
  double entropy = 0;
  double printable = 0;
  double chi_square = 0;
};

TrafficProfile profile(BytesView data);

/// Coarse traffic class from a profile: text-like, structured-binary, or
/// random-like — the 3-way decision a statistical censor would make.
enum class TrafficClass { TextLike, StructuredBinary, RandomLike };

const char* to_string(TrafficClass c);

TrafficClass classify_profile(const TrafficProfile& p);

}  // namespace protoobf::pre
