#include "protocols/http.hpp"

namespace protoobf::http {

std::string_view request_spec() {
  return R"spec(
# Simplified HTTP/1.1 request: request line, header list terminated by a
# blank line (the repetition's stop marker), optional body for POST/PUT.
protocol HTTP

request: seq end {
  method: terminal delimited(" ") ascii
  uri: terminal delimited(" ") ascii
  version: terminal delimited("\r\n") const("HTTP/1.1")
  headers: repeat delimited("\r\n") {
    header: seq {
      name: terminal delimited(": ") ascii
      value: terminal delimited("\r\n") ascii
    }
  }
  body: optional (method in {"POST", "PUT"}) {
    content: terminal end
  }
}
)spec";
}

std::string_view response_spec() {
  return R"spec(
# Simplified HTTP/1.1 response: status line, header list, optional body
# (204 No Content responses carry none).
protocol HTTPResponse

response: seq end {
  version: terminal delimited(" ") const("HTTP/1.1")
  status: terminal delimited(" ") ascii
  reason: terminal delimited("\r\n") ascii
  headers: repeat delimited("\r\n") {
    header: seq {
      name: terminal delimited(": ") ascii
      value: terminal delimited("\r\n") ascii
    }
  }
  body: optional (status != "204") {
    content: terminal end
  }
}
)spec";
}

namespace {

void add_headers(
    Message& msg,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  for (std::size_t i = 0; i < headers.size(); ++i) {
    msg.append("headers");
    const std::string base = "headers[" + std::to_string(i) + "].header.";
    msg.set_text(base + "name", headers[i].first);
    msg.set_text(base + "value", headers[i].second);
  }
}

}  // namespace

Message make_get(
    const Graph& g, std::string_view uri,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  Message msg(g);
  msg.set_text("method", "GET");
  msg.set_text("uri", uri);
  add_headers(msg, headers);
  return msg;
}

Message make_post(
    const Graph& g, std::string_view uri,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view body) {
  Message msg(g);
  msg.set_text("method", "POST");
  msg.set_text("uri", uri);
  add_headers(msg, headers);
  msg.set_text("content", body);
  return msg;
}

Message make_response(
    const Graph& g, int status, std::string_view reason,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view body) {
  Message msg(g);
  msg.set_uint("status", static_cast<std::uint64_t>(status));
  msg.set_text("reason", reason);
  add_headers(msg, headers);
  if (status != 204) msg.set_text("content", body);
  return msg;
}

namespace {

constexpr std::string_view kMethods[] = {"GET", "POST", "PUT", "HEAD",
                                         "DELETE"};
constexpr std::string_view kHeaderNames[] = {
    "Host",       "User-Agent", "Accept",          "Accept-Language",
    "Connection", "Referer",    "X-Request-Id",    "Cache-Control",
    "Cookie",     "Origin"};
constexpr std::string_view kPathWords[] = {"api",   "v1",    "users", "items",
                                           "index", "query", "data",  "static"};

std::string random_token(Rng& rng, std::size_t min_len, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  const std::size_t len = rng.between(min_len, max_len);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.below(sizeof kAlphabet - 1)]);
  }
  return out;
}

}  // namespace

Message random_request(const Graph& g, Rng& rng) {
  Message msg(g);
  const std::string_view method = kMethods[rng.below(5)];
  msg.set_text("method", method);

  std::string uri = "/";
  const std::size_t segments = rng.between(1, 3);
  for (std::size_t i = 0; i < segments; ++i) {
    if (i > 0) uri += "/";
    uri += kPathWords[rng.below(8)];
  }
  if (rng.chance(0.4)) {
    // Appended piecewise: `"?" + random_token(...)` takes a rvalue-insert
    // path that GCC 12's -Wrestrict misdiagnoses under -O2 (PR 105329).
    uri += "?";
    uri += random_token(rng, 3, 8);
    uri += "=";
    uri += random_token(rng, 1, 12);
  }
  msg.set_text("uri", uri);

  const std::size_t header_count = rng.between(1, 6);
  std::vector<std::pair<std::string, std::string>> headers;
  for (std::size_t i = 0; i < header_count; ++i) {
    headers.emplace_back(std::string(kHeaderNames[i]),
                         random_token(rng, 4, 24));
  }
  add_headers(msg, headers);

  if (method == "POST" || method == "PUT") {
    msg.set_text("content", random_token(rng, 8, 64));
  }
  return msg;
}

Message random_response(const Graph& g, Rng& rng) {
  struct StatusLine {
    int code;
    std::string_view reason;
  };
  static constexpr StatusLine kStatuses[] = {
      {200, "OK"},        {201, "Created"},   {204, "No Content"},
      {301, "Moved"},     {404, "Not Found"}, {500, "Server Error"},
  };
  const StatusLine& line = kStatuses[rng.below(6)];
  std::vector<std::pair<std::string, std::string>> headers;
  const std::size_t header_count = rng.between(1, 4);
  static constexpr std::string_view kNames[] = {"Server", "Date", "ETag",
                                                "Cache-Control"};
  for (std::size_t i = 0; i < header_count; ++i) {
    headers.emplace_back(std::string(kNames[i]), random_token(rng, 4, 16));
  }
  return make_response(g, line.code, line.reason, headers,
                       line.code == 204 ? "" : random_token(rng, 4, 48));
}

}  // namespace protoobf::http
