// Simplified HTTP/1.1 request format (paper §VII; RFC 7230 subset).
//
// The evaluation's text protocol. It exercises the graph features the paper
// highlights for HTTP: an Optional field (the body, keyed on the method), a
// Repetitive field (the header list with its blank-line stop marker) and
// Delimited boundaries everywhere (" ", ": ", "\r\n").
//
// As in the paper, the core application "doesn't create messages with
// consistent values for the keywords" — header values are random ASCII; the
// framework only guarantees the *format*, semantic checks belong to a
// server, not to the parser.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/protoobf.hpp"
#include "util/rng.hpp"

namespace protoobf::http {

/// ProtoSpec source for request messages.
std::string_view request_spec();

/// ProtoSpec source for response messages (status line, headers, optional
/// body — absent for 204 No Content).
std::string_view response_spec();

/// GET request with the given URI and headers.
Message make_get(const Graph& g, std::string_view uri,
                 const std::vector<std::pair<std::string, std::string>>& headers);

/// POST request carrying a body.
Message make_post(const Graph& g, std::string_view uri,
                  const std::vector<std::pair<std::string, std::string>>& headers,
                  std::string_view body);

/// Response with the given status code, reason phrase, headers and body.
Message make_response(const Graph& g, int status, std::string_view reason,
                      const std::vector<std::pair<std::string, std::string>>& headers,
                      std::string_view body);

/// Random request: random method, URI path, 1..6 plausible headers, and a
/// random printable body for POST/PUT.
Message random_request(const Graph& g, Rng& rng);

/// Random response: plausible status distribution, headers, body.
Message random_response(const Graph& g, Rng& rng);

}  // namespace protoobf::http
