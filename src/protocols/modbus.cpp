#include "protocols/modbus.hpp"

namespace protoobf::modbus {

std::string_view request_spec() {
  return R"spec(
# TCP-Modbus request ADU. The `length` field counts unit id, function code
# and payload — modelled as a Length boundary on the `tail` sequence.
protocol ModbusRequest

adu: seq end {
  transaction: terminal fixed(2)
  protocol_id: terminal fixed(2) const(0x0000)
  length: terminal fixed(2)
  tail: seq length(length) {
    unit: terminal fixed(1)
    fn: terminal fixed(1)
    read_coils: optional (fn == 0x01) {
      rc_body: seq {
        rc_addr: terminal fixed(2)
        rc_qty: terminal fixed(2)
      }
    }
    read_discrete: optional (fn == 0x02) {
      rd_body: seq {
        rd_addr: terminal fixed(2)
        rd_qty: terminal fixed(2)
      }
    }
    read_holding: optional (fn == 0x03) {
      rh_body: seq {
        rh_addr: terminal fixed(2)
        rh_qty: terminal fixed(2)
      }
    }
    read_input: optional (fn == 0x04) {
      ri_body: seq {
        ri_addr: terminal fixed(2)
        ri_qty: terminal fixed(2)
      }
    }
    write_coil: optional (fn == 0x05) {
      wc_body: seq {
        wc_addr: terminal fixed(2)
        wc_value: terminal fixed(2)
      }
    }
    write_register: optional (fn == 0x06) {
      wr_body: seq {
        wr_addr: terminal fixed(2)
        wr_value: terminal fixed(2)
      }
    }
    write_coils: optional (fn == 0x0f) {
      wcs_body: seq {
        wcs_addr: terminal fixed(2)
        wcs_qty: terminal fixed(2)
        wcs_bytecount: terminal fixed(1)
        wcs_values: terminal length(wcs_bytecount)
      }
    }
    write_registers: optional (fn == 0x10) {
      wrs_body: seq {
        wrs_addr: terminal fixed(2)
        wrs_qty: terminal fixed(2)
        wrs_bytecount: terminal fixed(1)
        wrs_data: seq length(wrs_bytecount) {
          wrs_values: tabular(wrs_qty) {
            wrs_reg: terminal fixed(2)
          }
        }
      }
    }
  }
}
)spec";
}

std::string_view response_spec() {
  return R"spec(
# TCP-Modbus response ADU, same framing as the request.
protocol ModbusResponse

adu: seq end {
  transaction: terminal fixed(2)
  protocol_id: terminal fixed(2) const(0x0000)
  length: terminal fixed(2)
  tail: seq length(length) {
    unit: terminal fixed(1)
    fn: terminal fixed(1)
    read_coils_r: optional (fn == 0x01) {
      rc_r: seq {
        rc_bc: terminal fixed(1)
        rc_status: terminal length(rc_bc)
      }
    }
    read_discrete_r: optional (fn == 0x02) {
      rd_r: seq {
        rd_bc: terminal fixed(1)
        rd_status: terminal length(rd_bc)
      }
    }
    read_holding_r: optional (fn == 0x03) {
      rh_r: seq {
        rh_bc: terminal fixed(1)
        rh_data: terminal length(rh_bc)
      }
    }
    read_input_r: optional (fn == 0x04) {
      ri_r: seq {
        ri_bc: terminal fixed(1)
        ri_data: terminal length(ri_bc)
      }
    }
    write_coil_r: optional (fn == 0x05) {
      wc_r: seq {
        wc_addr_r: terminal fixed(2)
        wc_value_r: terminal fixed(2)
      }
    }
    write_register_r: optional (fn == 0x06) {
      wr_r: seq {
        wr_addr_r: terminal fixed(2)
        wr_value_r: terminal fixed(2)
      }
    }
    write_coils_r: optional (fn == 0x0f) {
      wcs_r: seq {
        wcs_addr_r: terminal fixed(2)
        wcs_qty_r: terminal fixed(2)
      }
    }
    write_registers_r: optional (fn == 0x10) {
      wrs_r: seq {
        wrs_addr_r: terminal fixed(2)
        wrs_qty_r: terminal fixed(2)
      }
    }
    exception_r: optional (fn in {0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x8f, 0x90}) {
      exception_code: terminal fixed(1)
    }
  }
}
)spec";
}

namespace {

void set_header(Message& msg, std::uint16_t transaction, std::uint8_t unit,
                std::uint8_t fn) {
  msg.set_uint("transaction", transaction);
  msg.set_uint("unit", unit);
  msg.set_uint("fn", fn);
}

}  // namespace

Message make_read_holding(const Graph& g, std::uint16_t transaction,
                          std::uint8_t unit, std::uint16_t address,
                          std::uint16_t quantity) {
  Message msg(g);
  set_header(msg, transaction, unit, 0x03);
  msg.set_uint("rh_addr", address);
  msg.set_uint("rh_qty", quantity);
  return msg;
}

Message make_write_register(const Graph& g, std::uint16_t transaction,
                            std::uint8_t unit, std::uint16_t address,
                            std::uint16_t value) {
  Message msg(g);
  set_header(msg, transaction, unit, 0x06);
  msg.set_uint("wr_addr", address);
  msg.set_uint("wr_value", value);
  return msg;
}

Message make_write_registers(const Graph& g, std::uint16_t transaction,
                             std::uint8_t unit, std::uint16_t address,
                             std::span<const std::uint16_t> values) {
  Message msg(g);
  set_header(msg, transaction, unit, 0x10);
  msg.set_uint("wrs_addr", address);
  for (std::size_t i = 0; i < values.size(); ++i) {
    msg.append("wrs_values");
    msg.set_uint("wrs_values[" + std::to_string(i) + "].wrs_reg",
                 values[i]);
  }
  return msg;
}

Message make_read_holding_response(const Graph& g, std::uint16_t transaction,
                                   std::uint8_t unit,
                                   std::span<const std::uint16_t> values) {
  Message msg(g);
  set_header(msg, transaction, unit, 0x03);
  Bytes data;
  for (std::uint16_t v : values) append(data, be_encode(v, 2));
  msg.set("rh_data", std::move(data));
  return msg;
}

Message random_request(const Graph& g, Rng& rng) {
  static constexpr std::uint8_t kFns[] = {1, 2, 3, 4, 5, 6, 15, 16};
  const std::uint8_t fn = kFns[rng.below(8)];
  Message msg(g);
  set_header(msg, static_cast<std::uint16_t>(rng.below(0x10000)),
             static_cast<std::uint8_t>(rng.between(1, 247)), fn);
  const auto addr = static_cast<std::uint16_t>(rng.below(0x10000));
  const auto qty = static_cast<std::uint16_t>(rng.between(1, 0x7b));
  switch (fn) {
    case 1: msg.set_uint("rc_addr", addr); msg.set_uint("rc_qty", qty); break;
    case 2: msg.set_uint("rd_addr", addr); msg.set_uint("rd_qty", qty); break;
    case 3: msg.set_uint("rh_addr", addr); msg.set_uint("rh_qty", qty); break;
    case 4: msg.set_uint("ri_addr", addr); msg.set_uint("ri_qty", qty); break;
    case 5:
      msg.set_uint("wc_addr", addr);
      msg.set_uint("wc_value", rng.chance(0.5) ? 0xff00 : 0x0000);
      break;
    case 6:
      msg.set_uint("wr_addr", addr);
      msg.set_uint("wr_value", static_cast<std::uint16_t>(rng.below(0x10000)));
      break;
    case 15: {
      msg.set_uint("wcs_addr", addr);
      const auto coils = static_cast<std::uint16_t>(rng.between(1, 64));
      msg.set_uint("wcs_qty", coils);
      msg.set("wcs_values", rng.bytes((coils + 7) / 8));
      break;
    }
    case 16: {
      msg.set_uint("wrs_addr", addr);
      const std::size_t regs = rng.between(1, 8);
      for (std::size_t i = 0; i < regs; ++i) {
        msg.append("wrs_values");
        msg.set_uint("wrs_values[" + std::to_string(i) + "].wrs_reg",
                     static_cast<std::uint16_t>(rng.below(0x10000)));
      }
      break;
    }
    default: break;
  }
  return msg;
}

Message random_response(const Graph& g, Rng& rng) {
  static constexpr std::uint8_t kFns[] = {1, 2, 3, 4, 5, 6, 15, 16, 0x83};
  const std::uint8_t fn = kFns[rng.below(9)];
  Message msg(g);
  set_header(msg, static_cast<std::uint16_t>(rng.below(0x10000)),
             static_cast<std::uint8_t>(rng.between(1, 247)), fn);
  const auto addr = static_cast<std::uint16_t>(rng.below(0x10000));
  switch (fn) {
    case 1: msg.set("rc_status", rng.bytes(rng.between(1, 16))); break;
    case 2: msg.set("rd_status", rng.bytes(rng.between(1, 16))); break;
    case 3: msg.set("rh_data", rng.bytes(2 * rng.between(1, 8))); break;
    case 4: msg.set("ri_data", rng.bytes(2 * rng.between(1, 8))); break;
    case 5:
      msg.set_uint("wc_addr_r", addr);
      msg.set_uint("wc_value_r", rng.chance(0.5) ? 0xff00 : 0x0000);
      break;
    case 6:
      msg.set_uint("wr_addr_r", addr);
      msg.set_uint("wr_value_r",
                   static_cast<std::uint16_t>(rng.below(0x10000)));
      break;
    case 15:
      msg.set_uint("wcs_addr_r", addr);
      msg.set_uint("wcs_qty_r", static_cast<std::uint16_t>(rng.between(1, 64)));
      break;
    case 16:
      msg.set_uint("wrs_addr_r", addr);
      msg.set_uint("wrs_qty_r", static_cast<std::uint16_t>(rng.between(1, 8)));
      break;
    case 0x83:
      msg.set_uint("exception_code", rng.between(1, 4));
      break;
    default: break;
  }
  return msg;
}

}  // namespace protoobf::modbus
