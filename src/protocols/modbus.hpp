// TCP-Modbus message format (paper §VII; Open Modbus/TCP specification).
//
// The evaluation's binary protocol. The specification covers the function
// codes the paper's core application generates — 1, 2, 3, 4, 5, 6, 15, 16 —
// and their responses (plus exception responses), using the graph features
// the paper highlights for Modbus: a Tabular field (write-registers), a
// Length boundary (the ADU length and byte-counted payloads) and a Counter
// boundary (register quantity).
//
// Requests and responses are separate graphs: on TCP the direction is
// carried by the connection, not by any message byte, so a single graph
// could not disambiguate e.g. a read-holding request from its response.
#pragma once

#include <string_view>

#include "core/protoobf.hpp"
#include "util/rng.hpp"

namespace protoobf::modbus {

/// ProtoSpec source for request messages (fn 1,2,3,4,5,6,15,16).
std::string_view request_spec();

/// ProtoSpec source for response messages (same set + exceptions).
std::string_view response_spec();

// --- typed builders ---------------------------------------------------------

/// Read Holding Registers request (fn 3).
Message make_read_holding(const Graph& g, std::uint16_t transaction,
                          std::uint8_t unit, std::uint16_t address,
                          std::uint16_t quantity);

/// Write Single Register request (fn 6).
Message make_write_register(const Graph& g, std::uint16_t transaction,
                            std::uint8_t unit, std::uint16_t address,
                            std::uint16_t value);

/// Write Multiple Registers request (fn 16).
Message make_write_registers(const Graph& g, std::uint16_t transaction,
                             std::uint8_t unit, std::uint16_t address,
                             std::span<const std::uint16_t> values);

/// Read Holding Registers response (fn 3).
Message make_read_holding_response(const Graph& g, std::uint16_t transaction,
                                   std::uint8_t unit,
                                   std::span<const std::uint16_t> values);

// --- random workload (the paper's experiment driver) ------------------------

/// Uniformly draws one of the eight request formats with random field
/// values, mirroring "executed to generate different messages with random
/// values" (§VII-A).
Message random_request(const Graph& g, Rng& rng);

/// Uniformly draws one of the response formats (including exceptions).
Message random_response(const Graph& g, Rng& rng);

}  // namespace protoobf::modbus
