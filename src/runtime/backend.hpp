// WireBackend: a pluggable implementation of the wire-syntax half of an
// ObfuscatedProtocol — the parts the generated native unit can take over.
//
// The split follows the transformation pipeline: a backend owns everything
// that touches wire bytes (prefix/whole-message parsing into the *raw*
// wire tree, and holder fixpoint + emission of a forward-transformed
// tree), while the host keeps the transform algebra on logical trees
// (canonicalize / forward_all before fix_emit, inverse_all / fill_consts /
// canonicalize / ast::check after parse_wire_tree). Because the host-side
// passes are shared, a backend only has to reproduce the interpreter's
// wire syntax to be byte-identical end to end.
//
// The production implementation is native::NativeProtocol (a dlopen'd
// generated unit); attach one with
// ObfuscatedProtocol::attach_wire_backend().
#pragma once

#include <cstdint>

#include "ast/pool.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace protoobf {

class WireBackend {
 public:
  virtual ~WireBackend() = default;

  /// Parses wire bytes into the raw (still forward-transformed) wire tree,
  /// exactly as the interpreter's parse_wire/parse_wire_prefix would.
  /// `prefix` tolerates trailing bytes and reports the message's wire size
  /// in `*consumed`; otherwise trailing bytes are an error. Truncated
  /// inputs fail with ErrorKind::Truncated and a need hint. The result
  /// tree draws from `nodes` when given.
  virtual Expected<InstPtr> parse_wire_tree(BytesView wire, bool prefix,
                                            std::size_t* consumed,
                                            InstPool* nodes) const = 0;

  /// Runs the derived-holder fixpoint (seeded with `msg_seed`, same
  /// per-pair stream as the interpreter's fix_holders) on an already
  /// forward-transformed wire tree and emits the final wire image into
  /// `out` (contents replaced, capacity reused).
  virtual Status fix_emit(const Inst& wire_tree, std::uint64_t msg_seed,
                          Bytes& out) const = 0;
};

}  // namespace protoobf
