#include "runtime/derive.hpp"

#include "runtime/emit.hpp"
#include "runtime/scope.hpp"
#include "transform/exec.hpp"
#include "util/rng.hpp"

namespace protoobf {

namespace {

constexpr int kMaxFixpointIterations = 16;

/// Encodes a derived scalar with the holder terminal's encoding and width
/// into `out`, reusing its capacity (these run inside per-message fixpoint
/// loops, so they must not allocate in steady state).
Status encode_holder_into(Bytes& out, const Graph& graph, NodeId holder,
                          std::uint64_t value) {
  const Node& n = graph.node(holder);
  if (n.encoding == Encoding::AsciiDec) {
    const std::size_t width =
        n.boundary == BoundaryKind::Fixed ? n.fixed_size : 0;
    ascii_dec_encode_into(out, value, width);
    if (width != 0 && out.size() != width) {
      return Unexpected("derived value " + std::to_string(value) +
                        " does not fit in ASCII field '" + n.name + "'");
    }
    return Status::success();
  }
  if (n.boundary != BoundaryKind::Fixed) {
    return Unexpected("binary holder '" + n.name + "' must be fixed-size");
  }
  if (n.fixed_size < 8 && value >= (1ull << (8 * n.fixed_size))) {
    return Unexpected("derived value " + std::to_string(value) +
                      " overflows field '" + n.name + "'");
  }
  be_encode_into(out, value, n.fixed_size);
  return Status::success();
}

/// Collects (holder, measured) pairs in parse order against `graph` into
/// `pairs` (cleared first, capacity reused across fixpoint iterations).
Status collect_pairs(const Graph& graph, Inst& root,
                     std::vector<DeriveRef>& pairs, ScopeChain* scopes) {
  pairs.clear();
  // One right-sized allocation instead of a doubling climb on the first
  // call (arena-held scratch keeps the capacity across messages).
  if (pairs.capacity() == 0) pairs.reserve(16);
  return walk_scoped(
      graph, root,
      [&](Inst& inst, ScopeChain& chain) -> Status {
        const Node& n = graph.node(inst.schema);
        if (n.boundary != BoundaryKind::Length &&
            n.boundary != BoundaryKind::Counter) {
          return Status::success();
        }
        Inst* holder = chain.lookup(n.ref);
        if (holder == nullptr) {
          return Unexpected("reference target '" + graph.node(n.ref).name +
                            "' not in scope of '" + n.name + "'");
        }
        pairs.push_back(
            {holder, &inst, n.boundary == BoundaryKind::Counter});
        return Status::success();
      },
      scopes);
}

}  // namespace

Status fill_consts(const Graph& graph, Inst& root) {
  const Node& n = graph.node(root.schema);
  if (n.has_const) {
    if (root.value.empty()) {
      root.value = n.const_value;
    } else if (root.value != n.const_value) {
      return Unexpected("constant field '" + n.name +
                        "' set to a non-constant value");
    }
  }
  if (root.present) {
    for (auto& child : root.children) {
      if (Status s = fill_consts(graph, *child); !s) return s;
    }
  }
  return Status::success();
}

Status check_presence(const Graph& graph, Inst& root, ScopeChain* scopes) {
  return walk_scoped(
      graph, root,
      [&](Inst& inst, ScopeChain& chain) -> Status {
        const Node& n = graph.node(inst.schema);
        if (n.type != NodeType::Optional ||
            n.condition.kind == Condition::Kind::Always) {
          return Status::success();
        }
        const Inst* ref = chain.lookup(n.condition.ref);
        if (ref == nullptr) {
          return Unexpected("condition target of '" + n.name +
                            "' not in scope");
        }
        const bool expected = n.condition.evaluate(ref->value);
        if (expected != inst.present) {
          return Unexpected("optional '" + n.name + "' is " +
                            (inst.present ? "present" : "absent") +
                            " but its condition evaluates to " +
                            (expected ? "true" : "false"));
        }
        return Status::success();
      },
      scopes);
}

std::vector<NodeId> canonical_holder_ids(const Graph& g1) {
  std::vector<NodeId> holders;
  for (NodeId id : g1.dfs_order()) {
    if (g1.node(id).type == NodeType::Terminal &&
        (g1.is_length_target(id) || g1.is_counter_target(id))) {
      holders.push_back(id);
    }
  }
  return holders;
}

Status canonicalize(const Graph& g1, Inst& root,
                    const std::vector<NodeId>* holder_ids,
                    ScopeChain* scopes, DeriveScratch* scratch) {
  if (Status s = fill_consts(g1, root); !s) return s;

  std::vector<NodeId> local_holders;
  if (holder_ids == nullptr) {
    local_holders = canonical_holder_ids(g1);
    holder_ids = &local_holders;
  }

  DeriveScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  Bytes& encoded = scratch->encoded;
  std::vector<Inst*>& matches = scratch->matches;
  std::vector<DeriveRef>& pairs = scratch->pairs;

  // Width-correct placeholders so intermediate measurements succeed.
  for (NodeId holder : *holder_ids) {
    if (Status s = encode_holder_into(encoded, g1, holder, 0); !s) return s;
    ast::find_all_schema(root, holder, matches);
    for (Inst* inst : matches) inst->value = encoded;
  }

  for (int iter = 0; iter < kMaxFixpointIterations; ++iter) {
    if (Status s = collect_pairs(g1, root, pairs, scopes); !s) return s;
    bool changed = false;
    for (const DeriveRef& pair : pairs) {
      std::uint64_t value = 0;
      if (pair.is_counter) {
        value = pair.measured->children.size();
      } else {
        auto size = emitted_size(g1, *pair.measured);
        if (!size) return Unexpected(size.error());
        value = *size;
      }
      if (Status s = encode_holder_into(encoded, g1, pair.holder->schema,
                                        value);
          !s) {
        return s;
      }
      if (pair.holder->value != encoded) {
        pair.holder->value = encoded;
        changed = true;
      }
    }
    if (!changed) return Status::success();
  }
  return Unexpected("derived fields did not converge (cyclic lengths?)");
}

Status fix_holders(const Graph& wire, const Journal& journal,
                   const HolderTable& table, Inst& root,
                   std::uint64_t msg_seed, InstPool* pool,
                   ScopeChain* scopes, DeriveScratch* scratch) {
  DeriveScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  Bytes& encoded = scratch->encoded;
  std::vector<DeriveRef>& pairs = scratch->pairs;
  for (int iter = 0; iter < kMaxFixpointIterations; ++iter) {
    if (Status s = collect_pairs(wire, root, pairs, scopes); !s) return s;
    bool changed = false;
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const DeriveRef& pair = pairs[k];
      std::uint64_t value = 0;
      if (pair.is_counter) {
        value = pair.measured->children.size();
      } else {
        auto size = emitted_size(wire, *pair.measured);
        if (!size) return Unexpected(size.error());
        value = *size;
      }
      const HolderInfo* info = table.find_by_top(pair.holder->schema);
      if (info == nullptr) {
        return Unexpected("no lineage for holder '" +
                          wire.node(pair.holder->schema).name + "'");
      }
      if (Status s = encode_holder_into(encoded, wire, info->origin, value);
          !s) {
        return s;
      }

      // Skip the rebuild if the holder already carries this logical value.
      auto current = invert_clone(*pair.holder, journal, pool);
      if (current && (*current)->schema == info->origin &&
          (*current)->value == encoded) {
        continue;
      }

      Rng rng(msg_seed ^ (0x9e3779b97f4a7c15ull * (k + 1)));
      auto rebuilt =
          rerun_chain(info->origin, encoded, journal, info->chain, rng, pool);
      if (!rebuilt) return Unexpected(rebuilt.error());
      *pair.holder = std::move(**rebuilt);
      changed = true;
    }
    if (!changed) return Status::success();
  }
  return Unexpected("wire holder derivation did not converge");
}

}  // namespace protoobf
