#include "runtime/derive.hpp"

#include "runtime/emit.hpp"
#include "runtime/scope.hpp"
#include "transform/exec.hpp"
#include "util/rng.hpp"

namespace protoobf {

namespace {

constexpr int kMaxFixpointIterations = 16;

/// Encodes a derived scalar with the holder terminal's encoding and width.
Expected<Bytes> encode_holder(const Graph& graph, NodeId holder,
                              std::uint64_t value) {
  const Node& n = graph.node(holder);
  if (n.encoding == Encoding::AsciiDec) {
    const std::size_t width =
        n.boundary == BoundaryKind::Fixed ? n.fixed_size : 0;
    Bytes out = ascii_dec_encode(value, width);
    if (width != 0 && out.size() != width) {
      return Unexpected("derived value " + std::to_string(value) +
                        " does not fit in ASCII field '" + n.name + "'");
    }
    return out;
  }
  if (n.boundary != BoundaryKind::Fixed) {
    return Unexpected("binary holder '" + n.name + "' must be fixed-size");
  }
  if (n.fixed_size < 8 && value >= (1ull << (8 * n.fixed_size))) {
    return Unexpected("derived value " + std::to_string(value) +
                      " overflows field '" + n.name + "'");
  }
  return be_encode(value, n.fixed_size);
}

struct RefPair {
  Inst* holder;    // instance carrying the derived value (holder subtree top)
  Inst* measured;  // instance whose size (Length) or element count (Counter)
                   // defines the value
  bool is_counter;
};

/// Collects (holder, measured) pairs in parse order against `graph`.
Expected<std::vector<RefPair>> collect_pairs(const Graph& graph, Inst& root) {
  std::vector<RefPair> pairs;
  Status walk = walk_scoped(
      graph, root, [&](Inst& inst, ScopeChain& scopes) -> Status {
        const Node& n = graph.node(inst.schema);
        if (n.boundary != BoundaryKind::Length &&
            n.boundary != BoundaryKind::Counter) {
          return Status::success();
        }
        Inst* holder = scopes.lookup(n.ref);
        if (holder == nullptr) {
          return Unexpected("reference target '" + graph.node(n.ref).name +
                            "' not in scope of '" + n.name + "'");
        }
        pairs.push_back(
            {holder, &inst, n.boundary == BoundaryKind::Counter});
        return Status::success();
      });
  if (!walk) return Unexpected(walk.error());
  return pairs;
}

/// Holds one measurement buffer for the duration of a derivation pass,
/// drawn from the session pool when one is attached so its capacity
/// survives across messages.
struct ScratchLease {
  explicit ScratchLease(BufferPool* p)
      : pool(p), buf(p != nullptr ? p->acquire() : Bytes()) {}
  ~ScratchLease() {
    if (pool != nullptr) pool->release(std::move(buf));
  }

  BufferPool* pool;
  Bytes buf;
};

}  // namespace

Status fill_consts(const Graph& graph, Inst& root) {
  const Node& n = graph.node(root.schema);
  if (n.has_const) {
    if (root.value.empty()) {
      root.value = n.const_value;
    } else if (root.value != n.const_value) {
      return Unexpected("constant field '" + n.name +
                        "' set to a non-constant value");
    }
  }
  if (root.present) {
    for (auto& child : root.children) {
      if (Status s = fill_consts(graph, *child); !s) return s;
    }
  }
  return Status::success();
}

Status check_presence(const Graph& graph, Inst& root) {
  return walk_scoped(
      graph, root, [&](Inst& inst, ScopeChain& scopes) -> Status {
        const Node& n = graph.node(inst.schema);
        if (n.type != NodeType::Optional ||
            n.condition.kind == Condition::Kind::Always) {
          return Status::success();
        }
        const Inst* ref = scopes.lookup(n.condition.ref);
        if (ref == nullptr) {
          return Unexpected("condition target of '" + n.name +
                            "' not in scope");
        }
        const bool expected = n.condition.evaluate(ref->value);
        if (expected != inst.present) {
          return Unexpected("optional '" + n.name + "' is " +
                            (inst.present ? "present" : "absent") +
                            " but its condition evaluates to " +
                            (expected ? "true" : "false"));
        }
        return Status::success();
      });
}

Status canonicalize(const Graph& g1, Inst& root, BufferPool* scratch) {
  ScratchLease lease(scratch);
  if (Status s = fill_consts(g1, root); !s) return s;

  // Width-correct placeholders so intermediate emissions succeed.
  const auto order = g1.dfs_order();
  std::vector<NodeId> holders;
  for (NodeId id : order) {
    if (g1.node(id).type == NodeType::Terminal &&
        (g1.is_length_target(id) || g1.is_counter_target(id))) {
      holders.push_back(id);
    }
  }
  for (NodeId holder : holders) {
    auto placeholder = encode_holder(g1, holder, 0);
    if (!placeholder) return Unexpected(placeholder.error());
    for (Inst* inst : ast::find_all_schema(root, holder)) {
      inst->value = *placeholder;
    }
  }

  for (int iter = 0; iter < kMaxFixpointIterations; ++iter) {
    auto pairs = collect_pairs(g1, root);
    if (!pairs) return Unexpected(pairs.error());
    bool changed = false;
    for (const RefPair& pair : *pairs) {
      std::uint64_t value = 0;
      if (pair.is_counter) {
        value = pair.measured->children.size();
      } else {
        auto size = emitted_size(g1, *pair.measured, &lease.buf);
        if (!size) return Unexpected(size.error());
        value = *size;
      }
      auto bytes = encode_holder(g1, pair.holder->schema, value);
      if (!bytes) return Unexpected(bytes.error());
      if (pair.holder->value != *bytes) {
        pair.holder->value = std::move(*bytes);
        changed = true;
      }
    }
    if (!changed) return Status::success();
  }
  return Unexpected("derived fields did not converge (cyclic lengths?)");
}

Status fix_holders(const Graph& wire, const Journal& journal,
                   const HolderTable& table, Inst& root,
                   std::uint64_t msg_seed, BufferPool* scratch) {
  ScratchLease lease(scratch);
  for (int iter = 0; iter < kMaxFixpointIterations; ++iter) {
    auto pairs = collect_pairs(wire, root);
    if (!pairs) return Unexpected(pairs.error());
    bool changed = false;
    for (std::size_t k = 0; k < pairs->size(); ++k) {
      const RefPair& pair = (*pairs)[k];
      std::uint64_t value = 0;
      if (pair.is_counter) {
        value = pair.measured->children.size();
      } else {
        auto size = emitted_size(wire, *pair.measured, &lease.buf);
        if (!size) return Unexpected(size.error());
        value = *size;
      }
      const HolderInfo* info = table.find_by_top(pair.holder->schema);
      if (info == nullptr) {
        return Unexpected("no lineage for holder '" +
                          wire.node(pair.holder->schema).name + "'");
      }
      auto bytes = encode_holder(wire, info->origin, value);
      if (!bytes) return Unexpected(bytes.error());

      // Skip the rebuild if the holder already carries this logical value.
      auto current = invert_clone(*pair.holder, journal);
      if (current && (*current)->schema == info->origin &&
          (*current)->value == *bytes) {
        continue;
      }

      Rng rng(msg_seed ^ (0x9e3779b97f4a7c15ull * (k + 1)));
      auto rebuilt =
          rerun_chain(info->origin, std::move(*bytes), journal, info->chain,
                      rng);
      if (!rebuilt) return Unexpected(rebuilt.error());
      *pair.holder = std::move(**rebuilt);
      changed = true;
    }
    if (!changed) return Status::success();
  }
  return Unexpected("wire holder derivation did not converge");
}

}  // namespace protoobf
