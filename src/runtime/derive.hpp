// Derived-field computation.
//
// The framework owns every value the application should not maintain by
// hand: constant fields, length holders and count holders. Two derivation
// modes exist:
//
//  * canonicalize() computes *logical* values against G1 — what a
//    non-obfuscated peer would put on the wire. It runs on user-built
//    messages before serialization and on parsed messages after inversion,
//    so both sides of a round trip compare equal.
//
//  * fix_holders() computes *wire* values against G(n+1) — the length a
//    parser will use to delimit a region after all transformations resized
//    it. Because value transformations may sit on top of a holder (split
//    length fields, xored counters...), the holder's subtree is rebuilt by
//    replaying its lineage chain over the fresh value (transform/lineage).
//
// Both run small fixpoint loops: an ASCII-decimal length's width depends on
// its own value, and nested holders depend on each other. Loops converge in
// one or two iterations for realistic specifications; a hard cap turns
// non-convergence (a cyclic specification) into an error.
#pragma once

#include "ast/ast.hpp"
#include "graph/graph.hpp"
#include "runtime/scope.hpp"
#include "transform/lineage.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace protoobf {

/// One (holder, measured) pair of a derive fixpoint: the instance carrying
/// a derived value and the instance whose emitted size (Length) or element
/// count (Counter) defines it.
struct DeriveRef {
  Inst* holder;
  Inst* measured;
  bool is_counter;
};

/// Reusable scratch for the derive fixpoints. These vectors used to be
/// function-local in canonicalize()/fix_holders() — the last O(1)-but-real
/// allocations on the session hot path (ROADMAP "residual per-message
/// allocations"). An arena-held bundle keeps their capacity across
/// messages, so the steady state re-derives without touching the heap.
/// Not thread-safe: one bundle per thread of control, like the arena.
struct DeriveScratch {
  std::vector<DeriveRef> pairs;  // fixpoint work list
  std::vector<Inst*> matches;    // canonicalize() placeholder targets
  Bytes encoded;                 // holder-encoding buffer
};

/// Fills empty constant fields; errors if a non-empty value contradicts the
/// specification's constant.
Status fill_consts(const Graph& graph, Inst& root);

/// Verifies every Optional's presence flag matches its condition evaluated
/// on the (logical, canonicalized) tree. `scopes`, when given, supplies a
/// reusable reference-scope table (reset first).
Status check_presence(const Graph& graph, Inst& root,
                      ScopeChain* scopes = nullptr);

/// The holder terminals (length/count targets) canonicalize seeds with
/// width-correct placeholders, in DFS order. Depends only on the graph, so
/// callers that canonicalize per message (ObfuscatedProtocol) compute it
/// once and pass it back in.
std::vector<NodeId> canonical_holder_ids(const Graph& g1);

/// Logical derivation: consts + length/count holders per G1 semantics.
/// Size measurements run through the counting emitter, so no intermediate
/// buffer is ever materialized. `holder_ids`, when given, must equal
/// canonical_holder_ids(g1) (it is recomputed when null); `scopes` is a
/// reusable scope table for the fixpoint walks and `scratch` a reusable
/// bundle for their work vectors (locals are used when null).
Status canonicalize(const Graph& g1, Inst& root,
                    const std::vector<NodeId>* holder_ids = nullptr,
                    ScopeChain* scopes = nullptr,
                    DeriveScratch* scratch = nullptr);

/// Wire derivation on the transformed tree: recomputes every holder from
/// the final wire sizes/counts and replays its transformation lineage.
/// `msg_seed` keeps the replayed randomness deterministic per message;
/// `pool`, when given, backs the rebuilt holder subtrees so steady-state
/// sessions rebuild without heap traffic, and `scopes` the fixpoint walks.
Status fix_holders(const Graph& wire, const Journal& journal,
                   const HolderTable& table, Inst& root,
                   std::uint64_t msg_seed, InstPool* pool = nullptr,
                   ScopeChain* scopes = nullptr,
                   DeriveScratch* scratch = nullptr);

}  // namespace protoobf
