#include "runtime/emit.hpp"

#include <algorithm>

namespace protoobf {

namespace {

class Emitter {
 public:
  Emitter(const Graph& graph, Bytes& out, std::vector<FieldSpan>* spans)
      : graph_(graph), out_(out), spans_(spans) {}

  Status emit_node(const Inst& inst) {
    const Node& n = graph_.node(inst.schema);
    const std::size_t start = out_.size();

    switch (n.type) {
      case NodeType::Terminal: {
        if (n.boundary == BoundaryKind::Fixed &&
            inst.value.size() != n.fixed_size) {
          return fail(inst, "value size " + std::to_string(inst.value.size()) +
                                " does not match fixed size " +
                                std::to_string(n.fixed_size));
        }
        if (spans_ != nullptr) {
          spans_->push_back({inst.schema, start, inst.value.size()});
        }
        append(out_, inst.value);
        break;
      }
      case NodeType::Sequence: {
        for (const auto& child : inst.children) {
          if (Status s = emit_node(*child); !s) return s;
        }
        break;
      }
      case NodeType::Optional: {
        if (inst.present) {
          if (inst.children.size() != 1) {
            return fail(inst, "present optional without its sub-node");
          }
          if (Status s = emit_node(*inst.children[0]); !s) return s;
        }
        break;
      }
      case NodeType::Repetition:
      case NodeType::Tabular: {
        for (const auto& element : inst.children) {
          const std::size_t element_start = out_.size();
          if (Status s = emit_node(*element); !s) return s;
          const std::size_t element_size = out_.size() - element_start;
          if (n.type == NodeType::Repetition && element_size == 0) {
            return fail(inst, "repetition element serialized empty");
          }
          if (n.type == NodeType::Repetition &&
              n.boundary == BoundaryKind::Delimited &&
              starts_with(BytesView(out_).subspan(element_start),
                          n.delimiter)) {
            return fail(inst, "repetition element starts with the stop marker");
          }
        }
        break;
      }
    }

    if (n.mirrored) {
      std::reverse(out_.begin() + static_cast<std::ptrdiff_t>(start),
                   out_.end());
      remap_mirrored_spans(start, out_.size() - start);
    }

    if (n.boundary == BoundaryKind::Delimited) {
      // For non-repetition nodes the parser scans for the first delimiter
      // occurrence; the content must therefore not contain it.
      if (n.type != NodeType::Repetition &&
          find(BytesView(out_).subspan(start), n.delimiter)) {
        return fail(inst, "content contains its own delimiter");
      }
      append(out_, n.delimiter);
    }

    if (n.boundary == BoundaryKind::Fixed && n.is_composite() &&
        out_.size() - start != n.fixed_size) {
      return fail(inst, "composite serialized to " +
                            std::to_string(out_.size() - start) +
                            " bytes, fixed size is " +
                            std::to_string(n.fixed_size));
    }
    return Status::success();
  }

 private:
  Unexpected fail(const Inst& inst, const std::string& what) const {
    return Unexpected("serialize '" + graph_.path_of(inst.schema) +
                      "': " + what);
  }

  void remap_mirrored_spans(std::size_t start, std::size_t length) {
    if (spans_ == nullptr) return;
    for (FieldSpan& span : *spans_) {
      if (span.offset >= start && span.offset + span.length <= start + length) {
        span.offset =
            start + (length - (span.offset - start) - span.length);
      }
    }
  }

  const Graph& graph_;
  Bytes& out_;
  std::vector<FieldSpan>* spans_;
};

}  // namespace

Expected<Bytes> emit(const Graph& graph, const Inst& root,
                     std::vector<FieldSpan>* spans) {
  Bytes out;
  if (Status s = emit_into(graph, root, out, spans); !s) {
    return Unexpected(s.error());
  }
  return out;
}

Status emit_into(const Graph& graph, const Inst& root, Bytes& out,
                 std::vector<FieldSpan>* spans) {
  out.clear();
  if (spans != nullptr) spans->clear();
  Emitter emitter(graph, out, spans);
  return emitter.emit_node(root);
}

Expected<std::size_t> emitted_size(const Graph& graph, const Inst& root,
                                   Bytes* scratch) {
  Bytes local;
  Bytes& out = scratch != nullptr ? *scratch : local;
  if (Status s = emit_into(graph, root, out); !s) {
    return Unexpected(s.error());
  }
  return out.size();
}

}  // namespace protoobf
