#include "runtime/emit.hpp"

#include <algorithm>
#include <array>

namespace protoobf {

namespace {

class Emitter {
 public:
  Emitter(const Graph& graph, Bytes& out, std::vector<FieldSpan>* spans)
      : graph_(graph), out_(out), spans_(spans) {}

  Status emit_node(const Inst& inst) {
    const Node& n = graph_.node(inst.schema);
    const std::size_t start = out_.size();

    switch (n.type) {
      case NodeType::Terminal: {
        if (n.boundary == BoundaryKind::Fixed &&
            inst.value.size() != n.fixed_size) {
          return fail(inst, "value size " + std::to_string(inst.value.size()) +
                                " does not match fixed size " +
                                std::to_string(n.fixed_size));
        }
        if (spans_ != nullptr) {
          spans_->push_back({inst.schema, start, inst.value.size()});
        }
        append(out_, inst.value);
        break;
      }
      case NodeType::Sequence: {
        for (const auto& child : inst.children) {
          if (Status s = emit_node(*child); !s) return s;
        }
        break;
      }
      case NodeType::Optional: {
        if (inst.present) {
          if (inst.children.size() != 1) {
            return fail(inst, "present optional without its sub-node");
          }
          if (Status s = emit_node(*inst.children[0]); !s) return s;
        }
        break;
      }
      case NodeType::Repetition:
      case NodeType::Tabular: {
        for (const auto& element : inst.children) {
          const std::size_t element_start = out_.size();
          if (Status s = emit_node(*element); !s) return s;
          const std::size_t element_size = out_.size() - element_start;
          if (n.type == NodeType::Repetition && element_size == 0) {
            return fail(inst, "repetition element serialized empty");
          }
          if (n.type == NodeType::Repetition &&
              n.boundary == BoundaryKind::Delimited &&
              starts_with(BytesView(out_).subspan(element_start),
                          n.delimiter)) {
            return fail(inst, "repetition element starts with the stop marker");
          }
        }
        break;
      }
    }

    if (n.mirrored) {
      std::reverse(out_.begin() + static_cast<std::ptrdiff_t>(start),
                   out_.end());
      remap_mirrored_spans(start, out_.size() - start);
    }

    if (n.boundary == BoundaryKind::Delimited) {
      // For non-repetition nodes the parser scans for the first delimiter
      // occurrence; the content must therefore not contain it.
      if (n.type != NodeType::Repetition &&
          find(BytesView(out_).subspan(start), n.delimiter)) {
        return fail(inst, "content contains its own delimiter");
      }
      append(out_, n.delimiter);
    }

    if (n.boundary == BoundaryKind::Fixed && n.is_composite() &&
        out_.size() - start != n.fixed_size) {
      return fail(inst, "composite serialized to " +
                            std::to_string(out_.size() - start) +
                            " bytes, fixed size is " +
                            std::to_string(n.fixed_size));
    }
    return Status::success();
  }

 private:
  Unexpected fail(const Inst& inst, const std::string& what) const {
    return Unexpected("serialize '" + graph_.path_of(inst.schema) +
                      "': " + what);
  }

  void remap_mirrored_spans(std::size_t start, std::size_t length) {
    if (spans_ == nullptr) return;
    for (FieldSpan& span : *spans_) {
      if (span.offset >= start && span.offset + span.length <= start + length) {
        span.offset =
            start + (length - (span.offset - start) - span.length);
      }
    }
  }

  const Graph& graph_;
  Bytes& out_;
  std::vector<FieldSpan>* spans_;
};

// --- counting emitter -------------------------------------------------------
//
// emitted_size() must agree with emit() bit-for-bit on both the size and
// the error behaviour, without touching a buffer. Sizes are a plain sum
// (mirroring is size-neutral), but three emit-time validations read the
// serialized bytes: delimiter containment, stop-marker prefix collisions,
// and empty repetition elements. Those are reproduced by *streaming* the
// would-be wire bytes out of the tree in emission order — reversal flags
// flip the traversal direction instead of reversing data, and the bytes
// feed an incremental matcher that holds only a delimiter-sized window.

/// Streams `v` forward or reversed. The sink returns false to stop early.
template <typename Sink>
bool stream_value(BytesView v, bool rev, Sink& sink) {
  if (!rev) {
    for (const Byte b : v) {
      if (!sink(b)) return false;
    }
  } else {
    for (auto it = v.rbegin(); it != v.rend(); ++it) {
      if (!sink(*it)) return false;
    }
  }
  return true;
}

template <typename Sink>
bool stream_node(const Graph& g, const Inst& inst, bool rev, Sink& sink);

/// Streams the node's content region C(n) — children serializations or the
/// terminal value, before this node's own delimiter — in orientation `rev`.
/// A reversed region streams its children in reverse order, each child
/// itself reversed; nested mirrors cancel naturally through the XOR in
/// stream_node.
template <typename Sink>
bool stream_content(const Graph& g, const Inst& inst, bool rev, Sink& sink) {
  const Node& n = g.node(inst.schema);
  if (n.type == NodeType::Terminal) {
    return stream_value(inst.value, rev, sink);
  }
  if (!inst.present) return true;
  if (!rev) {
    for (const auto& child : inst.children) {
      if (!stream_node(g, *child, false, sink)) return false;
    }
  } else {
    for (auto it = inst.children.rbegin(); it != inst.children.rend(); ++it) {
      if (!stream_node(g, **it, true, sink)) return false;
    }
  }
  return true;
}

/// Streams the node's full serialization S(n) = mirror(C(n)) + delimiter in
/// orientation `rev`. S reversed is reverse(delimiter) + C in the opposite
/// orientation; the node's own mirror XORs into the content orientation.
template <typename Sink>
bool stream_node(const Graph& g, const Inst& inst, bool rev, Sink& sink) {
  const Node& n = g.node(inst.schema);
  const bool content_rev = rev != n.mirrored;
  if (!rev) {
    if (!stream_content(g, inst, content_rev, sink)) return false;
    if (n.boundary == BoundaryKind::Delimited) {
      return stream_value(n.delimiter, false, sink);
    }
    return true;
  }
  if (n.boundary == BoundaryKind::Delimited) {
    if (!stream_value(n.delimiter, true, sink)) return false;
  }
  return stream_content(g, inst, content_rev, sink);
}

/// Incremental contains-check over a fed byte stream, windowed to the
/// needle's length. Small needles (every real delimiter) stay on the
/// stack; only a pathological multi-kilobyte delimiter spills to the heap.
class StreamMatcher {
 public:
  explicit StreamMatcher(BytesView needle) : needle_(needle) {
    if (needle_.size() > kInlineWindow) heap_.resize(needle_.size());
  }

  void feed(Byte b) {
    const std::size_t m = needle_.size();
    Byte* w = window();
    w[head_] = b;
    head_ = (head_ + 1) % m;
    if (filled_ < m) {
      ++filled_;
      if (filled_ < m) return;
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (w[(head_ + i) % m] != needle_[i]) return;
    }
    hit_ = true;
  }

  bool hit() const { return hit_; }

 private:
  static constexpr std::size_t kInlineWindow = 32;

  Byte* window() { return heap_.empty() ? inline_.data() : heap_.data(); }

  BytesView needle_;
  std::array<Byte, kInlineWindow> inline_{};
  Bytes heap_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  bool hit_ = false;
};

class SizeCounter {
 public:
  explicit SizeCounter(const Graph& graph) : graph_(graph) {}

  Status count_node(const Inst& inst, std::size_t& total) {
    const Node& n = graph_.node(inst.schema);
    const std::size_t start = total;

    switch (n.type) {
      case NodeType::Terminal: {
        if (n.boundary == BoundaryKind::Fixed &&
            inst.value.size() != n.fixed_size) {
          return fail(inst, "value size " + std::to_string(inst.value.size()) +
                                " does not match fixed size " +
                                std::to_string(n.fixed_size));
        }
        total += inst.value.size();
        break;
      }
      case NodeType::Sequence: {
        for (const auto& child : inst.children) {
          if (Status s = count_node(*child, total); !s) return s;
        }
        break;
      }
      case NodeType::Optional: {
        if (inst.present) {
          if (inst.children.size() != 1) {
            return fail(inst, "present optional without its sub-node");
          }
          if (Status s = count_node(*inst.children[0], total); !s) return s;
        }
        break;
      }
      case NodeType::Repetition:
      case NodeType::Tabular: {
        for (const auto& element : inst.children) {
          const std::size_t element_start = total;
          if (Status s = count_node(*element, total); !s) return s;
          if (n.type == NodeType::Repetition && total == element_start) {
            return fail(inst, "repetition element serialized empty");
          }
          if (n.type == NodeType::Repetition &&
              n.boundary == BoundaryKind::Delimited &&
              element_starts_with(*element, n.delimiter)) {
            return fail(inst, "repetition element starts with the stop marker");
          }
        }
        break;
      }
    }

    // Mirroring reverses the region in place: size-neutral.

    if (n.boundary == BoundaryKind::Delimited) {
      if (n.type != NodeType::Repetition &&
          region_contains(inst, n.mirrored, n.delimiter)) {
        return fail(inst, "content contains its own delimiter");
      }
      total += n.delimiter.size();
    }

    if (n.boundary == BoundaryKind::Fixed && n.is_composite() &&
        total - start != n.fixed_size) {
      return fail(inst, "composite serialized to " +
                            std::to_string(total - start) +
                            " bytes, fixed size is " +
                            std::to_string(n.fixed_size));
    }
    return Status::success();
  }

 private:
  Unexpected fail(const Inst& inst, const std::string& what) const {
    return Unexpected("serialize '" + graph_.path_of(inst.schema) +
                      "': " + what);
  }

  /// emit()'s find(region, delimiter) over the node's mirrored content,
  /// streamed instead of materialized.
  bool region_contains(const Inst& inst, bool mirrored, BytesView delim) {
    if (delim.empty()) return false;
    StreamMatcher matcher(delim);
    auto sink = [&](Byte b) {
      matcher.feed(b);
      return !matcher.hit();
    };
    stream_content(graph_, inst, mirrored, sink);
    return matcher.hit();
  }

  /// emit()'s starts_with(element bytes, marker): streams just the leading
  /// marker-length bytes of the element's serialization.
  bool element_starts_with(const Inst& element, BytesView marker) {
    if (marker.empty()) return false;
    std::size_t matched = 0;
    bool mismatch = false;
    auto sink = [&](Byte b) {
      if (b != marker[matched]) {
        mismatch = true;
        return false;
      }
      ++matched;
      return matched < marker.size();
    };
    stream_node(graph_, element, /*rev=*/false, sink);
    return !mismatch && matched == marker.size();
  }

  const Graph& graph_;
};

}  // namespace

Expected<Bytes> emit(const Graph& graph, const Inst& root,
                     std::vector<FieldSpan>* spans) {
  Bytes out;
  if (Status s = emit_into(graph, root, out, spans); !s) {
    return Unexpected(s.error());
  }
  return out;
}

Status emit_into(const Graph& graph, const Inst& root, Bytes& out,
                 std::vector<FieldSpan>* spans) {
  out.clear();
  if (spans != nullptr) spans->clear();
  Emitter emitter(graph, out, spans);
  return emitter.emit_node(root);
}

Expected<std::size_t> emitted_size(const Graph& graph, const Inst& root) {
  SizeCounter counter(graph);
  std::size_t total = 0;
  if (Status s = counter.count_node(root, total); !s) {
    return Unexpected(s.error());
  }
  return total;
}

}  // namespace protoobf
