// Wire emission: AST -> byte buffer.
//
// The overall message is the concatenation of the leaf values in ordered
// depth-first search (paper §V-A), with three twists:
//   * Delimited nodes append their delimiter after their content — and the
//     emitter verifies the content cannot be confused with it;
//   * stop-marker Repetitions append the marker once after all elements and
//     verify no element starts with it;
//   * mirrored nodes (ReadFromEnd) reverse their whole serialized region.
//
// The same routine serializes logical trees against G1 (the non-obfuscated
// baseline and the size oracle for derived fields) and wire trees against
// G(n+1).
#pragma once

#include <vector>

#include "ast/ast.hpp"
#include "graph/graph.hpp"
#include "util/result.hpp"

namespace protoobf {

/// Ground-truth location of a terminal on the wire (consumed by the PRE
/// resilience experiments to score field-inference quality).
struct FieldSpan {
  NodeId schema = kNoNode;
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Serializes `root` against `graph`. On request, records where each
/// terminal landed (mirror-adjusted).
Expected<Bytes> emit(const Graph& graph, const Inst& root,
                     std::vector<FieldSpan>* spans = nullptr);

/// Serializes into `out`, replacing its contents but reusing its capacity —
/// the zero-allocation path for sessions that serialize many messages
/// through one buffer. `spans`, when given, is likewise overwritten.
Status emit_into(const Graph& graph, const Inst& root, Bytes& out,
                 std::vector<FieldSpan>* spans = nullptr);

/// Size of the serialization without materializing any bytes: a counting
/// walk over the tree that performs every validation a real emission would
/// (fixed-size mismatches, delimiter containment, stop-marker collisions,
/// empty repetition elements) by streaming values through incremental
/// matchers instead of writing a buffer. Returns exactly the size (and
/// exactly the errors, in the same order) that emit() would produce —
/// derive's fixpoint loops call this many times per message, so it must
/// neither write nor allocate per byte.
Expected<std::size_t> emitted_size(const Graph& graph, const Inst& root);

}  // namespace protoobf
