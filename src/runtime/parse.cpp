#include "runtime/parse.hpp"

#include <algorithm>
#include <optional>

#include "runtime/scope.hpp"
#include "transform/exec.hpp"

namespace protoobf {

namespace {

struct Reader {
  BytesView data;
  std::size_t pos = 0;
  std::size_t end = 0;
  // A soft end is the end of the *input*, not of an enclosed region: more
  // bytes appended to the stream would extend it. Running short against a
  // soft end is a truncation; against a hard region it is a malformation.
  bool soft = false;

  std::size_t remaining() const { return end - pos; }
  BytesView window() const { return data.subspan(pos, end - pos); }
};

class WireParser {
 public:
  WireParser(const Graph& wire, const Journal& journal,
             const HolderTable& table, BufferPool* scratch,
             ScopeChain* scopes, InstPool* nodes, bool prefix = false,
             ParseResume* resume = nullptr)
      : wire_(wire),
        journal_(journal),
        table_(table),
        scratch_(scratch),
        nodes_(nodes),
        prefix_(prefix),
        resume_(resume),
        counting_(resume != nullptr),
        checkpointing_(resume != nullptr && resume->enabled() && prefix),
        scopes_(resume != nullptr && resume->enabled() && prefix
                    ? resume->scope_chain()
                    : (scopes != nullptr ? *scopes : local_scopes_)) {}

  Expected<InstPtr> parse(BytesView data, std::size_t* consumed = nullptr) {
    resuming_ = false;
    depth_ = 0;
    if (counting_) ++resume_->mutable_stats().attempts;
    if (checkpointing_) {
      if (resume_->active() && data.size() < resume_->suspended_size()) {
        // The buffer front shrank below the suspended attempt's window:
        // the checkpoint describes bytes that no longer exist. Start over.
        resume_->invalidate();
      }
      if (resume_->active()) {
        resuming_ = true;
        ++resume_->mutable_stats().resumed;
      } else {
        resume_->discard();
        scopes_.reset();
      }
    } else {
      scopes_.reset();
    }
    Reader reader{data, 0, data.size(), /*soft=*/true};
    auto root = parse_node(wire_.root(), reader);
    if (checkpointing_) {
      if (root.ok()) {
        resume_->discard();  // checkpoint consumed by the completed parse
      } else if (root.error().truncated()) {
        resume_->suspend(data.size());
      } else {
        resume_->invalidate();  // a malformed front can never continue
      }
    }
    if (!root) return root;
    if (prefix_) {
      if (consumed != nullptr) *consumed = reader.pos;
    } else if (reader.pos != reader.end) {
      return fail(reader, "trailing bytes after message");
    }
    return root;
  }

 private:
  Unexpected fail(const Reader& r, const std::string& what) const {
    return Unexpected(what, r.pos);
  }

  /// Ran out of bytes: a truncation when the shortage is against the end of
  /// the input itself, a malformation when against an enclosing region.
  Unexpected fail_short(const Reader& r, const std::string& what,
                        std::size_t need) const {
    if (r.soft) return Unexpected::truncated(what, r.pos, need);
    return Unexpected(what, r.pos);
  }

  /// Logical value of an already-parsed reference target: pool-copy the
  /// holder subtree and invert every transformation inside it. The caller
  /// reads the value out of the returned (single-terminal) tree, so no
  /// extra byte copy is made.
  Expected<InstPtr> logical_tree(const Inst& holder, const Reader& r) const {
    auto logical = invert_clone(holder, journal_, nodes_);
    if (!logical) return Unexpected(logical.error());
    if (!(*logical)->children.empty()) {
      return fail(r, "reference target does not invert to a terminal");
    }
    return logical;
  }

  /// Logical scalar of a holder (length or count), decoded with the origin
  /// terminal's encoding.
  Expected<std::uint64_t> scalar(NodeId ref, const Inst& holder,
                                 const Reader& r) const {
    auto logical = logical_tree(holder, r);
    if (!logical) return Unexpected(logical.error());
    const Bytes& bytes = (*logical)->value;
    const HolderInfo* info = table_.find_by_top(ref);
    const NodeId origin = info != nullptr ? info->origin : ref;
    const Node& n = wire_.node(origin);
    if (n.encoding == Encoding::AsciiDec) {
      auto value = ascii_dec_decode(bytes);
      if (!value) return fail(r, "holder is not a decimal number");
      return *value;
    }
    if (bytes.size() > 8) return fail(r, "holder wider than 8 bytes");
    return be_decode(bytes);
  }

  Expected<Inst*> lookup(NodeId ref, const Reader& r) {
    Inst* found = scopes_.lookup(ref);
    if (found == nullptr) {
      return fail(r, "reference target '" + wire_.node(ref).name +
                         "' not yet parsed");
    }
    return found;
  }

  /// Truncated unwind through a checkpointed node: park the partially
  /// built instance in its frame (committed children included) so the
  /// retry continues from it. Other errors pass through untouched — a
  /// malformed parse drops the whole checkpoint at the top level.
  Expected<InstPtr> stash(InstPtr inst, ResumeFrame* frame,
                          Expected<InstPtr>& err) {
    if (frame != nullptr && err.error().truncated()) {
      frame->partial = std::move(inst);
    }
    return std::move(err);
  }

  Unexpected stash_short(InstPtr inst, ResumeFrame* frame, Unexpected err) {
    if (frame != nullptr && err.error.truncated()) {
      frame->partial = std::move(inst);
    }
    return err;
  }

  Expected<InstPtr> parse_node(NodeId id, Reader& r) {
    if (!checkpointing_ || !r.soft) {
      // Hard regions are carved out of bytes already in the buffer, so
      // they complete or fail for good within one attempt — only the
      // stream-open (soft) spine ever needs a checkpoint.
      return parse_node_impl(id, r, /*ignore_mirror=*/false, nullptr);
    }
    auto& spine = resume_->spine();
    const std::size_t slot = depth_;
    ++depth_;
    if (resuming_ && slot < spine.size()) {
      // Resume descent: this call must re-enter the very node the
      // checkpoint recorded at this depth — the walk is deterministic
      // over the committed bytes, so a mismatch means the resume contract
      // was broken. Fail hard; the top level drops the checkpoint.
      ResumeFrame& frame = spine[slot];
      if (frame.node != id) {
        --depth_;
        return fail(r, "resume checkpoint does not match the parse path");
      }
      if (slot + 1 == spine.size()) resuming_ = false;  // leaf: go live here
      r.pos = frame.partial != nullptr ? frame.pos : frame.start;
      auto result = parse_node_impl(id, r, /*ignore_mirror=*/false, &frame);
      --depth_;
      if (result.ok()) spine.pop_back();  // children of a completed node
                                          // already popped theirs
      return result;
    }
    // A node freshly entering the open spine. The deque keeps frame
    // references stable while deeper calls push their own.
    spine.emplace_back();
    ResumeFrame& frame = spine.back();
    frame.node = id;
    frame.start = r.pos;
    frame.pos = r.pos;
    auto result = parse_node_impl(id, r, /*ignore_mirror=*/false, &frame);
    --depth_;
    if (result.ok()) spine.pop_back();
    return result;
  }

  Expected<InstPtr> parse_node_impl(NodeId id, Reader& r, bool ignore_mirror,
                                    ResumeFrame* frame) {
    const Node& n = wire_.node(id);

    // Region determination ---------------------------------------------------
    std::optional<std::size_t> region_end;
    const bool stop_marker_rep = n.type == NodeType::Repetition &&
                                 n.boundary == BoundaryKind::Delimited;
    if (ignore_mirror) {
      // Re-entry on the reversed copy of a mirrored region: the buffer *is*
      // the region, whatever the declared boundary says.
      region_end = r.end;
      return parse_with_region(n, id, r, region_end, stop_marker_rep,
                               nullptr);
    }
    if (frame != nullptr && frame->partial != nullptr) {
      // Restored mid-children composite. Only region-less nodes (open-End
      // sequences, Delegated/Counter composites, stop-marker repetitions)
      // can suspend with a partial — everything with an intrinsic region
      // completes or fails hard once the region is carved — so re-entry
      // skips region determination and rejoins the child walk.
      return parse_with_region(n, id, r, std::nullopt, stop_marker_rep,
                               frame);
    }
    switch (n.boundary) {
      case BoundaryKind::Fixed:
        if (r.remaining() < n.fixed_size) {
          return fail_short(r, "truncated input in '" + n.name + "'",
                            n.fixed_size - r.remaining());
        }
        region_end = r.pos + n.fixed_size;
        break;
      case BoundaryKind::Half: {
        if (prefix_ && r.soft) {
          return fail(r, "split half '" + n.name +
                             "' is not self-delimiting in a stream");
        }
        if (r.remaining() % 2 != 0) {
          return fail(r, "odd region for split halves in '" + n.name + "'");
        }
        region_end = r.pos + r.remaining() / 2;
        break;
      }
      case BoundaryKind::Length: {
        auto holder = lookup(n.ref, r);
        if (!holder) return Unexpected(holder.error());
        auto length = scalar(n.ref, **holder, r);
        if (!length) return Unexpected(length.error());
        if (*length > r.remaining()) {
          return fail_short(r, "length of '" + n.name + "' exceeds region",
                            *length - r.remaining());
        }
        region_end = r.pos + *length;
        break;
      }
      case BoundaryKind::End:
        // In prefix mode a region that runs "to the end of the input" is
        // meaningless — the input end is wherever the stream happens to
        // pause. A sequence copes (its children delimit themselves, so the
        // region stays undetermined); anything else is not self-delimiting.
        if (prefix_ && r.soft) {
          if (n.type != NodeType::Sequence || n.mirrored) {
            return fail(r, "'" + n.name +
                               "' extends to the end of the input and is "
                               "not self-delimiting in a stream");
          }
          break;
        }
        region_end = r.end;
        break;
      case BoundaryKind::Delimited: {
        if (!stop_marker_rep) {
          // Resume mid-scan: bytes a previous attempt already rejected are
          // never re-read — the degenerate O(frame²) delimiter search under
          // trickled delivery becomes O(frame) total.
          std::size_t from = r.pos;
          if (frame != nullptr && frame->scanning) {
            from = std::max(from, frame->scan_from);
          }
          const auto found = find(r.data.first(r.end), n.delimiter, from);
          if (counting_) {
            const std::size_t upto =
                found ? *found + n.delimiter.size() : r.end;
            resume_->mutable_stats().scanned_bytes +=
                upto > from ? upto - from : 0;
          }
          if (!found) {
            if (frame != nullptr) {
              // Starts up to end-delim are ruled out for good; a later
              // occurrence can only begin inside the last delim-1 bytes
              // (a partial match may straddle the append point).
              const std::size_t delim = n.delimiter.size();
              frame->scanning = true;
              frame->scan_from = std::max(
                  r.pos, r.end >= delim - 1 ? r.end - (delim - 1) : r.pos);
            }
            return fail_short(r, "delimiter of '" + n.name + "' not found",
                              1);
          }
          region_end = *found;
        }
        break;
      }
      case BoundaryKind::Delegated:
      case BoundaryKind::Counter:
        break;
    }

    // Mirrored subtree: reverse the region, parse it as a fresh buffer. The
    // reversed copy comes from the scratch pool when one is attached, so
    // steady-state sessions reuse its capacity instead of reallocating.
    if (n.mirrored && !ignore_mirror) {
      if (!region_end) {
        return fail(r, "mirrored node '" + n.name + "' without a region");
      }
      Bytes temp = scratch_ != nullptr ? scratch_->acquire() : Bytes();
      assign_reversed(temp, r.data.subspan(r.pos, *region_end - r.pos));
      // The reversed copy is a complete region: its end is hard.
      Reader mirror_reader{temp, 0, temp.size(), /*soft=*/false};
      auto inst = parse_node_impl(id, mirror_reader, /*ignore_mirror=*/true,
                                  nullptr);
      const bool consumed = mirror_reader.pos == mirror_reader.end;
      if (scratch_ != nullptr) scratch_->release(std::move(temp));
      if (!inst) return inst;
      if (!consumed) {
        return fail(r, "mirrored region of '" + n.name +
                           "' not fully consumed");
      }
      r.pos = *region_end;
      scopes_.add(inst->get());
      return inst;
    }

    return parse_with_region(n, id, r, region_end, stop_marker_rep, frame);
  }

  Expected<InstPtr> parse_with_region(const Node& n, NodeId id, Reader& r,
                                      std::optional<std::size_t> region_end,
                                      bool stop_marker_rep,
                                      ResumeFrame* frame) {
    // Regions carved out of the input by an intrinsic boundary (fixed size,
    // length holder, delimiter scan) are hard: running short inside them is
    // a malformation. Only an `end` region inherits the reader's softness —
    // it reaches to wherever the input currently stops.
    const bool sub_soft = r.soft && n.boundary == BoundaryKind::End;
    // A restored composite rejoins its own child walk: the committed
    // children stay parsed, the loop continues at the saved cursor.
    const bool restored = frame != nullptr && frame->partial != nullptr;
    InstPtr inst;
    if (restored) inst = std::move(frame->partial);
    switch (n.type) {
      case NodeType::Terminal: {
        inst = ast::terminal(nodes_, id,
                             r.data.subspan(r.pos, *region_end - r.pos));
        r.pos = *region_end;
        break;
      }
      case NodeType::Sequence: {
        if (!restored) inst = ast::make(nodes_, id);
        if (region_end) {
          Reader sub{r.data, r.pos, *region_end, sub_soft};
          for (NodeId child : n.children) {
            auto parsed = parse_node(child, sub);
            if (!parsed) return parsed;
            inst->children.push_back(std::move(*parsed));
          }
          if (sub.pos != sub.end) {
            return fail(sub, "trailing bytes in region of '" + n.name + "'");
          }
          r.pos = *region_end;
        } else {
          for (std::size_t ci = restored ? frame->next_child : 0;
               ci < n.children.size(); ++ci) {
            if (frame != nullptr) {
              frame->next_child = ci;
              frame->pos = r.pos;
            }
            auto parsed = parse_node(n.children[ci], r);
            if (!parsed) return stash(std::move(inst), frame, parsed);
            inst->children.push_back(std::move(*parsed));
          }
        }
        break;
      }
      case NodeType::Optional: {
        // A restored frame implies the condition already evaluated true and
        // the child was in flight; absent optionals complete in one attempt.
        bool present = true;
        if (!restored && n.condition.kind != Condition::Kind::Always) {
          auto ref = lookup(n.condition.ref, r);
          if (!ref) return Unexpected(ref.error());
          auto logical = logical_tree(**ref, r);
          if (!logical) return Unexpected(logical.error());
          present = n.condition.evaluate((*logical)->value);
        }
        if (present) {
          if (!restored) inst = ast::make(nodes_, id);
          if (frame != nullptr) frame->pos = r.pos;
          auto child = parse_node(n.children[0], r);
          if (!child) return stash(std::move(inst), frame, child);
          inst->children.push_back(std::move(*child));
        } else {
          inst = ast::absent(nodes_, id);
        }
        break;
      }
      case NodeType::Repetition: {
        if (!restored) inst = ast::make(nodes_, id);
        if (stop_marker_rep) {
          while (true) {
            if (frame != nullptr) {
              frame->next_child = inst->children.size();
              frame->pos = r.pos;
            }
            const BytesView w = r.window();
            if (counting_) {
              resume_->mutable_stats().scanned_bytes +=
                  std::min(w.size(), n.delimiter.size());
            }
            if (starts_with(w, n.delimiter)) {
              r.pos += n.delimiter.size();
              break;
            }
            if (r.soft && w.size() < n.delimiter.size() &&
                std::equal(w.begin(), w.end(), n.delimiter.begin())) {
              // Undecided against the stream end: the input stops inside
              // what may be the stop marker. Parsing an element here could
              // commit bytes a completed marker would claim, so wait for
              // the decision — the need hint is exact. (Against a hard
              // region end the marker can never complete, so the element
              // parse proceeds as before.)
              return stash_short(
                  std::move(inst), frame,
                  fail_short(r, "unterminated repetition '" + n.name + "'",
                             n.delimiter.size() - w.size()));
            }
            if (r.pos >= r.end) {
              return stash_short(
                  std::move(inst), frame,
                  fail_short(r, "unterminated repetition '" + n.name + "'",
                             n.delimiter.size()));
            }
            auto element = parse_element(n.children[0], r, true);
            if (!element) return stash(std::move(inst), frame, element);
            inst->children.push_back(std::move(*element));
          }
        } else {
          Reader sub{r.data, r.pos, *region_end, sub_soft};
          while (sub.pos < sub.end) {
            auto element = parse_element(n.children[0], sub, true);
            if (!element) return element;
            inst->children.push_back(std::move(*element));
          }
          r.pos = *region_end;
        }
        break;
      }
      case NodeType::Tabular: {
        std::uint64_t count = 0;
        if (frame != nullptr && frame->counted) {
          count = frame->total;
        } else {
          auto holder = lookup(n.ref, r);
          if (!holder) return Unexpected(holder.error());
          auto scalar_count = scalar(n.ref, **holder, r);
          if (!scalar_count) return Unexpected(scalar_count.error());
          count = *scalar_count;
          if (frame != nullptr) {
            frame->total = count;
            frame->counted = true;
          }
        }
        if (!restored) inst = ast::make(nodes_, id);
        for (std::uint64_t k = restored ? inst->children.size() : 0;
             k < count; ++k) {
          if (frame != nullptr) {
            frame->next_child = static_cast<std::size_t>(k);
            frame->pos = r.pos;
          }
          // Tabular elements may be legitimately empty: the count, not
          // progress, terminates the loop.
          auto element = parse_element(n.children[0], r, false);
          if (!element) return stash(std::move(inst), frame, element);
          inst->children.push_back(std::move(*element));
        }
        break;
      }
    }

    // Consume the delimiter of scanned (non-repetition) nodes.
    if (n.boundary == BoundaryKind::Delimited && !stop_marker_rep) {
      if (r.pos != *region_end) {
        return fail(r, "region of '" + n.name + "' not fully consumed");
      }
      r.pos = *region_end + n.delimiter.size();
    }

    scopes_.add(inst.get());
    return inst;
  }

  Expected<InstPtr> parse_element(NodeId element, Reader& r,
                                  bool require_progress) {
    const std::size_t before = r.pos;
    // Rejoining an element left in flight by a suspension: its scope frame
    // (with every committed sub-instance) survived the unwind, so only a
    // genuinely fresh element opens a new one.
    const bool rejoin = resuming_;
    if (!rejoin) scopes_.push();
    auto parsed = parse_node(element, r);
    if (!parsed) {
      // A suspension keeps the element scope alive for the retry; any
      // other failure unwinds it as before (a malformed parse resets the
      // whole chain with the checkpoint at the top level anyway).
      if (!(checkpointing_ && parsed.error().truncated())) scopes_.pop();
      return parsed;
    }
    scopes_.pop();
    if (require_progress && r.pos == before) {
      return fail(r, "repetition element consumed no input");
    }
    return parsed;
  }

  const Graph& wire_;
  const Journal& journal_;
  const HolderTable& table_;
  BufferPool* scratch_;
  InstPool* nodes_;
  bool prefix_ = false;
  ParseResume* resume_ = nullptr;
  bool counting_ = false;       // stats accounting requested
  bool checkpointing_ = false;  // suspend/resume live for this parse
  bool resuming_ = false;       // descending into a saved spine
  std::size_t depth_ = 0;       // current open-spine depth
  ScopeChain local_scopes_;
  ScopeChain& scopes_;
};

}  // namespace

Expected<InstPtr> parse_wire(const Graph& wire, const Journal& journal,
                             const HolderTable& table, BytesView data,
                             BufferPool* scratch, ScopeChain* scopes,
                             InstPool* nodes) {
  return WireParser(wire, journal, table, scratch, scopes, nodes).parse(data);
}

Expected<InstPtr> parse_wire_prefix(const Graph& wire, const Journal& journal,
                                    const HolderTable& table, BytesView data,
                                    std::size_t* consumed, BufferPool* scratch,
                                    ScopeChain* scopes, InstPool* nodes,
                                    ParseResume* resume) {
  return WireParser(wire, journal, table, scratch, scopes, nodes,
                    /*prefix=*/true, resume)
      .parse(data, consumed);
}

namespace {

/// `open` mirrors the parser's soft flag: true while the node's region
/// would reach to wherever the stream happens to pause.
Status check_stream_safe(const Graph& g, NodeId id, bool open) {
  const Node& n = g.node(id);
  bool child_open = false;
  if (open) {
    switch (n.boundary) {
      case BoundaryKind::End:
        if (n.type != NodeType::Sequence || n.mirrored) {
          return Unexpected("node '" + n.name +
                            "' extends to the end of the input and cannot "
                            "delimit itself in a stream");
        }
        child_open = true;
        break;
      case BoundaryKind::Half:
        return Unexpected("split half '" + n.name +
                          "' cannot delimit itself in a stream");
      case BoundaryKind::Fixed:
      case BoundaryKind::Length:
        child_open = false;
        break;
      case BoundaryKind::Delimited:
        // The scanned region is hard; a stop-marker repetition's elements
        // parse in the open reader until the marker shows up.
        child_open = n.type == NodeType::Repetition;
        break;
      case BoundaryKind::Delegated:
      case BoundaryKind::Counter:
        child_open = true;
        break;
    }
    if (n.mirrored && n.boundary != BoundaryKind::Fixed &&
        n.boundary != BoundaryKind::Length &&
        n.boundary != BoundaryKind::Delimited) {
      return Unexpected("mirrored node '" + n.name +
                        "' has no intrinsic region in a stream");
    }
  }
  for (const NodeId child : n.children) {
    if (Status s = check_stream_safe(g, child, child_open); !s) return s;
  }
  return Status::success();
}

}  // namespace

Status stream_safe(const Graph& wire) {
  return check_stream_safe(wire, wire.root(), /*open=*/true);
}

namespace {

std::size_t min_node_size(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  // Mandatory content: optionals may be absent, repetitions/tabulars may be
  // empty, so only Sequence children (and a Terminal's own region) count.
  std::size_t content = 0;
  switch (n.type) {
    case NodeType::Terminal:
      if (n.has_const) content = n.const_value.size();
      else if (n.boundary == BoundaryKind::Fixed) content = n.fixed_size;
      break;
    case NodeType::Sequence:
      for (const NodeId child : n.children) {
        content += min_node_size(g, child);
      }
      break;
    case NodeType::Optional:
    case NodeType::Repetition:
    case NodeType::Tabular:
      break;
  }
  // The region itself may add bytes beyond the content: a fixed region is
  // its declared size no matter how little sits inside, a scanned region
  // ends with its delimiter, a stop-marker repetition with its marker.
  if (n.boundary == BoundaryKind::Fixed && n.fixed_size > content) {
    content = n.fixed_size;
  }
  if (n.boundary == BoundaryKind::Delimited) {
    content += n.delimiter.size();
  }
  return content;  // mirroring permutes the region; it never resizes it
}

}  // namespace

std::size_t min_wire_size(const Graph& wire) {
  return min_node_size(wire, wire.root());
}

}  // namespace protoobf
