// Wire parser: byte buffer -> wire AST (instances of G(n+1)).
//
// A recursive-descent parser driven by the final message format graph. The
// interesting part is reference resolution (paper §V-C: "to rebuild a
// sub-node of AST from the message, it must first delimit the corresponding
// sub-part"): a Length/Counter/Condition target may itself have been
// transformed — split in two, xored, wrapped — so the parser recovers its
// *logical* value by inverting the journal over the already-parsed holder
// subtree before using it to delimit what follows.
#pragma once

#include "ast/ast.hpp"
#include "ast/pool.hpp"
#include "graph/graph.hpp"
#include "runtime/resume.hpp"
#include "runtime/scope.hpp"
#include "transform/lineage.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace protoobf {

/// Parses a complete wire message. Errors carry the wire offset where the
/// failure was detected. The returned tree instantiates the *final* graph;
/// run transform/exec.hpp's inverse_all to recover the G1 tree.
///
/// `scratch`, when given, supplies reusable buffers for the reversed copies
/// of mirrored regions so steady-state parsing stops allocating them, and
/// `scopes` a reusable scope table (it is reset before use, so stale
/// entries from a previous message never leak in). `nodes`, when given,
/// backs every tree node — and every terminal payload, via recycled Bytes
/// capacity — so a session parses with no heap allocation in steady state;
/// it must then outlive the returned tree. All must outlive the call and
/// may be reused across messages.
Expected<InstPtr> parse_wire(const Graph& wire, const Journal& journal,
                             const HolderTable& table, BytesView data,
                             BufferPool* scratch = nullptr,
                             ScopeChain* scopes = nullptr,
                             InstPool* nodes = nullptr);

/// Streaming variant: parses exactly one message from the *front* of
/// `data`, tolerating trailing bytes (the next message's prefix in a byte
/// stream). On success `*consumed` receives the message's wire size. When
/// the buffer ends before the message does, the error carries
/// ErrorKind::Truncated plus a minimum-additional-bytes hint instead of a
/// plain failure — the signal framers turn into "need more bytes".
///
/// `resume`, when given, makes truncation retries incremental: a Truncated
/// outcome suspends the partial parse (pooled partial tree, child cursors,
/// delimiter-scan progress, reference scopes) into `resume`, and the next
/// call with the same buffer front — same bytes, possibly more appended —
/// continues from the truncation point instead of byte 0. This is what
/// keeps delimiter-bounded wire formats at amortized O(1) parse work per
/// delivered byte under trickled delivery. The caller owns invalidation:
/// see ParseResume's header for the validity contract. `resume` also
/// implies `nodes`-style lifetime coupling: suspended partial trees draw
/// from `nodes`, so the pool must outlive the resume state.
///
/// Requires a stream-safe wire graph (see stream_safe()): a boundary that
/// extends "to the end of the input" cannot delimit itself in a stream, and
/// is reported as malformed here.
Expected<InstPtr> parse_wire_prefix(const Graph& wire, const Journal& journal,
                                    const HolderTable& table, BytesView data,
                                    std::size_t* consumed,
                                    BufferPool* scratch = nullptr,
                                    ScopeChain* scopes = nullptr,
                                    InstPool* nodes = nullptr,
                                    ParseResume* resume = nullptr);

/// Checks that the wire graph delimits its own messages, i.e. that no node
/// parsed in a stream-open position depends on where the input ends: a
/// Terminal/Repetition (or mirrored subtree) bounded by `end`, or a split
/// `half`, consumes "whatever is left" and therefore cannot be framed by
/// content alone. Root sequences bounded by `end` are fine — their children
/// delimit themselves. Framers check this once at construction instead of
/// failing on the first decode.
Status stream_safe(const Graph& wire);

/// Static lower bound on the wire size of any message of `wire`: fixed
/// regions and delimiters/stop markers count in full, optionals and
/// repetitions count as absent/empty, length/count-bounded regions as zero.
/// Stream framers use it as the minimum-bytes floor before the first decode
/// attempt — for a length-driven frame format this makes the initial
/// need-more hint exact (the header size) instead of the 1-byte floor.
std::size_t min_wire_size(const Graph& wire);

}  // namespace protoobf
