#include "runtime/persist.hpp"

#include <sstream>
#include <vector>

#include "graph/validate.hpp"

namespace protoobf {

namespace {

constexpr std::string_view kMagic = "protoobf-artifact v1";

std::string hex_or_dash(BytesView data) {
  return data.empty() ? "-" : to_hex(data);
}

std::string id_or_dash(NodeId id) {
  return id == kNoNode ? "-" : std::to_string(id);
}

void save_graph(std::ostringstream& out, const char* label, const Graph& g) {
  out << "graph " << label << " " << g.arena_size() << " " << g.root()
      << "\n";
  for (NodeId id = 0; id < g.arena_size(); ++id) {
    const Node& n = g.node(id);
    out << "node " << id << " " << n.name << " "
        << static_cast<int>(n.type) << " " << static_cast<int>(n.boundary)
        << " " << n.fixed_size << " " << hex_or_dash(n.delimiter) << " "
        << id_or_dash(n.ref) << " " << static_cast<int>(n.encoding) << " "
        << (n.has_const ? 1 : 0) << " " << hex_or_dash(n.const_value) << " "
        << (n.mirrored ? 1 : 0) << " " << id_or_dash(n.parent) << " "
        << static_cast<int>(n.condition.kind) << " "
        << id_or_dash(n.condition.ref) << " ";
    if (n.condition.values.empty()) {
      out << "-";
    } else {
      for (std::size_t i = 0; i < n.condition.values.size(); ++i) {
        if (i != 0) out << ",";
        out << to_hex(n.condition.values[i]);
      }
    }
    out << " ";
    if (n.children.empty()) {
      out << "-";
    } else {
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (i != 0) out << ",";
        out << n.children[i];
      }
    }
    out << "\n";
  }
}

class Loader {
 public:
  explicit Loader(std::string_view text) : in_(std::string(text)) {}

  Expected<ObfuscatedProtocol> run() {
    std::string line;
    if (!next(line) || line != kMagic) {
      return Unexpected("not a protoobf artifact");
    }
    if (!next(line) || line.rfind("protocol ", 0) != 0) {
      return Unexpected("missing protocol line");
    }
    const std::string name = line.substr(9);

    auto original = load_graph(name);
    if (!original.ok()) return Unexpected(original.error());
    auto wire = load_graph(name);
    if (!wire.ok()) return Unexpected(wire.error());

    if (!next(line) || line.rfind("journal ", 0) != 0) {
      return Unexpected("missing journal line");
    }
    const std::size_t count = std::stoul(line.substr(8));
    Journal journal;
    journal.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!next(line)) return Unexpected("truncated journal");
      auto entry = parse_entry(line);
      if (!entry.ok()) return Unexpected(entry.error());
      journal.push_back(std::move(entry.value()));
    }
    return ObfuscatedProtocol::from_parts(std::move(original.value()),
                                          std::move(wire.value()),
                                          std::move(journal));
  }

 private:
  bool next(std::string& line) {
    while (std::getline(in_, line)) {
      if (!line.empty()) return true;
    }
    return false;
  }

  static std::vector<std::string> split(const std::string& line) {
    std::vector<std::string> fields;
    std::istringstream ss(line);
    std::string field;
    while (ss >> field) fields.push_back(field);
    return fields;
  }

  static NodeId parse_id(const std::string& field) {
    return field == "-" ? kNoNode
                        : static_cast<NodeId>(std::stoul(field));
  }

  static Expected<Bytes> parse_hex(const std::string& field) {
    if (field == "-") return Bytes{};
    auto bytes = from_hex(field);
    if (!bytes) return Unexpected("bad hex field '" + field + "'");
    return *bytes;
  }

  Expected<Graph> load_graph(const std::string& name) {
    std::string line;
    if (!next(line) || line.rfind("graph ", 0) != 0) {
      return Unexpected("missing graph header");
    }
    const auto header = split(line);
    if (header.size() != 4) return Unexpected("malformed graph header");
    const std::size_t arena = std::stoul(header[2]);
    const NodeId root = parse_id(header[3]);

    Graph g(name);
    for (std::size_t k = 0; k < arena; ++k) {
      if (!next(line)) return Unexpected("truncated graph");
      const auto f = split(line);
      if (f.size() != 17 || f[0] != "node") {
        return Unexpected("malformed node line: " + line);
      }
      Node n;
      n.name = f[2];
      n.type = static_cast<NodeType>(std::stoi(f[3]));
      n.boundary = static_cast<BoundaryKind>(std::stoi(f[4]));
      n.fixed_size = std::stoul(f[5]);
      auto delim = parse_hex(f[6]);
      if (!delim.ok()) return Unexpected(delim.error());
      n.delimiter = std::move(delim.value());
      n.ref = parse_id(f[7]);
      n.encoding = static_cast<Encoding>(std::stoi(f[8]));
      n.has_const = f[9] == "1";
      auto cv = parse_hex(f[10]);
      if (!cv.ok()) return Unexpected(cv.error());
      n.const_value = std::move(cv.value());
      n.mirrored = f[11] == "1";
      n.parent = parse_id(f[12]);
      n.condition.kind = static_cast<Condition::Kind>(std::stoi(f[13]));
      n.condition.ref = parse_id(f[14]);
      if (f[15] != "-") {
        std::istringstream values(f[15]);
        std::string piece;
        while (std::getline(values, piece, ',')) {
          auto v = from_hex(piece);
          if (!v) return Unexpected("bad condition value");
          n.condition.values.push_back(std::move(*v));
        }
      }
      if (f[16] != "-") {
        std::istringstream children(f[16]);
        std::string piece;
        while (std::getline(children, piece, ',')) {
          n.children.push_back(static_cast<NodeId>(std::stoul(piece)));
        }
      }
      const NodeId assigned = g.add_node(std::move(n));
      if (assigned != static_cast<NodeId>(std::stoul(f[1]))) {
        return Unexpected("node ids out of order in artifact");
      }
    }
    g.set_root(root);
    return g;
  }

  Expected<AppliedTransform> parse_entry(const std::string& line) {
    const auto f = split(line);
    if (f.size() != 18 || f[0] != "entry") {
      return Unexpected("malformed journal entry: " + line);
    }
    AppliedTransform e;
    e.kind = static_cast<TransformKind>(std::stoi(f[1]));
    e.target = parse_id(f[2]);
    e.replacement = parse_id(f[3]);
    e.created_seq = parse_id(f[4]);
    e.created_a = parse_id(f[5]);
    e.created_b = parse_id(f[6]);
    e.created_c = parse_id(f[7]);
    e.created_d = parse_id(f[8]);
    e.element = parse_id(f[9]);
    auto key = parse_hex(f[10]);
    if (!key.ok()) return Unexpected(key.error());
    e.key = std::move(key.value());
    e.split_point = std::stoul(f[11]);
    e.pad_index = std::stoul(f[12]);
    e.pad_size = std::stoul(f[13]);
    e.child_i = std::stoi(f[14]);
    e.child_j = std::stoi(f[15]);
    e.len_width = std::stoul(f[16]);
    e.len_ascii = f[17] == "1";
    return e;
  }

  std::istringstream in_;
};

}  // namespace

std::string save_artifact(const ObfuscatedProtocol& protocol) {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "protocol " << protocol.original().protocol_name() << "\n";
  save_graph(out, "original", protocol.original());
  save_graph(out, "wire", protocol.wire_graph());
  out << "journal " << protocol.journal().size() << "\n";
  for (const AppliedTransform& e : protocol.journal()) {
    out << "entry " << static_cast<int>(e.kind) << " " << id_or_dash(e.target)
        << " " << id_or_dash(e.replacement) << " " << id_or_dash(e.created_seq)
        << " " << id_or_dash(e.created_a) << " " << id_or_dash(e.created_b)
        << " " << id_or_dash(e.created_c) << " " << id_or_dash(e.created_d)
        << " " << id_or_dash(e.element) << " " << hex_or_dash(e.key) << " "
        << e.split_point << " " << e.pad_index << " " << e.pad_size << " "
        << e.child_i << " " << e.child_j << " " << e.len_width << " "
        << (e.len_ascii ? 1 : 0) << "\n";
  }
  out << "end\n";
  return out.str();
}

Expected<ObfuscatedProtocol> load_artifact(std::string_view text) {
  return Loader(text).run();
}

}  // namespace protoobf
