// Protocol artifact persistence.
//
// Deployment model (paper §IV): the framework runs at development time and
// its output is shipped to every communicating application. Besides the
// generated source (src/codegen), this module provides the runtime-loadable
// equivalent: a textual artifact holding the original graph G1, the final
// graph G(n+1) and the transformation journal. Peers that load the same
// artifact interoperate; the artifact never contains message data.
//
// Format: line-oriented `protoobf-artifact v1`; one `node` line per arena
// slot (detached transformation intermediates included, so node ids are
// preserved exactly), one `entry` line per τi. Byte strings are hex.
#pragma once

#include <string>
#include <string_view>

#include "runtime/protocol.hpp"
#include "util/result.hpp"

namespace protoobf {

/// Serializes the protocol (graphs + journal) into the artifact text.
std::string save_artifact(const ObfuscatedProtocol& protocol);

/// Reconstructs a protocol from artifact text. The result is validated;
/// round-trip behaviour is bit-identical to the saved instance.
Expected<ObfuscatedProtocol> load_artifact(std::string_view text);

}  // namespace protoobf
