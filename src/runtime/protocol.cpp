#include "runtime/protocol.hpp"

#include "graph/validate.hpp"
#include "runtime/derive.hpp"
#include "runtime/parse.hpp"
#include "transform/exec.hpp"
#include "util/rng.hpp"

namespace protoobf {

ObfuscatedProtocol::ObfuscatedProtocol(Graph original, ObfuscationResult result)
    : original_(std::move(original)),
      wire_(std::move(result.graph)),
      journal_(std::move(result.journal)),
      stats_(result.stats),
      holders_(build_holder_table(original_, journal_)),
      canon_holders_(canonical_holder_ids(original_)) {}

Expected<ObfuscatedProtocol> ObfuscatedProtocol::create(
    const Graph& g1, const ObfuscationConfig& config) {
  auto result = obfuscate(g1, config);
  if (!result) return Unexpected(result.error());
  return ObfuscatedProtocol(g1.clone(), std::move(*result));
}

Expected<ObfuscatedProtocol> ObfuscatedProtocol::from_parts(Graph original,
                                                            Graph wire,
                                                            Journal journal) {
  if (Status s = validate(original); !s) {
    return Unexpected("artifact original graph invalid: " +
                      s.error().message);
  }
  if (Status s = validate(wire); !s) {
    return Unexpected("artifact wire graph invalid: " + s.error().message);
  }
  ObfuscationResult result{std::move(wire), std::move(journal), {}};
  result.stats.applied = result.journal.size();
  for (const AppliedTransform& e : result.journal) {
    ++result.stats.per_kind[static_cast<std::size_t>(e.kind)];
  }
  return ObfuscatedProtocol(std::move(original), std::move(result));
}

Expected<Bytes> ObfuscatedProtocol::serialize(
    const Inst& message, std::uint64_t msg_seed,
    std::vector<FieldSpan>* spans) const {
  Bytes out;
  if (Status s = serialize_into(message, msg_seed, out, spans); !s) {
    return Unexpected(s.error());
  }
  return out;
}

Status ObfuscatedProtocol::serialize_into(const Inst& message,
                                          std::uint64_t msg_seed, Bytes& out,
                                          std::vector<FieldSpan>* spans,
                                          InstPool* nodes,
                                          ScopeChain* scopes,
                                          DeriveScratch* derive) const {
  if (Status s = ast::check(original_, message); !s) return s;
  // The caller's tree is read-only; the transformation passes mutate a
  // workspace copy drawn from the node pool. With a session pool attached
  // the whole copy lands in recycled nodes and recycled payload capacity —
  // the clone that used to dominate the serialize path is gone.
  InstPtr tree = ast::copy(nodes, message);
  if (Status s = protoobf::canonicalize(original_, *tree, &canon_holders_,
                                        scopes, derive);
      !s) {
    return s;
  }
  if (Status s = check_presence(original_, *tree, scopes); !s) return s;

  Rng rng(msg_seed);
  if (Status s = forward_all(tree, journal_, rng, nodes); !s) return s;
  if (Status s = fix_holders(wire_, journal_, holders_, *tree, msg_seed,
                             nodes, scopes, derive);
      !s) {
    return s;
  }
  return emit_into(wire_, *tree, out, spans);
}

Expected<InstPtr> ObfuscatedProtocol::parse(BytesView wire,
                                            BufferPool* scratch,
                                            ScopeChain* scopes,
                                            InstPool* nodes,
                                            DeriveScratch* derive) const {
  auto tree =
      parse_wire(wire_, journal_, holders_, wire, scratch, scopes, nodes);
  return finish_parse(std::move(tree), nodes, scopes, derive);
}

Expected<InstPtr> ObfuscatedProtocol::parse_prefix(BytesView buffer,
                                                   std::size_t* consumed,
                                                   BufferPool* scratch,
                                                   ScopeChain* scopes,
                                                   InstPool* nodes,
                                                   DeriveScratch* derive,
                                                   ParseResume* resume) const {
  auto tree = parse_wire_prefix(wire_, journal_, holders_, buffer, consumed,
                                scratch, scopes, nodes, resume);
  return finish_parse(std::move(tree), nodes, scopes, derive);
}

/// Shared tail of parse()/parse_prefix(): inverse transformations plus the
/// canonical-form integrity checks.
Expected<InstPtr> ObfuscatedProtocol::finish_parse(Expected<InstPtr> tree,
                                                   InstPool* nodes,
                                                   ScopeChain* scopes,
                                                   DeriveScratch* derive) const {
  if (!tree) return tree;
  if (Status s = inverse_all(*tree, journal_, nodes); !s) {
    return Unexpected(s.error());
  }
  // fill_consts doubles as an integrity check: a recovered constant field
  // that does not match the specification means the wire was corrupt (or
  // produced with different transformations).
  if (Status s = fill_consts(original_, **tree); !s) {
    return Unexpected("parsed message rejected: " + s.error().message);
  }
  if (Status s = protoobf::canonicalize(original_, **tree, &canon_holders_,
                                        scopes, derive);
      !s) {
    return Unexpected(s.error());
  }
  if (Status s = ast::check(original_, **tree); !s) {
    return Unexpected("parsed message malformed: " + s.error().message);
  }
  return tree;
}

Status ObfuscatedProtocol::canonicalize(Inst& message) const {
  if (Status s = protoobf::canonicalize(original_, message, &canon_holders_);
      !s) {
    return s;
  }
  return check_presence(original_, message);
}

}  // namespace protoobf
