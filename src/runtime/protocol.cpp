#include "runtime/protocol.hpp"

#include "graph/validate.hpp"
#include "runtime/derive.hpp"
#include "runtime/parse.hpp"
#include "transform/exec.hpp"
#include "util/rng.hpp"

namespace protoobf {

ObfuscatedProtocol::ObfuscatedProtocol(Graph original, ObfuscationResult result)
    : original_(std::move(original)),
      wire_(std::move(result.graph)),
      journal_(std::move(result.journal)),
      stats_(result.stats),
      holders_(build_holder_table(original_, journal_)),
      canon_holders_(canonical_holder_ids(original_)) {}

Expected<ObfuscatedProtocol> ObfuscatedProtocol::create(
    const Graph& g1, const ObfuscationConfig& config) {
  auto result = obfuscate(g1, config);
  if (!result) return Unexpected(result.error());
  return ObfuscatedProtocol(g1.clone(), std::move(*result));
}

Expected<ObfuscatedProtocol> ObfuscatedProtocol::from_parts(Graph original,
                                                            Graph wire,
                                                            Journal journal) {
  if (Status s = validate(original); !s) {
    return Unexpected("artifact original graph invalid: " +
                      s.error().message);
  }
  if (Status s = validate(wire); !s) {
    return Unexpected("artifact wire graph invalid: " + s.error().message);
  }
  ObfuscationResult result{std::move(wire), std::move(journal), {}};
  result.stats.applied = result.journal.size();
  for (const AppliedTransform& e : result.journal) {
    ++result.stats.per_kind[static_cast<std::size_t>(e.kind)];
  }
  return ObfuscatedProtocol(std::move(original), std::move(result));
}

Expected<Bytes> ObfuscatedProtocol::serialize(
    const Inst& message, std::uint64_t msg_seed,
    std::vector<FieldSpan>* spans) const {
  Bytes out;
  if (Status s = serialize_into(message, msg_seed, out, spans); !s) {
    return Unexpected(s.error());
  }
  return out;
}

void ObfuscatedProtocol::attach_wire_backend(
    std::shared_ptr<const WireBackend> backend) const {
  std::lock_guard<std::mutex> lock(backend_slot_->mu);
  backend_slot_->backend = std::move(backend);
}

std::shared_ptr<const WireBackend> ObfuscatedProtocol::wire_backend() const {
  std::lock_guard<std::mutex> lock(backend_slot_->mu);
  return backend_slot_->backend;
}

Status ObfuscatedProtocol::serialize_into(const Inst& message,
                                          std::uint64_t msg_seed, Bytes& out,
                                          std::vector<FieldSpan>* spans,
                                          InstPool* nodes,
                                          ScopeChain* scopes,
                                          DeriveScratch* derive) const {
  // Span collection needs the interpreter's emitter; everything else may
  // route through an attached backend.
  if (spans == nullptr) {
    const auto backend = wire_backend();
    return serialize_with(backend.get(), message, msg_seed, out, nodes,
                          scopes, derive);
  }
  if (Status s = ast::check(original_, message); !s) return s;
  // The caller's tree is read-only; the transformation passes mutate a
  // workspace copy drawn from the node pool. With a session pool attached
  // the whole copy lands in recycled nodes and recycled payload capacity —
  // the clone that used to dominate the serialize path is gone.
  InstPtr tree = ast::copy(nodes, message);
  if (Status s = protoobf::canonicalize(original_, *tree, &canon_holders_,
                                        scopes, derive);
      !s) {
    return s;
  }
  if (Status s = check_presence(original_, *tree, scopes); !s) return s;

  Rng rng(msg_seed);
  if (Status s = forward_all(tree, journal_, rng, nodes); !s) return s;
  if (Status s = fix_holders(wire_, journal_, holders_, *tree, msg_seed,
                             nodes, scopes, derive);
      !s) {
    return s;
  }
  return emit_into(wire_, *tree, out, spans);
}

Status ObfuscatedProtocol::serialize_with(const WireBackend* backend,
                                          const Inst& message,
                                          std::uint64_t msg_seed, Bytes& out,
                                          InstPool* nodes, ScopeChain* scopes,
                                          DeriveScratch* derive) const {
  if (Status s = ast::check(original_, message); !s) return s;
  InstPtr tree = ast::copy(nodes, message);
  if (Status s = protoobf::canonicalize(original_, *tree, &canon_holders_,
                                        scopes, derive);
      !s) {
    return s;
  }
  if (Status s = check_presence(original_, *tree, scopes); !s) return s;

  Rng rng(msg_seed);
  if (Status s = forward_all(tree, journal_, rng, nodes); !s) return s;
  if (backend != nullptr) {
    return backend->fix_emit(*tree, msg_seed, out);
  }
  if (Status s = fix_holders(wire_, journal_, holders_, *tree, msg_seed,
                             nodes, scopes, derive);
      !s) {
    return s;
  }
  return emit_into(wire_, *tree, out, nullptr);
}

Expected<InstPtr> ObfuscatedProtocol::parse(BytesView wire,
                                            BufferPool* scratch,
                                            ScopeChain* scopes,
                                            InstPool* nodes,
                                            DeriveScratch* derive) const {
  const auto backend = wire_backend();
  return parse_with(backend.get(), wire, scratch, scopes, nodes, derive);
}

Expected<InstPtr> ObfuscatedProtocol::parse_with(const WireBackend* backend,
                                                 BytesView wire,
                                                 BufferPool* scratch,
                                                 ScopeChain* scopes,
                                                 InstPool* nodes,
                                                 DeriveScratch* derive) const {
  auto tree =
      backend != nullptr
          ? backend->parse_wire_tree(wire, /*prefix=*/false, nullptr, nodes)
          : parse_wire(wire_, journal_, holders_, wire, scratch, scopes,
                       nodes);
  return finish_parse(std::move(tree), nodes, scopes, derive);
}

Expected<InstPtr> ObfuscatedProtocol::parse_prefix(BytesView buffer,
                                                   std::size_t* consumed,
                                                   BufferPool* scratch,
                                                   ScopeChain* scopes,
                                                   InstPool* nodes,
                                                   DeriveScratch* derive,
                                                   ParseResume* resume) const {
  // Resumable parses carry interpreter-internal suspension state; they stay
  // on the interpreter even with a backend attached.
  if (resume == nullptr) {
    if (const auto backend = wire_backend()) {
      return parse_prefix_with(backend.get(), buffer, consumed, scratch,
                               scopes, nodes, derive);
    }
  }
  auto tree = parse_wire_prefix(wire_, journal_, holders_, buffer, consumed,
                                scratch, scopes, nodes, resume);
  return finish_parse(std::move(tree), nodes, scopes, derive);
}

Expected<InstPtr> ObfuscatedProtocol::parse_prefix_with(
    const WireBackend* backend, BytesView buffer, std::size_t* consumed,
    BufferPool* scratch, ScopeChain* scopes, InstPool* nodes,
    DeriveScratch* derive) const {
  auto tree =
      backend != nullptr
          ? backend->parse_wire_tree(buffer, /*prefix=*/true, consumed, nodes)
          : parse_wire_prefix(wire_, journal_, holders_, buffer, consumed,
                              scratch, scopes, nodes, nullptr);
  return finish_parse(std::move(tree), nodes, scopes, derive);
}

/// Shared tail of parse()/parse_prefix(): inverse transformations plus the
/// canonical-form integrity checks.
Expected<InstPtr> ObfuscatedProtocol::finish_parse(Expected<InstPtr> tree,
                                                   InstPool* nodes,
                                                   ScopeChain* scopes,
                                                   DeriveScratch* derive) const {
  if (!tree) return tree;
  if (Status s = inverse_all(*tree, journal_, nodes); !s) {
    return Unexpected(s.error());
  }
  // fill_consts doubles as an integrity check: a recovered constant field
  // that does not match the specification means the wire was corrupt (or
  // produced with different transformations).
  if (Status s = fill_consts(original_, **tree); !s) {
    return Unexpected("parsed message rejected: " + s.error().message);
  }
  if (Status s = protoobf::canonicalize(original_, **tree, &canon_holders_,
                                        scopes, derive);
      !s) {
    return Unexpected(s.error());
  }
  if (Status s = ast::check(original_, **tree); !s) {
    return Unexpected("parsed message malformed: " + s.error().message);
  }
  return tree;
}

Status ObfuscatedProtocol::canonicalize(Inst& message) const {
  if (Status s = protoobf::canonicalize(original_, message, &canon_holders_);
      !s) {
    return s;
  }
  return check_presence(original_, message);
}

}  // namespace protoobf
