// ObfuscatedProtocol: the runtime artifact the framework produces.
//
// Paper §IV: "the output of the framework is the source code for the
// message parser and the corresponding message serializer". This class is
// the executable equivalent of that generated library (src/codegen emits
// the literal source-code rendition): it bundles the original graph G1, the
// final graph G(n+1), the transformation journal, and the derived-field
// lineage, and exposes serialize()/parse() that perform the transformations
// on the fly exactly as the paper's generated code does.
//
// Round-trip contract (property-tested): for any message m built against
// G1, parse(serialize(m)) compares equal to canonical(m) — canonical
// meaning constant fields filled and derived fields recomputed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "graph/graph.hpp"
#include "runtime/backend.hpp"
#include "runtime/derive.hpp"
#include "runtime/emit.hpp"
#include "runtime/resume.hpp"
#include "runtime/scope.hpp"
#include "transform/engine.hpp"
#include "transform/lineage.hpp"
#include "util/result.hpp"

namespace protoobf {

class ObfuscatedProtocol {
 public:
  /// Obfuscates `g1` per `config` and prepares the runtime metadata.
  /// `config.per_node == 0` yields the identity (non-obfuscated) protocol.
  static Expected<ObfuscatedProtocol> create(const Graph& g1,
                                             const ObfuscationConfig& config);

  /// Rebuilds a protocol from persisted parts (runtime/persist.hpp). Both
  /// graphs are re-validated; statistics are recomputed from the journal.
  static Expected<ObfuscatedProtocol> from_parts(Graph original, Graph wire,
                                                 Journal journal);

  const Graph& original() const { return original_; }
  const Graph& wire_graph() const { return wire_; }
  const Journal& journal() const { return journal_; }
  const ObfuscationStats& stats() const { return stats_; }

  /// Serializes a logical message (an instance of G1). `msg_seed` drives the
  /// per-message randomness (split halves, pad bytes): the same message with
  /// a different seed produces a different wire image. Optional `spans`
  /// receive the ground-truth wire location of every terminal.
  Expected<Bytes> serialize(const Inst& message, std::uint64_t msg_seed,
                            std::vector<FieldSpan>* spans = nullptr) const;

  /// Allocation-lean variant: serializes into `out`, replacing its contents
  /// but reusing its capacity. The user's tree is never cloned on the heap:
  /// the canonicalize/forward-transform passes mutate a workspace copy
  /// whose nodes come from `nodes` (when given) — the session arena's pool
  /// — so a steady-state session serializes with O(1) small allocations
  /// per message (fixpoint-local scratch) instead of O(nodes). Size
  /// measurement runs through the counting emitter, so no scratch buffer
  /// is needed anymore; `derive`, when given, backs the derive-fixpoint
  /// work vectors the same way.
  Status serialize_into(const Inst& message, std::uint64_t msg_seed,
                        Bytes& out, std::vector<FieldSpan>* spans = nullptr,
                        InstPool* nodes = nullptr,
                        ScopeChain* scopes = nullptr,
                        DeriveScratch* derive = nullptr) const;

  /// Parses a wire message back into a canonical logical tree. `scratch`,
  /// when given, provides reusable buffers for mirrored-region copies;
  /// `scopes` a reusable reference-scope table; `nodes` a tree-node pool
  /// backing every instance of the result (which then must not outlive the
  /// pool); `derive` reusable derive-fixpoint scratch.
  Expected<InstPtr> parse(BytesView wire, BufferPool* scratch = nullptr,
                          ScopeChain* scopes = nullptr,
                          InstPool* nodes = nullptr,
                          DeriveScratch* derive = nullptr) const;

  /// Streaming variant of parse(): reads exactly one message from the front
  /// of `buffer`, tolerating trailing bytes (the next message), and reports
  /// the message's wire size in `*consumed`. A buffer that ends before the
  /// message does fails with ErrorKind::Truncated and a minimum
  /// additional-byte hint — the signal framers translate into "need more
  /// bytes" instead of a parse failure. Requires stream_safe(wire_graph()).
  ///
  /// `resume`, when given, suspends a Truncated parse so the next call on
  /// the same buffer front (same bytes, more appended) continues from the
  /// truncation point instead of byte 0 — see parse_wire_prefix and
  /// ParseResume for the validity contract. Suspended partial trees draw
  /// from `nodes`, which must outlive `resume`.
  Expected<InstPtr> parse_prefix(BytesView buffer, std::size_t* consumed,
                                 BufferPool* scratch = nullptr,
                                 ScopeChain* scopes = nullptr,
                                 InstPool* nodes = nullptr,
                                 DeriveScratch* derive = nullptr,
                                 ParseResume* resume = nullptr) const;

  /// Fills constants and derived fields of a user-built logical tree so it
  /// compares equal with parse() results.
  Status canonicalize(Inst& message) const;

  /// Attaches (or detaches, with nullptr) a wire-syntax backend — typically
  /// a compiled generated unit (native::NativeProtocol). Once attached,
  /// serialize/parse route their wire-byte half through the backend;
  /// requests a backend cannot express fall back to the interpreter:
  /// span-collecting serialization and resumable prefix parses. Thread-safe
  /// and callable on a shared const protocol (NativeCache attaches in the
  /// background while the interpreter serves); copies of this object made
  /// before or after share the attachment.
  void attach_wire_backend(std::shared_ptr<const WireBackend> backend) const;

  /// Currently attached backend, nullptr when serving interpreted.
  std::shared_ptr<const WireBackend> wire_backend() const;

  /// Explicit-backend variants of serialize_into/parse/parse_prefix: run
  /// the wire-byte half through `backend` regardless of what is attached
  /// (nullptr forces the interpreter). Used by tests, the fuzz agreement
  /// oracle and benches to compare implementations side by side.
  Status serialize_with(const WireBackend* backend, const Inst& message,
                        std::uint64_t msg_seed, Bytes& out,
                        InstPool* nodes = nullptr, ScopeChain* scopes = nullptr,
                        DeriveScratch* derive = nullptr) const;
  Expected<InstPtr> parse_with(const WireBackend* backend, BytesView wire,
                               BufferPool* scratch = nullptr,
                               ScopeChain* scopes = nullptr,
                               InstPool* nodes = nullptr,
                               DeriveScratch* derive = nullptr) const;
  Expected<InstPtr> parse_prefix_with(const WireBackend* backend,
                                      BytesView buffer, std::size_t* consumed,
                                      BufferPool* scratch = nullptr,
                                      ScopeChain* scopes = nullptr,
                                      InstPool* nodes = nullptr,
                                      DeriveScratch* derive = nullptr) const;

 private:
  ObfuscatedProtocol(Graph original, ObfuscationResult result);

  Expected<InstPtr> finish_parse(Expected<InstPtr> tree, InstPool* nodes,
                                 ScopeChain* scopes,
                                 DeriveScratch* derive) const;

  // Backend attachment point. Held behind a shared_ptr so the protocol
  // stays copyable/movable (Expected<ObfuscatedProtocol> returns) and so
  // copies observe a later background attach; the mutex makes swap-in safe
  // against concurrent serving threads.
  struct BackendSlot {
    mutable std::mutex mu;
    std::shared_ptr<const WireBackend> backend;
  };

  Graph original_;
  Graph wire_;
  Journal journal_;
  ObfuscationStats stats_;
  HolderTable holders_;
  std::vector<NodeId> canon_holders_;  // canonical_holder_ids(original_)
  std::shared_ptr<BackendSlot> backend_slot_ = std::make_shared<BackendSlot>();
};

}  // namespace protoobf
