// ParseResume: the checkpoint a truncated prefix parse leaves behind.
//
// A delimiter-bounded wire format gives the receiver no length field to
// plan around, so under trickled delivery the prefix parser used to re-walk
// the buffer front from byte 0 on every arriving chunk — O(n²) work per
// frame, the DoS shape ScrambleSuit-style deployments face on purpose.
// ParseResume converts every truncation-retry path into continue-from-
// cursor: when parse_wire_prefix ends in ErrorKind::Truncated it suspends
// its state here, and the next attempt on the same (grown) buffer front
// restores it instead of starting over.
//
// What is checkpointed — exactly the state of the *stream-open spine*, the
// recursion path parsed against the soft end of the input (everything off
// that path either completed or failed hard, so nothing else can be
// mid-flight at a truncation):
//   * one ResumeFrame per spine node: the partially built, pooled Inst
//     (committed children stay parsed), the child/element cursor, the
//     position the in-progress child started at;
//   * incremental matcher state: how far a delimiter scan got without
//     finding its delimiter, so the retry never re-reads rejected bytes,
//     and the cached element count of an open Tabular;
//   * the reference-scope chain, preserved across attempts so committed
//     holders stay resolvable without re-walking the committed tree.
//
// Validity contract (README "Streaming over TCP" spells it out for users):
// a checkpoint is only meaningful while the retry sees the *same buffer
// front with bytes appended*. The owner must invalidate() whenever the
// front moves for any other reason — StreamReader does so on resync() and
// reset() through Framer::invalidate_decode_state(); compaction is fine
// (offsets are window-relative and the retained bytes do not move
// logically). A successful parse or a hard (Malformed) failure clears the
// state automatically. As a last-resort guard the parser invalidates a
// checkpoint on its own when the buffer shrank below the suspended size.
//
// The partial trees draw from the same InstPool as the eventual result, so
// a ParseResume must not outlive the pool it suspends trees of (the
// ObfuscatedFramer owns both, pool first).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "ast/ast.hpp"
#include "graph/graph.hpp"
#include "runtime/scope.hpp"

namespace protoobf {

/// Checkpoint of one node on the stream-open spine.
struct ResumeFrame {
  NodeId node = kNoNode;       // graph node this frame describes
  InstPtr partial;             // committed children; null before creation
  std::size_t start = 0;       // window offset the node's parse began at
  std::size_t pos = 0;         // window offset of the in-progress child
  std::size_t next_child = 0;  // Sequence: child index; Rep/Tabular: element#
  std::uint64_t total = 0;     // Tabular: cached element count…
  bool counted = false;        // …valid once the holder was read
  std::size_t scan_from = 0;   // Delimited: next delimiter-scan start
  bool scanning = false;       // scan_from valid (a scan came up short)
};

class ParseResume {
 public:
  struct Stats {
    std::uint64_t attempts = 0;       // prefix-parse attempts overall
    std::uint64_t resumed = 0;        // attempts continued from a checkpoint
    std::uint64_t suspensions = 0;    // truncations that left a checkpoint
    std::uint64_t invalidations = 0;  // checkpoints dropped unconsumed
    std::uint64_t scanned_bytes = 0;  // delimiter/stop-marker bytes examined
  };

  ParseResume() = default;
  ParseResume(const ParseResume&) = delete;
  ParseResume& operator=(const ParseResume&) = delete;

  /// Whether a suspended parse is waiting to be continued.
  bool active() const { return active_; }

  /// Checkpointing on/off. When disabled the parser still counts into
  /// stats() (so a bench can measure the restart-from-zero baseline with
  /// identical accounting) but never suspends state.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (!enabled) invalidate();
  }

  /// Drops any suspended state: partial trees return to their pool, the
  /// scope chain resets. Must be called whenever the buffer front the
  /// checkpoint describes moves for any reason other than appending bytes.
  void invalidate() {
    if (active_ || !spine_.empty()) ++stats_.invalidations;
    discard();
  }

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats(); }

  /// Bytes of the buffer front already accounted for by the checkpoint
  /// (the suspended attempt's window size). 0 when inactive.
  std::size_t suspended_size() const { return active_ ? seen_ : 0; }

  /// Spine depth of the suspended parse (tests/diagnostics).
  std::size_t depth() const { return spine_.size(); }

  // --- parser-internal interface (parse_wire_prefix is the only writer) ---

  std::deque<ResumeFrame>& spine() { return spine_; }
  ScopeChain& scope_chain() { return scopes_; }
  Stats& mutable_stats() { return stats_; }

  /// Marks the current spine as a live checkpoint for a window of `seen`
  /// bytes (called when a checkpointed attempt ends Truncated).
  void suspend(std::size_t seen) {
    active_ = true;
    seen_ = seen;
    ++stats_.suspensions;
  }

  /// Clears without counting an invalidation: a fresh attempt starting
  /// over, or a completed parse consuming its checkpoint.
  void discard() {
    spine_.clear();
    scopes_.reset();
    active_ = false;
    seen_ = 0;
  }

 private:
  std::deque<ResumeFrame> spine_;  // root → leaf of the open spine
  ScopeChain scopes_;               // preserved across suspended attempts
  std::size_t seen_ = 0;            // window size at suspension
  bool active_ = false;
  bool enabled_ = true;
  Stats stats_;
};

}  // namespace protoobf
