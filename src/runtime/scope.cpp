#include "runtime/scope.hpp"

namespace protoobf {

namespace {

Status walk(const Graph& graph, Inst& inst, ScopeChain& scopes,
            const std::function<Status(Inst&, ScopeChain&)>& pre) {
  if (Status s = pre(inst, scopes); !s) return s;
  const Node& n = graph.node(inst.schema);
  if (inst.present) {
    const bool element_scope =
        n.type == NodeType::Repetition || n.type == NodeType::Tabular;
    for (auto& child : inst.children) {
      if (element_scope) scopes.push();
      const Status s = walk(graph, *child, scopes, pre);
      if (element_scope) scopes.pop();
      if (!s) return s;
    }
  }
  scopes.add(&inst);
  return Status::success();
}

}  // namespace

Status walk_scoped(const Graph& graph, Inst& root,
                   const std::function<Status(Inst&, ScopeChain&)>& pre) {
  ScopeChain scopes;
  return walk(graph, root, scopes, pre);
}

}  // namespace protoobf
