// Reference scoping shared by the parser and the derivation passes.
//
// Length/Counter/Condition references resolve to "the nearest instance of
// the referenced node parsed so far": one scope exists per Repetition or
// Tabular element (so a per-element length field resolves within its own
// element — the TLV pattern) plus the root scope; lookups walk scopes from
// innermost to outermost. Validation (graph/validate.cpp) guarantees a
// reference target is registered before any dependant needs it.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "ast/ast.hpp"
#include "graph/graph.hpp"
#include "util/result.hpp"

namespace protoobf {

class ScopeChain {
 public:
  ScopeChain() { push(); }

  void push() { maps_.emplace_back(); }
  void pop() { maps_.pop_back(); }

  void add(Inst* inst) { maps_.back()[inst->schema] = inst; }

  Inst* lookup(NodeId id) const {
    for (auto it = maps_.rbegin(); it != maps_.rend(); ++it) {
      const auto found = it->find(id);
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::unordered_map<NodeId, Inst*>> maps_;
};

/// In-order traversal mirroring parse order: `pre` runs when a node is
/// reached (references to earlier nodes already registered), registration
/// happens after the subtree completes, element scopes are pushed around
/// each Repetition/Tabular element. Absent optionals are not descended.
Status walk_scoped(const Graph& graph, Inst& root,
                   const std::function<Status(Inst&, ScopeChain&)>& pre);

}  // namespace protoobf
