// Reference scoping shared by the parser and the derivation passes.
//
// Length/Counter/Condition references resolve to "the nearest instance of
// the referenced node parsed so far": one scope exists per Repetition or
// Tabular element (so a per-element length field resolves within its own
// element — the TLV pattern) plus the root scope; lookups walk scopes from
// innermost to outermost. Validation (graph/validate.cpp) guarantees a
// reference target is registered before any dependant needs it.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "ast/ast.hpp"
#include "graph/graph.hpp"
#include "util/result.hpp"

namespace protoobf {

class ScopeChain {
 public:
  ScopeChain() { push(); }

  /// Opens a scope. Retired maps (and their bucket arrays) are reused, so
  /// iterating the elements of a Repetition costs no allocation after the
  /// first element — and none at all when the chain itself is reused
  /// across messages (session arenas hold one for exactly that).
  void push() {
    if (depth_ == maps_.size()) {
      maps_.emplace_back();
    } else {
      maps_[depth_].clear();
    }
    ++depth_;
  }
  void pop() { --depth_; }

  void add(Inst* inst) { maps_[depth_ - 1][inst->schema] = inst; }

  Inst* lookup(NodeId id) const {
    for (std::size_t i = depth_; i-- > 0;) {
      const auto found = maps_[i].find(id);
      if (found != maps_[i].end()) return found->second;
    }
    return nullptr;
  }

  /// Back to a single empty root scope, keeping all map capacity.
  void reset() {
    depth_ = 0;
    push();
  }

 private:
  std::vector<std::unordered_map<NodeId, Inst*>> maps_;
  std::size_t depth_ = 0;
};

/// In-order traversal mirroring parse order: `pre` runs when a node is
/// reached (references to earlier nodes already registered), registration
/// happens after the subtree completes, element scopes are pushed around
/// each Repetition/Tabular element. Absent optionals are not descended.
Status walk_scoped(const Graph& graph, Inst& root,
                   const std::function<Status(Inst&, ScopeChain&)>& pre);

}  // namespace protoobf
