// Reference scoping shared by the parser and the derivation passes.
//
// Length/Counter/Condition references resolve to "the nearest instance of
// the referenced node parsed so far": one scope exists per Repetition or
// Tabular element (so a per-element length field resolves within its own
// element — the TLV pattern) plus the root scope; lookups walk scopes from
// innermost to outermost. Validation (graph/validate.cpp) guarantees a
// reference target is registered before any dependant needs it.
//
// Scopes are flat (NodeId, Inst*) vectors rather than hash maps: a map
// costs one heap node per registration — O(nodes) allocations per parsed
// message — while a vector's capacity survives clear(), so a reused chain
// registers every instance of a message without touching the heap. Lookups
// scan newest-first, which both preserves the map's overwrite semantics
// (the latest registration of a schema wins) and terminates quickly in
// practice, because references point at recently registered holders.
#pragma once

#include <utility>
#include <vector>

#include "ast/ast.hpp"
#include "graph/graph.hpp"
#include "util/result.hpp"

namespace protoobf {

class ScopeChain {
 public:
  ScopeChain() { push(); }

  /// Opens a scope. Retired scopes keep their entry capacity, so iterating
  /// the elements of a Repetition costs no allocation after the first
  /// element — and none at all when the chain itself is reused across
  /// messages (session arenas hold one for exactly that).
  void push() {
    if (depth_ == scopes_.size()) {
      scopes_.emplace_back();
    } else {
      scopes_[depth_].clear();
    }
    ++depth_;
  }
  void pop() { --depth_; }

  void add(Inst* inst) {
    scopes_[depth_ - 1].emplace_back(inst->schema, inst);
  }

  Inst* lookup(NodeId id) const {
    for (std::size_t i = depth_; i-- > 0;) {
      const auto& entries = scopes_[i];
      for (std::size_t k = entries.size(); k-- > 0;) {
        if (entries[k].first == id) return entries[k].second;
      }
    }
    return nullptr;
  }

  /// Back to a single empty root scope, keeping all entry capacity.
  void reset() {
    depth_ = 0;
    push();
  }

 private:
  std::vector<std::vector<std::pair<NodeId, Inst*>>> scopes_;
  std::size_t depth_ = 0;
};

namespace detail {

template <typename Pre>
Status walk_scoped_impl(const Graph& graph, Inst& inst, ScopeChain& scopes,
                        Pre& pre) {
  if (Status s = pre(inst, scopes); !s) return s;
  const Node& n = graph.node(inst.schema);
  if (inst.present) {
    const bool element_scope =
        n.type == NodeType::Repetition || n.type == NodeType::Tabular;
    for (auto& child : inst.children) {
      if (element_scope) scopes.push();
      const Status s = walk_scoped_impl(graph, *child, scopes, pre);
      if (element_scope) scopes.pop();
      if (!s) return s;
    }
  }
  scopes.add(&inst);
  return Status::success();
}

}  // namespace detail

/// In-order traversal mirroring parse order: `pre` runs when a node is
/// reached (references to earlier nodes already registered), registration
/// happens after the subtree completes, element scopes are pushed around
/// each Repetition/Tabular element. Absent optionals are not descended.
/// `reuse`, when given, supplies the scope table (reset first) so
/// per-message callers stop allocating one per walk; a template so the
/// callable inlines without a std::function box.
template <typename Pre>
Status walk_scoped(const Graph& graph, Inst& root, Pre&& pre,
                   ScopeChain* reuse = nullptr) {
  if (reuse != nullptr) {
    reuse->reset();
    return detail::walk_scoped_impl(graph, root, *reuse, pre);
  }
  ScopeChain local;
  return detail::walk_scoped_impl(graph, root, local, pre);
}

}  // namespace protoobf
