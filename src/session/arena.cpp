#include "session/arena.hpp"

namespace protoobf {

void SessionArena::shrink() {
  wire_ = Bytes();
  frame_ = Bytes();
  scratch_.shrink();
  scopes_ = ScopeChain();
  nodes_.shrink();
}

}  // namespace protoobf
