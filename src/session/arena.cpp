#include "session/arena.hpp"

namespace protoobf {

void SessionArena::shrink() {
  wire_ = Bytes();
  frame_ = Bytes();
  scratch_.shrink();
  scopes_ = ScopeChain();
  derive_ = DeriveScratch();
  nodes_.shrink();
}

}  // namespace protoobf
