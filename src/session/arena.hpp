// Per-session serialization arena.
//
// A session serializes and parses a long stream of messages against one
// compiled protocol. Without an arena every serialize() grows a fresh Bytes
// from zero capacity and every mirrored region in parse() allocates its
// reversed copy; at traffic scale those per-message heap round-trips
// dominate the runtime cost of small messages. The arena keeps one wire
// buffer, one span table and one scratch pool per session (or per batch
// worker) so the steady state reuses capacity established by the first few
// messages.
//
// Not thread-safe: one arena per thread. Session keeps one arena per batch
// shard for exactly this reason.
#pragma once

#include "runtime/scope.hpp"
#include "util/bytes.hpp"

namespace protoobf {

class SessionArena {
 public:
  /// Reusable wire-image buffer for serialize_into(). Contents are valid
  /// until the next serialization through this arena.
  Bytes& wire() { return wire_; }
  const Bytes& wire() const { return wire_; }

  /// Reusable framed-image buffer: Channel::send() wraps wire() into a
  /// frame here, so the framing layer allocates nothing in steady state.
  /// Contents are valid until the next send through this arena.
  Bytes& frame() { return frame_; }
  const Bytes& frame() const { return frame_; }

  /// Scratch buffers for parse() mirrored-region copies.
  BufferPool& scratch() { return scratch_; }

  /// Reusable reference-scope table for parse() (reset per message).
  ScopeChain& scopes() { return scopes_; }

  /// Bytes of capacity currently retained by the wire and frame buffers.
  std::size_t retained() const { return wire_.capacity() + frame_.capacity(); }

  /// Releases all retained memory (e.g. when a session goes idle).
  void shrink();

 private:
  Bytes wire_;
  Bytes frame_;
  BufferPool scratch_;
  ScopeChain scopes_;
};

}  // namespace protoobf
