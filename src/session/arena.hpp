// Per-session serialization arena.
//
// A session serializes and parses a long stream of messages against one
// compiled protocol. Without an arena every serialize() grows a fresh Bytes
// from zero capacity, every mirrored region in parse() allocates its
// reversed copy, and every message materializes a fresh Inst tree node by
// node; at traffic scale those per-message heap round-trips dominate the
// runtime cost of small messages. The arena keeps one wire buffer, one
// frame buffer, one scratch pool, one scope table and one AST node pool
// per session (or per batch worker) so the steady state reuses capacity
// established by the first few messages — including whole parse trees and
// serialize workspaces, which recycle through the node pool.
//
// Not thread-safe: one arena per thread. Session keeps one arena per batch
// shard for exactly this reason.
#pragma once

#include <atomic>

#include "ast/pool.hpp"
#include "runtime/derive.hpp"
#include "runtime/scope.hpp"
#include "util/bytes.hpp"

namespace protoobf {

/// Cross-arena EWMA of recently emitted sizes. One buffer's own capacity
/// already remembers its personal high-water mark, so a *per-arena* hint
/// would never reserve anything new; the value of the hint is sharing it
/// across a session's arenas — the single-message path, every batch
/// shard, and the channel frame path — so a cold arena's first message
/// reserves the size its siblings established instead of doubling its way
/// up. Atomic because batch shards note sizes from worker threads; races
/// just make the hint slightly stale, which is harmless.
class SizeHint {
 public:
  /// Records an emitted size: rises to a larger size instantly, decays a
  /// quarter of the gap toward a smaller one — a burst of large messages
  /// is covered immediately, one small message barely moves the hint.
  void note(std::size_t size) {
    const std::size_t prev = hint_.load(std::memory_order_relaxed);
    const std::size_t next = size >= prev ? size : prev - (prev - size) / 4;
    hint_.store(next, std::memory_order_relaxed);
  }

  std::size_t get() const { return hint_.load(std::memory_order_relaxed); }

  /// Pre-sizes `buffer` for the next emission (no-op with no history).
  void reserve(Bytes& buffer) const { buffer.reserve(get()); }

  void reset() { hint_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> hint_{0};
};

class SessionArena {
 public:
  /// Reusable wire-image buffer for serialize_into(). Contents are valid
  /// until the next serialization through this arena.
  Bytes& wire() { return wire_; }
  const Bytes& wire() const { return wire_; }

  /// Reusable framed-image buffer: Channel::send() wraps wire() into a
  /// frame here, so the framing layer allocates nothing in steady state.
  /// Contents are valid until the next send through this arena.
  Bytes& frame() { return frame_; }
  const Bytes& frame() const { return frame_; }

  /// Scratch buffers for parse() mirrored-region copies.
  BufferPool& scratch() { return scratch_; }

  /// Reusable reference-scope table for parse() (reset per message).
  ScopeChain& scopes() { return scopes_; }

  /// Reusable derive-fixpoint scratch (pairs/matches/encoded work vectors
  /// of canonicalize()/fix_holders()), the last per-message allocations of
  /// the hot path before it was arena-held.
  DeriveScratch& derive() { return derive_; }

  /// AST node pool backing parse trees and serialize workspaces. Trees
  /// drawn from it must not outlive the arena.
  InstPool& nodes() { return nodes_; }
  const InstPool& nodes() const { return nodes_; }

  /// Bytes of capacity currently retained by the wire and frame buffers.
  std::size_t retained() const { return wire_.capacity() + frame_.capacity(); }

  /// Releases all retained memory (e.g. when a session goes idle). Node
  /// slabs with live trees stay pinned until those trees are dropped.
  void shrink();

 private:
  Bytes wire_;
  Bytes frame_;
  BufferPool scratch_;
  ScopeChain scopes_;
  DeriveScratch derive_;
  InstPool nodes_;
};

}  // namespace protoobf
