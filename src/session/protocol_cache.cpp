#include "session/protocol_cache.hpp"

#include "core/protoobf.hpp"
#include "graph/dot.hpp"
#include "obs/families.hpp"

namespace protoobf {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, std::string_view data) {
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xff;
    h *= kFnvPrime;
    v >>= 8;
  }
  return h;
}

}  // namespace

ProtocolCache::ProtocolCache(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

std::uint64_t ProtocolCache::hash_spec(std::string_view text) {
  return fnv1a(kFnvOffset, text);
}

std::uint64_t ProtocolCache::hash_graph(const Graph& g) {
  return hash_spec(to_outline(g));
}

std::size_t ProtocolCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = fnv1a_u64(kFnvOffset, k.spec_hash);
  h = fnv1a_u64(h, k.seed);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(k.per_node));
  h = fnv1a_u64(h, k.enabled.size());
  for (const TransformKind kind : k.enabled) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(kind));
  }
  return static_cast<std::size_t>(h);
}

/// Locates the slot for (key, source) and promotes it to the LRU front,
/// counting a hit. A key match whose source differs is a spec-hash
/// collision: counted, and lru_.end() is returned so the caller compiles
/// (the newcomer then replaces the old occupant of the bucket).
/// Caller must hold mu_.
ProtocolCache::LruList::iterator ProtocolCache::find_slot(
    const Key& key, std::string_view source, const ObfuscationConfig&) {
  const auto it = index_.find(key);
  if (it == index_.end()) return lru_.end();
  Slot& slot = *it->second;
  if (slot.source != source) {
    ++stats_.collisions;
    return lru_.end();
  }
  ++stats_.hits;
  obs::SessionMetrics::get().cache_hits.add(1);
  lru_.splice(lru_.begin(), lru_, it->second);
  return lru_.begin();
}

Expected<ProtocolCache::Entry> ProtocolCache::get_or_compile(
    std::string_view spec_text, const ObfuscationConfig& config) {
  const std::uint64_t spec_hash = hash_spec(spec_text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Key key{spec_hash, config.seed, config.per_node, config.enabled};
    if (auto slot = find_slot(key, spec_text, config); slot != lru_.end()) {
      return slot->entry;
    }
  }
  auto graph = Framework::load_spec(spec_text);
  if (!graph) return Unexpected(graph.error());
  return lookup_or_compile(*graph, spec_hash, spec_text, config);
}

Expected<ProtocolCache::Entry> ProtocolCache::get_or_compile(
    const Graph& g1, std::uint64_t spec_hash,
    const ObfuscationConfig& config) {
  return lookup_or_compile(g1, spec_hash, to_outline(g1), config);
}

Expected<ProtocolCache::Entry> ProtocolCache::lookup_or_compile(
    const Graph& g1, std::uint64_t spec_hash, std::string_view source,
    const ObfuscationConfig& config) {
  const Key key{spec_hash, config.seed, config.per_node, config.enabled};
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto slot = find_slot(key, source, config); slot != lru_.end()) {
      return slot->entry;
    }
    // Concurrent misses rendezvous here: the first thread in becomes the
    // leader and compiles; everyone else waits for its result. A spec-hash
    // collision with the in-flight source compiles independently (same
    // degradation as Slot collisions: correctness over sharing).
    const auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second->source == source) {
      flight = it->second;
      ++stats_.coalesced;
    } else {
      flight = std::make_shared<InFlight>();
      flight->source = std::string(source);
      inflight_[key] = flight;
      leader = true;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> wait_lock(flight->mu);
    flight->cv.wait(wait_lock, [&flight] { return flight->done; });
    return *flight->result;
  }

  // Retires the rendezvous (erasing only our own entry — a colliding
  // leader may have replaced it) and hands `result` to every waiter. The
  // leader must publish on *every* exit: a stranded InFlight would hang
  // its waiters forever and poison the key for all future misses.
  const auto publish = [&](Expected<Entry> result) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end() && it->second == flight) inflight_.erase(it);
    }
    std::lock_guard<std::mutex> signal(flight->mu);
    flight->result = std::move(result);
    flight->done = true;
    flight->cv.notify_all();
  };

  std::optional<Expected<Entry>> outcome;
  try {
    // Compile outside the cache lock: generation is the expensive step and
    // other keys' hits must not stall behind it.
    auto compiled = ObfuscatedProtocol::create(g1, config);
    if (!compiled) {
      outcome.emplace(Unexpected(compiled.error()));
    } else {
      Entry entry =
          std::make_shared<const ObfuscatedProtocol>(std::move(*compiled));
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
      obs::SessionMetrics::get().cache_misses.add(1);
      // One slot per key: a colliding occupant (different source) is
      // displaced rather than kept alongside.
      if (auto it = index_.find(key); it != index_.end()) {
        lru_.erase(it->second);
        index_.erase(it);
      }
      lru_.push_front(Slot{key, std::string(source), entry});
      index_[key] = lru_.begin();
      while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
        obs::SessionMetrics::get().cache_evictions.add(1);
      }
      outcome.emplace(std::move(entry));
    }
  } catch (...) {
    publish(Unexpected("protocol compilation threw"));
    throw;
  }

  publish(*outcome);
  return *outcome;
}

ProtocolCache::Stats ProtocolCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.size = lru_.size();
  return s;
}

void ProtocolCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
}

}  // namespace protoobf
