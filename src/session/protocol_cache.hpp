// Compiled-protocol cache.
//
// Version rotation (examples/version_rotation.cpp) re-generates the
// obfuscation with a fresh seed on a schedule; a server terminating many
// sessions sees a small working set of (specification, seed, per_node)
// versions at any moment. Obfuscation is the expensive step — graph clone,
// transformation selection, validation — so recompiling it per session (or
// worse, per message) would dwarf serialization itself. ProtocolCache
// memoizes compiled ObfuscatedProtocol instances behind shared_ptr, keyed by
// (spec hash, seed, per_node, enabled-transform set), with LRU eviction.
//
// Entries are immutable once compiled (ObfuscatedProtocol is const through
// the shared_ptr), so handed-out protocols stay valid even after eviction —
// eviction only drops the cache's own reference.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "runtime/protocol.hpp"

namespace protoobf {

class ProtocolCache {
 public:
  using Entry = std::shared_ptr<const ObfuscatedProtocol>;

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;      // one per fresh compile inserted
    std::size_t evictions = 0;
    std::size_t collisions = 0;  // hash matches with different spec/config
    std::size_t coalesced = 0;   // misses that waited on an in-flight compile
    std::size_t size = 0;
  };

  explicit ProtocolCache(std::size_t capacity = 64);

  /// Returns the cached protocol for (spec_text, config), compiling and
  /// inserting it on a miss. Parse or obfuscation errors are not cached.
  Expected<Entry> get_or_compile(std::string_view spec_text,
                                 const ObfuscationConfig& config);

  /// Same, for an already-parsed graph. `spec_hash` identifies the
  /// specification the graph came from (hash_spec of its source text, or
  /// hash_graph when only the graph exists). Entries are verified by the
  /// graph's outline rendering, so this overload and the text overload
  /// only share an entry when used with consistent hashes per protocol —
  /// mixing them for one protocol recompiles rather than mis-hits.
  Expected<Entry> get_or_compile(const Graph& g1, std::uint64_t spec_hash,
                                 const ObfuscationConfig& config);

  Stats stats() const;
  void clear();

  /// FNV-1a 64-bit over the specification text.
  static std::uint64_t hash_spec(std::string_view text);

  /// Specification hash of a graph without its source text (hashes the
  /// deterministic outline rendering).
  static std::uint64_t hash_graph(const Graph& g);

 private:
  // The enabled-transform list participates with exact (element-wise)
  // equality; only the specification is reduced to a hash.
  struct Key {
    std::uint64_t spec_hash = 0;
    std::uint64_t seed = 0;
    int per_node = 0;
    std::vector<TransformKind> enabled;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  // `source` (spec text or graph outline) verifies a key match, so a
  // 64-bit spec-hash collision degrades to a recompile instead of
  // silently returning a different specification's protocol.
  struct Slot {
    Key key;
    std::string source;
    Entry entry;
  };
  using LruList = std::list<Slot>;

  // Rendezvous for concurrent misses on one key: the first thread (the
  // leader) compiles; followers block on `cv` and take the published
  // result, so a miss storm on a hot key compiles exactly once.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::string source;  // collision guard, like Slot::source
    std::optional<Expected<Entry>> result;
  };

  Expected<Entry> lookup_or_compile(const Graph& g1, std::uint64_t spec_hash,
                                    std::string_view source,
                                    const ObfuscationConfig& config);
  LruList::iterator find_slot(const Key& key, std::string_view source,
                              const ObfuscationConfig& config);

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  std::unordered_map<Key, std::shared_ptr<InFlight>, KeyHash> inflight_;
  Stats stats_;
};

}  // namespace protoobf
