#include "session/session.hpp"

namespace protoobf {

Session::Session(std::shared_ptr<const ObfuscatedProtocol> protocol,
                 WorkerPool* pool)
    : protocol_(std::move(protocol)),
      pool_(pool),
      shards_(pool_ != nullptr ? pool_->width() : 1) {}

Expected<BytesView> Session::serialize(const Inst& message,
                                       std::uint64_t msg_seed,
                                       std::vector<FieldSpan>* spans) {
  wire_hint_.reserve(arena_.wire());
  if (Status s = protocol_->serialize_into(message, msg_seed, arena_.wire(),
                                           spans, &arena_.nodes(),
                                           &arena_.scopes(),
                                           &arena_.derive());
      !s) {
    return Unexpected(s.error());
  }
  wire_hint_.note(arena_.wire().size());
  return BytesView(arena_.wire());
}

Expected<InstPtr> Session::parse(BytesView wire) {
  return protocol_->parse(wire, &arena_.scratch(), &arena_.scopes(),
                          &arena_.nodes(), &arena_.derive());
}

Expected<Bytes> Session::serialize_one(SessionArena& arena,
                                       const BatchItem& item) {
  if (item.message == nullptr) {
    return Unexpected("batch item has no message");
  }
  wire_hint_.reserve(arena.wire());
  if (Status s = protocol_->serialize_into(*item.message, item.msg_seed,
                                           arena.wire(), /*spans=*/nullptr,
                                           &arena.nodes(), &arena.scopes(),
                                           &arena.derive());
      !s) {
    return Unexpected(s.error());
  }
  wire_hint_.note(arena.wire().size());
  // The arena buffer is reused for the next item; the result is a
  // right-sized copy the caller owns.
  return Bytes(arena.wire());
}

std::vector<Expected<Bytes>> Session::serialize_batch(
    std::span<const BatchItem> items) {
  std::vector<Expected<Bytes>> results;
  results.reserve(items.size());

  if (pool_ == nullptr || pool_->width() == 1 || items.size() <= 1) {
    for (const BatchItem& item : items) {
      results.emplace_back(serialize_one(shards_[0], item));
    }
    return results;
  }

  // Sharded run: pre-fill placeholders so shards can assign their slots
  // concurrently. The empty error message stays within SSO, so this does
  // not allocate per item.
  for (std::size_t i = 0; i < items.size(); ++i) {
    results.emplace_back(Unexpected(std::string()));
  }
  pool_->parallel_for(
      items.size(), [&](std::size_t shard, std::size_t begin,
                        std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = serialize_one(shards_[shard], items[i]);
        }
      });
  return results;
}

std::vector<Expected<InstPtr>> Session::parse_batch(
    std::span<const BytesView> wires) {
  std::vector<Expected<InstPtr>> results;
  results.reserve(wires.size());

  if (pool_ == nullptr || pool_->width() == 1 || wires.size() <= 1) {
    for (const BytesView wire : wires) {
      results.emplace_back(protocol_->parse(wire, &shards_[0].scratch(),
                                            &shards_[0].scopes(),
                                            &shards_[0].nodes(),
                                            &shards_[0].derive()));
    }
    return results;
  }

  for (std::size_t i = 0; i < wires.size(); ++i) {
    results.emplace_back(Unexpected(std::string()));
  }
  pool_->parallel_for(
      wires.size(), [&](std::size_t shard, std::size_t begin,
                        std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = protocol_->parse(wires[i], &shards_[shard].scratch(),
                                        &shards_[shard].scopes(),
                                        &shards_[shard].nodes(),
                                        &shards_[shard].derive());
        }
      });
  return results;
}

}  // namespace protoobf
