#include "session/session.hpp"

#include "obs/families.hpp"

namespace protoobf {

namespace {

// Per-message instrumentation, kept off the critical path: counters are one
// relaxed add; latency is recorded for one message in kSampleEvery per
// thread, so the steady_clock reads never become a per-message cost.
inline std::uint64_t maybe_start_sample() {
  return obs::SessionMetrics::sample() ? obs::now_ns() : 0;
}

inline void finish_serialize(obs::SessionMetrics& m, std::uint64_t t0,
                             std::size_t wire_capacity) {
  m.serialized.add(1);
  if (t0 != 0) {
    m.serialize_ns.record(obs::now_ns() - t0);
    m.arena_retained_bytes.set_max(static_cast<std::int64_t>(wire_capacity));
  }
}

inline void finish_parse(obs::SessionMetrics& m, std::uint64_t t0, bool ok) {
  if (ok) {
    m.parsed.add(1);
  } else {
    m.parse_errors.add(1);
  }
  if (t0 != 0) m.parse_ns.record(obs::now_ns() - t0);
}

}  // namespace

Session::Session(std::shared_ptr<const ObfuscatedProtocol> protocol,
                 WorkerPool* pool)
    : protocol_(std::move(protocol)),
      pool_(pool),
      shards_(pool_ != nullptr ? pool_->width() : 1) {}

Expected<BytesView> Session::serialize(const Inst& message,
                                       std::uint64_t msg_seed,
                                       std::vector<FieldSpan>* spans) {
  obs::SessionMetrics& m = obs::SessionMetrics::get();
  const std::uint64_t t0 = maybe_start_sample();
  wire_hint_.reserve(arena_.wire());
  if (Status s = protocol_->serialize_into(message, msg_seed, arena_.wire(),
                                           spans, &arena_.nodes(),
                                           &arena_.scopes(),
                                           &arena_.derive());
      !s) {
    m.serialize_errors.add(1);
    return Unexpected(s.error());
  }
  wire_hint_.note(arena_.wire().size());
  finish_serialize(m, t0, arena_.wire().capacity());
  return BytesView(arena_.wire());
}

Expected<InstPtr> Session::parse(BytesView wire) {
  obs::SessionMetrics& m = obs::SessionMetrics::get();
  const std::uint64_t t0 = maybe_start_sample();
  auto result = protocol_->parse(wire, &arena_.scratch(), &arena_.scopes(),
                                 &arena_.nodes(), &arena_.derive());
  finish_parse(m, t0, static_cast<bool>(result));
  return result;
}

Expected<Bytes> Session::serialize_one(SessionArena& arena,
                                       const BatchItem& item) {
  if (item.message == nullptr) {
    return Unexpected("batch item has no message");
  }
  obs::SessionMetrics& m = obs::SessionMetrics::get();
  const std::uint64_t t0 = maybe_start_sample();
  wire_hint_.reserve(arena.wire());
  if (Status s = protocol_->serialize_into(*item.message, item.msg_seed,
                                           arena.wire(), /*spans=*/nullptr,
                                           &arena.nodes(), &arena.scopes(),
                                           &arena.derive());
      !s) {
    m.serialize_errors.add(1);
    return Unexpected(s.error());
  }
  wire_hint_.note(arena.wire().size());
  finish_serialize(m, t0, arena.wire().capacity());
  // The arena buffer is reused for the next item; the result is a
  // right-sized copy the caller owns.
  return Bytes(arena.wire());
}

std::vector<Expected<Bytes>> Session::serialize_batch(
    std::span<const BatchItem> items) {
  std::vector<Expected<Bytes>> results;
  results.reserve(items.size());

  if (pool_ == nullptr || pool_->width() == 1 || items.size() <= 1) {
    for (const BatchItem& item : items) {
      results.emplace_back(serialize_one(shards_[0], item));
    }
    return results;
  }

  // Sharded run: pre-fill placeholders so shards can assign their slots
  // concurrently. The empty error message stays within SSO, so this does
  // not allocate per item.
  for (std::size_t i = 0; i < items.size(); ++i) {
    results.emplace_back(Unexpected(std::string()));
  }
  pool_->parallel_for(
      items.size(), [&](std::size_t shard, std::size_t begin,
                        std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = serialize_one(shards_[shard], items[i]);
        }
      });
  return results;
}

std::vector<Expected<InstPtr>> Session::parse_batch(
    std::span<const BytesView> wires) {
  std::vector<Expected<InstPtr>> results;
  results.reserve(wires.size());

  obs::SessionMetrics& m = obs::SessionMetrics::get();
  const auto parse_into = [&](SessionArena& arena, BytesView wire,
                              Expected<InstPtr>& out) {
    const std::uint64_t t0 = maybe_start_sample();
    out = protocol_->parse(wire, &arena.scratch(), &arena.scopes(),
                           &arena.nodes(), &arena.derive());
    finish_parse(m, t0, static_cast<bool>(out));
  };

  if (pool_ == nullptr || pool_->width() == 1 || wires.size() <= 1) {
    for (const BytesView wire : wires) {
      results.emplace_back(Unexpected(std::string()));
      parse_into(shards_[0], wire, results.back());
    }
    return results;
  }

  for (std::size_t i = 0; i < wires.size(); ++i) {
    results.emplace_back(Unexpected(std::string()));
  }
  pool_->parallel_for(
      wires.size(), [&](std::size_t shard, std::size_t begin,
                        std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          parse_into(shards_[shard], wires[i], results[i]);
        }
      });
  return results;
}

}  // namespace protoobf
