// Obfuscation session: the per-connection runtime object.
//
// A Session binds one compiled protocol version (shared, cache-managed) to
// per-session serialization state: an arena for the single-message fast
// path and one arena per batch shard. It is the intended entry point for
// servers — ProtocolCache amortizes compilation across sessions and version
// rotations, the arena amortizes buffer allocation across messages, and the
// batch APIs shard independent messages over a WorkerPool.
//
// Semantics contract (tests/session_test.cpp): every path produces results
// byte-identical to the plain ObfuscatedProtocol::serialize()/parse() calls
// with the same arguments, including error behaviour. The session only
// changes where the bytes live and which thread computes them.
//
// Threading: one Session per thread of control. The shared pieces — the
// cached protocol and the worker pool — are safe to share across sessions.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "runtime/protocol.hpp"
#include "session/arena.hpp"
#include "session/protocol_cache.hpp"
#include "session/worker_pool.hpp"

namespace protoobf {

/// One message of a serialization batch. `message` must outlive the call.
struct BatchItem {
  const Inst* message = nullptr;
  std::uint64_t msg_seed = 0;
};

class Session {
 public:
  /// `pool` may be null (batches run inline) and is borrowed, not owned; it
  /// must outlive the session.
  explicit Session(std::shared_ptr<const ObfuscatedProtocol> protocol,
                   WorkerPool* pool = nullptr);

  const ObfuscatedProtocol& protocol() const { return *protocol_; }

  /// Serializes through the session arena. The returned view aliases the
  /// arena and is valid until the next serialize()/serialize_batch() on
  /// this session; callers that need to keep the bytes copy them.
  Expected<BytesView> serialize(const Inst& message, std::uint64_t msg_seed,
                                std::vector<FieldSpan>* spans = nullptr);

  /// Parses with the arena backing the whole operation: scratch buffers
  /// for mirrored regions, the scope table, and the node pool every
  /// instance of the result comes from. Steady state performs O(1) small
  /// allocations per message (fixpoint-local scratch), never O(nodes).
  /// Because dropping the returned tree recycles its nodes
  /// into the arena's pool, the tree must not outlive the session and
  /// must be destroyed on the session's thread of control — handing a
  /// tree to another thread requires dropping it back here (or copying
  /// it). Same rules for parse_batch results.
  Expected<InstPtr> parse(BytesView wire);

  /// Serializes every item; result i corresponds to item i and equals what
  /// protocol().serialize(*items[i].message, items[i].msg_seed) returns.
  /// Items are independent, so shards run concurrently on the pool.
  std::vector<Expected<Bytes>> serialize_batch(
      std::span<const BatchItem> items);

  /// Parses every wire image; result i equals protocol().parse(wires[i]).
  std::vector<Expected<InstPtr>> parse_batch(std::span<const BytesView> wires);

  /// Arena of batch shard `i` (i < batch_width()), exposed for tests and
  /// memory accounting.
  const SessionArena& shard_arena(std::size_t i) const { return shards_[i]; }
  std::size_t batch_width() const { return shards_.size(); }

  /// The single-message-path arena. Channel routes its frame buffer through
  /// it so streaming reuses the session's capacity; same threading rule as
  /// the session itself (one thread of control).
  SessionArena& arena() { return arena_; }

  /// The worker pool batches shard over, or null when batches run inline.
  WorkerPool* pool() const { return pool_; }

  /// Shared emitted-size hints: every serialize path notes its result and
  /// pre-reserves from it, so a cold batch shard (or the channel frame
  /// buffer) starts at the capacity its siblings established instead of
  /// growing through doublings. Channel::send uses frame_hint().
  SizeHint& wire_hint() { return wire_hint_; }
  SizeHint& frame_hint() { return frame_hint_; }

 private:
  Expected<Bytes> serialize_one(SessionArena& arena, const BatchItem& item);

  std::shared_ptr<const ObfuscatedProtocol> protocol_;
  WorkerPool* pool_;
  SessionArena arena_;                // single-message fast path
  std::vector<SessionArena> shards_;  // one per batch shard
  SizeHint wire_hint_;                // shared across all arenas above
  SizeHint frame_hint_;               // for the channel framing layer
};

}  // namespace protoobf
