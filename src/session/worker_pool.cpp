#include "session/worker_pool.hpp"

#include <algorithm>

namespace protoobf {

WorkerPool::WorkerPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.back());
      queue_.pop_back();
    }
    job();  // counts its own call's latch down; nothing pool-global left
  }
}

void WorkerPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& body) {
  if (n == 0) return;
  // Base/remainder split: every shard gets n/shards items and the first
  // n%shards get one extra, so no shard is ever empty (shards <= n).
  const std::size_t shards = std::min(width(), n);
  const std::size_t base = n / shards;
  const std::size_t rem = n % shards;
  const auto begin_of = [&](std::size_t shard) {
    return shard * base + std::min(shard, rem);
  };

  // Per-call completion latch: lives on this frame, counted down by this
  // call's shard jobs only. Waits from concurrent parallel_for calls are
  // fully independent. The final notify happens while holding the latch
  // mutex, so the waiter cannot destroy the latch under the notifier.
  struct Latch {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining = 0;
  } latch;
  latch.remaining = shards - 1;

  // Shards 1.. go to the workers; shard 0 runs on the calling thread so a
  // worker-less pool executes the whole batch inline.
  if (shards > 1) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t shard = 1; shard < shards; ++shard) {
        const std::size_t begin = begin_of(shard);
        const std::size_t end = begin_of(shard + 1);
        queue_.push_back([&body, &latch, shard, begin, end] {
          body(shard, begin, end);
          std::lock_guard<std::mutex> signal(latch.mu);
          if (--latch.remaining == 0) latch.done.notify_all();
        });
      }
    }
    wake_.notify_all();
  }

  body(0, 0, begin_of(1));

  if (shards > 1) {
    std::unique_lock<std::mutex> lock(latch.mu);
    latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
  }
}

}  // namespace protoobf
