// Small shared worker pool for batch sharding.
//
// serialize_batch()/parse_batch() split a batch into contiguous shards and
// run them concurrently: messages are independent (per-message seeds, no
// shared mutable state), so sharding scales with cores without any locking
// in the hot path. The pool is deliberately minimal — persistent threads, a
// run queue, and a blocking parallel_for — because the per-item work (full
// serialize/parse of a message) is large compared to dispatch overhead.
//
// The calling thread always executes shard 0 itself, so a pool constructed
// on a single-core machine (zero worker threads) degrades to plain inline
// execution with no synchronization cost at all.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace protoobf {

class WorkerPool {
 public:
  /// `threads` worker threads in addition to the caller; 0 picks
  /// hardware_concurrency() - 1 (so caller + workers saturate the machine).
  explicit WorkerPool(std::size_t threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of shards parallel_for splits work into (workers + caller).
  std::size_t width() const { return workers_.size() + 1; }

  /// Runs body(shard, begin, end) over a partition of [0, n) into width()
  /// contiguous shards and blocks until every shard finished. Shard ids are
  /// dense in [0, width()): use them to index per-shard state (arenas).
  /// `body` must not throw and must not re-enter the pool.
  ///
  /// Completion is tracked per call (a stack latch each shard job counts
  /// down), so concurrent parallel_for calls from different threads sharing
  /// one pool wait only on their own shards — one caller blocking inside
  /// its body never strands another caller's wait.
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t shard, std::size_t begin,
                               std::size_t end)>& body);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::vector<std::thread> workers_;
  std::vector<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace protoobf
