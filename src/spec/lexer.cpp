#include "spec/lexer.hpp"

#include <cctype>

namespace protoobf {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Integer: return "integer";
    case TokenKind::String: return "string";
    case TokenKind::HexBytes: return "hex literal";
    case TokenKind::Colon: return "':'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Comma: return "','";
    case TokenKind::Dot: return "'.'";
    case TokenKind::EqualEqual: return "'=='";
    case TokenKind::BangEqual: return "'!='";
    case TokenKind::EndOfFile: return "end of input";
  }
  return "?";
}

namespace {

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  Expected<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_space_and_comments();
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (at_end()) {
        tok.kind = TokenKind::EndOfFile;
        tokens.push_back(tok);
        return tokens;
      }
      const char c = peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tok.kind = TokenKind::Identifier;
        tok.text = identifier();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        if (Status s = number(tok); !s) return Unexpected(s.error());
      } else if (c == '"') {
        tok.kind = TokenKind::String;
        auto bytes = string_literal();
        if (!bytes) return Unexpected(bytes.error());
        tok.bytes = std::move(bytes.value());
      } else {
        if (Status s = punctuation(tok); !s) return Unexpected(s.error());
      }
      tokens.push_back(std::move(tok));
    }
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Unexpected fail(const std::string& what) const {
    return Unexpected("spec:" + std::to_string(line_) + ":" +
                      std::to_string(column_) + ": " + what);
  }

  void skip_space_and_comments() {
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  std::string identifier() {
    std::string out;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_')) {
      out.push_back(advance());
    }
    return out;
  }

  Status number(Token& tok) {
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      std::string digits;
      while (!at_end() &&
             std::isxdigit(static_cast<unsigned char>(peek()))) {
        digits.push_back(advance());
      }
      if (digits.empty()) return fail("expected hex digits after 0x");
      if (digits.size() % 2 != 0) {
        return fail("hex literal needs an even number of digits");
      }
      auto bytes = from_hex(digits);
      if (!bytes) return fail("invalid hex literal");
      tok.kind = TokenKind::HexBytes;
      tok.bytes = std::move(*bytes);
      return Status::success();
    }
    std::uint64_t value = 0;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      value = value * 10 + static_cast<std::uint64_t>(advance() - '0');
    }
    tok.kind = TokenKind::Integer;
    tok.number = value;
    return Status::success();
  }

  Expected<Bytes> string_literal() {
    advance();  // opening quote
    Bytes out;
    while (true) {
      if (at_end()) return fail("unterminated string literal");
      char c = advance();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(static_cast<Byte>(c));
        continue;
      }
      if (at_end()) return fail("unterminated escape sequence");
      const char esc = advance();
      switch (esc) {
        case 'r': out.push_back('\r'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case '0': out.push_back('\0'); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        case 'x': {
          if (pos_ + 1 >= src_.size()) return fail("truncated \\x escape");
          const char h1 = advance();
          const char h2 = advance();
          auto byte = from_hex(std::string{h1, h2});
          if (!byte) return fail("invalid \\x escape");
          out.push_back((*byte)[0]);
          break;
        }
        default:
          return fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  Status punctuation(Token& tok) {
    const char c = advance();
    switch (c) {
      case ':': tok.kind = TokenKind::Colon; return Status::success();
      case '{': tok.kind = TokenKind::LBrace; return Status::success();
      case '}': tok.kind = TokenKind::RBrace; return Status::success();
      case '(': tok.kind = TokenKind::LParen; return Status::success();
      case ')': tok.kind = TokenKind::RParen; return Status::success();
      case ',': tok.kind = TokenKind::Comma; return Status::success();
      case '.': tok.kind = TokenKind::Dot; return Status::success();
      case '=':
        if (peek() == '=') {
          advance();
          tok.kind = TokenKind::EqualEqual;
          return Status::success();
        }
        return fail("expected '==' after '='");
      case '!':
        if (peek() == '=') {
          advance();
          tok.kind = TokenKind::BangEqual;
          return Status::success();
        }
        return fail("expected '!=' after '!'");
      default:
        return fail(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

Expected<std::vector<Token>> tokenize(std::string_view source) {
  return Scanner(source).run();
}

}  // namespace protoobf
