// Tokenizer for the ProtoSpec message-format specification language.
//
// The paper implements this stage with Lex; we use a hand-written scanner
// with precise line/column tracking so specification errors point at their
// source. Keywords are not reserved: they are plain identifiers interpreted
// contextually by the parser, which keeps field names like "end" usable.
//
// Literal forms:
//   "text\r\n"  string with C-style escapes (\r \n \t \0 \\ \" \xNN)
//   0xDEAD      hex byte string (even number of digits)
//   123         decimal integer (fixed sizes)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace protoobf {

enum class TokenKind : std::uint8_t {
  Identifier,
  Integer,
  String,     // escaped string literal -> bytes payload
  HexBytes,   // 0x... literal -> bytes payload
  Colon,
  LBrace,
  RBrace,
  LParen,
  RParen,
  Comma,
  Dot,
  EqualEqual,
  BangEqual,
  EndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;        // identifier spelling
  std::uint64_t number = 0;  // Integer payload
  Bytes bytes;             // String / HexBytes payload
  std::size_t line = 1;
  std::size_t column = 1;
};

const char* to_string(TokenKind kind);

/// Tokenizes a whole specification. '#' starts a comment until end of line.
Expected<std::vector<Token>> tokenize(std::string_view source);

}  // namespace protoobf
