#include "spec/parser.hpp"

#include <map>
#include <vector>

#include "spec/lexer.hpp"

namespace protoobf {

namespace {

/// A reference waiting for resolution once all nodes exist.
struct PendingRef {
  enum class Slot { Boundary, Condition };
  NodeId from;
  Slot slot;
  std::string path;  // dotted, as written
  std::size_t line;
  std::size_t column;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expected<Graph> run() {
    if (Status s = expect_keyword("protocol"); !s) return Unexpected(s.error());
    const Token name = current();
    if (Status s = expect(TokenKind::Identifier); !s) {
      return Unexpected(s.error());
    }
    graph_.set_protocol_name(name.text);

    auto root = parse_node_def();
    if (!root) return Unexpected(root.error());
    graph_.set_root(*root);

    if (Status s = expect(TokenKind::EndOfFile); !s) {
      return Unexpected(s.error());
    }
    if (Status s = resolve_references(); !s) return Unexpected(s.error());
    if (Status s = validate(graph_); !s) {
      return Unexpected("specification is inconsistent: " + s.error().message);
    }
    return std::move(graph_);
  }

 private:
  // --- token plumbing -------------------------------------------------------
  const Token& current() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool check(TokenKind kind) const { return current().kind == kind; }
  bool check_keyword(std::string_view kw) const {
    return check(TokenKind::Identifier) && current().text == kw;
  }
  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    ++pos_;
    return true;
  }
  bool match_keyword(std::string_view kw) {
    if (!check_keyword(kw)) return false;
    ++pos_;
    return true;
  }

  Unexpected fail_at(const Token& tok, const std::string& what) const {
    return Unexpected("spec:" + std::to_string(tok.line) + ":" +
                      std::to_string(tok.column) + ": " + what);
  }
  Unexpected fail(const std::string& what) const {
    return fail_at(current(), what);
  }

  Status expect(TokenKind kind) {
    if (match(kind)) return Status::success();
    return fail(std::string("expected ") + to_string(kind) + ", found " +
                to_string(current().kind));
  }
  Status expect_keyword(std::string_view kw) {
    if (match_keyword(kw)) return Status::success();
    return fail("expected keyword '" + std::string(kw) + "'");
  }

  // --- grammar productions --------------------------------------------------
  Expected<NodeId> parse_node_def() {
    const Token name = current();
    if (Status s = expect(TokenKind::Identifier); !s) {
      return Unexpected(s.error());
    }
    if (Status s = expect(TokenKind::Colon); !s) return Unexpected(s.error());
    return parse_type_expr(name.text);
  }

  Expected<NodeId> parse_type_expr(const std::string& name) {
    if (match_keyword("terminal")) return parse_terminal(name);
    if (match_keyword("seq")) return parse_sequence(name);
    if (match_keyword("optional")) return parse_optional(name);
    if (match_keyword("repeat")) return parse_repetition(name);
    if (match_keyword("tabular")) return parse_tabular(name);
    return fail("expected node type (terminal/seq/optional/repeat/tabular)");
  }

  Expected<NodeId> parse_terminal(const std::string& name) {
    Node node;
    node.name = name;
    node.type = NodeType::Terminal;
    const NodeId id = graph_.add_node(node);
    if (Status s = parse_boundary(id, /*required=*/true); !s) {
      return Unexpected(s.error());
    }
    while (true) {
      if (match_keyword("ascii")) {
        graph_.node(id).encoding = Encoding::AsciiDec;
      } else if (match_keyword("binary")) {
        graph_.node(id).encoding = Encoding::Binary;
      } else if (match_keyword("const")) {
        if (Status s = expect(TokenKind::LParen); !s) {
          return Unexpected(s.error());
        }
        auto value = parse_bytes_literal();
        if (!value) return Unexpected(value.error());
        graph_.node(id).const_value = std::move(*value);
        graph_.node(id).has_const = true;
        if (Status s = expect(TokenKind::RParen); !s) {
          return Unexpected(s.error());
        }
      } else {
        break;
      }
    }
    return id;
  }

  Expected<NodeId> parse_sequence(const std::string& name) {
    Node node;
    node.name = name;
    node.type = NodeType::Sequence;
    node.boundary = BoundaryKind::Delegated;
    const NodeId id = graph_.add_node(node);
    if (!check(TokenKind::LBrace)) {
      if (Status s = parse_boundary(id, /*required=*/true); !s) {
        return Unexpected(s.error());
      }
    }
    if (Status s = expect(TokenKind::LBrace); !s) return Unexpected(s.error());
    while (!check(TokenKind::RBrace)) {
      auto child = parse_node_def();
      if (!child) return Unexpected(child.error());
      graph_.node(*child).parent = id;
      graph_.node(id).children.push_back(*child);
    }
    if (Status s = expect(TokenKind::RBrace); !s) return Unexpected(s.error());
    if (graph_.node(id).children.empty()) {
      return fail("sequence '" + name + "' needs at least one sub-node");
    }
    return id;
  }

  Expected<NodeId> parse_optional(const std::string& name) {
    Node node;
    node.name = name;
    node.type = NodeType::Optional;
    node.boundary = BoundaryKind::Delegated;
    const NodeId id = graph_.add_node(node);
    if (Status s = expect(TokenKind::LParen); !s) return Unexpected(s.error());
    if (Status s = parse_condition(id); !s) return Unexpected(s.error());
    if (Status s = expect(TokenKind::RParen); !s) return Unexpected(s.error());
    if (Status s = expect(TokenKind::LBrace); !s) return Unexpected(s.error());
    auto child = parse_node_def();
    if (!child) return Unexpected(child.error());
    graph_.node(*child).parent = id;
    graph_.node(id).children.push_back(*child);
    if (Status s = expect(TokenKind::RBrace); !s) return Unexpected(s.error());
    return id;
  }

  Expected<NodeId> parse_repetition(const std::string& name) {
    Node node;
    node.name = name;
    node.type = NodeType::Repetition;
    const NodeId id = graph_.add_node(node);
    if (Status s = parse_boundary(id, /*required=*/true); !s) {
      return Unexpected(s.error());
    }
    if (Status s = expect(TokenKind::LBrace); !s) return Unexpected(s.error());
    auto child = parse_node_def();
    if (!child) return Unexpected(child.error());
    graph_.node(*child).parent = id;
    graph_.node(id).children.push_back(*child);
    if (Status s = expect(TokenKind::RBrace); !s) return Unexpected(s.error());
    return id;
  }

  Expected<NodeId> parse_tabular(const std::string& name) {
    Node node;
    node.name = name;
    node.type = NodeType::Tabular;
    node.boundary = BoundaryKind::Counter;
    const NodeId id = graph_.add_node(node);
    if (Status s = expect(TokenKind::LParen); !s) return Unexpected(s.error());
    auto path = parse_ref_path();
    if (!path) return Unexpected(path.error());
    pending_.push_back({id, PendingRef::Slot::Boundary, *path, current().line,
                        current().column});
    if (Status s = expect(TokenKind::RParen); !s) return Unexpected(s.error());
    if (Status s = expect(TokenKind::LBrace); !s) return Unexpected(s.error());
    auto child = parse_node_def();
    if (!child) return Unexpected(child.error());
    graph_.node(*child).parent = id;
    graph_.node(id).children.push_back(*child);
    if (Status s = expect(TokenKind::RBrace); !s) return Unexpected(s.error());
    return id;
  }

  Status parse_boundary(NodeId id, bool required) {
    Node& node = graph_.node(id);
    if (match_keyword("fixed")) {
      node.boundary = BoundaryKind::Fixed;
      if (Status s = expect(TokenKind::LParen); !s) return s;
      const Token size = current();
      if (Status s = expect(TokenKind::Integer); !s) return s;
      node.fixed_size = static_cast<std::size_t>(size.number);
      return expect(TokenKind::RParen);
    }
    if (match_keyword("delimited")) {
      node.boundary = BoundaryKind::Delimited;
      if (Status s = expect(TokenKind::LParen); !s) return s;
      auto delim = parse_bytes_literal();
      if (!delim) return Unexpected(delim.error());
      node.delimiter = std::move(*delim);
      return expect(TokenKind::RParen);
    }
    if (match_keyword("length")) {
      node.boundary = BoundaryKind::Length;
      if (Status s = expect(TokenKind::LParen); !s) return s;
      auto path = parse_ref_path();
      if (!path) return Unexpected(path.error());
      pending_.push_back({id, PendingRef::Slot::Boundary, *path,
                          current().line, current().column});
      return expect(TokenKind::RParen);
    }
    if (match_keyword("end")) {
      node.boundary = BoundaryKind::End;
      return Status::success();
    }
    if (match_keyword("delegated")) {
      node.boundary = BoundaryKind::Delegated;
      return Status::success();
    }
    if (required) {
      return fail("expected boundary (fixed/delimited/length/end/delegated)");
    }
    return Status::success();
  }

  Status parse_condition(NodeId id) {
    auto path = parse_ref_path();
    if (!path) return Unexpected(path.error());
    pending_.push_back({id, PendingRef::Slot::Condition, *path, current().line,
                        current().column});
    Condition& cond = graph_.node(id).condition;
    if (match(TokenKind::EqualEqual)) {
      cond.kind = Condition::Kind::Equals;
      auto value = parse_bytes_literal();
      if (!value) return Unexpected(value.error());
      cond.values.push_back(std::move(*value));
      return Status::success();
    }
    if (match(TokenKind::BangEqual)) {
      cond.kind = Condition::Kind::NotEquals;
      auto value = parse_bytes_literal();
      if (!value) return Unexpected(value.error());
      cond.values.push_back(std::move(*value));
      return Status::success();
    }
    if (match_keyword("in")) {
      cond.kind = Condition::Kind::OneOf;
      if (Status s = expect(TokenKind::LBrace); !s) return s;
      do {
        auto value = parse_bytes_literal();
        if (!value) return Unexpected(value.error());
        cond.values.push_back(std::move(*value));
      } while (match(TokenKind::Comma));
      return expect(TokenKind::RBrace);
    }
    if (match_keyword("nonzero")) {
      cond.kind = Condition::Kind::NonZero;
      return Status::success();
    }
    return fail("expected condition operator (==, !=, in, nonzero)");
  }

  Expected<Bytes> parse_bytes_literal() {
    if (check(TokenKind::String) || check(TokenKind::HexBytes)) {
      return advance().bytes;
    }
    return fail("expected a string or hex literal");
  }

  Expected<std::string> parse_ref_path() {
    const Token first = current();
    if (Status s = expect(TokenKind::Identifier); !s) {
      return Unexpected(s.error());
    }
    std::string path = first.text;
    while (match(TokenKind::Dot)) {
      const Token part = current();
      if (Status s = expect(TokenKind::Identifier); !s) {
        return Unexpected(s.error());
      }
      path += "." + part.text;
    }
    return path;
  }

  // --- reference resolution -------------------------------------------------
  Status resolve_references() {
    // Dotted paths of every node, in DFS order.
    std::vector<NodeId> order = graph_.dfs_order();
    std::vector<std::string> paths;
    paths.reserve(order.size());
    for (NodeId id : order) paths.push_back(graph_.path_of(id));

    for (const PendingRef& ref : pending_) {
      NodeId target = kNoNode;
      int matches = 0;
      for (std::size_t i = 0; i < order.size(); ++i) {
        const std::string& path = paths[i];
        const bool exact = path == ref.path;
        const bool suffix =
            path.size() > ref.path.size() &&
            path.compare(path.size() - ref.path.size(), std::string::npos,
                         ref.path) == 0 &&
            path[path.size() - ref.path.size() - 1] == '.';
        if (exact) {
          target = order[i];
          matches = 1;
          break;
        }
        if (suffix) {
          target = order[i];
          ++matches;
        }
      }
      if (matches == 0) {
        return Unexpected("spec:" + std::to_string(ref.line) + ":" +
                          std::to_string(ref.column) + ": unresolved "
                          "reference '" + ref.path + "'");
      }
      if (matches > 1) {
        return Unexpected("spec:" + std::to_string(ref.line) + ":" +
                          std::to_string(ref.column) + ": ambiguous "
                          "reference '" + ref.path + "'");
      }
      if (ref.slot == PendingRef::Slot::Boundary) {
        graph_.node(ref.from).ref = target;
      } else {
        graph_.node(ref.from).condition.ref = target;
      }
    }
    return Status::success();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Graph graph_;
  std::vector<PendingRef> pending_;
};

}  // namespace

Expected<Graph> parse_spec(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens) return Unexpected(tokens.error());
  return Parser(std::move(tokens.value())).run();
}

}  // namespace protoobf
