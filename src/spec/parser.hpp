// ProtoSpec parser: specification text -> message format graph G1.
//
// Grammar (the paper's Yacc stage; see README for a tutorial):
//
//   spec      := "protocol" IDENT nodeDef
//   nodeDef   := IDENT ":" typeExpr
//   typeExpr  := "terminal" boundary attr*
//              | "seq" [boundary] "{" nodeDef+ "}"
//              | "optional" "(" cond ")" "{" nodeDef "}"
//              | "repeat" boundary "{" nodeDef "}"
//              | "tabular" "(" ref ")" "{" nodeDef "}"
//   boundary  := "fixed" "(" INT ")" | "delimited" "(" bytes ")"
//              | "length" "(" ref ")" | "end" | "delegated"
//   attr      := "ascii" | "binary" | "const" "(" bytes ")"
//   cond      := ref "==" bytes | ref "!=" bytes
//              | ref "in" "{" bytes ("," bytes)* "}" | ref "nonzero"
//   bytes     := STRING | HEXBYTES
//   ref       := IDENT ("." IDENT)*
//
// References may be forward; they are resolved after the whole tree is
// built, first by exact dotted path from the root, then by unique path
// suffix. The resulting graph is fully validated before being returned.
#pragma once

#include <string_view>

#include "graph/graph.hpp"
#include "graph/validate.hpp"
#include "util/result.hpp"

namespace protoobf {

/// Parses a complete specification into a validated message format graph.
Expected<Graph> parse_spec(std::string_view source);

}  // namespace protoobf
