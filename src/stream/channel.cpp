#include "stream/channel.hpp"

namespace protoobf {

Expected<BytesView> Channel::send(const Inst& message, std::uint64_t msg_seed) {
  auto wire = session_.serialize(message, msg_seed);
  if (!wire) return Unexpected(wire.error());
  Bytes& frame = session_.arena().frame();
  session_.frame_hint().reserve(frame);
  if (Status s = framer_.encode(*wire, frame); !s) {
    return Unexpected(s.error());
  }
  session_.frame_hint().note(frame.size());
  return BytesView(frame);
}

void Channel::on_bytes(BytesView chunk) { reader_.feed(chunk); }

std::optional<Expected<InstPtr>> Channel::receive() {
  auto payload = reader_.next_frame();
  if (!payload.has_value()) return std::nullopt;
  auto message = session_.parse(*payload);
  // The frame is consumed: the parse copied what it needed into the pooled
  // tree, so the reader may compact/reallocate its buffer again.
  reader_.release_payloads();
  return message;
}

std::vector<Expected<InstPtr>> Channel::drain_batch() {
  // Collect every complete frame first, then parse them in one sharded
  // batch. Payloads from a buffer-aliasing framer stay valid throughout
  // (next_frame() never moves the buffer); scratch-backed payloads are
  // copied into the reusable stash before the next decode overwrites them.
  const bool zero_copy = framer_.payload_aliases_buffer();
  std::vector<BytesView> frames;
  std::size_t stashed = 0;
  while (auto payload = reader_.next_frame()) {
    if (zero_copy) {
      frames.push_back(*payload);
    } else {
      if (stashed == stash_.size()) stash_.emplace_back();
      Bytes& copy = stash_[stashed++];
      copy.assign(payload->begin(), payload->end());
      frames.push_back(BytesView(copy));
    }
  }
  if (frames.empty()) {
    reader_.release_payloads();
    return {};
  }
  auto parsed = session_.parse_batch(frames);
  reader_.release_payloads();
  return parsed;
}

}  // namespace protoobf
