// Channel: the duplex streaming endpoint of the framework.
//
// A Channel binds a Session (compiled protocol + arenas + worker pool) to a
// Framer (boundary codec) and exposes the two operations a TCP server
// actually performs: send one logical message as framed bytes, and turn an
// arbitrary received chunk into zero or more parsed messages. It is the
// streaming counterpart of Session — same "byte-identical to the plain
// protocol calls" contract, message boundaries handled for you.
//
//   Channel ch(session, framer);
//   write(fd, ch.send(msg.root(), seed).value());   // framed, arena-backed
//   ...
//   ch.on_bytes(chunk);                             // any chunking
//   while (auto m = ch.receive()) consume(**m);     // or ch.drain_batch()
//
// Buffer lifetime rules (also in README "Streaming over TCP"): the view
// send() returns aliases the session arena's frame buffer and is valid
// until the next send() on any channel sharing that session; trees from
// receive()/drain_batch() are owned by the caller but recycle into the
// session's node pool when dropped — drop them on the session's thread,
// before the session goes away.
#pragma once

#include <optional>
#include <vector>

#include "session/session.hpp"
#include "stream/framer.hpp"
#include "stream/stream_reader.hpp"

namespace protoobf {

class Channel {
 public:
  /// Both are borrowed and must outlive the channel. One channel per
  /// session thread of control; the framer must not be shared across
  /// channels (it owns decode scratch).
  Channel(Session& session, Framer& framer)
      : session_(session), framer_(framer), reader_(framer) {}

  /// Serializes `message` through the session arena and frames it. The
  /// returned view aliases the arena's frame buffer — valid until the next
  /// send(); callers that queue frames copy them.
  Expected<BytesView> send(const Inst& message, std::uint64_t msg_seed);

  /// Feeds bytes received from the transport into the reassembly buffer.
  void on_bytes(BytesView chunk);

  /// Parses the next complete buffered frame. nullopt when no complete
  /// frame is available — more bytes are needed (need_bytes()) or the
  /// stream is corrupt (failed()/resync()). A present-but-error result is a
  /// per-message parse failure; the stream itself continues past it.
  std::optional<Expected<InstPtr>> receive();

  /// Drains every complete buffered frame and parses them as one batch
  /// through the session's worker pool (Session::parse_batch) — the
  /// high-throughput path when chunks carry many messages. Result i is the
  /// i-th frame in stream order.
  std::vector<Expected<InstPtr>> drain_batch();

  /// Minimum bytes on_bytes() must deliver before receive() can progress.
  std::size_t need_bytes() const { return reader_.need_bytes(); }

  /// Static per-frame floor (Framer::min_need): the exact frame-header
  /// size for length-driven framers, 1 for delimiter-bounded ones.
  /// Transports size their first read of a frame from it.
  std::size_t min_need() const { return reader_.min_need(); }

  bool failed() const { return reader_.failed(); }
  const Error& error() const { return reader_.error(); }

  /// Skips one byte of garbage at the failure position (see
  /// StreamReader::resync()). Also drops the framer's suspended decode
  /// state — a checkpoint of the old front cannot survive the skip.
  void resync() { reader_.resync(); }

  Session& session() { return session_; }
  StreamReader& reader() { return reader_; }
  Framer& framer() { return framer_; }
  const Framer& framer() const { return framer_; }

 private:
  Session& session_;
  Framer& framer_;
  StreamReader reader_;
  std::vector<Bytes> stash_;  // drain_batch copies for scratch-backed framers
};

}  // namespace protoobf
