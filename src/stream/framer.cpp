#include "stream/framer.hpp"

#include <algorithm>
#include <unordered_set>

#include "ast/ast.hpp"
#include "core/protoobf.hpp"
#include "obs/families.hpp"
#include "runtime/parse.hpp"

namespace protoobf {

namespace {

// Mirrors the per-framer ParseResume::Stats deltas of one decode() into the
// process-wide resume counters on every exit path. Deltas (not absolutes):
// each framer keeps its own stats, the registry aggregates all of them.
struct ResumeStatsMirror {
  const ParseResume& resume;
  ParseResume::Stats before;

  explicit ResumeStatsMirror(const ParseResume& r)
      : resume(r), before(r.stats()) {}
  ~ResumeStatsMirror() {
    const ParseResume::Stats after = resume.stats();
    obs::ResumeMetrics& m = obs::ResumeMetrics::get();
    if (after.attempts > before.attempts)
      m.attempts.add(after.attempts - before.attempts);
    if (after.resumed > before.resumed)
      m.resumed.add(after.resumed - before.resumed);
    if (after.suspensions > before.suspensions)
      m.suspensions.add(after.suspensions - before.suspensions);
    if (after.invalidations > before.invalidations)
      m.invalidations.add(after.invalidations - before.invalidations);
    if (after.scanned_bytes > before.scanned_bytes)
      m.scanned_bytes.add(after.scanned_bytes - before.scanned_bytes);
  }
};

}  // namespace

// --- LengthPrefixFramer -----------------------------------------------------

LengthPrefixFramer::LengthPrefixFramer(Config config)
    : config_(std::move(config)) {
  if (config_.width < 1) config_.width = 1;
  if (config_.width > 8) config_.width = 8;
}

Status LengthPrefixFramer::encode(BytesView payload, Bytes& out) {
  if (config_.max_frame_size > 0 && payload.size() > config_.max_frame_size) {
    return Unexpected("payload of " + std::to_string(payload.size()) +
                      " bytes exceeds max_frame_size");
  }
  if (config_.width < 8 &&
      payload.size() >= (std::uint64_t{1} << (8 * config_.width))) {
    return Unexpected("payload does not fit a " +
                      std::to_string(config_.width) + "-byte length prefix");
  }
  // Write the prefix byte-wise (no temporary buffer: this is the per-frame
  // hot path the arena design keeps allocation-free).
  out.clear();
  out.reserve(config_.width + payload.size());
  const std::uint64_t length = payload.size();
  for (std::size_t i = 0; i < config_.width; ++i) {
    const std::size_t shift =
        8 * (config_.little_endian ? i : config_.width - 1 - i);
    out.push_back(static_cast<Byte>((length >> shift) & 0xff));
  }
  append(out, payload);
  return Status::success();
}

FrameDecode LengthPrefixFramer::decode(BytesView buffer) {
  if (buffer.size() < config_.width) {
    return FrameDecode::need_more(config_.width - buffer.size());
  }
  std::uint64_t length = 0;
  for (std::size_t i = 0; i < config_.width; ++i) {
    const std::size_t shift =
        8 * (config_.little_endian ? i : config_.width - 1 - i);
    length |= static_cast<std::uint64_t>(buffer[i]) << shift;
  }
  if (config_.max_frame_size > 0 && length > config_.max_frame_size) {
    return FrameDecode::fail(
        Error{"frame length " + std::to_string(length) +
                  " exceeds max_frame_size " +
                  std::to_string(config_.max_frame_size),
              0});
  }
  // Compare against the *body* room so an 8-byte (or 32-bit size_t)
  // prefix of 0xff..ff cannot overflow a `width + length` sum into a
  // bogus in-bounds total.
  const std::size_t body_room = buffer.size() - config_.width;
  if (length > body_room) {
    return FrameDecode::need_more(
        static_cast<std::size_t>(length - body_room));
  }
  return FrameDecode::frame(
      buffer.subspan(config_.width, static_cast<std::size_t>(length)),
      config_.width + static_cast<std::size_t>(length));
}

// --- ObfuscatedFramer -------------------------------------------------------

namespace {

/// The payload terminal of a frame spec: the unique terminal that carries
/// user data — not a constant, and not a holder some boundary or presence
/// condition reads.
Expected<NodeId> detect_payload(const Graph& g) {
  std::unordered_set<NodeId> referenced;
  for (const NodeId id : g.dfs_order()) {
    const Node& n = g.node(id);
    if (n.ref != kNoNode) referenced.insert(n.ref);
    if (n.condition.ref != kNoNode) referenced.insert(n.condition.ref);
  }
  NodeId found = kNoNode;
  for (const NodeId id : g.dfs_order()) {
    const Node& n = g.node(id);
    if (n.type != NodeType::Terminal || n.has_const ||
        referenced.count(id) > 0) {
      continue;
    }
    if (found != kNoNode) {
      return Unexpected(
          "frame spec has several payload candidates ('" +
          g.node(found).name + "', '" + n.name +
          "'); name one with Config::payload_path");
    }
    found = id;
  }
  if (found == kNoNode) {
    return Unexpected("frame spec has no payload terminal");
  }
  return found;
}

}  // namespace

Expected<std::unique_ptr<ObfuscatedFramer>> ObfuscatedFramer::create(
    std::shared_ptr<const ObfuscatedProtocol> framing, Config config) {
  if (framing == nullptr) {
    return Unexpected("ObfuscatedFramer needs a compiled frame protocol");
  }
  if (Status s = stream_safe(framing->wire_graph()); !s) {
    return Unexpected("frame protocol is not stream-safe: " +
                      s.error().message);
  }
  const Graph& original = framing->original();
  InstPtr skeleton = make_skeleton(original, original.root());

  Inst* slot = nullptr;
  NodeId payload_node = kNoNode;
  if (config.payload_path.empty()) {
    auto detected = detect_payload(original);
    if (!detected) return Unexpected(detected.error());
    payload_node = *detected;
    slot = ast::find_schema(*skeleton, payload_node);
  } else {
    slot = ast::find_path(original, *skeleton, config.payload_path);
    if (slot != nullptr) payload_node = slot->schema;
  }
  if (slot == nullptr) {
    return Unexpected("payload terminal '" + config.payload_path +
                      "' not reachable in the frame skeleton");
  }
  if (original.node(payload_node).type != NodeType::Terminal) {
    return Unexpected("payload node '" +
                      original.node(payload_node).name +
                      "' is not a terminal");
  }
  // The floor all decode attempts wait for: no frame of this protocol can
  // occupy fewer wire bytes than the mandatory regions of its wire graph.
  const std::size_t min_need =
      std::max<std::size_t>(1, min_wire_size(framing->wire_graph()));
  return std::unique_ptr<ObfuscatedFramer>(
      new ObfuscatedFramer(std::move(framing), std::move(config),
                           std::move(skeleton), slot, payload_node,
                           min_need));
}

ObfuscatedFramer::ObfuscatedFramer(
    std::shared_ptr<const ObfuscatedProtocol> framing, Config config,
    InstPtr skeleton, Inst* payload_slot, NodeId payload_node,
    std::size_t min_need)
    : framing_(std::move(framing)),
      config_(std::move(config)),
      rng_(config_.frame_seed),
      skeleton_(std::move(skeleton)),
      payload_slot_(payload_slot),
      payload_node_(payload_node),
      min_need_(min_need) {
  resume_.set_enabled(config_.resumable_decode);
}

Status ObfuscatedFramer::encode(BytesView payload, Bytes& out) {
  payload_slot_->value.assign(payload.begin(), payload.end());
  if (Status s = framing_->serialize_into(*skeleton_, rng_.next_u64(), out,
                                          /*spans=*/nullptr, &nodes_,
                                          &scopes_, &derive_);
      !s) {
    return s;
  }
  if (config_.max_frame_size > 0 && out.size() > config_.max_frame_size) {
    return Unexpected("framed message of " + std::to_string(out.size()) +
                      " bytes exceeds max_frame_size");
  }
  return Status::success();
}

FrameDecode ObfuscatedFramer::decode(BytesView buffer) {
  // Below the static floor no prefix parse can succeed; report the exact
  // shortfall instead of attempting (and instead of the old 1-byte hint).
  if (buffer.size() < min_need_) {
    return FrameDecode::need_more(min_need_ - buffer.size());
  }
  ResumeStatsMirror mirror(resume_);
  // The prefix parse runs resumably: a Truncated attempt suspends into
  // resume_ (partial pooled tree, delimiter-scan cursors, scopes) and the
  // next decode() on the grown front continues from the truncation point.
  // parse_prefix still uses scopes_/derive_ for the post-parse passes only,
  // so an encode() interleaved with a suspended decode never collides.
  std::size_t consumed = 0;
  auto tree = framing_->parse_prefix(buffer, &consumed, &scratch_, &scopes_,
                                     &nodes_, &derive_, &resume_);
  if (!tree) {
    const Error& e = tree.error();
    if (e.truncated()) {
      // The guard must fire before the stream stalls waiting for a frame
      // it would reject anyway. Overflow-safe: a hostile wide length field
      // can make `need` approach 2^64, so never form `size + need`.
      if (config_.max_frame_size > 0 &&
          (buffer.size() >= config_.max_frame_size ||
           e.need > config_.max_frame_size - buffer.size())) {
        // The parse itself ended Truncated (and suspended), but the cap
        // turns it into a hard failure: drop the checkpoint so it cannot
        // be resumed against whatever front follows a caller's recovery.
        resume_.invalidate();
        return FrameDecode::fail(
            Error{"frame grows past max_frame_size " +
                      std::to_string(config_.max_frame_size),
                  e.offset});
      }
      return FrameDecode::need_more(e.need);
    }
    return FrameDecode::fail(e);
  }
  if (config_.max_frame_size > 0 && consumed > config_.max_frame_size) {
    return FrameDecode::fail(Error{"frame of " + std::to_string(consumed) +
                                       " bytes exceeds max_frame_size",
                                   0});
  }
  const Inst* payload = ast::find_schema(**tree, payload_node_);
  if (payload == nullptr) {
    return FrameDecode::fail(
        Error{"decoded frame carries no payload terminal", 0});
  }
  payload_copy_.assign(payload->value.begin(), payload->value.end());
  return FrameDecode::frame(payload_copy_, consumed);
}

}  // namespace protoobf
