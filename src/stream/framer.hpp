// Framing layer of the streaming API.
//
// On TCP the receiver sees an unbounded byte stream and must recover
// message boundaries before the obfuscated parser can run. A Framer owns
// that boundary: encode() wraps one serialized message into a wire frame,
// decode() examines the front of a reassembly buffer and yields either a
// complete frame, an explicit need-more-bytes signal, or a framing error.
// Returning "need more" instead of a parse failure is the contract that
// makes incremental delivery work — a merely-truncated buffer is never an
// error (util/result.hpp's ErrorKind::Truncated carries the distinction up
// from the wire parser).
//
// Two implementations: LengthPrefixFramer is the classic transparent
// length+body frame; ObfuscatedFramer routes the framing itself through a
// compiled ObfuscatedProtocol, so the boundary — the most fingerprintable
// part of a tunnel, per ScrambleSuit — is as opaque as the payload.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>

#include "ast/pool.hpp"
#include "runtime/protocol.hpp"
#include "runtime/resume.hpp"
#include "runtime/scope.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace protoobf {

/// Outcome of Framer::decode() on the front of a reassembly buffer.
struct FrameDecode {
  enum class Kind : std::uint8_t {
    Frame,     // a complete frame was recovered
    NeedMore,  // the buffer holds only a frame prefix; `need` more bytes
    Error,     // the buffer front cannot be a frame (see StreamReader::resync)
  };

  Kind kind = Kind::NeedMore;
  BytesView payload;         // Frame: the de-framed payload
  std::size_t consumed = 0;  // Frame: bytes the frame occupied in the buffer
  std::size_t need = 1;      // NeedMore: minimum additional bytes required
  Error error;               // Error: what is wrong with the buffer front

  static FrameDecode frame(BytesView payload, std::size_t consumed) {
    FrameDecode d;
    d.kind = Kind::Frame;
    d.payload = payload;
    d.consumed = consumed;
    return d;
  }
  static FrameDecode need_more(std::size_t n) {
    // A zero need is always a framer bug — the reader would re-attempt the
    // decode on the very same bytes and spin. Loudly in debug builds; the
    // release clamp below keeps old behaviour as a backstop.
    assert(n > 0 && "framer computed need_more(0)");
    FrameDecode d;
    d.kind = Kind::NeedMore;
    d.need = n > 0 ? n : 1;
    return d;
  }
  static FrameDecode fail(Error e) {
    FrameDecode d;
    d.kind = Kind::Error;
    d.error = std::move(e);
    return d;
  }
};

/// Pluggable frame codec. Stateless with respect to the stream position:
/// decode() is always called on the front of the unconsumed buffer and may
/// be retried on the same front with more bytes appended.
class Framer {
 public:
  virtual ~Framer() = default;

  /// Replaces `out` with the framed payload, reusing its capacity — callers
  /// route every frame of a connection through one buffer (session arena).
  virtual Status encode(BytesView payload, Bytes& out) = 0;

  /// Examines the front of `buffer`. A returned payload view aliases
  /// `buffer` itself when payload_aliases_buffer() is true (valid as long
  /// as those buffer bytes stay put), otherwise framer-owned scratch that
  /// the next decode() call reuses.
  virtual FrameDecode decode(BytesView buffer) = 0;

  /// Whether decode() payloads point into the caller's buffer (zero-copy)
  /// or into framer scratch (valid only until the next decode()).
  virtual bool payload_aliases_buffer() const = 0;

  /// Static floor on the bytes any frame occupies: decode() can never
  /// recover a frame from fewer, so readers skip decode attempts (and
  /// framers skip prefix parses) until this many bytes arrived. 1 — the
  /// conservative "anything might be a frame" answer — is always safe;
  /// length-driven framers report their exact header size instead.
  virtual std::size_t min_need() const { return 1; }

  /// The reader's notification that the buffer front moved for a reason
  /// other than "this frame was decoded" or "bytes were appended" —
  /// resync() byte skips and reset(). Framers holding incremental decode
  /// state across NeedMore retries (ObfuscatedFramer's resumable prefix
  /// parse) must drop it here; stateless framers ignore it.
  virtual void invalidate_decode_state() {}
};

/// Transparent `width`-byte payload-length prefix, big- or little-endian.
class LengthPrefixFramer final : public Framer {
 public:
  static constexpr std::size_t kDefaultMaxFrame = 16 * 1024 * 1024;

  struct Config {
    std::size_t width = 4;     // prefix bytes, 1..8
    bool little_endian = false;
    // Decode rejects frames whose payload exceeds this (a garbage or
    // hostile prefix must not stall the stream waiting for gigabytes);
    // encode refuses to produce them. 0 disables the guard.
    std::size_t max_frame_size = kDefaultMaxFrame;
  };

  LengthPrefixFramer() : LengthPrefixFramer(Config()) {}
  explicit LengthPrefixFramer(Config config);

  Status encode(BytesView payload, Bytes& out) override;
  FrameDecode decode(BytesView buffer) override;
  bool payload_aliases_buffer() const override { return true; }
  std::size_t min_need() const override { return config_.width; }

  const Config& config() const { return config_; }

 private:
  Config config_;
};

/// Frames payloads through a compiled ObfuscatedProtocol: the frame spec
/// (e.g. a length+body ProtoSpec) is obfuscated like any other protocol, so
/// message boundaries carry no plaintext structure. Decoding prefix-parses
/// the frame protocol off the buffer front; ErrorKind::Truncated becomes
/// the need-more signal.
class ObfuscatedFramer final : public Framer {
 public:
  struct Config {
    // Dotted path (ast::find_path syntax) of the payload terminal in the
    // frame spec; empty auto-detects the unique non-constant, non-holder
    // terminal.
    std::string payload_path;
    // Seeds the per-frame randomness of encode() (split halves, pads).
    std::uint64_t frame_seed = 1;
    // Whole-frame (header + payload + trailer) size cap; 0 disables. Also
    // enforced on the *accumulated* buffer while a frame keeps reporting
    // NeedMore, so a hostile trickle that never completes a frame cannot
    // grow the reassembly buffer without bound.
    std::size_t max_frame_size = LengthPrefixFramer::kDefaultMaxFrame;
    // Keep a suspended prefix parse across NeedMore retries and continue
    // it when more bytes arrive (amortized O(1) decode work per delivered
    // byte, the fix for delimiter-bounded frame specs degrading to a full
    // re-parse per byte). Off = restart from byte 0 every retry, the
    // pre-resume behaviour — kept as a bench/debug baseline.
    bool resumable_decode = true;
  };

  /// Fails when the frame protocol's wire format is not stream-safe (see
  /// stream_safe(): a boundary reaching "to the end of the input" cannot
  /// delimit itself — e.g. the obfuscator mirrored the frame root) or when
  /// the payload terminal cannot be identified.
  static Expected<std::unique_ptr<ObfuscatedFramer>> create(
      std::shared_ptr<const ObfuscatedProtocol> framing, Config config);
  static Expected<std::unique_ptr<ObfuscatedFramer>> create(
      std::shared_ptr<const ObfuscatedProtocol> framing) {
    return create(std::move(framing), Config());
  }

  Status encode(BytesView payload, Bytes& out) override;
  FrameDecode decode(BytesView buffer) override;
  bool payload_aliases_buffer() const override { return false; }

  /// Static minimum wire size of the frame protocol (min_wire_size of its
  /// wire graph, floored at 1): for a length-driven frame spec this is the
  /// exact header size, so readers deliver that many bytes before the
  /// first prefix-parse attempt instead of re-parsing per byte.
  std::size_t min_need() const override { return min_need_; }

  /// Drops the suspended prefix parse (if any). StreamReader calls this on
  /// resync()/reset(); anyone decoding by hand must call it whenever the
  /// next decode() will not see the previous buffer front with bytes
  /// appended. (A shrunken buffer is additionally caught by the parser
  /// itself, so monotone test loops need no manual calls.)
  void invalidate_decode_state() override { resume_.invalidate(); }

  /// Incremental-decode accounting: attempts vs resumed attempts, bytes
  /// examined by delimiter/stop-marker scans, checkpoints dropped. The
  /// bench's decodes-per-frame / bytes-rescanned-per-frame counters and
  /// the O(frame) CI guard read these.
  const ParseResume::Stats& resume_stats() const { return resume_.stats(); }
  void reset_resume_stats() { resume_.reset_stats(); }

  /// Whether a partially decoded frame is currently suspended.
  bool decode_suspended() const { return resume_.active(); }

  const ObfuscatedProtocol& framing() const { return *framing_; }

 private:
  ObfuscatedFramer(std::shared_ptr<const ObfuscatedProtocol> framing,
                   Config config, InstPtr skeleton, Inst* payload_slot,
                   NodeId payload_node, std::size_t min_need);

  std::shared_ptr<const ObfuscatedProtocol> framing_;
  Config config_;
  Rng rng_;                // per-frame encode seeds
  InstPtr skeleton_;       // reusable logical frame; payload mutated per encode
  Inst* payload_slot_;     // the payload terminal inside skeleton_
  NodeId payload_node_;    // its schema in the original frame graph
  std::size_t min_need_;   // static floor on any frame's wire size
  BufferPool scratch_;     // mirrored-region buffers
  ScopeChain scopes_;      // reusable reference-scope table
  DeriveScratch derive_;   // derive-fixpoint work vectors
  InstPool nodes_;         // recycles frame trees across encodes/decodes
  ParseResume resume_;     // suspended prefix parse between NeedMore retries
                           // (declared after nodes_: partial trees must drop
                           // back into the pool before the pool goes away)
  Bytes payload_copy_;     // backs decode() payload views
};

}  // namespace protoobf
