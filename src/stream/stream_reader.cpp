#include "stream/stream_reader.hpp"

#include <algorithm>

namespace protoobf {

void StreamReader::feed(BytesView chunk) {
  const bool pinned = outstanding_ > 0;
  // Compact when the consumed prefix outweighs the live remainder: each
  // retained byte is then moved at most once per doubling of the consumed
  // region, keeping reassembly amortized O(1) per byte. Deferred while
  // payload views are outstanding — they alias the consumed prefix, and
  // erase() would move the bytes out from under them.
  if (!pinned && head_ > 0 && head_ >= buffered()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  if (pinned && buffer_.capacity() - buffer_.size() < chunk.size()) {
    // Growth would reallocate and free the storage the outstanding views
    // still point into. Copy into a fresh allocation and retire the old
    // one instead of freeing it; release_payloads() drops the retirees.
    Bytes grown;
    grown.reserve(std::max(buffer_.size() + chunk.size(),
                           2 * buffer_.capacity()));
    grown.assign(buffer_.begin(), buffer_.end());
    retired_.push_back(std::move(buffer_));
    buffer_ = std::move(grown);
  }
  append(buffer_, chunk);
}

std::optional<BytesView> StreamReader::next_frame() {
  if (error_.has_value()) return std::nullopt;
  if (buffered() < target_) return std::nullopt;
  const FrameDecode d = framer_.decode(window());
  switch (d.kind) {
    case FrameDecode::Kind::Frame:
      if (d.consumed == 0) {
        // A zero-byte frame cannot advance the stream; surfacing it would
        // loop forever. Degenerate (empty-message) frame specs hit this.
        error_ = Error{"framer consumed no bytes", 0};
        return std::nullopt;
      }
      head_ += d.consumed;
      target_ = min_target();
      // Only buffer-aliasing payloads pin the buffer; scratch-backed ones
      // live in the framer and follow its own next-decode rule.
      if (framer_.payload_aliases_buffer()) ++outstanding_;
      return d.payload;
    case FrameDecode::Kind::NeedMore: {
      // Saturate: a framer with its size guard disabled may legitimately
      // report astronomical needs; wrapping would re-enable per-byte
      // decode retries (or worse, a target below buffered()).
      const std::size_t have = buffered();
      target_ = d.need > static_cast<std::size_t>(-1) - have
                    ? static_cast<std::size_t>(-1)
                    : have + d.need;
      return std::nullopt;
    }
    case FrameDecode::Kind::Error:
      error_ = d.error;
      return std::nullopt;
  }
  return std::nullopt;
}

void StreamReader::release_payloads() {
  outstanding_ = 0;
  retired_.clear();
}

void StreamReader::resync() {
  error_.reset();
  if (buffered() > 0) ++head_;
  // Back to the per-frame floor: after skipping a garbage byte the front
  // is a fresh frame candidate, same as after a recovered frame. Whatever
  // decode state the framer suspended described the old front.
  target_ = min_target();
  release_payloads();
  framer_.invalidate_decode_state();
}

void StreamReader::reset() {
  buffer_.clear();
  head_ = 0;
  target_ = min_target();
  error_.reset();
  release_payloads();
  framer_.invalidate_decode_state();
}

}  // namespace protoobf
