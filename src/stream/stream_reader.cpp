#include "stream/stream_reader.hpp"

namespace protoobf {

void StreamReader::feed(BytesView chunk) {
  // Compact when the consumed prefix outweighs the live remainder: each
  // retained byte is then moved at most once per doubling of the consumed
  // region, keeping reassembly amortized O(1) per byte.
  if (head_ > 0 && head_ >= buffered()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  append(buffer_, chunk);
}

std::optional<BytesView> StreamReader::next_frame() {
  if (error_.has_value()) return std::nullopt;
  if (buffered() < target_) return std::nullopt;
  const FrameDecode d = framer_.decode(window());
  switch (d.kind) {
    case FrameDecode::Kind::Frame:
      if (d.consumed == 0) {
        // A zero-byte frame cannot advance the stream; surfacing it would
        // loop forever. Degenerate (empty-message) frame specs hit this.
        error_ = Error{"framer consumed no bytes", 0};
        return std::nullopt;
      }
      head_ += d.consumed;
      target_ = min_target();
      return d.payload;
    case FrameDecode::Kind::NeedMore: {
      // Saturate: a framer with its size guard disabled may legitimately
      // report astronomical needs; wrapping would re-enable per-byte
      // decode retries (or worse, a target below buffered()).
      const std::size_t have = buffered();
      target_ = d.need > static_cast<std::size_t>(-1) - have
                    ? static_cast<std::size_t>(-1)
                    : have + d.need;
      return std::nullopt;
    }
    case FrameDecode::Kind::Error:
      error_ = d.error;
      return std::nullopt;
  }
  return std::nullopt;
}

void StreamReader::resync() {
  error_.reset();
  if (buffered() > 0) ++head_;
  // Back to the per-frame floor: after skipping a garbage byte the front
  // is a fresh frame candidate, same as after a recovered frame.
  target_ = min_target();
}

void StreamReader::reset() {
  buffer_.clear();
  head_ = 0;
  target_ = min_target();
  error_.reset();
}

}  // namespace protoobf
