// Stream reassembly: arbitrary chunk boundaries in, complete frames out.
//
// A StreamReader owns the receive-side buffer of one connection. feed()
// appends whatever the transport delivered — a byte, a frame, forty frames
// and a half — and next_frame() hands back complete frame payloads until
// the buffer holds only a frame prefix. The reader consumes the buffer
// front-to-back with a head cursor and compacts lazily (amortized O(1) per
// byte), so steady-state reassembly reuses one allocation.
//
// Need-more accounting: a framer's NeedMore answer includes a minimum byte
// count, and the reader skips re-decoding until that many bytes arrived.
// For length-driven frame formats the hints are exact, so one-byte
// delivery costs one decode attempt per *frame*; a delimiter-bounded frame
// format still hints "one more byte", but the framer's resumable prefix
// parse continues each attempt from the previous truncation point, so the
// per-byte attempts cost amortized O(1) each instead of a full re-parse.
// The reader tells the framer when its suspended state became worthless —
// resync() and reset() call Framer::invalidate_decode_state(); compaction
// and growth do not (the unconsumed bytes never change, only their storage
// address, and framer checkpoints are window-relative).
//
// Buffer lifetime rules (also in README "Streaming over TCP"):
//   * payload views from a buffer-aliasing framer stay valid until
//     release_payloads() (which Channel calls once the frames are parsed),
//     resync(), or reset() — surviving feed(): while any handed-out
//     payload is unreleased the reader defers compaction and, when growth
//     must reallocate, retires the old allocation instead of freeing it;
//   * payload views from a scratch-backed framer (ObfuscatedFramer) are
//     valid only until the next next_frame() call.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "stream/framer.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace protoobf {

class StreamReader {
 public:
  /// `framer` is borrowed, not owned; it must outlive the reader.
  explicit StreamReader(Framer& framer)
      : framer_(framer), target_(min_target()) {}

  /// The framer's static per-frame floor: the reader never attempts a
  /// decode with fewer buffered bytes, so a length-driven framer sees one
  /// decode per frame even under byte-at-a-time delivery.
  std::size_t min_need() const { return min_target(); }

  /// Appends a received chunk. While payloads handed out by next_frame()
  /// are unreleased (buffer-aliasing framers only) the buffer never
  /// compacts and retired allocations stay alive, so those views survive;
  /// with nothing outstanding this may compact or grow the buffer freely.
  void feed(BytesView chunk);

  /// Pops the next complete frame payload. nullopt when the buffer holds
  /// no complete frame: either more bytes are needed (need_bytes()) or the
  /// stream is corrupt at the buffer front (failed(); see resync()).
  std::optional<BytesView> next_frame();

  /// Declares every payload view handed out so far consumed: compaction
  /// is allowed again and retired buffer allocations are dropped. Called
  /// by Channel after it parsed the frames; holding a payload view past
  /// this call is a use-after-free bug again.
  void release_payloads();

  /// Minimum bytes feed() must deliver before next_frame() can progress.
  std::size_t need_bytes() const {
    const std::size_t have = buffered();
    return target_ > have ? target_ - have : 0;
  }

  /// A framing error is sticky: the bytes at the buffer front can never
  /// become a frame, so pumping more input cannot help.
  bool failed() const { return error_.has_value(); }
  const Error& error() const { return *error_; }

  /// Skips one byte at the failure position and clears the error — calling
  /// this in a loop scans forward through garbage until the framer locks
  /// onto the next parseable frame. Invalidates outstanding payload views
  /// and the framer's suspended decode state (the front moved).
  void resync();

  /// Bytes currently buffered but not yet consumed by a frame.
  std::size_t buffered() const { return buffer_.size() - head_; }

  /// Total bytes the reassembly buffer currently holds, consumed prefix
  /// included (tests pin that deferred compaction still happens and that a
  /// hostile never-completing frame cannot grow this without bound).
  std::size_t reassembly_size() const { return buffer_.size(); }

  /// Payload views handed out and not yet released (aliasing framers).
  std::size_t outstanding_payloads() const { return outstanding_; }

  /// Drops all buffered bytes and clears any error. Invalidates payload
  /// views and the framer's suspended decode state.
  void reset();

  const Framer& framer() const { return framer_; }

 private:
  BytesView window() const { return BytesView(buffer_).subspan(head_); }

  /// Decode-attempt floor between frames (a zero-size frame could not
  /// advance the stream, so the floor is at least one byte).
  std::size_t min_target() const {
    const std::size_t n = framer_.min_need();
    return n > 0 ? n : 1;
  }

  Framer& framer_;
  Bytes buffer_;
  std::size_t head_ = 0;  // consumed prefix of buffer_
  std::size_t target_;    // buffered() needed before the next decode try
  std::size_t outstanding_ = 0;  // unreleased aliasing payload views
  std::vector<Bytes> retired_;   // old allocations pinned by those views
  std::optional<Error> error_;
};

}  // namespace protoobf
