#include "transform/apply.hpp"

#include <algorithm>
#include <cassert>

#include "graph/validate.hpp"
#include "transform/constraints.hpp"

namespace protoobf {

namespace {

std::string fresh_name(RewriteContext& ctx, const std::string& base,
                       const char* tag) {
  return base + "~" + tag + std::to_string(ctx.serial++);
}

/// Re-points every Length/Counter/Condition reference from `from` to `to`.
void transfer_referers(Graph& g, NodeId from, NodeId to) {
  for (NodeId id : g.dfs_order()) {
    Node& n = g.node(id);
    if (n.ref == from) n.ref = to;
    if (n.type == NodeType::Optional && n.condition.ref == from) {
      n.condition.ref = to;
    }
  }
}

/// Puts `new_top` where `old_top` was (child slot or root).
void attach_replacement(Graph& g, NodeId old_top, NodeId new_top) {
  const NodeId parent = g.node(old_top).parent;
  if (parent == kNoNode) {
    g.replace_root(new_top);
    g.node(old_top).parent = kNoNode;
  } else {
    g.replace_child(parent, old_top, new_top);
  }
}

// --- applicability ----------------------------------------------------------

bool splittable_boundary(BoundaryKind b) {
  return b == BoundaryKind::Fixed || b == BoundaryKind::Length ||
         b == BoundaryKind::End;
}

bool const_op_boundary(BoundaryKind b) {
  return b == BoundaryKind::Fixed || b == BoundaryKind::Length ||
         b == BoundaryKind::End || b == BoundaryKind::Half;
}

bool mirror_boundary(BoundaryKind b) {
  return b == BoundaryKind::Fixed || b == BoundaryKind::Length ||
         b == BoundaryKind::End || b == BoundaryKind::Half;
}

bool applicable_split_arith(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  return n.type == NodeType::Terminal && splittable_boundary(n.boundary) &&
         !has_scan_ancestor(g, id) && !has_fixed_ancestor(g, id) &&
         !inside_split_region(g, id);
}

bool applicable_split_cat(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  // SplitCat keeps bytes and sizes intact, so no ancestor constraints.
  return n.type == NodeType::Terminal && n.boundary == BoundaryKind::Fixed &&
         n.fixed_size >= 2;
}

bool applicable_const_op(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  return n.type == NodeType::Terminal && const_op_boundary(n.boundary) &&
         !has_scan_ancestor(g, id);
}

bool applicable_boundary_change(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  if (n.boundary != BoundaryKind::Delimited) return false;
  if (has_fixed_ancestor(g, id) || inside_split_region(g, id)) return false;
  // Under a delimiter-scanned region the inserted length field is encoded
  // as ASCII digits; that is only safe when no enclosing delimiter can be
  // mistaken for digits.
  for (NodeId a : g.ancestors(id)) {
    const Node& anc = g.node(a);
    if (anc.boundary == BoundaryKind::Delimited &&
        delimiter_has_digit(anc.delimiter)) {
      return false;
    }
  }
  return true;
}

bool applicable_pad_insert(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  if (n.type != NodeType::Sequence) return false;
  if (n.boundary == BoundaryKind::Fixed ||
      n.boundary == BoundaryKind::Delimited) {
    return false;
  }
  if (has_scan_ancestor(g, id) || has_fixed_ancestor(g, id) ||
      inside_split_region(g, id)) {
    return false;
  }
  // Never pad a split sequence: Half regions must stay exact halves.
  for (NodeId child : n.children) {
    if (g.node(child).boundary == BoundaryKind::Half) return false;
  }
  return true;
}

bool applicable_read_from_end(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  return mirror_boundary(n.boundary) && !n.mirrored &&
         !has_scan_ancestor(g, id);
}

bool splittable_element(const Graph& g, NodeId element) {
  const Node& e = g.node(element);
  if (e.type != NodeType::Sequence || e.children.size() < 2 ||
      e.boundary != BoundaryKind::Delegated) {
    return false;
  }
  // No reference may cross between the first child and the remaining
  // children (they end up in separate tabulars), and the element must not
  // be referenced from outside.
  const NodeId first = e.children[0];
  for (std::size_t i = 1; i < e.children.size(); ++i) {
    if (refs_cross(g, first, e.children[i])) return false;
  }
  return !externally_referenced(g, element);
}

bool applicable_tab_split(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  return n.type == NodeType::Tabular && !has_scan_ancestor(g, id) &&
         splittable_element(g, n.children[0]);
}

bool applicable_rep_split(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  return n.type == NodeType::Repetition && !has_scan_ancestor(g, id) &&
         !has_fixed_ancestor(g, id) && !inside_split_region(g, id) &&
         splittable_element(g, n.children[0]);
}

bool applicable_child_move(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  if (n.type != NodeType::Sequence || n.children.size() < 2) return false;
  if (n.boundary == BoundaryKind::Delimited) return false;
  if (has_scan_ancestor(g, id)) return false;
  // At least one swappable pair must exist; the cheap per-child filter is
  // checked here, parse-order is re-validated after the actual swap.
  std::size_t movable = 0;
  for (NodeId child : n.children) {
    const BoundaryKind b = g.node(child).boundary;
    if (b == BoundaryKind::Half || b == BoundaryKind::End) continue;
    if (subtree_has_escaping_end(g, child)) continue;
    ++movable;
  }
  return movable >= 2;
}

// --- rewrites ---------------------------------------------------------------

AppliedTransform rewrite_split(RewriteContext& ctx, TransformKind kind,
                               NodeId target) {
  Graph& g = ctx.graph;
  // Copy the fields needed before add_node invalidates references.
  const Node x = g.node(target);

  Node s;
  s.name = fresh_name(ctx, x.name, "s");
  s.type = NodeType::Sequence;
  s.boundary = x.boundary;
  s.ref = x.ref;
  s.mirrored = x.mirrored;

  Node a;
  a.name = fresh_name(ctx, x.name, "a");
  a.type = NodeType::Terminal;
  Node b;
  b.name = fresh_name(ctx, x.name, "b");
  b.type = NodeType::Terminal;

  AppliedTransform entry;
  entry.kind = kind;
  entry.target = target;

  if (kind == TransformKind::SplitCat) {
    const std::size_t p = ctx.rng.between(1, x.fixed_size - 1);
    entry.split_point = p;
    s.fixed_size = x.fixed_size;
    a.boundary = BoundaryKind::Fixed;
    a.fixed_size = p;
    b.boundary = BoundaryKind::Fixed;
    b.fixed_size = x.fixed_size - p;
  } else {
    // Arithmetic splits double the field: random half + combined half.
    if (x.boundary == BoundaryKind::Fixed) s.fixed_size = 2 * x.fixed_size;
    a.boundary = BoundaryKind::Half;
    b.boundary = BoundaryKind::End;
  }

  const NodeId sid = g.add_node(s);
  const NodeId aid = g.add_node(a);
  const NodeId bid = g.add_node(b);
  g.node(sid).children = {aid, bid};
  g.node(aid).parent = sid;
  g.node(bid).parent = sid;

  attach_replacement(g, target, sid);
  transfer_referers(g, target, sid);
  g.node(target).mirrored = false;

  entry.replacement = sid;
  entry.created_seq = sid;
  entry.created_a = aid;
  entry.created_b = bid;
  return entry;
}

AppliedTransform rewrite_const(RewriteContext& ctx, TransformKind kind,
                               NodeId target) {
  AppliedTransform entry;
  entry.kind = kind;
  entry.target = target;
  entry.replacement = target;
  do {
    entry.key = ctx.rng.bytes(8);
  } while (std::all_of(entry.key.begin(), entry.key.end(),
                       [](Byte v) { return v == 0; }));
  return entry;
}

AppliedTransform rewrite_boundary_change(RewriteContext& ctx, NodeId target) {
  Graph& g = ctx.graph;
  const bool ascii = has_scan_ancestor(g, target);
  const Node x = g.node(target);

  Node len;
  len.name = fresh_name(ctx, x.name, "len");
  len.type = NodeType::Terminal;
  len.boundary = BoundaryKind::Fixed;
  len.fixed_size = ascii ? 4 : 2;
  len.encoding = ascii ? Encoding::AsciiDec : Encoding::Binary;

  Node s;
  s.name = fresh_name(ctx, x.name, "bc");
  s.type = NodeType::Sequence;
  s.boundary = BoundaryKind::Delegated;

  const NodeId lid = g.add_node(len);
  const NodeId sid = g.add_node(s);

  AppliedTransform entry;
  entry.kind = TransformKind::BoundaryChange;
  entry.target = target;
  entry.replacement = sid;
  entry.created_seq = sid;
  entry.created_a = lid;
  entry.key = x.delimiter;  // kept for documentation/codegen
  entry.len_width = ascii ? 4 : 2;
  entry.len_ascii = ascii;

  attach_replacement(g, target, sid);
  g.node(sid).children = {lid, target};
  g.node(lid).parent = sid;
  g.node(target).parent = sid;
  g.node(target).boundary = BoundaryKind::Length;
  g.node(target).ref = lid;
  g.node(target).delimiter.clear();
  return entry;
}

AppliedTransform rewrite_pad_insert(RewriteContext& ctx, NodeId target) {
  Graph& g = ctx.graph;
  const Node x = g.node(target);

  // The pad may not displace an End-bounded child (or a child whose subtree
  // owns an escaping End region) from the end of the region.
  std::size_t max_index = x.children.size();
  for (std::size_t i = 0; i < x.children.size(); ++i) {
    const NodeId child = x.children[i];
    if (g.node(child).boundary == BoundaryKind::End ||
        subtree_has_escaping_end(g, child)) {
      max_index = i;
      break;
    }
  }

  AppliedTransform entry;
  entry.kind = TransformKind::PadInsert;
  entry.target = target;
  entry.replacement = target;
  entry.pad_size = ctx.rng.between(1, 8);
  entry.pad_index = ctx.rng.below(max_index + 1);

  Node pad;
  pad.name = fresh_name(ctx, x.name, "pad");
  pad.type = NodeType::Terminal;
  pad.boundary = BoundaryKind::Fixed;
  pad.fixed_size = entry.pad_size;
  const NodeId pid = g.add_node(pad);
  entry.created_a = pid;

  auto& children = g.node(target).children;
  children.insert(children.begin() + static_cast<std::ptrdiff_t>(entry.pad_index),
                  pid);
  g.node(pid).parent = target;
  return entry;
}

AppliedTransform rewrite_read_from_end(RewriteContext& ctx, NodeId target) {
  ctx.graph.node(target).mirrored = true;
  AppliedTransform entry;
  entry.kind = TransformKind::ReadFromEnd;
  entry.target = target;
  entry.replacement = target;
  return entry;
}

/// Shared tail of TabSplit/RepSplit: builds T1{A} and T2{E2 or second child}
/// and returns them through the entry's created slots.
void split_element(RewriteContext& ctx, NodeId element, NodeId counter_ref,
                   AppliedTransform& entry, NodeId& t1_out, NodeId& t2_out) {
  Graph& g = ctx.graph;
  const Node e = g.node(element);
  const NodeId first = e.children[0];
  const bool wrap_rest = e.children.size() > 2;

  Node t1;
  t1.name = fresh_name(ctx, e.name, "t1");
  t1.type = NodeType::Tabular;
  t1.boundary = BoundaryKind::Counter;
  t1.ref = counter_ref;
  Node t2 = t1;
  t2.name = fresh_name(ctx, e.name, "t2");

  const NodeId t1id = g.add_node(t1);
  const NodeId t2id = g.add_node(t2);

  NodeId second;
  if (wrap_rest) {
    Node rest;
    rest.name = fresh_name(ctx, e.name, "rest");
    rest.type = NodeType::Sequence;
    rest.boundary = BoundaryKind::Delegated;
    const NodeId rid = g.add_node(rest);
    for (std::size_t i = 1; i < e.children.size(); ++i) {
      g.node(rid).children.push_back(e.children[i]);
      g.node(e.children[i]).parent = rid;
    }
    entry.created_c = rid;
    second = rid;
  } else {
    second = e.children[1];
  }

  g.node(t1id).children = {first};
  g.node(first).parent = t1id;
  g.node(t2id).children = {second};
  g.node(second).parent = t2id;

  // Detach the original element shell.
  g.node(element).children.clear();
  g.node(element).parent = kNoNode;

  entry.element = element;
  t1_out = t1id;
  t2_out = t2id;
}

AppliedTransform rewrite_tab_split(RewriteContext& ctx, NodeId target) {
  Graph& g = ctx.graph;
  const Node x = g.node(target);

  Node s;
  s.name = fresh_name(ctx, x.name, "ts");
  s.type = NodeType::Sequence;
  s.boundary = BoundaryKind::Delegated;
  s.mirrored = x.mirrored;
  const NodeId sid = g.add_node(s);

  AppliedTransform entry;
  entry.kind = TransformKind::TabSplit;
  entry.target = target;
  entry.replacement = sid;
  entry.created_seq = sid;

  NodeId t1 = kNoNode, t2 = kNoNode;
  split_element(ctx, x.children[0], x.ref, entry, t1, t2);
  entry.created_a = t1;
  entry.created_b = t2;

  attach_replacement(g, target, sid);
  g.node(sid).children = {t1, t2};
  g.node(t1).parent = sid;
  g.node(t2).parent = sid;
  transfer_referers(g, target, sid);
  g.node(target).children.clear();
  g.node(target).mirrored = false;
  return entry;
}

AppliedTransform rewrite_rep_split(RewriteContext& ctx, NodeId target) {
  Graph& g = ctx.graph;
  const Node x = g.node(target);

  Node cnt;
  cnt.name = fresh_name(ctx, x.name, "cnt");
  cnt.type = NodeType::Terminal;
  cnt.boundary = BoundaryKind::Fixed;
  cnt.fixed_size = 2;
  const NodeId cid = g.add_node(cnt);

  Node s;
  s.name = fresh_name(ctx, x.name, "rs");
  s.type = NodeType::Sequence;
  // A stop-marker repetition loses its marker; the counted tabulars are
  // self-delimiting. Region-bounded repetitions keep their extent.
  s.boundary = x.boundary == BoundaryKind::Delimited ? BoundaryKind::Delegated
                                                     : x.boundary;
  if (s.boundary == BoundaryKind::Length) s.ref = x.ref;
  s.mirrored = x.mirrored;
  const NodeId sid = g.add_node(s);

  AppliedTransform entry;
  entry.kind = TransformKind::RepSplit;
  entry.target = target;
  entry.replacement = sid;
  entry.created_seq = sid;
  entry.created_a = cid;
  entry.key = x.delimiter;

  NodeId t1 = kNoNode, t2 = kNoNode;
  split_element(ctx, x.children[0], cid, entry, t1, t2);
  entry.created_b = t1;
  // split_element wrote the rest-wrapper (if any) into created_c; move it.
  entry.created_d = entry.created_c;
  entry.created_c = t2;

  attach_replacement(g, target, sid);
  g.node(sid).children = {cid, t1, t2};
  g.node(cid).parent = sid;
  g.node(t1).parent = sid;
  g.node(t2).parent = sid;
  transfer_referers(g, target, sid);
  g.node(target).children.clear();
  g.node(target).mirrored = false;
  return entry;
}

std::optional<AppliedTransform> rewrite_child_move(RewriteContext& ctx,
                                                   NodeId target) {
  Graph& g = ctx.graph;
  // Collect the movable children (cheap filters), then draw a random pair.
  std::vector<int> movable;
  const auto& children = g.node(target).children;
  for (std::size_t i = 0; i < children.size(); ++i) {
    const BoundaryKind b = g.node(children[i]).boundary;
    if (b == BoundaryKind::Half || b == BoundaryKind::End) continue;
    if (subtree_has_escaping_end(g, children[i])) continue;
    movable.push_back(static_cast<int>(i));
  }
  if (movable.size() < 2) return std::nullopt;

  const std::size_t pick_a = ctx.rng.below(movable.size());
  std::size_t pick_b = ctx.rng.below(movable.size() - 1);
  if (pick_b >= pick_a) ++pick_b;
  int i = movable[pick_a];
  int j = movable[pick_b];
  if (i > j) std::swap(i, j);

  auto& kids = g.node(target).children;
  std::swap(kids[static_cast<std::size_t>(i)],
            kids[static_cast<std::size_t>(j)]);
  if (Status s = validate_parse_order(g); !s) {
    std::swap(kids[static_cast<std::size_t>(i)],
              kids[static_cast<std::size_t>(j)]);  // roll back
    return std::nullopt;
  }

  AppliedTransform entry;
  entry.kind = TransformKind::ChildMove;
  entry.target = target;
  entry.replacement = target;
  entry.child_i = i;
  entry.child_j = j;
  return entry;
}

}  // namespace

bool applicable(const Graph& graph, TransformKind kind, NodeId target) {
  switch (kind) {
    case TransformKind::SplitAdd:
    case TransformKind::SplitSub:
    case TransformKind::SplitXor:
      return applicable_split_arith(graph, target);
    case TransformKind::SplitCat:
      return applicable_split_cat(graph, target);
    case TransformKind::ConstAdd:
    case TransformKind::ConstSub:
    case TransformKind::ConstXor:
      return applicable_const_op(graph, target);
    case TransformKind::BoundaryChange:
      return applicable_boundary_change(graph, target);
    case TransformKind::PadInsert:
      return applicable_pad_insert(graph, target);
    case TransformKind::ReadFromEnd:
      return applicable_read_from_end(graph, target);
    case TransformKind::TabSplit:
      return applicable_tab_split(graph, target);
    case TransformKind::RepSplit:
      return applicable_rep_split(graph, target);
    case TransformKind::ChildMove:
      return applicable_child_move(graph, target);
  }
  return false;
}

std::optional<AppliedTransform> try_apply(RewriteContext& ctx,
                                          TransformKind kind, NodeId target) {
  if (!applicable(ctx.graph, kind, target)) return std::nullopt;
  switch (kind) {
    case TransformKind::SplitAdd:
    case TransformKind::SplitSub:
    case TransformKind::SplitXor:
    case TransformKind::SplitCat:
      return rewrite_split(ctx, kind, target);
    case TransformKind::ConstAdd:
    case TransformKind::ConstSub:
    case TransformKind::ConstXor:
      return rewrite_const(ctx, kind, target);
    case TransformKind::BoundaryChange:
      return rewrite_boundary_change(ctx, target);
    case TransformKind::PadInsert:
      return rewrite_pad_insert(ctx, target);
    case TransformKind::ReadFromEnd:
      return rewrite_read_from_end(ctx, target);
    case TransformKind::TabSplit:
      return rewrite_tab_split(ctx, target);
    case TransformKind::RepSplit:
      return rewrite_rep_split(ctx, target);
    case TransformKind::ChildMove:
      return rewrite_child_move(ctx, target);
  }
  return std::nullopt;
}

}  // namespace protoobf
