// Graph rewriting: pattern a => pattern b for each generic transformation.
//
// A generic transformation T turns a graph pattern a into a graph pattern b
// under applicability constraints (paper §V-B). try_apply() checks the
// constraints for (kind, target), performs the rewrite in place, and returns
// the journal entry; std::nullopt means the transformation is not applicable
// there (the graph is left untouched, ChildMove rolls itself back when the
// swapped graph fails parse-order validation).
#pragma once

#include <optional>

#include "graph/graph.hpp"
#include "transform/journal.hpp"
#include "util/rng.hpp"

namespace protoobf {

/// Mutable context threaded through rewrites: the graph under obfuscation,
/// the randomness source for transformation parameters, and a serial counter
/// guaranteeing unique names for created nodes.
struct RewriteContext {
  Graph& graph;
  Rng& rng;
  unsigned serial = 0;
};

/// Pure applicability check (no side effect). ChildMove may still fail in
/// try_apply() if the randomly chosen pair breaks parse order.
bool applicable(const Graph& graph, TransformKind kind, NodeId target);

/// Applies `kind` to `target` if permitted; returns the journal entry.
std::optional<AppliedTransform> try_apply(RewriteContext& ctx,
                                          TransformKind kind, NodeId target);

}  // namespace protoobf
