#include "transform/constraints.hpp"

#include <algorithm>

namespace protoobf {

bool has_scan_ancestor(const Graph& g, NodeId id) {
  for (NodeId a : g.ancestors(id)) {
    const Node& n = g.node(a);
    if (n.boundary == BoundaryKind::Delimited) return true;
  }
  return false;
}

bool has_fixed_ancestor(const Graph& g, NodeId id) {
  for (NodeId a : g.ancestors(id)) {
    if (g.node(a).boundary == BoundaryKind::Fixed) return true;
  }
  return false;
}

bool inside_split_region(const Graph& g, NodeId id) {
  for (NodeId a : g.ancestors(id)) {
    const Node& n = g.node(a);
    if (n.type == NodeType::Sequence && !n.children.empty() &&
        g.node(n.children[0]).boundary == BoundaryKind::Half) {
      return true;
    }
  }
  return false;
}

namespace {

/// True when `owner` is a region owner: a node with an explicit extent.
bool owns_region(const Node& n) {
  return n.boundary == BoundaryKind::Fixed ||
         n.boundary == BoundaryKind::Length ||
         n.boundary == BoundaryKind::Delimited ||
         n.boundary == BoundaryKind::Half;
}

void collect_subtree(const Graph& g, NodeId id, std::vector<NodeId>& out) {
  out.push_back(id);
  for (NodeId child : g.node(id).children) collect_subtree(g, child, out);
}

}  // namespace

std::vector<NodeId> subtree_ids(const Graph& g, NodeId id) {
  std::vector<NodeId> out;
  collect_subtree(g, id, out);
  return out;
}

bool subtree_has_escaping_end(const Graph& g, NodeId id) {
  for (NodeId n : subtree_ids(g, id)) {
    if (g.node(n).boundary != BoundaryKind::End) continue;
    if (n == id) return true;  // id itself is End-bounded: owner is above
    // Walk up from the End node towards `id`; the End region is contained
    // if some node on the way (including `id`) owns an explicit region.
    bool contained = false;
    for (NodeId a = g.node(n).parent; a != kNoNode; a = g.node(a).parent) {
      if (owns_region(g.node(a))) {
        contained = true;
        break;
      }
      if (a == id) break;  // reached the subtree root without an owner
    }
    if (!contained) return true;
  }
  return false;
}

namespace {

bool contains(const std::vector<NodeId>& set, NodeId id) {
  return std::find(set.begin(), set.end(), id) != set.end();
}

/// All (referer, target) pairs in the reachable graph.
std::vector<std::pair<NodeId, NodeId>> all_refs(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> refs;
  for (NodeId id : g.dfs_order()) {
    const Node& n = g.node(id);
    if (n.ref != kNoNode) refs.emplace_back(id, n.ref);
    if (n.type == NodeType::Optional && n.condition.ref != kNoNode) {
      refs.emplace_back(id, n.condition.ref);
    }
  }
  return refs;
}

}  // namespace

bool refs_cross(const Graph& g, NodeId a, NodeId b) {
  const auto in_a = subtree_ids(g, a);
  const auto in_b = subtree_ids(g, b);
  for (const auto& [from, to] : all_refs(g)) {
    const bool from_a = contains(in_a, from);
    const bool from_b = contains(in_b, from);
    const bool to_a = contains(in_a, to);
    const bool to_b = contains(in_b, to);
    if ((from_a && to_b) || (from_b && to_a)) return true;
    // Reference into either subtree from entirely outside both.
    if ((to_a && !from_a && !from_b) || (to_b && !from_a && !from_b)) {
      return true;
    }
  }
  return false;
}

bool externally_referenced(const Graph& g, NodeId id) {
  const auto inside = subtree_ids(g, id);
  for (const auto& [from, to] : all_refs(g)) {
    if (contains(inside, to) && !contains(inside, from)) return true;
  }
  return false;
}

bool delimiter_has_digit(BytesView delimiter) {
  return std::any_of(delimiter.begin(), delimiter.end(),
                     [](Byte b) { return b >= '0' && b <= '9'; });
}

}  // namespace protoobf
