// Applicability constraints for the generic transformations (paper Table II).
//
// The paper attaches constraints to each generic transformation ("Boundary
// of parent nodes must be either Delegated or End", "parent nodes can be
// anything but Delimited", ...). This header centralizes the structural
// predicates those constraints compile down to in our model, plus the two
// refinements DESIGN.md §5 documents:
//
//  * size-changing transformations are rejected under Fixed-size ancestors
//    and inside already-split regions (a Half boundary requires its two
//    halves to stay equal);
//  * byte-randomizing transformations are rejected under any ancestor whose
//    extent is found by scanning for a delimiter (Delimited nodes and
//    stop-marker Repetitions), because random bytes could contain the
//    delimiter and derail the scan.
#pragma once

#include "graph/graph.hpp"

namespace protoobf {

/// Any ancestor (strictly above `id`) whose extent is delimiter-scanned:
/// a Delimited node or a Delimited (stop-marker) Repetition.
bool has_scan_ancestor(const Graph& g, NodeId id);

/// Any ancestor with a Fixed boundary (its total size is frozen by spec).
bool has_fixed_ancestor(const Graph& g, NodeId id);

/// Any ancestor that is a split sequence (first child has a Half boundary).
bool inside_split_region(const Graph& g, NodeId id);

/// True when the subtree rooted at `id` contains an End-bounded node whose
/// region owner lies strictly above `id` — such a subtree must stay the
/// last thing emitted in its region.
bool subtree_has_escaping_end(const Graph& g, NodeId id);

/// True when some reference (Length/Counter boundary or Optional condition)
/// crosses between the subtree rooted at `a` and the subtree rooted at `b`
/// (either direction), or reaches `a`/`b` themselves from outside.
bool refs_cross(const Graph& g, NodeId a, NodeId b);

/// True when any node outside the subtree of `id` references `id` or one of
/// its descendants.
bool externally_referenced(const Graph& g, NodeId id);

/// True when the delimiter contains any ASCII digit byte. An ASCII-decimal
/// length field may only be inserted under scanned regions whose delimiters
/// are digit-free, otherwise the inserted digits could form a spurious
/// delimiter match.
bool delimiter_has_digit(BytesView delimiter);

/// Collects the node ids of the subtree rooted at `id` (including `id`).
std::vector<NodeId> subtree_ids(const Graph& g, NodeId id);

}  // namespace protoobf
