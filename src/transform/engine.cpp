#include "transform/engine.hpp"

#include <span>

#include "graph/validate.hpp"
#include "transform/apply.hpp"
#include "util/rng.hpp"

namespace protoobf {

Expected<ObfuscationResult> obfuscate(const Graph& g1,
                                      const ObfuscationConfig& config) {
  if (Status s = validate(g1); !s) {
    return Unexpected("input graph invalid: " + s.error().message);
  }

  ObfuscationResult result{g1.clone(), {}, {}};
  Graph& g = result.graph;
  Rng rng(config.seed);
  RewriteContext ctx{g, rng, 0};

  std::vector<TransformKind> kinds = config.enabled;
  if (kinds.empty()) {
    kinds.assign(std::begin(kAllTransformKinds), std::end(kAllTransformKinds));
  }

  for (int round = 0; round < config.per_node; ++round) {
    const std::vector<NodeId> snapshot = g.dfs_order();
    for (NodeId id : snapshot) {
      // A node may have been detached by a transformation applied earlier in
      // this round (e.g. the element shell removed by TabSplit).
      const auto positions = g.dfs_positions();
      if (id >= positions.size() ||
          positions[id] == static_cast<std::size_t>(-1)) {
        continue;
      }
      std::vector<TransformKind> order = kinds;
      rng.shuffle(std::span<TransformKind>(order));
      for (TransformKind kind : order) {
        if (auto entry = try_apply(ctx, kind, id)) {
          result.journal.push_back(*entry);
          ++result.stats.applied;
          ++result.stats.per_kind[static_cast<std::size_t>(kind)];
          break;
        }
      }
    }
  }

  if (Status s = validate(g); !s) {
    return Unexpected("internal error: obfuscated graph failed validation: " +
                      s.error().message);
  }
  return result;
}

}  // namespace protoobf
