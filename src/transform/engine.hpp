// The obfuscation engine (paper §VI).
//
// "Each node of the graph is analyzed to identify compatible generic
// transformations. A transformation is randomly chosen among them and
// applied to the node. This routine is applied as many times as indicated
// by a parameter specified in the framework."
//
// `per_node` is that parameter — the paper's "number of obfuscations per
// node" (0 to 4 in the evaluation). Each round walks a snapshot of the
// current graph, so nodes created by earlier rounds are themselves
// obfuscated in later rounds; this is why the number of effectively applied
// transformations grows super-linearly with the parameter, exactly as in
// Tables III and IV.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "transform/journal.hpp"
#include "util/result.hpp"

namespace protoobf {

struct ObfuscationConfig {
  std::uint64_t seed = 0x70b5;
  int per_node = 1;  // obfuscation rounds per node (0 = identity)
  std::vector<TransformKind> enabled;  // empty = every generic transformation
};

struct ObfuscationStats {
  std::size_t applied = 0;
  std::array<std::size_t, kTransformKindCount> per_kind{};
};

struct ObfuscationResult {
  Graph graph;  // G(n+1)
  Journal journal;
  ObfuscationStats stats;
};

/// Applies `per_node` rounds of random applicable transformations to a
/// validated graph. The result re-validates by construction; a failure here
/// indicates a framework bug and is returned as an error.
Expected<ObfuscationResult> obfuscate(const Graph& g1,
                                      const ObfuscationConfig& config);

}  // namespace protoobf
