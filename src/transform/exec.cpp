#include "transform/exec.hpp"

#include <algorithm>

namespace protoobf {

namespace {

Unexpected exec_fail(const AppliedTransform& entry, const std::string& what) {
  return Unexpected(std::string(to_string(entry.kind)) + ": " + what);
}

// --- forward operations -----------------------------------------------------

Status forward_split(InstPtr& p, const AppliedTransform& e, Rng& rng) {
  const Bytes v = std::move(p->value);
  Bytes a, b;
  switch (e.kind) {
    case TransformKind::SplitAdd:
      a = rng.bytes(v.size());
      b = add_mod256(v, a);
      break;
    case TransformKind::SplitSub:
      a = rng.bytes(v.size());
      b = sub_mod256(v, a);
      break;
    case TransformKind::SplitXor:
      a = rng.bytes(v.size());
      b = xor_bytes(v, a);
      break;
    case TransformKind::SplitCat: {
      if (v.size() < e.split_point) {
        return exec_fail(e, "value shorter than split point");
      }
      a.assign(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(e.split_point));
      b.assign(v.begin() + static_cast<std::ptrdiff_t>(e.split_point), v.end());
      break;
    }
    default:
      return exec_fail(e, "not a split");
  }
  std::vector<InstPtr> children;
  children.push_back(ast::terminal(e.created_a, std::move(a)));
  children.push_back(ast::terminal(e.created_b, std::move(b)));
  p = ast::composite(e.created_seq, std::move(children));
  return Status::success();
}

Status inverse_split(InstPtr& p, const AppliedTransform& e) {
  if (p->children.size() != 2) {
    return exec_fail(e, "split sequence without two halves");
  }
  const Bytes& a = p->children[0]->value;
  const Bytes& b = p->children[1]->value;
  if (e.kind != TransformKind::SplitCat && a.size() != b.size()) {
    return exec_fail(e, "split halves of unequal size");
  }
  Bytes v;
  switch (e.kind) {
    case TransformKind::SplitAdd: v = sub_mod256(b, a); break;
    case TransformKind::SplitSub: v = add_mod256(b, a); break;
    case TransformKind::SplitXor: v = xor_bytes(b, a); break;
    case TransformKind::SplitCat: v = concat(a, b); break;
    default: return exec_fail(e, "not a split");
  }
  p = ast::terminal(e.target, std::move(v));
  return Status::success();
}

void forward_const(Inst& p, const AppliedTransform& e) {
  switch (e.kind) {
    case TransformKind::ConstAdd: p.value = add_key(p.value, e.key); break;
    case TransformKind::ConstSub: p.value = sub_key(p.value, e.key); break;
    case TransformKind::ConstXor: p.value = xor_key(p.value, e.key); break;
    default: break;
  }
}

void inverse_const(Inst& p, const AppliedTransform& e) {
  switch (e.kind) {
    case TransformKind::ConstAdd: p.value = sub_key(p.value, e.key); break;
    case TransformKind::ConstSub: p.value = add_key(p.value, e.key); break;
    case TransformKind::ConstXor: p.value = xor_key(p.value, e.key); break;
    default: break;
  }
}

Status forward_boundary_change(InstPtr& p, const AppliedTransform& e) {
  // Width-correct placeholder; the real value is set by the holder fixpoint
  // (runtime/derive) once the final wire size of the data child is known.
  Bytes placeholder = e.len_ascii ? ascii_dec_encode(0, e.len_width)
                                  : Bytes(e.len_width, 0);
  std::vector<InstPtr> children;
  children.push_back(ast::terminal(e.created_a, std::move(placeholder)));
  children.push_back(std::move(p));
  p = ast::composite(e.created_seq, std::move(children));
  return Status::success();
}

Status inverse_boundary_change(InstPtr& p, const AppliedTransform& e) {
  if (p->children.size() != 2 || p->children[1]->schema != e.target) {
    return exec_fail(e, "unexpected boundary-change shape");
  }
  p = std::move(p->children[1]);
  return Status::success();
}

Status forward_pad(Inst& p, const AppliedTransform& e, Rng& rng) {
  if (e.pad_index > p.children.size()) {
    return exec_fail(e, "pad index out of range");
  }
  p.children.insert(
      p.children.begin() + static_cast<std::ptrdiff_t>(e.pad_index),
      ast::terminal(e.created_a, rng.bytes(e.pad_size)));
  return Status::success();
}

Status inverse_pad(Inst& p, const AppliedTransform& e) {
  if (e.pad_index >= p.children.size() ||
      p.children[e.pad_index]->schema != e.created_a) {
    return exec_fail(e, "pad not found at recorded index");
  }
  p.children.erase(p.children.begin() +
                   static_cast<std::ptrdiff_t>(e.pad_index));
  return Status::success();
}

Status forward_group_split(InstPtr& p, const AppliedTransform& e,
                           NodeId cnt_node, NodeId t1_node, NodeId t2_node,
                           NodeId rest_node) {
  std::vector<InstPtr> elements = std::move(p->children);
  std::vector<InstPtr> firsts;
  std::vector<InstPtr> seconds;
  firsts.reserve(elements.size());
  seconds.reserve(elements.size());
  for (InstPtr& element : elements) {
    if (element->children.size() < 2) {
      return exec_fail(e, "element with fewer than two children");
    }
    firsts.push_back(std::move(element->children[0]));
    if (rest_node == kNoNode) {
      seconds.push_back(std::move(element->children[1]));
    } else {
      std::vector<InstPtr> rest;
      for (std::size_t i = 1; i < element->children.size(); ++i) {
        rest.push_back(std::move(element->children[i]));
      }
      seconds.push_back(ast::composite(rest_node, std::move(rest)));
    }
  }
  const std::size_t m = firsts.size();
  std::vector<InstPtr> children;
  if (cnt_node != kNoNode) {
    children.push_back(
        ast::terminal(cnt_node, be_encode(static_cast<std::uint64_t>(m), 2)));
  }
  children.push_back(ast::composite(t1_node, std::move(firsts)));
  children.push_back(ast::composite(t2_node, std::move(seconds)));
  p = ast::composite(e.created_seq, std::move(children));
  return Status::success();
}

Status inverse_group_split(InstPtr& p, const AppliedTransform& e,
                           bool has_cnt, NodeId rest_node) {
  const std::size_t expected = has_cnt ? 3 : 2;
  if (p->children.size() != expected) {
    return exec_fail(e, "unexpected group-split shape");
  }
  Inst& t1 = *p->children[expected - 2];
  Inst& t2 = *p->children[expected - 1];
  if (t1.children.size() != t2.children.size()) {
    return exec_fail(e, "tabular halves with different element counts");
  }
  std::vector<InstPtr> elements;
  elements.reserve(t1.children.size());
  for (std::size_t k = 0; k < t1.children.size(); ++k) {
    std::vector<InstPtr> element_children;
    element_children.push_back(std::move(t1.children[k]));
    if (rest_node == kNoNode) {
      element_children.push_back(std::move(t2.children[k]));
    } else {
      Inst& rest = *t2.children[k];
      for (auto& sub : rest.children) {
        element_children.push_back(std::move(sub));
      }
    }
    elements.push_back(
        ast::composite(e.element, std::move(element_children)));
  }
  p = ast::composite(e.target, std::move(elements));
  return Status::success();
}

Status forward_child_move(Inst& p, const AppliedTransform& e) {
  const auto i = static_cast<std::size_t>(e.child_i);
  const auto j = static_cast<std::size_t>(e.child_j);
  if (j >= p.children.size()) {
    return exec_fail(e, "swap index out of range");
  }
  std::swap(p.children[i], p.children[j]);
  return Status::success();
}

// --- generic traversal ------------------------------------------------------

/// Applies `op` at each instance whose schema equals `match`, bottom-first
/// is not needed: an instance of `match` can never nest inside another one.
template <typename Op>
Status for_each_match(InstPtr& p, NodeId match, Op&& op) {
  if (p->schema == match) return op(p);
  if (!p->present) return Status::success();
  for (InstPtr& child : p->children) {
    if (Status s = for_each_match(child, match, op); !s) return s;
  }
  return Status::success();
}

}  // namespace

Status forward_entry(InstPtr& root, const AppliedTransform& entry, Rng& rng) {
  switch (entry.kind) {
    case TransformKind::SplitAdd:
    case TransformKind::SplitSub:
    case TransformKind::SplitXor:
    case TransformKind::SplitCat:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_split(p, entry, rng);
      });
    case TransformKind::ConstAdd:
    case TransformKind::ConstSub:
    case TransformKind::ConstXor:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        forward_const(*p, entry);
        return Status::success();
      });
    case TransformKind::BoundaryChange:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_boundary_change(p, entry);
      });
    case TransformKind::PadInsert:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_pad(*p, entry, rng);
      });
    case TransformKind::ReadFromEnd:
      return Status::success();  // handled at emission/parse time
    case TransformKind::TabSplit:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_group_split(p, entry, kNoNode, entry.created_a,
                                   entry.created_b, entry.created_c);
      });
    case TransformKind::RepSplit:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_group_split(p, entry, entry.created_a, entry.created_b,
                                   entry.created_c, entry.created_d);
      });
    case TransformKind::ChildMove:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_child_move(*p, entry);
      });
  }
  return Status::success();
}

Status inverse_entry(InstPtr& root, const AppliedTransform& entry) {
  switch (entry.kind) {
    case TransformKind::SplitAdd:
    case TransformKind::SplitSub:
    case TransformKind::SplitXor:
    case TransformKind::SplitCat:
      return for_each_match(root, entry.created_seq, [&](InstPtr& p) {
        return inverse_split(p, entry);
      });
    case TransformKind::ConstAdd:
    case TransformKind::ConstSub:
    case TransformKind::ConstXor:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        inverse_const(*p, entry);
        return Status::success();
      });
    case TransformKind::BoundaryChange:
      return for_each_match(root, entry.created_seq, [&](InstPtr& p) {
        return inverse_boundary_change(p, entry);
      });
    case TransformKind::PadInsert:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return inverse_pad(*p, entry);
      });
    case TransformKind::ReadFromEnd:
      return Status::success();
    case TransformKind::TabSplit:
      return for_each_match(root, entry.created_seq, [&](InstPtr& p) {
        return inverse_group_split(p, entry, /*has_cnt=*/false,
                                   entry.created_c);
      });
    case TransformKind::RepSplit:
      return for_each_match(root, entry.created_seq, [&](InstPtr& p) {
        return inverse_group_split(p, entry, /*has_cnt=*/true,
                                   entry.created_d);
      });
    case TransformKind::ChildMove:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_child_move(*p, entry);  // swap is its own inverse
      });
  }
  return Status::success();
}

Status forward_all(InstPtr& root, const Journal& journal, Rng& rng) {
  for (const AppliedTransform& entry : journal) {
    if (Status s = forward_entry(root, entry, rng); !s) return s;
  }
  return Status::success();
}

Status inverse_all(InstPtr& root, const Journal& journal) {
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    if (Status s = inverse_entry(root, *it); !s) return s;
  }
  return Status::success();
}

Expected<InstPtr> invert_clone(const Inst& wire_subtree,
                               const Journal& journal) {
  InstPtr copy = ast::clone(wire_subtree);
  if (Status s = inverse_all(copy, journal); !s) return Unexpected(s.error());
  return copy;
}

Expected<InstPtr> rerun_chain(NodeId origin, Bytes logical_value,
                              const Journal& journal,
                              const std::vector<std::size_t>& chain,
                              Rng& rng) {
  InstPtr p = ast::terminal(origin, std::move(logical_value));
  for (std::size_t idx : chain) {
    if (Status s = forward_entry(p, journal[idx], rng); !s) {
      return Unexpected(s.error());
    }
  }
  return p;
}

}  // namespace protoobf
