#include "transform/exec.hpp"

#include <algorithm>

namespace protoobf {

namespace {

Unexpected exec_fail(const AppliedTransform& entry, const std::string& what) {
  return Unexpected(std::string(to_string(entry.kind)) + ": " + what);
}

// --- forward operations -----------------------------------------------------
//
// Replacement nodes come from the pool (recycled node + recycled payload
// capacity) and replaced nodes return to it, so steady-state journal replay
// touches the heap only while buffers are still growing toward their
// high-water capacity. Randomness is drawn in exactly the order the
// original heap implementation drew it, keeping wire images bit-identical.

Status forward_split(InstPtr& p, const AppliedTransform& e, Rng& rng,
                     InstPool* pool) {
  InstPtr first = ast::make(pool, e.created_a);
  InstPtr second = ast::make(pool, e.created_b);
  const Bytes& v = p->value;
  switch (e.kind) {
    case TransformKind::SplitAdd:
      rng.fill(first->value, v.size());
      add_mod256_into(second->value, v, first->value);
      break;
    case TransformKind::SplitSub:
      rng.fill(first->value, v.size());
      sub_mod256_into(second->value, v, first->value);
      break;
    case TransformKind::SplitXor:
      rng.fill(first->value, v.size());
      xor_bytes_into(second->value, v, first->value);
      break;
    case TransformKind::SplitCat: {
      if (v.size() < e.split_point) {
        return exec_fail(e, "value shorter than split point");
      }
      first->value.assign(
          v.begin(), v.begin() + static_cast<std::ptrdiff_t>(e.split_point));
      second->value.assign(
          v.begin() + static_cast<std::ptrdiff_t>(e.split_point), v.end());
      break;
    }
    default:
      return exec_fail(e, "not a split");
  }
  InstPtr seq = ast::make(pool, e.created_seq);
  seq->children.reserve(2);
  seq->children.push_back(std::move(first));
  seq->children.push_back(std::move(second));
  p = std::move(seq);
  return Status::success();
}

Status inverse_split(InstPtr& p, const AppliedTransform& e, InstPool* pool) {
  if (p->children.size() != 2) {
    return exec_fail(e, "split sequence without two halves");
  }
  const Bytes& a = p->children[0]->value;
  const Bytes& b = p->children[1]->value;
  if (e.kind != TransformKind::SplitCat && a.size() != b.size()) {
    return exec_fail(e, "split halves of unequal size");
  }
  InstPtr merged = ast::make(pool, e.target);
  switch (e.kind) {
    case TransformKind::SplitAdd: sub_mod256_into(merged->value, b, a); break;
    case TransformKind::SplitSub: add_mod256_into(merged->value, b, a); break;
    case TransformKind::SplitXor: xor_bytes_into(merged->value, b, a); break;
    case TransformKind::SplitCat:
      merged->value.assign(a.begin(), a.end());
      append(merged->value, b);
      break;
    default: return exec_fail(e, "not a split");
  }
  p = std::move(merged);
  return Status::success();
}

void forward_const(Inst& p, const AppliedTransform& e) {
  switch (e.kind) {
    case TransformKind::ConstAdd: add_key_in(p.value, e.key); break;
    case TransformKind::ConstSub: sub_key_in(p.value, e.key); break;
    case TransformKind::ConstXor: xor_key_in(p.value, e.key); break;
    default: break;
  }
}

void inverse_const(Inst& p, const AppliedTransform& e) {
  switch (e.kind) {
    case TransformKind::ConstAdd: sub_key_in(p.value, e.key); break;
    case TransformKind::ConstSub: add_key_in(p.value, e.key); break;
    case TransformKind::ConstXor: xor_key_in(p.value, e.key); break;
    default: break;
  }
}

Status forward_boundary_change(InstPtr& p, const AppliedTransform& e,
                               InstPool* pool) {
  // Width-correct placeholder; the real value is set by the holder fixpoint
  // (runtime/derive) once the final wire size of the data child is known.
  InstPtr length = ast::make(pool, e.created_a);
  if (e.len_ascii) {
    ascii_dec_encode_into(length->value, 0, e.len_width);
  } else {
    length->value.assign(e.len_width, 0);
  }
  InstPtr seq = ast::make(pool, e.created_seq);
  seq->children.reserve(2);
  seq->children.push_back(std::move(length));
  seq->children.push_back(std::move(p));
  p = std::move(seq);
  return Status::success();
}

Status inverse_boundary_change(InstPtr& p, const AppliedTransform& e) {
  if (p->children.size() != 2 || p->children[1]->schema != e.target) {
    return exec_fail(e, "unexpected boundary-change shape");
  }
  p = std::move(p->children[1]);
  return Status::success();
}

Status forward_pad(Inst& p, const AppliedTransform& e, Rng& rng,
                   InstPool* pool) {
  if (e.pad_index > p.children.size()) {
    return exec_fail(e, "pad index out of range");
  }
  InstPtr pad = ast::make(pool, e.created_a);
  rng.fill(pad->value, e.pad_size);
  p.children.insert(
      p.children.begin() + static_cast<std::ptrdiff_t>(e.pad_index),
      std::move(pad));
  return Status::success();
}

Status inverse_pad(Inst& p, const AppliedTransform& e) {
  if (e.pad_index >= p.children.size() ||
      p.children[e.pad_index]->schema != e.created_a) {
    return exec_fail(e, "pad not found at recorded index");
  }
  p.children.erase(p.children.begin() +
                   static_cast<std::ptrdiff_t>(e.pad_index));
  return Status::success();
}

Status forward_group_split(InstPtr& p, const AppliedTransform& e,
                           NodeId cnt_node, NodeId t1_node, NodeId t2_node,
                           NodeId rest_node, InstPool* pool) {
  std::vector<InstPtr> elements = std::move(p->children);
  InstPtr firsts = ast::make(pool, t1_node);
  InstPtr seconds = ast::make(pool, t2_node);
  firsts->children.reserve(elements.size());
  seconds->children.reserve(elements.size());
  for (InstPtr& element : elements) {
    if (element->children.size() < 2) {
      return exec_fail(e, "element with fewer than two children");
    }
    firsts->children.push_back(std::move(element->children[0]));
    if (rest_node == kNoNode) {
      seconds->children.push_back(std::move(element->children[1]));
    } else {
      InstPtr rest = ast::make(pool, rest_node);
      rest->children.reserve(element->children.size() - 1);
      for (std::size_t i = 1; i < element->children.size(); ++i) {
        rest->children.push_back(std::move(element->children[i]));
      }
      seconds->children.push_back(std::move(rest));
    }
  }
  const std::size_t m = firsts->children.size();
  InstPtr seq = ast::make(pool, e.created_seq);
  seq->children.reserve(cnt_node != kNoNode ? 3 : 2);
  if (cnt_node != kNoNode) {
    InstPtr cnt = ast::make(pool, cnt_node);
    be_encode_into(cnt->value, static_cast<std::uint64_t>(m), 2);
    seq->children.push_back(std::move(cnt));
  }
  seq->children.push_back(std::move(firsts));
  seq->children.push_back(std::move(seconds));
  p = std::move(seq);
  return Status::success();
}

Status inverse_group_split(InstPtr& p, const AppliedTransform& e, bool has_cnt,
                           NodeId rest_node, InstPool* pool) {
  const std::size_t expected = has_cnt ? 3 : 2;
  if (p->children.size() != expected) {
    return exec_fail(e, "unexpected group-split shape");
  }
  Inst& t1 = *p->children[expected - 2];
  Inst& t2 = *p->children[expected - 1];
  if (t1.children.size() != t2.children.size()) {
    return exec_fail(e, "tabular halves with different element counts");
  }
  InstPtr merged = ast::make(pool, e.target);
  merged->children.reserve(t1.children.size());
  for (std::size_t k = 0; k < t1.children.size(); ++k) {
    InstPtr element = ast::make(pool, e.element);
    element->children.reserve(rest_node == kNoNode
                                  ? 2
                                  : 1 + t2.children[k]->children.size());
    element->children.push_back(std::move(t1.children[k]));
    if (rest_node == kNoNode) {
      element->children.push_back(std::move(t2.children[k]));
    } else {
      Inst& rest = *t2.children[k];
      for (auto& sub : rest.children) {
        element->children.push_back(std::move(sub));
      }
    }
    merged->children.push_back(std::move(element));
  }
  p = std::move(merged);
  return Status::success();
}

Status forward_child_move(Inst& p, const AppliedTransform& e) {
  const auto i = static_cast<std::size_t>(e.child_i);
  const auto j = static_cast<std::size_t>(e.child_j);
  if (j >= p.children.size()) {
    return exec_fail(e, "swap index out of range");
  }
  std::swap(p.children[i], p.children[j]);
  return Status::success();
}

// --- generic traversal ------------------------------------------------------

/// Applies `op` at each instance whose schema equals `match`, bottom-first
/// is not needed: an instance of `match` can never nest inside another one.
template <typename Op>
Status for_each_match(InstPtr& p, NodeId match, Op&& op) {
  if (p->schema == match) return op(p);
  if (!p->present) return Status::success();
  for (InstPtr& child : p->children) {
    if (Status s = for_each_match(child, match, op); !s) return s;
  }
  return Status::success();
}

}  // namespace

Status forward_entry(InstPtr& root, const AppliedTransform& entry, Rng& rng,
                     InstPool* pool) {
  switch (entry.kind) {
    case TransformKind::SplitAdd:
    case TransformKind::SplitSub:
    case TransformKind::SplitXor:
    case TransformKind::SplitCat:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_split(p, entry, rng, pool);
      });
    case TransformKind::ConstAdd:
    case TransformKind::ConstSub:
    case TransformKind::ConstXor:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        forward_const(*p, entry);
        return Status::success();
      });
    case TransformKind::BoundaryChange:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_boundary_change(p, entry, pool);
      });
    case TransformKind::PadInsert:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_pad(*p, entry, rng, pool);
      });
    case TransformKind::ReadFromEnd:
      return Status::success();  // handled at emission/parse time
    case TransformKind::TabSplit:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_group_split(p, entry, kNoNode, entry.created_a,
                                   entry.created_b, entry.created_c, pool);
      });
    case TransformKind::RepSplit:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_group_split(p, entry, entry.created_a, entry.created_b,
                                   entry.created_c, entry.created_d, pool);
      });
    case TransformKind::ChildMove:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_child_move(*p, entry);
      });
  }
  return Status::success();
}

Status inverse_entry(InstPtr& root, const AppliedTransform& entry,
                     InstPool* pool) {
  switch (entry.kind) {
    case TransformKind::SplitAdd:
    case TransformKind::SplitSub:
    case TransformKind::SplitXor:
    case TransformKind::SplitCat:
      return for_each_match(root, entry.created_seq, [&](InstPtr& p) {
        return inverse_split(p, entry, pool);
      });
    case TransformKind::ConstAdd:
    case TransformKind::ConstSub:
    case TransformKind::ConstXor:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        inverse_const(*p, entry);
        return Status::success();
      });
    case TransformKind::BoundaryChange:
      return for_each_match(root, entry.created_seq, [&](InstPtr& p) {
        return inverse_boundary_change(p, entry);
      });
    case TransformKind::PadInsert:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return inverse_pad(*p, entry);
      });
    case TransformKind::ReadFromEnd:
      return Status::success();
    case TransformKind::TabSplit:
      return for_each_match(root, entry.created_seq, [&](InstPtr& p) {
        return inverse_group_split(p, entry, /*has_cnt=*/false,
                                   entry.created_c, pool);
      });
    case TransformKind::RepSplit:
      return for_each_match(root, entry.created_seq, [&](InstPtr& p) {
        return inverse_group_split(p, entry, /*has_cnt=*/true,
                                   entry.created_d, pool);
      });
    case TransformKind::ChildMove:
      return for_each_match(root, entry.target, [&](InstPtr& p) {
        return forward_child_move(*p, entry);  // swap is its own inverse
      });
  }
  return Status::success();
}

Status forward_all(InstPtr& root, const Journal& journal, Rng& rng,
                   InstPool* pool) {
  for (const AppliedTransform& entry : journal) {
    if (Status s = forward_entry(root, entry, rng, pool); !s) return s;
  }
  return Status::success();
}

Status inverse_all(InstPtr& root, const Journal& journal, InstPool* pool) {
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    if (Status s = inverse_entry(root, *it, pool); !s) return s;
  }
  return Status::success();
}

Expected<InstPtr> invert_clone(const Inst& wire_subtree, const Journal& journal,
                               InstPool* pool) {
  InstPtr copy = ast::copy(pool, wire_subtree);
  if (Status s = inverse_all(copy, journal, pool); !s) {
    return Unexpected(s.error());
  }
  return copy;
}

Expected<InstPtr> rerun_chain(NodeId origin, BytesView logical_value,
                              const Journal& journal,
                              const std::vector<std::size_t>& chain, Rng& rng,
                              InstPool* pool) {
  InstPtr p = ast::terminal(pool, origin, logical_value);
  for (std::size_t idx : chain) {
    if (Status s = forward_entry(p, journal[idx], rng, pool); !s) {
      return Unexpected(s.error());
    }
  }
  return p;
}

}  // namespace protoobf
