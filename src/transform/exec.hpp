// On-the-fly execution of transformations on message ASTs (paper §V-C).
//
// The serializer runs the journal *forward* — the AST of G1 becomes, entry
// by entry, the AST of G(n+1) that is then emitted. The parser runs it
// *backward* on the tree recovered from the wire. Per-entry randomness
// (SplitAdd's X1, pad bytes) is drawn from the serializer's message RNG and
// never needs to be recorded: the inverse operations eliminate it.
//
// Every operation satisfies inverse(forward(t)) == t by construction
// (tested exhaustively in tests/transform_exec_test.cpp).
#pragma once

#include "ast/ast.hpp"
#include "ast/pool.hpp"
#include "transform/journal.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace protoobf {

/// Every entry point takes an optional InstPool: nodes the execution
/// creates (split halves, inserted length fields, replacement composites)
/// are drawn from it, and nodes it destroys return to it, so a session
/// replays journals with zero heap traffic in steady state. Null keeps the
/// plain heap behaviour. Results are bit-identical either way.

/// Applies one τi to every matching instance in the tree.
Status forward_entry(InstPtr& root, const AppliedTransform& entry, Rng& rng,
                     InstPool* pool = nullptr);

/// Applies τi⁻¹ to every matching instance in the tree.
Status inverse_entry(InstPtr& root, const AppliedTransform& entry,
                     InstPool* pool = nullptr);

/// Runs the whole journal forward (τ1 ... τn).
Status forward_all(InstPtr& root, const Journal& journal, Rng& rng,
                   InstPool* pool = nullptr);

/// Runs the whole journal backward (τn⁻¹ ... τ1⁻¹).
Status inverse_all(InstPtr& root, const Journal& journal,
                   InstPool* pool = nullptr);

/// Deep-copies a wire subtree and inverts every journal entry inside it.
/// Used to recover the logical value of a reference target while parsing.
Expected<InstPtr> invert_clone(const Inst& wire_subtree, const Journal& journal,
                               InstPool* pool = nullptr);

/// Rebuilds the wire subtree of a derived field: starts from the original
/// terminal with its freshly computed logical value (copied into a pooled
/// node's recycled buffer) and replays the lineage entries (`chain`,
/// indices into the journal). Deterministic for a given rng seed.
Expected<InstPtr> rerun_chain(NodeId origin, BytesView logical_value,
                              const Journal& journal,
                              const std::vector<std::size_t>& chain, Rng& rng,
                              InstPool* pool = nullptr);

}  // namespace protoobf
