#include "transform/journal.hpp"

#include "graph/graph.hpp"

namespace protoobf {

const char* to_string(TransformKind kind) {
  switch (kind) {
    case TransformKind::SplitAdd: return "SplitAdd";
    case TransformKind::SplitSub: return "SplitSub";
    case TransformKind::SplitXor: return "SplitXor";
    case TransformKind::SplitCat: return "SplitCat";
    case TransformKind::ConstAdd: return "ConstAdd";
    case TransformKind::ConstSub: return "ConstSub";
    case TransformKind::ConstXor: return "ConstXor";
    case TransformKind::BoundaryChange: return "BoundaryChange";
    case TransformKind::PadInsert: return "PadInsert";
    case TransformKind::ReadFromEnd: return "ReadFromEnd";
    case TransformKind::TabSplit: return "TabSplit";
    case TransformKind::RepSplit: return "RepSplit";
    case TransformKind::ChildMove: return "ChildMove";
  }
  return "?";
}

bool changes_size(TransformKind kind) {
  switch (kind) {
    case TransformKind::SplitAdd:
    case TransformKind::SplitSub:
    case TransformKind::SplitXor:
    case TransformKind::BoundaryChange:
    case TransformKind::PadInsert:
    case TransformKind::RepSplit:
      return true;
    default:
      return false;
  }
}

bool randomizes_bytes(TransformKind kind) {
  switch (kind) {
    case TransformKind::SplitAdd:
    case TransformKind::SplitSub:
    case TransformKind::SplitXor:
    case TransformKind::ConstAdd:
    case TransformKind::ConstSub:
    case TransformKind::ConstXor:
    case TransformKind::PadInsert:
      return true;
    default:
      return false;
  }
}

std::string AppliedTransform::describe(const Graph& graph) const {
  std::string out = to_string(kind);
  out += " on '";
  out += graph.node(target).name;
  out += "'";
  switch (kind) {
    case TransformKind::SplitCat:
      out += " at offset " + std::to_string(split_point);
      break;
    case TransformKind::PadInsert:
      out += " (" + std::to_string(pad_size) + " bytes at index " +
             std::to_string(pad_index) + ")";
      break;
    case TransformKind::ChildMove:
      out += " (children " + std::to_string(child_i) + " <-> " +
             std::to_string(child_j) + ")";
      break;
    default:
      break;
  }
  return out;
}

}  // namespace protoobf
