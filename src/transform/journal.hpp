// Transformation journal (paper §V-B).
//
// "The framework memorizes, for each applied transformation τi, the node in
// the graph that corresponds to the graph pattern a. Accordingly, it is able
// to correctly derive the message serializer and the message parser."
//
// An AppliedTransform is one τi: the generic transformation kind, the target
// node (pattern a) in graph Gi, the nodes created for pattern b in G(i+1),
// and the parameters frozen at obfuscation time (split points, constant
// keys, pad sizes...). Per-message randomness (SplitAdd's X1, pad contents)
// is *not* in the journal — it is drawn at serialization time and discarded
// by the parser, which is what makes two serializations of the same message
// look different on the wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/node.hpp"
#include "util/bytes.hpp"

namespace protoobf {

/// Generic transformations of Table I.
enum class TransformKind : std::uint8_t {
  SplitAdd,
  SplitSub,
  SplitXor,
  SplitCat,
  ConstAdd,
  ConstSub,
  ConstXor,
  BoundaryChange,
  PadInsert,
  ReadFromEnd,
  TabSplit,
  RepSplit,
  ChildMove,
};

inline constexpr TransformKind kAllTransformKinds[] = {
    TransformKind::SplitAdd,       TransformKind::SplitSub,
    TransformKind::SplitXor,       TransformKind::SplitCat,
    TransformKind::ConstAdd,       TransformKind::ConstSub,
    TransformKind::ConstXor,       TransformKind::BoundaryChange,
    TransformKind::PadInsert,      TransformKind::ReadFromEnd,
    TransformKind::TabSplit,       TransformKind::RepSplit,
    TransformKind::ChildMove,
};
inline constexpr std::size_t kTransformKindCount =
    sizeof(kAllTransformKinds) / sizeof(kAllTransformKinds[0]);

const char* to_string(TransformKind kind);

/// One applied transformation τi. Field meaning per kind:
///
///   SplitAdd/Sub/Xor : created_seq=S, created_a=A (random half, boundary
///                      Half), created_b=B (combined half, boundary End)
///   SplitCat         : same nodes, split_point = |A|
///   ConstAdd/Sub/Xor : key = cycled constant (frozen at obfuscation time)
///   BoundaryChange   : created_seq=S, created_a=L (inserted length field);
///                      target keeps its id and becomes the data child
///   PadInsert        : created_a=P (pad terminal), pad_index, pad_size
///   ReadFromEnd      : target's `mirrored` flag is set in the final graph
///   TabSplit         : created_seq=S, created_a=T1, created_b=T2,
///                      created_c=E2 (wrapper for element children [1:], or
///                      kNoNode when the element has exactly two children),
///                      element = original element node E
///   RepSplit         : created_seq=S, created_a=cnt (count field),
///                      created_b=T1, created_c=T2, created_d=E2 (see
///                      TabSplit), element = E
///   ChildMove        : child_i/child_j = swapped positions in target
struct AppliedTransform {
  TransformKind kind = TransformKind::SplitAdd;
  NodeId target = kNoNode;       // pattern-a top node in Gi
  NodeId replacement = kNoNode;  // pattern-b top node in G(i+1) (== target
                                 // for in-place transformations)

  NodeId created_seq = kNoNode;
  NodeId created_a = kNoNode;
  NodeId created_b = kNoNode;
  NodeId created_c = kNoNode;
  NodeId created_d = kNoNode;
  NodeId element = kNoNode;

  Bytes key;                    // Const*: cycled key; BoundaryChange/RepSplit:
                                // the removed delimiter/stop marker
  std::size_t split_point = 0;  // SplitCat
  std::size_t pad_index = 0;    // PadInsert
  std::size_t pad_size = 0;     // PadInsert
  int child_i = -1;             // ChildMove
  int child_j = -1;             // ChildMove
  std::size_t len_width = 0;    // BoundaryChange: width of inserted length
  bool len_ascii = false;       // BoundaryChange: ASCII-decimal length field

  /// Human-readable one-liner for examples and debugging.
  std::string describe(const class Graph& graph) const;
};

using Journal = std::vector<AppliedTransform>;

/// True for transformations that change the wire size of the target subtree.
bool changes_size(TransformKind kind);

/// True for transformations that replace target bytes with arbitrary values
/// (and therefore may not appear under a delimiter-scanned region).
bool randomizes_bytes(TransformKind kind);

}  // namespace protoobf
