#include "transform/lineage.hpp"

#include <algorithm>

namespace protoobf {

namespace {

void add_created_ids(const AppliedTransform& e, std::vector<NodeId>& members) {
  for (NodeId id : {e.created_seq, e.created_a, e.created_b, e.created_c,
                    e.created_d}) {
    if (id != kNoNode) members.push_back(id);
  }
}

/// Follows a holder from journal index `start` onward, extending its member
/// set and replay chain with every entry that lands inside its subtree.
HolderInfo trace(NodeId origin, std::size_t start, const Journal& journal) {
  HolderInfo info;
  info.origin = origin;
  info.top = origin;
  std::vector<NodeId> members{origin};
  for (std::size_t i = start; i < journal.size(); ++i) {
    const AppliedTransform& e = journal[i];
    if (std::find(members.begin(), members.end(), e.target) == members.end()) {
      continue;
    }
    // BoundaryChange wraps the holder with parse structure (length prefix +
    // data) but does not transfer referers and does not alter the holder's
    // value encoding — it is not part of the value lineage. Its created
    // length field is traced as its own holder by build_holder_table.
    if (e.kind == TransformKind::BoundaryChange) continue;
    info.chain.push_back(i);
    add_created_ids(e, members);
    if (e.target == info.top && e.replacement != e.target) {
      info.top = e.replacement;
    }
  }
  return info;
}

}  // namespace

HolderTable build_holder_table(const Graph& g1, const Journal& journal) {
  HolderTable table;

  // Native holders: terminals of G1 referenced by Length/Counter boundaries.
  for (NodeId id : g1.dfs_order()) {
    const Node& n = g1.node(id);
    if (n.type != NodeType::Terminal) continue;
    if (g1.is_length_target(id) || g1.is_counter_target(id)) {
      table.native.push_back(id);
      table.holders.push_back(trace(id, 0, journal));
    }
  }

  // Created holders: BoundaryChange length fields and RepSplit count fields.
  for (std::size_t i = 0; i < journal.size(); ++i) {
    const AppliedTransform& e = journal[i];
    if (e.kind == TransformKind::BoundaryChange ||
        e.kind == TransformKind::RepSplit) {
      table.holders.push_back(trace(e.created_a, i + 1, journal));
    }
  }

  for (std::size_t i = 0; i < table.holders.size(); ++i) {
    table.by_top[table.holders[i].top] = i;
  }
  return table;
}

}  // namespace protoobf
