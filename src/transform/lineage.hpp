// Derived-field lineage tracking.
//
// A "holder" is a terminal whose value is computed by the framework rather
// than set by the application: a field referenced by some node's Length
// boundary (it carries a wire size) or Counter boundary (it carries an
// element count). Holders come from two places:
//   * native: terminals of G1 that the specification references
//     (Modbus length/quantity fields, HTTP Content-Length style fields);
//   * created: the length fields inserted by BoundaryChange and the count
//     fields inserted by RepSplit.
//
// Transformations freely apply *on top of* holders (the paper's "more
// dependencies between fields" challenge). The lineage of a holder is the
// ordered list of journal entries whose target lies inside the holder's
// growing subtree; replaying that chain over a freshly computed logical
// value rebuilds the holder's wire subtree (transform/exec.hpp's
// rerun_chain). The serializer uses this to fix up every holder once the
// final wire sizes are known.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "transform/journal.hpp"

namespace protoobf {

struct HolderInfo {
  NodeId origin = kNoNode;  // the terminal that logically holds the value
  NodeId top = kNoNode;     // top of the holder's subtree in the wire graph
  std::vector<std::size_t> chain;  // journal indices to replay over origin
};

struct HolderTable {
  std::vector<HolderInfo> holders;
  std::unordered_map<NodeId, std::size_t> by_top;  // wire top -> index
  std::vector<NodeId> native;  // native holders (subset of origins)

  const HolderInfo* find_by_top(NodeId top) const {
    const auto it = by_top.find(top);
    return it == by_top.end() ? nullptr : &holders[it->second];
  }
};

/// Scans the journal and computes every holder's origin, final wire top and
/// replay chain. `g1` is the pre-obfuscation graph.
HolderTable build_holder_table(const Graph& g1, const Journal& journal);

}  // namespace protoobf
