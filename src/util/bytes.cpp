#include "util/bytes.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>

namespace protoobf {

Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string to_text(BytesView data) {
  return std::string(data.begin(), data.end());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (Byte b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<Byte>((hi << 4) | lo));
  }
  return out;
}

std::string hexdump(BytesView data) {
  std::string out;
  for (std::size_t row = 0; row < data.size(); row += 16) {
    char offset[24];
    std::snprintf(offset, sizeof offset, "%08zx  ", row);
    out += offset;
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < data.size()) {
        out.push_back(kHexDigits[data[row + i] >> 4]);
        out.push_back(kHexDigits[data[row + i] & 0x0f]);
        out.push_back(' ');
      } else {
        out += "   ";
      }
      if (i == 7) out.push_back(' ');
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && row + i < data.size(); ++i) {
      const Byte b = data[row + i];
      out.push_back(std::isprint(b) ? static_cast<char>(b) : '.');
    }
    out += "|\n";
  }
  return out;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes concat(BytesView a, BytesView b) {
  Bytes out(a.begin(), a.end());
  append(out, b);
  return out;
}

Bytes reversed(BytesView data) {
  Bytes out;
  assign_reversed(out, data);
  return out;
}

void assign_reversed(Bytes& dst, BytesView src) {
  dst.assign(src.rbegin(), src.rend());
}

Bytes BufferPool::acquire() {
  if (free_.empty()) return Bytes();
  Bytes buffer = std::move(free_.back());
  free_.pop_back();
  buffer.clear();
  return buffer;
}

void BufferPool::release(Bytes buffer) {
  free_.push_back(std::move(buffer));
}

bool starts_with(BytesView data, BytesView prefix) {
  return data.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), data.begin());
}

std::optional<std::size_t> find(BytesView data, BytesView needle,
                                std::size_t from) {
  if (needle.empty() || from > data.size()) return std::nullopt;
  if (needle.size() > data.size()) return std::nullopt;
  const auto it = std::search(data.begin() + static_cast<std::ptrdiff_t>(from),
                              data.end(), needle.begin(), needle.end());
  if (it == data.end()) return std::nullopt;
  return static_cast<std::size_t>(it - data.begin());
}

namespace {
template <typename Op>
void zip_bytes_into(Bytes& dst, BytesView a, BytesView b, Op op) {
  assert(a.size() == b.size());
  dst.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    dst[i] = static_cast<Byte>(op(a[i], b[i]));
  }
}

template <typename Op>
Bytes zip_bytes(BytesView a, BytesView b, Op op) {
  Bytes out;
  zip_bytes_into(out, a, b, op);
  return out;
}

template <typename Op>
void zip_key_in(Bytes& data, BytesView key, Op op) {
  assert(!key.empty());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<Byte>(op(data[i], key[i % key.size()]));
  }
}

template <typename Op>
Bytes zip_key(BytesView a, BytesView key, Op op) {
  Bytes out(a.begin(), a.end());
  zip_key_in(out, key, op);
  return out;
}
}  // namespace

Bytes add_mod256(BytesView a, BytesView b) {
  return zip_bytes(a, b, [](unsigned x, unsigned y) { return x + y; });
}

Bytes sub_mod256(BytesView a, BytesView b) {
  return zip_bytes(a, b, [](unsigned x, unsigned y) { return x - y; });
}

Bytes xor_bytes(BytesView a, BytesView b) {
  return zip_bytes(a, b, [](unsigned x, unsigned y) { return x ^ y; });
}

void add_mod256_into(Bytes& dst, BytesView a, BytesView b) {
  zip_bytes_into(dst, a, b, [](unsigned x, unsigned y) { return x + y; });
}

void sub_mod256_into(Bytes& dst, BytesView a, BytesView b) {
  zip_bytes_into(dst, a, b, [](unsigned x, unsigned y) { return x - y; });
}

void xor_bytes_into(Bytes& dst, BytesView a, BytesView b) {
  zip_bytes_into(dst, a, b, [](unsigned x, unsigned y) { return x ^ y; });
}

Bytes add_key(BytesView a, BytesView key) {
  return zip_key(a, key, [](unsigned x, unsigned y) { return x + y; });
}

Bytes sub_key(BytesView a, BytesView key) {
  return zip_key(a, key, [](unsigned x, unsigned y) { return x - y; });
}

Bytes xor_key(BytesView a, BytesView key) {
  return zip_key(a, key, [](unsigned x, unsigned y) { return x ^ y; });
}

void add_key_in(Bytes& data, BytesView key) {
  zip_key_in(data, key, [](unsigned x, unsigned y) { return x + y; });
}

void sub_key_in(Bytes& data, BytesView key) {
  zip_key_in(data, key, [](unsigned x, unsigned y) { return x - y; });
}

void xor_key_in(Bytes& data, BytesView key) {
  zip_key_in(data, key, [](unsigned x, unsigned y) { return x ^ y; });
}

Bytes be_encode(std::uint64_t value, std::size_t width) {
  Bytes out;
  be_encode_into(out, value, width);
  return out;
}

void be_encode_into(Bytes& dst, std::uint64_t value, std::size_t width) {
  assert(width <= 8);
  dst.resize(width);
  for (std::size_t i = 0; i < width; ++i) {
    dst[width - 1 - i] = static_cast<Byte>(value >> (8 * i));
  }
}

std::uint64_t be_decode(BytesView data) {
  assert(data.size() <= 8);
  std::uint64_t value = 0;
  for (Byte b : data) value = (value << 8) | b;
  return value;
}

Bytes ascii_dec_encode(std::uint64_t value, std::size_t min_width) {
  Bytes out;
  ascii_dec_encode_into(out, value, min_width);
  return out;
}

void ascii_dec_encode_into(Bytes& dst, std::uint64_t value,
                           std::size_t min_width) {
  char digits[20];  // 2^64 has 20 decimal digits
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  const std::size_t width = n < min_width ? min_width : n;
  dst.assign(width, Byte{'0'});
  for (std::size_t i = 0; i < n; ++i) {
    dst[width - 1 - i] = static_cast<Byte>(digits[i]);
  }
}

std::optional<std::uint64_t> ascii_dec_decode(BytesView data) {
  if (data.empty() || data.size() > 20) return std::nullopt;
  std::uint64_t value = 0;
  for (Byte b : data) {
    if (b < '0' || b > '9') return std::nullopt;
    const std::uint64_t next = value * 10 + (b - '0');
    if (next < value) return std::nullopt;  // overflow
    value = next;
  }
  return value;
}

bool operator_equal(BytesView a, BytesView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace protoobf
