// Byte-buffer primitives shared by every module.
//
// A protocol message on the wire is a flat sequence of bytes; everything the
// framework manipulates (terminal values, delimiters, constants, serialized
// buffers) is expressed with the `Bytes` / `BytesView` pair defined here.
// The byte-wise modular arithmetic helpers implement the value combination
// semantics of the Split*/Const* transformations (DESIGN.md §5): operating
// byte-wise mod 256 keeps every operation length-preserving and invertible
// regardless of the terminal's width or encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace protoobf {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using BytesView = std::span<const Byte>;

/// Builds a byte buffer from raw text (no escape processing).
Bytes to_bytes(std::string_view text);

/// Interprets a buffer as text (bytes copied verbatim).
std::string to_text(BytesView data);

/// Lower-case hex rendering, e.g. {0xde, 0xad} -> "dead".
std::string to_hex(BytesView data);

/// Parses a hex string ("dead" or "DEAD"); std::nullopt on bad input.
std::optional<Bytes> from_hex(std::string_view hex);

/// Classic 16-bytes-per-row hex dump with an ASCII gutter, for examples/docs.
std::string hexdump(BytesView data);

void append(Bytes& dst, BytesView src);
Bytes concat(BytesView a, BytesView b);
Bytes reversed(BytesView data);

/// Replaces `dst`'s contents with `src` reversed, reusing `dst`'s capacity.
void assign_reversed(Bytes& dst, BytesView src);

/// Recycles byte buffers so hot paths (per-message serialization, mirrored
/// region parsing) stop paying a heap allocation per call. Buffers returned
/// by acquire() keep whatever capacity they accumulated in earlier rounds;
/// release() hands them back for the next acquire(). Not thread-safe: each
/// session/worker owns its own pool.
class BufferPool {
 public:
  /// A cleared buffer, reusing a retired one's capacity when available.
  Bytes acquire();

  /// Returns a buffer to the pool for later reuse.
  void release(Bytes buffer);

  /// Number of idle buffers currently held.
  std::size_t idle() const { return free_.size(); }

  /// Drops all idle buffers (and their capacity).
  void shrink() { free_.clear(); }

 private:
  std::vector<Bytes> free_;
};

bool starts_with(BytesView data, BytesView prefix);

/// First position of `needle` in `data` at or after `from`.
std::optional<std::size_t> find(BytesView data, BytesView needle,
                                std::size_t from = 0);

/// Byte-wise (a[i] + b[i]) mod 256. Requires equal sizes.
Bytes add_mod256(BytesView a, BytesView b);
/// Byte-wise (a[i] - b[i]) mod 256. Requires equal sizes.
Bytes sub_mod256(BytesView a, BytesView b);
/// Byte-wise a[i] ^ b[i]. Requires equal sizes.
Bytes xor_bytes(BytesView a, BytesView b);

/// In-place variants replacing `dst`'s contents while reusing its capacity
/// — the hot-path form used by the pooled transform executor, where `dst`
/// is a recycled terminal payload buffer. `dst` must not alias a or b.
void add_mod256_into(Bytes& dst, BytesView a, BytesView b);
void sub_mod256_into(Bytes& dst, BytesView a, BytesView b);
void xor_bytes_into(Bytes& dst, BytesView a, BytesView b);

/// Byte-wise (a[i] + key[i % key.size()]) mod 256; key must be non-empty.
Bytes add_key(BytesView a, BytesView key);
Bytes sub_key(BytesView a, BytesView key);
Bytes xor_key(BytesView a, BytesView key);

/// In-place key combination on `data` itself (no allocation at all).
void add_key_in(Bytes& data, BytesView key);
void sub_key_in(Bytes& data, BytesView key);
void xor_key_in(Bytes& data, BytesView key);

/// Big-endian encoding of `value` into exactly `width` bytes (width <= 8).
/// Values wider than the field wrap (mod 2^(8*width)).
Bytes be_encode(std::uint64_t value, std::size_t width);

/// Capacity-reusing variant of be_encode.
void be_encode_into(Bytes& dst, std::uint64_t value, std::size_t width);

/// Big-endian decode of up to 8 bytes.
std::uint64_t be_decode(BytesView data);

/// ASCII decimal encoding, optionally zero-padded to `min_width` digits.
Bytes ascii_dec_encode(std::uint64_t value, std::size_t min_width = 0);

/// Capacity-reusing variant of ascii_dec_encode.
void ascii_dec_encode_into(Bytes& dst, std::uint64_t value,
                           std::size_t min_width = 0);

/// Parses ASCII decimal digits; nullopt if empty, non-digit, or > uint64 max.
std::optional<std::uint64_t> ascii_dec_decode(BytesView data);

bool operator_equal(BytesView a, BytesView b);

}  // namespace protoobf
