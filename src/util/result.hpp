// Minimal expected/status vocabulary used across the framework.
//
// The C++20 toolchain in use has no std::expected, so we carry a small,
// allocation-free equivalent. Errors are descriptive strings plus an
// optional byte offset (parsers attach the wire position where the failure
// was detected, which the tests assert on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace protoobf {

/// Failure class. Truncated means the input ended before the message did:
/// the same bytes with more appended may parse, so stream framers translate
/// it into a need-more-bytes signal instead of a parse failure. Malformed
/// input can never parse no matter what follows.
enum class ErrorKind : std::uint8_t { Malformed, Truncated };

/// Error descriptor. `offset` is meaningful for wire/spec parse errors;
/// `need` (Truncated only) is a lower bound on the additional bytes
/// required before the parse could progress past the failure point.
struct Error {
  std::string message;
  std::size_t offset = kNoOffset;
  ErrorKind kind = ErrorKind::Malformed;
  std::size_t need = 0;

  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  bool truncated() const { return kind == ErrorKind::Truncated; }
};

/// Tag wrapper so Expected<T> construction from an error is unambiguous.
struct Unexpected {
  Error error;
  explicit Unexpected(Error e) : error(std::move(e)) {}
  explicit Unexpected(std::string message, std::size_t offset = Error::kNoOffset)
      : error{std::move(message), offset} {}

  /// Truncated-input error with a minimum-additional-bytes hint.
  static Unexpected truncated(std::string message, std::size_t offset,
                              std::size_t need) {
    return Unexpected(
        Error{std::move(message), offset, ErrorKind::Truncated,
              need > 0 ? need : 1});
  }
};

/// Value-or-error container; a pared down std::expected<T, Error>.
template <typename T>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected u) : state_(std::in_place_index<1>, std::move(u.error)) {}

  bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  T& value() & { return std::get<0>(state_); }
  const T& value() const& { return std::get<0>(state_); }
  T&& value() && { return std::get<0>(std::move(state_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const { return std::get<1>(state_); }

 private:
  std::variant<T, Error> state_;
};

/// Success-or-error for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Unexpected u) : error_(std::move(u.error)), failed_(true) {}

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return error_; }

  static Status success() { return Status(); }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace protoobf
