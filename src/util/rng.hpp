// Deterministic pseudo-random generator (SplitMix64).
//
// Everything random in the framework — transformation selection, split
// points, per-message random halves (SplitAdd's X1), pad contents, random
// workload messages — flows through this generator so that a (seed,
// configuration) pair reproduces an experiment bit-for-bit. We do not use
// <random> distributions because their outputs are implementation-defined;
// bounded draws use Lemire-style rejection-free multiplication instead.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace protoobf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// SplitMix64 step: full-period 64-bit stream.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform draw in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Multiply-shift mapping; bias is negligible for the small bounds used.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform draw in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  Byte byte() { return static_cast<Byte>(next_u64() & 0xff); }

  Bytes bytes(std::size_t n) {
    Bytes out;
    fill(out, n);
    return out;
  }

  /// bytes() into an existing buffer, reusing its capacity. Draws the same
  /// stream as bytes(), so pooled and plain paths stay bit-identical.
  void fill(Bytes& out, std::size_t n) {
    out.resize(n);
    for (auto& b : out) b = byte();
  }

  bool chance(double p) {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53 < p;
  }

  /// Uniformly picks an element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[below(items.size())];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Derives an independent stream (for per-message randomness).
  Rng fork() { return Rng(next_u64() ^ 0xa5a5a5a5deadbeefull); }

 private:
  std::uint64_t state_;
};

}  // namespace protoobf
