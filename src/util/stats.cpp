#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace protoobf {

Summary Summary::of(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = samples[0];
  s.max = samples[0];
  double total = 0.0;
  for (double v : samples) {
    total += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.avg = total / static_cast<double>(samples.size());
  return s;
}

std::string Summary::format(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f[%.*f; %.*f]", precision, avg, precision,
                min, precision, max);
  return buf;
}

LinearFit LinearFit::of(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.correlation = (syy > 0.0) ? sxy / std::sqrt(sxx * syy) : 0.0;
  return fit;
}

}  // namespace protoobf
