// Statistics helpers backing the evaluation harness.
//
// The paper reports every metric as "average [min, max]" (Tables III/IV) and
// fits linear regressions with correlation coefficients for the timing
// figures (Figs. 4/5). These are the exact reductions implemented here.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace protoobf {

/// avg/min/max over a sample, the reduction used by Tables III and IV.
struct Summary {
  double avg = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;

  static Summary of(std::span<const double> samples);

  /// Paper-style rendering: "avg[min; max]" with `precision` decimals.
  std::string format(int precision = 2) const;
};

/// Least-squares line fit with Pearson correlation (Figs. 4 and 5).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double correlation = 0.0;  // Pearson r

  static LinearFit of(std::span<const double> x, std::span<const double> y);
};

/// Convenience accumulator used by experiment loops.
class Series {
 public:
  void add(double v) { values_.push_back(v); }
  Summary summary() const { return Summary::of(values_); }
  std::span<const double> values() const { return values_; }
  std::size_t size() const { return values_.size(); }

 private:
  std::vector<double> values_;
};

}  // namespace protoobf
