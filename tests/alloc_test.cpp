// Allocation-regression tests for the pooled message hot path.
//
// The InstPool/arena work promises that a warmed-up session serializes and
// parses without growing the node pool (zero freelist misses) while staying
// byte-identical to the plain ObfuscatedProtocol calls, and that the
// counting emitter measures exactly what a materializing emission would
// produce. These tests pin all three properties so a future change cannot
// silently reintroduce per-message heap churn or divergence.
#include <gtest/gtest.h>

#if defined(__SANITIZE_ADDRESS__)
#define PROTOOBF_TEST_LSAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PROTOOBF_TEST_LSAN 1
#endif
#endif
#ifdef PROTOOBF_TEST_LSAN
#include <sanitizer/lsan_interface.h>
#endif

#include "ast/pool.hpp"
#include "core/protoobf.hpp"
#include "protocols/http.hpp"
#include "protocols/modbus.hpp"
#include "runtime/emit.hpp"
#include "session/protocol_cache.hpp"
#include "session/session.hpp"

namespace protoobf {
namespace {

ObfuscationConfig config_of(std::uint64_t seed, int per_node) {
  ObfuscationConfig cfg;
  cfg.seed = seed;
  cfg.per_node = per_node;
  return cfg;
}

std::uint64_t msg_seed_of(std::size_t i) { return 0xa110c + 31ull * i; }

// --- InstPool mechanics -----------------------------------------------------

TEST(InstPool, RecyclesNodesAndValueCapacity) {
  InstPool pool;
  Bytes payload(100, 0xab);
  const Inst* first_node = nullptr;
  {
    InstPtr t = ast::terminal(&pool, 7, BytesView(payload));
    first_node = t.get();
    EXPECT_EQ(pool.stats().live, 1u);
    EXPECT_EQ(pool.stats().misses, 1u);
  }
  EXPECT_EQ(pool.stats().live, 0u);

  // The freed node comes back LIFO with its payload capacity intact.
  InstPtr again = ast::make(&pool, 9);
  EXPECT_EQ(again.get(), first_node);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_TRUE(again->value.empty());
  EXPECT_GE(again->value.capacity(), 100u);
  EXPECT_EQ(again->schema, 9u);
}

TEST(InstPool, ReleasesWholeTreesRecursively) {
  InstPool pool;
  {
    InstPtr root = ast::make(&pool, 0);
    for (int i = 1; i <= 3; ++i) {
      InstPtr child = ast::make(&pool, static_cast<NodeId>(i));
      child->children.push_back(
          ast::terminal(&pool, static_cast<NodeId>(10 + i), BytesView()));
      root->children.push_back(std::move(child));
    }
    EXPECT_EQ(pool.stats().live, 7u);
  }
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(InstPool, MixedHeapAndPoolTreesDestroySafely) {
  InstPool pool;
  InstPtr root = ast::make(nullptr, 0);  // heap root
  root->children.push_back(ast::make(&pool, 1));
  root->children[0]->children.push_back(ast::terminal(nullptr, 2, BytesView()));
  EXPECT_EQ(pool.stats().live, 1u);
  root.reset();
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(InstPool, DestroyedPoolDetachesSurvivingTrees) {
  // A tree outliving its pool is a contract violation; the pool must turn
  // it into a leak, never a use-after-free. The leak is the point, so
  // LeakSanitizer is told to look away.
#ifdef PROTOOBF_TEST_LSAN
  __lsan_disable();
#endif
  InstPtr survivor;
  {
    InstPool pool;
    survivor = ast::terminal(&pool, 1, BytesView());
  }
  survivor.reset();  // no-op delete: node memory was leaked with the slabs
#ifdef PROTOOBF_TEST_LSAN
  __lsan_enable();
#endif
  SUCCEED();
}

// --- steady-state allocation behaviour --------------------------------------

class AllocSteadyState : public ::testing::TestWithParam<bool> {};

TEST_P(AllocSteadyState, WarmSessionHasZeroPoolMisses) {
  const bool http = GetParam();
  ProtocolCache cache;
  auto entry = cache.get_or_compile(
      http ? http::request_spec() : modbus::request_spec(), config_of(11, 2));
  ASSERT_TRUE(entry.ok()) << entry.error().message;
  const ObfuscatedProtocol& protocol = **entry;

  Rng rng(42);
  const Graph& g = protocol.original();
  std::vector<Message> msgs;
  std::vector<Bytes> wires;
  for (std::size_t i = 0; i < 16; ++i) {
    msgs.push_back(http ? http::random_request(g, rng)
                        : modbus::random_request(g, rng));
    auto wire = protocol.serialize(msgs.back().root(), msg_seed_of(i));
    ASSERT_TRUE(wire.ok()) << wire.error().message;
    wires.push_back(std::move(*wire));
  }

  Session session(*entry);

  // Warm-up: grow the pool and every recycled buffer to steady state.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      ASSERT_TRUE(session.serialize(msgs[i].root(), msg_seed_of(i)).ok());
      ASSERT_TRUE(session.parse(wires[i]).ok());
    }
  }

  const InstPool::Stats warm = session.arena().nodes().stats();
  EXPECT_EQ(warm.live, 0u);

  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      ASSERT_TRUE(session.serialize(msgs[i].root(), msg_seed_of(i)).ok());
      ASSERT_TRUE(session.parse(wires[i]).ok());
    }
  }

  const InstPool::Stats steady = session.arena().nodes().stats();
  EXPECT_EQ(steady.misses, warm.misses)
      << "steady-state session traffic grew the node pool";
  EXPECT_EQ(steady.slabs, warm.slabs);
  EXPECT_GT(steady.hits, warm.hits);
  EXPECT_EQ(steady.live, 0u);
}

TEST_P(AllocSteadyState, PooledPathsStayByteIdentical) {
  const bool http = GetParam();
  ProtocolCache cache;
  auto entry = cache.get_or_compile(
      http ? http::request_spec() : modbus::request_spec(), config_of(23, 3));
  ASSERT_TRUE(entry.ok()) << entry.error().message;
  const ObfuscatedProtocol& protocol = **entry;

  Rng rng(7);
  const Graph& g = protocol.original();
  Session session(*entry);

  for (std::size_t i = 0; i < 24; ++i) {
    Message msg = http ? http::random_request(g, rng)
                       : modbus::random_request(g, rng);
    auto plain = protocol.serialize(msg.root(), msg_seed_of(i));
    auto pooled = session.serialize(msg.root(), msg_seed_of(i));
    ASSERT_TRUE(plain.ok()) << plain.error().message;
    ASSERT_TRUE(pooled.ok()) << pooled.error().message;
    ASSERT_EQ(plain->size(), pooled->size());
    EXPECT_TRUE(std::equal(plain->begin(), plain->end(), pooled->begin()))
        << "message " << i << " diverged between plain and pooled serialize";

    auto plain_tree = protocol.parse(*plain);
    auto pooled_tree = session.parse(*pooled);
    ASSERT_TRUE(plain_tree.ok()) << plain_tree.error().message;
    ASSERT_TRUE(pooled_tree.ok()) << pooled_tree.error().message;
    EXPECT_TRUE(ast::equal(**plain_tree, **pooled_tree));
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllocSteadyState, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Http" : "Modbus";
                         });

// --- counting emitter -------------------------------------------------------

TEST(CountingEmitter, MatchesMaterializedSizeOnWireTrees) {
  // Compare the counting emitted_size() against a real emission over both
  // logical and fully transformed wire trees (mirrors, splits, pads, the
  // whole zoo) across obfuscation levels.
  for (const bool http : {true, false}) {
    for (int per_node = 0; per_node <= 3; ++per_node) {
      auto g = Framework::load_spec(http ? http::request_spec()
                                         : modbus::request_spec());
      ASSERT_TRUE(g.ok());
      auto protocol =
          ObfuscatedProtocol::create(*g, config_of(100 + per_node, per_node));
      ASSERT_TRUE(protocol.ok()) << protocol.error().message;

      Rng rng(5);
      for (std::size_t i = 0; i < 8; ++i) {
        Message msg = http ? http::random_request(protocol->original(), rng)
                           : modbus::random_request(protocol->original(), rng);
        ASSERT_TRUE(protocol->canonicalize(msg.root()).ok());

        auto size = emitted_size(protocol->original(), msg.root());
        auto bytes = emit(protocol->original(), msg.root());
        ASSERT_TRUE(size.ok()) << size.error().message;
        ASSERT_TRUE(bytes.ok()) << bytes.error().message;
        EXPECT_EQ(*size, bytes->size());

        auto wire = protocol->serialize(msg.root(), msg_seed_of(i));
        ASSERT_TRUE(wire.ok()) << wire.error().message;
        // Wire image size must equal what the counting emitter would have
        // predicted for the transformed tree — serialize's own fixpoints
        // already relied on it, so a mismatch would have failed above, but
        // pin the round number explicitly.
        EXPECT_GT(wire->size(), 0u);
      }
    }
  }
}

TEST(CountingEmitter, MirroredWireTreesRoundTrip) {
  // ReadFromEnd is the hard case for the counting emitter's streaming
  // validation (reversed regions, delimiters fed backwards). Force it on
  // every node and verify the serialize fixpoints — which lean on
  // emitted_size against the mirrored wire tree — still produce
  // parseable images.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto g = Framework::load_spec(http::request_spec());
    ASSERT_TRUE(g.ok());
    ObfuscationConfig cfg = config_of(seed, 4);
    cfg.enabled = {TransformKind::ReadFromEnd, TransformKind::SplitCat,
                   TransformKind::BoundaryChange};
    auto protocol = ObfuscatedProtocol::create(*g, cfg);
    ASSERT_TRUE(protocol.ok()) << protocol.error().message;

    Rng rng(seed);
    for (std::size_t i = 0; i < 4; ++i) {
      Message msg = http::random_request(protocol->original(), rng);
      auto wire = protocol->serialize(msg.root(), msg_seed_of(i));
      ASSERT_TRUE(wire.ok()) << wire.error().message;
      auto back = protocol->parse(*wire);
      ASSERT_TRUE(back.ok()) << back.error().message;
    }
  }
}

TEST(CountingEmitter, ReportsDelimiterContainment) {
  constexpr std::string_view kDelimSpec = R"spec(
protocol Delim

msg: seq end {
  body: terminal delimited("|")
  rest: terminal end
}
)spec";
  auto g = Framework::load_spec(kDelimSpec);
  ASSERT_TRUE(g.ok()) << g.error().message;

  Message msg(*g);
  ASSERT_TRUE(msg.set("body", to_bytes("ab|cd")).ok());
  ASSERT_TRUE(msg.set("rest", to_bytes("xy")).ok());

  auto size = emitted_size(*g, msg.root());
  auto bytes = emit(*g, msg.root());
  ASSERT_FALSE(size.ok());
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(size.error().message, bytes.error().message);
}

// --- shared emitted-size hints ----------------------------------------------

TEST(SizeHint, RisesInstantlyDecaysSlowly) {
  SizeHint hint;
  EXPECT_EQ(hint.get(), 0u);
  hint.note(4096);
  EXPECT_EQ(hint.get(), 4096u);
  hint.note(8192);  // larger: covered immediately
  EXPECT_EQ(hint.get(), 8192u);
  hint.note(0);  // smaller: only a quarter of the gap
  EXPECT_EQ(hint.get(), 6144u);
}

TEST(SizeHint, SeedsColdArenasFromSiblingTraffic) {
  constexpr std::string_view kVarSpec = R"spec(
protocol Var

msg: seq end {
  len: terminal fixed(2)
  data: terminal length(len)
}
)spec";
  ProtocolCache cache;
  auto entry = cache.get_or_compile(kVarSpec, config_of(3, 0));
  ASSERT_TRUE(entry.ok()) << entry.error().message;

  Session session(*entry);

  // A large message through the single-message arena establishes the hint.
  Message big((*entry)->original());
  ASSERT_TRUE(big.set("data", Bytes(2000, 0x55)).ok());
  ASSERT_TRUE(session.serialize(big.root(), 1).ok());
  EXPECT_GE(session.wire_hint().get(), 2000u);

  // A small message through the (cold, distinct) batch-shard arena must
  // pre-reserve that capacity even though it only emits a few bytes.
  Message small((*entry)->original());
  ASSERT_TRUE(small.set("data", to_bytes("hi")).ok());
  const BatchItem item{&small.root(), 2};
  auto results = session.serialize_batch(std::span<const BatchItem>(&item, 1));
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok()) << results[0].error().message;
  EXPECT_GE(session.shard_arena(0).wire().capacity(), 2000u);
}

}  // namespace
}  // namespace protoobf
