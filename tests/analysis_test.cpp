// Static analyzer tests (ISSUE 10 tentpole).
//
// Two halves:
//
//   1. Golden diagnostics — for every diagnostic id the analyzer can emit,
//      one artifact where it MUST fire and one close sibling where it must
//      NOT. Spec-reachable findings are crafted as spec text; the
//      artifact-integrity errors (PO-E004/E005/E006) cannot come out of a
//      validated engine run, so those use analyze_parts() with hand-built
//      corrupt graphs/journals/holder tables; PO-E999 is forced through
//      detail::cross_check with deliberately skewed inputs.
//
//   2. Clean sweeps — every spec the repo ships (specs/ directory, the
//      fuzzer's registry, the protocol library, every crasher-corpus
//      compile) must lint with zero error-severity findings, at identity
//      and at obfuscation depth across seeds. Each sweep compile also
//      cross-checks the analyzer's min-need and stream verdict against the
//      runtime predicates directly (the same disagreement PO-E999 would
//      report, asserted explicitly so a failure names the spec).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "core/protoobf.hpp"
#include "fuzz/runner.hpp"
#include "fuzz_support.hpp"
#include "protocols/modbus.hpp"
#include "runtime/parse.hpp"
#include "transform/lineage.hpp"
#include "util/bytes.hpp"

#ifndef PROTOOBF_SPECS_DIR
#define PROTOOBF_SPECS_DIR "specs"
#endif
#ifndef PROTOOBF_CORPUS_DIR
#define PROTOOBF_CORPUS_DIR "tests/corpus/crashers"
#endif

namespace protoobf {
namespace {

using analysis::Severity;

Graph load(std::string_view spec) {
  auto graph = Framework::load_spec(spec);
  EXPECT_TRUE(graph.ok()) << graph.error().message;
  return std::move(*graph);
}

analysis::Report lint_spec(std::string_view spec) {
  return analysis::analyze_graph(load(spec));
}

/// Compiles `spec` at the given depth/seed and lints the artifact.
analysis::Report lint_compiled(std::string_view spec, int per_node,
                               std::uint64_t seed) {
  Graph g1 = load(spec);
  ObfuscationConfig cfg;
  cfg.seed = seed;
  cfg.per_node = per_node;
  auto protocol = Framework::generate(g1, cfg);
  EXPECT_TRUE(protocol.ok()) << protocol.error().message;
  return analysis::analyze(*protocol);
}

std::string ids_of(const analysis::Report& report) {
  std::string out;
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (!out.empty()) out += ", ";
    out += d.id;
  }
  return out;
}

// Hand-built graph helpers (graph_test.cpp idiom) for the corrupt-artifact
// diagnostics that no validated spec can reach.
NodeId add_terminal(Graph& g, const std::string& name, BoundaryKind b,
                    std::size_t size = 1) {
  Node n;
  n.name = name;
  n.type = NodeType::Terminal;
  n.boundary = b;
  n.fixed_size = size;
  if (b == BoundaryKind::Delimited) n.delimiter = to_bytes("|");
  return g.add_node(n);
}

NodeId add_composite(Graph& g, const std::string& name, NodeType t,
                     BoundaryKind b, std::vector<NodeId> children) {
  Node n;
  n.name = name;
  n.type = t;
  n.boundary = b;
  if (b == BoundaryKind::Delimited) n.delimiter = to_bytes("|");
  const NodeId id = g.add_node(n);
  for (NodeId child : children) {
    g.node(id).children.push_back(child);
    g.node(child).parent = id;
  }
  return id;
}

// --- PO-E001 fixed-region-overflow ------------------------------------------

TEST(AnalysisGolden, E001FiresWhenMandatoryContentExceedsFixedRegion) {
  const auto report = lint_spec(R"(
protocol BadFixed
m: seq end {
  head: seq fixed(2) {
    a: terminal fixed(4)
  }
  z: terminal fixed(1)
}
)");
  ASSERT_TRUE(report.has("PO-E001")) << ids_of(report);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.find("PO-E001")->path, "m.head");
}

TEST(AnalysisGolden, E001SilentWhenContentFits) {
  const auto report = lint_spec(R"(
protocol GoodFixed
m: seq end {
  head: seq fixed(4) {
    a: terminal fixed(4)
  }
  z: terminal fixed(1)
}
)");
  EXPECT_FALSE(report.has("PO-E001")) << ids_of(report);
  EXPECT_TRUE(report.clean());
}

// --- PO-E002 length-region-overflow -----------------------------------------

TEST(AnalysisGolden, E002FiresWhenHolderCannotExpressMandatoryContent) {
  // A 1-byte binary holder tops out at 255; the region demands 300.
  const auto report = lint_spec(R"(
protocol BadLength
m: seq end {
  l: terminal fixed(1)
  body: seq length(l) {
    blob: terminal fixed(300)
  }
}
)");
  ASSERT_TRUE(report.has("PO-E002")) << ids_of(report);
  EXPECT_EQ(report.find("PO-E002")->path, "m.body");
}

TEST(AnalysisGolden, E002SilentWhenHolderIsWideEnough) {
  const auto report = lint_spec(R"(
protocol GoodLength
m: seq end {
  l: terminal fixed(2)
  body: seq length(l) {
    blob: terminal fixed(300)
  }
}
)");
  EXPECT_FALSE(report.has("PO-E002")) << ids_of(report);
  EXPECT_TRUE(report.clean());
}

// --- PO-E003 stop-marker-shadowed -------------------------------------------

constexpr std::string_view kShadowedSpecTemplate = R"(
protocol Shadow
m: seq end {
  items: repeat delimited("$") {
    item: seq delimited("$") {
      tag: terminal fixed(1) const("%")
      len: terminal fixed(1)
      val: terminal length(len)
    }
  }
  z: terminal fixed(1)
}
)";

std::string shadowed_spec(char tag_const) {
  std::string spec(kShadowedSpecTemplate);
  spec[spec.find('%')] = tag_const;
  return spec;
}

TEST(AnalysisGolden, E003FiresWhenEveryElementStartsWithTheStopMarker) {
  const auto report = lint_spec(shadowed_spec('$'));
  ASSERT_TRUE(report.has("PO-E003")) << ids_of(report);
  EXPECT_EQ(report.find("PO-E003")->path, "m.items");
  // E003 subsumes the ambiguity warning for the same repetition.
  EXPECT_FALSE(report.has("PO-W101"));
}

TEST(AnalysisGolden, E003SilentWhenElementsStartWithAnotherConstant) {
  const auto report = lint_spec(shadowed_spec('A'));
  EXPECT_FALSE(report.has("PO-E003")) << ids_of(report);
  // The element's first byte is pinned to 'A', so the marker overlap
  // warning must not fire either.
  EXPECT_FALSE(report.has("PO-W101"));
  EXPECT_TRUE(report.clean());
}

// --- PO-W101 ambiguous-stop-marker ------------------------------------------

TEST(AnalysisGolden, W101FiresWhenElementFirstByteOverlapsMarker) {
  // DelimChat's element starts with a free binary byte: 0x24 ('$') is in
  // its first-byte domain, so the decoder cannot decide marker-vs-element.
  const auto report = lint_spec(fuzztest::kDelimSpec);
  ASSERT_TRUE(report.has("PO-W101")) << ids_of(report);
  EXPECT_EQ(report.find("PO-W101")->path, "m.items");
  EXPECT_TRUE(report.clean());
}

// (The W101-negative is E003SilentWhenElementsStartWithAnotherConstant:
// same shape, element first byte pinned off the marker.)

// --- PO-W102 delimiter-in-scan / PO-N202 collision note ---------------------

TEST(AnalysisGolden, W102FiresForBinaryContentContainingItsDelimiter) {
  const auto report = lint_spec(R"(
protocol ScanBin
m: seq end {
  raw: terminal delimited("|") binary
  z: terminal fixed(1)
}
)");
  ASSERT_TRUE(report.has("PO-W102")) << ids_of(report);
  EXPECT_EQ(report.find("PO-W102")->path, "m.raw");
  EXPECT_FALSE(report.has("PO-N202"));
}

TEST(AnalysisGolden, N202FiresForPrintableTextUnderPrintableDelimiter) {
  // The HTTP-header contract: an ascii application field delimited by
  // printable bytes is a documented escaping obligation, not a defect.
  const auto report = lint_spec(R"(
protocol ScanText
m: seq end {
  title: terminal delimited("|") ascii
  z: terminal fixed(1)
}
)");
  ASSERT_TRUE(report.has("PO-N202")) << ids_of(report);
  EXPECT_EQ(report.find("PO-N202")->severity, Severity::Note);
  EXPECT_FALSE(report.has("PO-W102"));
}

TEST(AnalysisGolden, ScanChecksSilentForDigitHolderUnderNonDigitDelimiter) {
  // A length holder's content domain is '0'..'9'; ';' is outside it, so
  // the scan can never be cut short and neither finding fires.
  const auto report = lint_spec(R"(
protocol ScanHolder
m: seq end {
  elen: terminal delimited(";") ascii
  edata: terminal length(elen)
}
)");
  EXPECT_FALSE(report.has("PO-W102")) << ids_of(report);
  EXPECT_FALSE(report.has("PO-N202")) << ids_of(report);
}

// --- PO-W103 unbounded-frame / PO-N201 datagram safety ----------------------

constexpr std::string_view kTinySpec = R"(
protocol Tiny
m: seq end {
  l: terminal fixed(1)
  b: terminal length(l)
}
)";

TEST(AnalysisGolden, W103FiresOnUnboundedRepetitionAndNamesTheCulprit) {
  const auto report = lint_spec(fuzztest::kDelimSpec);
  ASSERT_TRUE(report.has("PO-W103")) << ids_of(report);
  EXPECT_EQ(report.find("PO-W103")->path, "m.items");
  EXPECT_FALSE(report.max_wire.has_value());
  EXPECT_FALSE(report.is_datagram_safe);
  EXPECT_TRUE(report.has("PO-N201"));
}

TEST(AnalysisGolden, W103AndN201SilentOnSmallBoundedFrame) {
  const auto report = lint_spec(kTinySpec);
  EXPECT_FALSE(report.has("PO-W103")) << ids_of(report);
  EXPECT_FALSE(report.has("PO-N201")) << ids_of(report);
  ASSERT_TRUE(report.max_wire.has_value());
  EXPECT_EQ(*report.max_wire, 256u);  // 1 + 255
  EXPECT_TRUE(report.is_datagram_safe);
  EXPECT_EQ(report.min_need, 1u);
}

TEST(AnalysisGolden, N201FiresWhenWorstCaseExceedsTheMtu) {
  // Bounded (no W103) but 2-byte length holder: worst case 65539 > 65507.
  const auto report = lint_spec(fuzztest::kNetDemoSpec);
  EXPECT_FALSE(report.has("PO-W103")) << ids_of(report);
  ASSERT_TRUE(report.has("PO-N201")) << ids_of(report);
  EXPECT_FALSE(report.is_datagram_safe);
  ASSERT_TRUE(report.max_wire.has_value());
  EXPECT_GT(*report.max_wire, 65507u);
}

TEST(AnalysisGolden, DatagramSafeHelperHonorsTheMtuArgument) {
  Graph g = load(kTinySpec);
  EXPECT_TRUE(analysis::datagram_safe(g));
  EXPECT_TRUE(analysis::datagram_safe(g, 256));
  EXPECT_FALSE(analysis::datagram_safe(g, 255));
}

// --- PO-W104 counter-saturation ---------------------------------------------

TEST(AnalysisGolden, W104FiresWhenASaturatedCounterClaimExplodes) {
  // A 4-byte counter skewed to 0xff claims ~4 billion 2-byte rows.
  const auto report = lint_spec(R"(
protocol BigTable
m: seq end {
  n: terminal fixed(4)
  t: tabular(n) {
    row: terminal fixed(2)
  }
}
)");
  ASSERT_TRUE(report.has("PO-W104")) << ids_of(report);
  EXPECT_EQ(report.find("PO-W104")->path, "m.t");
}

TEST(AnalysisGolden, W104FiresWhenTheCountIsStaticallyUnbounded) {
  const auto report = lint_spec(R"(
protocol FreeCount
m: seq end {
  n: terminal delimited(";") ascii
  t: tabular(n) {
    row: terminal fixed(2)
  }
}
)");
  ASSERT_TRUE(report.has("PO-W104")) << ids_of(report);
  EXPECT_NE(report.find("PO-W104")->message.find("unbounded"),
            std::string::npos);
}

TEST(AnalysisGolden, W104SilentForNarrowCounters) {
  // 255 two-byte rows max: well under the 1 MiB claim limit.
  const auto report = lint_spec(R"(
protocol SmallTable
m: seq end {
  n: terminal fixed(1)
  t: tabular(n) {
    row: terminal fixed(2)
  }
}
)");
  EXPECT_FALSE(report.has("PO-W104")) << ids_of(report);
  EXPECT_TRUE(report.clean());
}

// --- PO-W105 seed-invariant-bytes / PO-N203 static fingerprint --------------

constexpr std::string_view kMagicSpec = R"(
protocol Magic
m: seq end {
  magic: terminal fixed(2) const(0xbeef)
  l: terminal fixed(1)
  b: terminal length(l)
}
)";

TEST(AnalysisGolden, N203FiresOnConstantBytesOfAnIdentityCompilation) {
  const auto report = lint_spec(kMagicSpec);
  ASSERT_TRUE(report.has("PO-N203")) << ids_of(report);
  EXPECT_FALSE(report.has("PO-W105"));
  EXPECT_EQ(report.find("PO-N203")->path, "m.magic");
  EXPECT_NE(report.find("PO-N203")->message.find("offset 0"),
            std::string::npos);
}

TEST(AnalysisGolden, N203SilentWhenNothingOnTheWireIsConstant) {
  const auto report = lint_spec(fuzztest::kNetDemoSpec);
  EXPECT_FALSE(report.has("PO-N203")) << ids_of(report);
  EXPECT_FALSE(report.has("PO-W105")) << ids_of(report);
}

TEST(AnalysisGolden, W105FiresWhenObfuscationLeavesAStaticFingerprint) {
  // A journal whose only entry re-keys the magic constant in place: the
  // bytes change with the key, but within THIS artifact every message
  // still carries the same two bytes at offset 0 — a DPI anchor the
  // obfuscation failed to move.
  Graph g = load(kMagicSpec);
  const NodeId magic = g.find_by_name("magic").value();
  AppliedTransform t;
  t.kind = TransformKind::ConstXor;
  t.target = magic;
  t.replacement = magic;
  t.key = Bytes{0x5a};
  const Journal journal{t};
  const auto report =
      analysis::analyze_parts(g, g, journal, HolderTable{});
  ASSERT_TRUE(report.has("PO-W105")) << ids_of(report);
  EXPECT_FALSE(report.has("PO-N203"));
  EXPECT_EQ(report.find("PO-W105")->path, "m.magic");
}

// --- PO-W106 not-stream-safe ------------------------------------------------

TEST(AnalysisGolden, W106FiresOnTrailingEndTerminalAndMatchesRuntime) {
  const auto report = lint_spec(fuzztest::kTortureSpec);
  ASSERT_TRUE(report.has("PO-W106")) << ids_of(report);
  EXPECT_FALSE(report.is_stream_safe);
  // The verdict must agree with the runtime predicate — a disagreement
  // would additionally surface as PO-E999.
  EXPECT_FALSE(report.has("PO-E999")) << ids_of(report);
  Graph g = load(fuzztest::kTortureSpec);
  EXPECT_FALSE(stream_safe(g).ok());
}

TEST(AnalysisGolden, W106SilentOnStreamSafeSpec) {
  const auto report = lint_spec(fuzztest::kNetDemoSpec);
  EXPECT_FALSE(report.has("PO-W106")) << ids_of(report);
  EXPECT_TRUE(report.is_stream_safe);
}

// --- PO-W107 possibly-empty-element -----------------------------------------

TEST(AnalysisGolden, W107FiresWhenARepetitionElementCanBeEmpty) {
  // `item` is a bare length region whose holder sits OUTSIDE the
  // repetition: a zero-valued holder makes the element consume nothing.
  const auto report = lint_spec(R"(
protocol EmptyElem
m: seq end {
  n: terminal fixed(1)
  items: repeat delimited("$") {
    item: terminal length(n)
  }
  z: terminal fixed(1)
}
)");
  ASSERT_TRUE(report.has("PO-W107")) << ids_of(report);
  EXPECT_EQ(report.find("PO-W107")->path, "m.items.item");
}

TEST(AnalysisGolden, W107SilentWhenElementsHaveMandatoryBytes) {
  // DelimChat's element carries a fixed tag byte plus its own delimiter.
  const auto report = lint_spec(fuzztest::kDelimSpec);
  EXPECT_FALSE(report.has("PO-W107")) << ids_of(report);
}

// --- PO-E004 holder-chain-corrupt (hand-built artifact) ---------------------

TEST(AnalysisGolden, E004FiresOnOutOfRangeChainIndex) {
  Graph g = load(kTinySpec);
  HolderTable ht;
  HolderInfo h;
  h.origin = g.find_by_name("l").value();
  h.top = h.origin;
  h.chain = {3};  // journal is empty: index 3 cannot exist
  ht.holders.push_back(h);
  const auto report = analysis::analyze_parts(g, g, Journal{}, ht);
  ASSERT_TRUE(report.has("PO-E004")) << ids_of(report);
  EXPECT_FALSE(report.clean());
}

TEST(AnalysisGolden, E004FiresOnNonIncreasingChain) {
  Graph g = load(kTinySpec);
  Journal journal(3);  // three inert entries so indices 0..2 are valid
  for (AppliedTransform& t : journal) t.kind = TransformKind::ChildMove;
  HolderTable ht;
  HolderInfo h;
  h.origin = g.find_by_name("l").value();
  h.top = h.origin;
  h.chain = {2, 1};
  ht.holders.push_back(h);
  const auto report = analysis::analyze_parts(g, g, journal, ht);
  ASSERT_TRUE(report.has("PO-E004")) << ids_of(report);
  EXPECT_NE(report.find("PO-E004")->message.find("strictly increasing"),
            std::string::npos);
}

TEST(AnalysisGolden, E004SilentOnWellFormedChains) {
  // The real thing: every holder table the engine builds must pass.
  const auto report = lint_compiled(fuzztest::kDelimSpec, 2, 7);
  EXPECT_FALSE(report.has("PO-E004")) << ids_of(report);
}

// --- PO-E005 holder-dependency-cycle (hand-built artifact) ------------------

TEST(AnalysisGolden, E005FiresOnALengthReferenceCycle) {
  Graph g("Cycle");
  const NodeId a = add_terminal(g, "a", BoundaryKind::Length);
  const NodeId b = add_terminal(g, "b", BoundaryKind::Length);
  g.node(a).ref = b;
  g.node(b).ref = a;
  g.set_root(add_composite(g, "m", NodeType::Sequence, BoundaryKind::End,
                           {a, b}));
  const auto report =
      analysis::analyze_parts(g, g, Journal{}, HolderTable{});
  ASSERT_TRUE(report.has("PO-E005")) << ids_of(report);
  EXPECT_FALSE(report.clean());
}

TEST(AnalysisGolden, E005SilentOnAcyclicReferences) {
  const auto report = lint_spec(kTinySpec);
  EXPECT_FALSE(report.has("PO-E005")) << ids_of(report);
}

// --- PO-E006 random-bytes-under-scan (hand-built artifact) ------------------

TEST(AnalysisGolden, E006FiresWhenAPadSitsInsideAScannedRegion) {
  Graph g("PadScan");
  const NodeId pad = add_terminal(g, "pad", BoundaryKind::Fixed, 2);
  const NodeId body = add_terminal(g, "body", BoundaryKind::Fixed, 1);
  const NodeId wrap = add_composite(g, "wrap", NodeType::Sequence,
                                    BoundaryKind::Delimited, {pad, body});
  const NodeId z = add_terminal(g, "z", BoundaryKind::Fixed, 1);
  g.set_root(add_composite(g, "m", NodeType::Sequence, BoundaryKind::End,
                           {wrap, z}));
  AppliedTransform t;
  t.kind = TransformKind::PadInsert;
  t.target = wrap;
  t.replacement = wrap;
  t.created_a = pad;
  t.pad_size = 2;
  const auto report =
      analysis::analyze_parts(g, g, Journal{t}, HolderTable{});
  ASSERT_TRUE(report.has("PO-E006")) << ids_of(report);
  EXPECT_EQ(report.find("PO-E006")->path, "m.wrap.pad");
}

TEST(AnalysisGolden, E006SilentWhenThePadIsOutsideEveryScan) {
  Graph g("PadFree");
  const NodeId pad = add_terminal(g, "pad", BoundaryKind::Fixed, 2);
  const NodeId body = add_terminal(g, "body", BoundaryKind::Fixed, 1);
  g.set_root(add_composite(g, "m", NodeType::Sequence, BoundaryKind::End,
                           {pad, body}));
  AppliedTransform t;
  t.kind = TransformKind::PadInsert;
  t.target = g.root();
  t.replacement = g.root();
  t.created_a = pad;
  t.pad_size = 2;
  const auto report =
      analysis::analyze_parts(g, g, Journal{t}, HolderTable{});
  EXPECT_FALSE(report.has("PO-E006")) << ids_of(report);
}

// --- PO-E999 analysis-mismatch ----------------------------------------------

TEST(AnalysisGolden, E999FiresWhenTheMinNeedsDisagree) {
  Graph g = load(kTinySpec);
  analysis::Report report;
  analysis::detail::cross_check(report, g, min_wire_size(g) + 1,
                                stream_safe(g).ok());
  ASSERT_TRUE(report.has("PO-E999")) << ids_of(report);
  EXPECT_NE(report.find("PO-E999")->message.find("min-need"),
            std::string::npos);
}

TEST(AnalysisGolden, E999FiresWhenTheStreamVerdictsDisagree) {
  Graph g = load(kTinySpec);
  analysis::Report report;
  analysis::detail::cross_check(report, g, min_wire_size(g),
                                !stream_safe(g).ok());
  ASSERT_TRUE(report.has("PO-E999")) << ids_of(report);
  EXPECT_NE(report.find("PO-E999")->message.find("stream-safety"),
            std::string::npos);
}

TEST(AnalysisGolden, E999SilentWhenAnalyzerAndRuntimeAgree) {
  Graph g = load(kTinySpec);
  analysis::Report report;
  analysis::detail::cross_check(report, g, min_wire_size(g),
                                stream_safe(g).ok());
  EXPECT_TRUE(report.diagnostics.empty()) << ids_of(report);
}

// --- report plumbing --------------------------------------------------------

TEST(AnalysisReport, ErrorsSortBeforeWarningsAndNotes) {
  const auto report = lint_spec(shadowed_spec('$'));
  ASSERT_FALSE(report.diagnostics.empty());
  for (std::size_t i = 1; i < report.diagnostics.size(); ++i) {
    EXPECT_GE(static_cast<int>(report.diagnostics[i - 1].severity),
              static_cast<int>(report.diagnostics[i].severity));
  }
}

TEST(AnalysisReport, SummaryNamesErrorIdsAndCountsOtherwise) {
  EXPECT_NE(analysis::summary(lint_spec(shadowed_spec('$')))
                .find("PO-E003"),
            std::string::npos);
  EXPECT_EQ(analysis::summary(lint_spec(kTinySpec)),
            "clean (0 warnings, 0 notes)");
}

TEST(AnalysisReport, JsonRenderingCarriesTheVerdictAndEveryDiagnostic) {
  const auto report = lint_spec(fuzztest::kDelimSpec);
  const std::string json = analysis::render_json(report);
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(json.find("\"max_wire\":null"), std::string::npos);
  for (const analysis::Diagnostic& d : report.diagnostics) {
    EXPECT_NE(json.find("\"id\":\"" + d.id + "\""), std::string::npos);
  }
}

TEST(AnalysisReport, FuzzRunnerLintsTheProtocolAtConstruction) {
  Graph g1 = load(fuzztest::kNetDemoSpec);
  ObfuscationConfig cfg;
  cfg.seed = 11;
  cfg.per_node = 2;
  auto protocol = Framework::generate(g1, cfg);
  ASSERT_TRUE(protocol.ok()) << protocol.error().message;
  fuzz::FuzzRunner::Config run_cfg;
  run_cfg.whole_message = !stream_safe(protocol->wire_graph()).ok();
  fuzz::FuzzRunner runner(*protocol, run_cfg);
  EXPECT_TRUE(runner.lint().clean()) << ids_of(runner.lint());
  EXPECT_EQ(runner.lint().protocol, "NetDemo");
}

// --- clean sweeps -----------------------------------------------------------

constexpr std::uint64_t kSweepSeeds[] = {1, 2, 3, 4, 5};

/// Lints one compile and asserts the hard gate invariants: zero
/// error-severity findings, and analyzer/runtime agreement on the two
/// properties both sides compute.
void expect_clean(const std::string& label, const ObfuscatedProtocol& p) {
  const analysis::Report report = analysis::analyze(p);
  EXPECT_EQ(report.errors(), 0u)
      << label << ": " << analysis::render_text(report);
  EXPECT_EQ(report.min_need, min_wire_size(p.wire_graph())) << label;
  EXPECT_EQ(report.is_stream_safe, stream_safe(p.wire_graph()).ok()) << label;
}

void sweep_spec(const std::string& label, std::string_view spec,
                int per_node) {
  Graph g1 = load(spec);
  const analysis::Report identity = analysis::analyze_graph(g1);
  EXPECT_EQ(identity.errors(), 0u)
      << label << " (identity): " << analysis::render_text(identity);
  EXPECT_EQ(identity.min_need, min_wire_size(g1)) << label;
  EXPECT_EQ(identity.is_stream_safe, stream_safe(g1).ok()) << label;
  if (per_node <= 0) return;
  for (const std::uint64_t seed : kSweepSeeds) {
    ObfuscationConfig cfg;
    cfg.seed = seed;
    cfg.per_node = per_node;
    auto protocol = Framework::generate(g1, cfg);
    ASSERT_TRUE(protocol.ok()) << label << ": " << protocol.error().message;
    expect_clean(label + " seed " + std::to_string(seed), *protocol);
  }
}

TEST(AnalysisSweep, EverySpecFileLintsCleanAtIdentityAndUnderObfuscation) {
  const std::filesystem::path dir(PROTOOBF_SPECS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t swept = 0;
  for (const auto& it : std::filesystem::directory_iterator(dir)) {
    if (it.path().extension() != ".spec") continue;
    std::ifstream in(it.path());
    ASSERT_TRUE(in.good()) << it.path();
    std::stringstream text;
    text << in.rdbuf();
    sweep_spec(it.path().filename().string(), text.str(), /*per_node=*/2);
    ++swept;
  }
  EXPECT_GE(swept, 2u) << "specs/ directory unexpectedly thin";
}

TEST(AnalysisSweep, EveryFuzzRegistrySpecLintsClean) {
  for (const fuzztest::SpecEntry& entry : fuzztest::spec_registry()) {
    sweep_spec(std::string(entry.name), entry.spec, entry.per_node);
  }
}

TEST(AnalysisSweep, EveryProtocolLibrarySpecLintsClean) {
  sweep_spec("modbus-request", modbus::request_spec(), /*per_node=*/2);
  sweep_spec("modbus-response", modbus::response_spec(), /*per_node=*/2);
}

TEST(AnalysisSweep, EveryCrasherCorpusCompileLintsClean) {
  // Every (spec, seed, per_node) triple the corpus pins must still pass
  // the serve gate: a crasher documents a runtime bug we fixed, never a
  // spec the analyzer would reject.
  const std::filesystem::path dir(PROTOOBF_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::set<std::string> done;
  for (const auto& it : std::filesystem::directory_iterator(dir)) {
    if (!it.is_regular_file()) continue;
    std::ifstream in(it.path());
    ASSERT_TRUE(in.good()) << it.path();
    std::string spec_name, line;
    std::uint64_t seed = 0;
    int per_node = 0;
    while (std::getline(in, line)) {
      const std::size_t colon = line.find(':');
      if (line.empty() || line[0] == '#' || colon == std::string::npos) {
        continue;
      }
      const std::string key = line.substr(0, colon);
      std::string value = line.substr(colon + 1);
      value.erase(0, value.find_first_not_of(" \t"));
      if (key == "spec") spec_name = value;
      if (key == "seed") seed = std::strtoull(value.c_str(), nullptr, 0);
      if (key == "per_node") {
        per_node = static_cast<int>(std::strtol(value.c_str(), nullptr, 0));
      }
    }
    const std::string label = spec_name + "/" + std::to_string(seed) + "/" +
                              std::to_string(per_node);
    if (!done.insert(label).second) continue;
    const fuzztest::SpecEntry* entry = fuzztest::find_spec(spec_name);
    ASSERT_NE(entry, nullptr)
        << it.path() << ": unknown spec '" << spec_name << "'";
    Graph g1 = load(entry->spec);
    ObfuscationConfig cfg;
    cfg.seed = seed;
    cfg.per_node = per_node;
    auto protocol = Framework::generate(g1, cfg);
    ASSERT_TRUE(protocol.ok()) << label << ": " << protocol.error().message;
    expect_clean(label, *protocol);
  }
  EXPECT_FALSE(done.empty()) << "empty corpus: " << dir;
}

}  // namespace
}  // namespace protoobf
