// AST construction, comparison and path navigation tests.
#include <gtest/gtest.h>

#include "ast/ast.hpp"
#include "spec/parser.hpp"

namespace protoobf {
namespace {

Graph demo_graph() {
  auto g = parse_spec(R"(
protocol Demo
m: seq end {
  kind: terminal fixed(1)
  opt: optional (kind == 0x01) { ov: terminal fixed(2) }
  items: repeat end { item: seq { x: terminal fixed(1) y: terminal fixed(1) } }
}
)");
  EXPECT_TRUE(g.ok()) << g.error().message;
  return std::move(g.value());
}

InstPtr demo_message(const Graph& g, bool with_opt, int items) {
  const auto id = [&](const char* name) {
    return g.find_by_name(name).value();
  };
  std::vector<InstPtr> children;
  children.push_back(ast::terminal(id("kind"), {with_opt ? Byte{1} : Byte{2}}));
  if (with_opt) {
    std::vector<InstPtr> opt_children;
    opt_children.push_back(ast::terminal(id("ov"), {9, 9}));
    children.push_back(ast::composite(id("opt"), std::move(opt_children)));
  } else {
    children.push_back(ast::absent(id("opt")));
  }
  std::vector<InstPtr> elements;
  for (int i = 0; i < items; ++i) {
    std::vector<InstPtr> pair;
    pair.push_back(ast::terminal(id("x"), {static_cast<Byte>(i)}));
    pair.push_back(ast::terminal(id("y"), {static_cast<Byte>(10 + i)}));
    elements.push_back(ast::composite(id("item"), std::move(pair)));
  }
  children.push_back(ast::composite(id("items"), std::move(elements)));
  return ast::composite(g.root(), std::move(children));
}

TEST(Ast, CloneIsDeepEqual) {
  const Graph g = demo_graph();
  InstPtr a = demo_message(g, true, 2);
  InstPtr b = ast::clone(*a);
  EXPECT_TRUE(ast::equal(*a, *b));
  b->children[0]->value[0] = 7;
  EXPECT_FALSE(ast::equal(*a, *b));
}

TEST(Ast, AbsentOptionalsCompareEqualRegardlessOfChildren) {
  const Graph g = demo_graph();
  InstPtr a = demo_message(g, false, 0);
  InstPtr b = demo_message(g, false, 0);
  // Stale children under an absent optional are ignored.
  b->children[1]->children.push_back(
      ast::terminal(g.find_by_name("ov").value(), {1, 2}));
  EXPECT_TRUE(ast::equal(*a, *b));
}

TEST(Ast, CountsInstances) {
  const Graph g = demo_graph();
  EXPECT_EQ(ast::count(*demo_message(g, true, 2)),
            1u + 1 + 2 + 1 + 2 * 3);  // root, kind, opt+ov, items, 2*(item,x,y)
}

TEST(Ast, FindSchemaLocatesAllInstances) {
  const Graph g = demo_graph();
  InstPtr msg = demo_message(g, true, 3);
  const NodeId x = g.find_by_name("x").value();
  EXPECT_EQ(ast::find_all_schema(*msg, x).size(), 3u);
  EXPECT_NE(ast::find_schema(*msg, x), nullptr);
  EXPECT_EQ(ast::find_schema(*msg, 9999), nullptr);
}

TEST(Ast, FindPathNavigatesElementsAndOptionals) {
  const Graph g = demo_graph();
  InstPtr msg = demo_message(g, true, 2);
  EXPECT_EQ(ast::find_path(g, *msg, "m.kind")->value, Bytes{1});
  EXPECT_EQ(ast::find_path(g, *msg, "m.opt.ov")->value, (Bytes{9, 9}));
  EXPECT_EQ(ast::find_path(g, *msg, "m.items[1].item.y")->value, Bytes{11});
  EXPECT_EQ(ast::find_path(g, *msg, "m.items[5].item.y"), nullptr);
  EXPECT_EQ(ast::find_path(g, *msg, "m.bogus"), nullptr);
}

TEST(Ast, CheckAcceptsWellFormed) {
  const Graph g = demo_graph();
  InstPtr msg = demo_message(g, true, 2);
  EXPECT_TRUE(ast::check(g, *msg).ok());
}

TEST(Ast, CheckRejectsChildCountMismatch) {
  const Graph g = demo_graph();
  InstPtr msg = demo_message(g, true, 1);
  msg->children.pop_back();
  EXPECT_FALSE(ast::check(g, *msg).ok());
}

TEST(Ast, CheckRejectsWrongFixedSize) {
  const Graph g = demo_graph();
  InstPtr msg = demo_message(g, true, 1);
  msg->children[0]->value = {1, 2, 3};  // kind is fixed(1)
  EXPECT_FALSE(ast::check(g, *msg).ok());
}

TEST(Ast, CheckRejectsWrongElementSchema) {
  const Graph g = demo_graph();
  InstPtr msg = demo_message(g, true, 1);
  // Put a non-element instance under the repetition.
  msg->children[2]->children.push_back(
      ast::terminal(g.find_by_name("kind").value(), {1}));
  EXPECT_FALSE(ast::check(g, *msg).ok());
}

TEST(Ast, DumpShowsValuesAndAbsence) {
  const Graph g = demo_graph();
  const std::string dump = ast::dump(g, *demo_message(g, false, 1));
  EXPECT_NE(dump.find("kind = 02"), std::string::npos);
  EXPECT_NE(dump.find("[absent]"), std::string::npos);
}

}  // namespace
}  // namespace protoobf
