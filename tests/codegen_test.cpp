// Code generator tests: emitted structure, metric behaviour (paper §VII-B)
// and standalone compilability of the generated unit.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "codegen/generator.hpp"
#include "core/protoobf.hpp"
#include "native/compiler.hpp"
#include "native/protocol.hpp"
#include "protocols/http.hpp"
#include "protocols/modbus.hpp"

namespace protoobf {
namespace {

ObfuscatedProtocol make(const std::string_view spec_text, int per_node,
                        std::uint64_t seed = 404) {
  auto g = Framework::load_spec(spec_text);
  EXPECT_TRUE(g.ok()) << g.error().message;
  ObfuscationConfig cfg;
  cfg.per_node = per_node;
  cfg.seed = seed;
  return Framework::generate(*g, cfg).value();
}

TEST(CallGraph, SizeAndDepth) {
  CallGraph cg;
  cg.add_call("a", "b");
  cg.add_call("b", "c");
  cg.add_call("a", "c");
  cg.add_function("orphan");
  EXPECT_EQ(cg.function_count(), 4u);
  EXPECT_EQ(cg.reachable_size("a"), 3u);
  EXPECT_EQ(cg.depth("a"), 3u);  // a -> b -> c
  EXPECT_EQ(cg.depth("c"), 1u);
  EXPECT_EQ(cg.reachable_size("missing"), 0u);
}

TEST(CallGraph, DuplicateEdgesCollapse) {
  CallGraph cg;
  cg.add_call("a", "b");
  cg.add_call("a", "b");
  EXPECT_EQ(cg.reachable_size("a"), 2u);
}

TEST(Codegen, PlainModbusStructure) {
  auto protocol = make(modbus::request_spec(), 0);
  const GeneratedCode code = generate_cpp(protocol);
  EXPECT_GT(code.metrics.lines, 500u);
  EXPECT_GT(code.metrics.structs, 40u);
  EXPECT_GT(code.metrics.callgraph_size, 30u);
  EXPECT_GE(code.metrics.callgraph_depth, 5u);
  // Entry points and stable accessors are present.
  EXPECT_NE(code.source.find("bool parse_message("), std::string::npos);
  EXPECT_NE(code.source.find("bool serialize_message("), std::string::npos);
  EXPECT_NE(code.source.find("set_transaction"), std::string::npos);
  EXPECT_NE(code.source.find("get_fn"), std::string::npos);
}

TEST(Codegen, MetricsGrowWithObfuscation) {
  CodeMetrics previous{};
  for (int per_node : {0, 1, 2, 3}) {
    auto protocol = make(modbus::request_spec(), per_node);
    const CodeMetrics m = generate_cpp(protocol).metrics;
    if (per_node > 0) {
      EXPECT_GT(m.lines, previous.lines);
      EXPECT_GT(m.structs, previous.structs);
      EXPECT_GT(m.callgraph_size, previous.callgraph_size);
      EXPECT_GE(m.callgraph_depth, previous.callgraph_depth);
    }
    previous = m;
  }
}

TEST(Codegen, TransformHelpersAppearInSource) {
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  cfg.seed = 12;
  cfg.enabled = {TransformKind::ConstXor, TransformKind::SplitAdd};
  auto protocol = Framework::generate(g, cfg).value();
  ASSERT_GT(protocol.stats().applied, 0u);
  const GeneratedCode code = generate_cpp(protocol);
  EXPECT_NE(code.source.find("_fwd"), std::string::npos);
  EXPECT_NE(code.source.find("_inv"), std::string::npos);
  EXPECT_NE(code.source.find("rnd_byte"), std::string::npos);
}

class CodegenCompiles : public ::testing::TestWithParam<int> {};

TEST_P(CodegenCompiles, GeneratedSourceIsValidCpp) {
  // The generated unit must stand alone; g++ -fsyntax-only proves it.
  for (std::string_view spec :
       {modbus::request_spec(), http::request_spec()}) {
    auto protocol = make(spec, GetParam());
    const GeneratedCode code = generate_cpp(protocol);
    const std::string path =
        ::testing::TempDir() + "/protoobf_gen_" +
        std::to_string(GetParam()) + "_" +
        std::to_string(code.metrics.lines) + ".cpp";
    {
      std::ofstream out(path);
      out << code.source;
    }
    const std::string cmd =
        "g++ -std=c++17 -fsyntax-only -w " + path + " 2>/dev/null";
    EXPECT_EQ(std::system(cmd.c_str()), 0)
        << "generated code does not compile: " << path;
    std::remove(path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, CodegenCompiles, ::testing::Values(0, 1, 2));

TEST(CodegenExecution, PlainGeneratedLibraryRoundTripsRealWire) {
  // Compile the generated (non-obfuscated) Modbus library together with a
  // tiny driver and check it parses and re-serializes a real frame
  // byte-for-byte. (With transformations applied, the generated unit is a
  // structural rendition — the runtime engine is the reference; at o=0 the
  // generated code is fully functional.)
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 0;
  auto protocol = Framework::generate(g, cfg).value();
  const GeneratedCode code = generate_cpp(protocol);

  Message msg = modbus::make_read_holding(g, 0x0001, 0x11, 0x006b, 3);
  const Bytes wire = protocol.serialize(msg.root(), 1).value();

  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/protoobf_exec.cpp";
  const std::string bin = dir + "/protoobf_exec";
  {
    std::ofstream out(src);
    out << code.source;
    out << R"driver(
#include <cstdio>
int main(int argc, char** argv) {
  if (argc < 2) return 2;
  gen_ModbusRequest::bytes wire;
  for (const char* p = argv[1]; p[0] && p[1]; p += 2) {
    unsigned v = 0;
    std::sscanf(p, "%2x", &v);
    wire.push_back(static_cast<std::uint8_t>(v));
  }
  gen_ModbusRequest::message_t msg{};
  if (!gen_ModbusRequest::parse_message(wire.data(), wire.size(), msg)) {
    return 3;
  }
  gen_ModbusRequest::bytes out;
  if (!gen_ModbusRequest::serialize_message(msg, out)) return 4;
  for (std::uint8_t b : out) std::printf("%02x", b);
  std::printf("\n");
  return 0;
}
)driver";
  }
  ASSERT_EQ(std::system(("g++ -std=c++17 -w -O1 -o " + bin + " " + src +
                         " 2>/dev/null").c_str()),
            0);
  FILE* pipe = popen((bin + " " + to_hex(wire)).c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buffer[512] = {};
  ASSERT_NE(std::fgets(buffer, sizeof buffer, pipe), nullptr);
  EXPECT_EQ(pclose(pipe), 0);
  std::string echoed(buffer);
  while (!echoed.empty() && (echoed.back() == '\n' || echoed.back() == '\r')) {
    echoed.pop_back();
  }
  EXPECT_EQ(echoed, to_hex(wire));
  std::remove(src.c_str());
  std::remove(bin.c_str());
}

TEST(CodegenExecution, ObfuscatedUnitCompilesLoadsAndRoundTrips) {
  // The stronger claim, at per_node > 0: the generated unit's po_native
  // section is not just valid C++ — compiled, dlopen'd and driven through
  // the ABI it reproduces the runtime engine's bytes exactly. Golden
  // round-trip: interpreter-serialized wire -> native parse -> native
  // fix_emit -> the same bytes.
  if (!native::NativeCompiler::toolchain_available()) {
    GTEST_SKIP() << "native toolchain unavailable in this build mode: "
                 << native::NativeCompiler::toolchain_status();
  }
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 404;
  auto protocol = Framework::generate(g, cfg).value();

  native::NativeCompiler::Options options;
  options.cache_dir = ::testing::TempDir() + "protoobf-codegen-exec";
  std::filesystem::remove_all(options.cache_dir);
  native::NativeCompiler compiler(options);
  auto built = compiler.compile(
      protocol, native::NativeCompiler::cache_file_base(protocol, 0xC0DE9E4,
                                                        cfg.seed,
                                                        cfg.per_node));
  ASSERT_TRUE(built.ok()) << built.error().message;
  ASSERT_NE(built->unit, nullptr);
  EXPECT_FALSE(built->disk_hit) << "fresh dir cannot have a cached unit";
  EXPECT_GT(built->compile_ms, 0.0);

  native::NativeProtocol backend(protocol, built->unit);
  Message msg = modbus::make_read_holding(g, 0x0001, 0x11, 0x006b, 3);
  for (std::uint64_t msg_seed : {1ull, 2ull, 99ull}) {
    Bytes interp, nat;
    ASSERT_TRUE(
        protocol.serialize_with(nullptr, msg.root(), msg_seed, interp).ok());
    ASSERT_TRUE(
        protocol.serialize_with(&backend, msg.root(), msg_seed, nat).ok());
    EXPECT_EQ(to_hex(nat), to_hex(interp)) << "msg_seed " << msg_seed;

    // Parse agreement is against the interpreter's canonical result (the
    // hand-built message need not be in canonical form).
    auto reparsed = protocol.parse_with(&backend, nat);
    auto reference = protocol.parse_with(nullptr, nat);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
    ASSERT_TRUE(reference.ok()) << reference.error().message;
    EXPECT_TRUE(ast::equal(**reparsed, **reference));
  }
}

}  // namespace
}  // namespace protoobf
