// Direct unit tests for the structural predicates behind transformation
// applicability (transform/constraints.hpp).
#include <gtest/gtest.h>

#include "spec/parser.hpp"
#include "transform/constraints.hpp"

namespace protoobf {
namespace {

Graph spec(std::string_view text) {
  auto g = parse_spec(text);
  EXPECT_TRUE(g.ok()) << g.error().message;
  return std::move(g.value());
}

NodeId find(const Graph& g, std::string_view name) {
  return g.find_by_name(name).value();
}

TEST(Constraints, ScanAncestorDetection) {
  Graph g = spec(R"(
protocol P
m: seq end {
  line: seq delimited("!") {
    inner: terminal fixed(1)
  }
  plain: terminal fixed(1)
  rep: repeat delimited(";") {
    e: seq { x: terminal fixed(1) y: terminal fixed(1) }
  }
}
)");
  EXPECT_TRUE(has_scan_ancestor(g, find(g, "inner")));
  EXPECT_FALSE(has_scan_ancestor(g, find(g, "plain")));
  EXPECT_FALSE(has_scan_ancestor(g, find(g, "line")));  // self, not ancestor
  // Stop-marker repetitions are scanned regions too.
  EXPECT_TRUE(has_scan_ancestor(g, find(g, "x")));
}

TEST(Constraints, FixedAncestorDetection) {
  Graph g = spec(R"(
protocol P
m: seq end {
  block: seq fixed(4) {
    a: terminal fixed(2)
    b: terminal fixed(2)
  }
  free: terminal fixed(2)
}
)");
  EXPECT_TRUE(has_fixed_ancestor(g, find(g, "a")));
  EXPECT_FALSE(has_fixed_ancestor(g, find(g, "free")));
  EXPECT_FALSE(has_fixed_ancestor(g, find(g, "block")));
}

TEST(Constraints, InsideSplitRegionDetection) {
  // Build a split shape by hand: seq with a Half first child.
  Graph g = spec(R"(
protocol P
m: seq end {
  s: seq fixed(4) {
    a: terminal fixed(2)
    b: terminal fixed(2)
  }
}
)");
  EXPECT_FALSE(inside_split_region(g, find(g, "a")));
  g.node(find(g, "a")).boundary = BoundaryKind::Half;
  g.node(find(g, "b")).boundary = BoundaryKind::End;
  EXPECT_TRUE(inside_split_region(g, find(g, "a")));
  EXPECT_TRUE(inside_split_region(g, find(g, "b")));
  EXPECT_FALSE(inside_split_region(g, find(g, "s")));
}

TEST(Constraints, EscapingEndDetection) {
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal fixed(2)
  bounded: seq length(len) {
    contained: terminal end
  }
  open: seq {
    escaping: terminal end
  }
}
)");
  // `contained`'s End region is owned by the Length-bounded `bounded`.
  EXPECT_FALSE(subtree_has_escaping_end(g, find(g, "bounded")));
  // `escaping` reaches past `open` to the message end.
  EXPECT_TRUE(subtree_has_escaping_end(g, find(g, "open")));
  // An End node itself trivially escapes its own subtree.
  EXPECT_TRUE(subtree_has_escaping_end(g, find(g, "escaping")));
  EXPECT_TRUE(subtree_has_escaping_end(g, find(g, "contained")));
  // A plain terminal does not.
  EXPECT_FALSE(subtree_has_escaping_end(g, find(g, "len")));
}

TEST(Constraints, RefsCrossDetection) {
  Graph g = spec(R"(
protocol P
m: seq end {
  left: seq {
    llen: terminal fixed(1)
  }
  right: seq {
    rdata: terminal length(llen)
  }
  lone: terminal fixed(1)
}
)");
  EXPECT_TRUE(refs_cross(g, find(g, "left"), find(g, "right")));
  EXPECT_FALSE(refs_cross(g, find(g, "lone"), find(g, "lone")));
}

TEST(Constraints, ExternallyReferencedDetection) {
  Graph g = spec(R"(
protocol P
m: seq end {
  hdr: seq {
    len: terminal fixed(1)
  }
  body: terminal length(len)
  free: terminal fixed(1)
}
)");
  EXPECT_TRUE(externally_referenced(g, find(g, "hdr")));
  EXPECT_TRUE(externally_referenced(g, find(g, "len")));
  EXPECT_FALSE(externally_referenced(g, find(g, "free")));
  // From inside the same subtree it is not "external".
  EXPECT_FALSE(externally_referenced(g, g.root()));
}

TEST(Constraints, DelimiterDigitCheck) {
  EXPECT_FALSE(delimiter_has_digit(to_bytes("\r\n")));
  EXPECT_FALSE(delimiter_has_digit(to_bytes(": ")));
  EXPECT_TRUE(delimiter_has_digit(to_bytes("=1=")));
  EXPECT_FALSE(delimiter_has_digit(Bytes{}));
}

TEST(Constraints, SubtreeIdsCoversWholeSubtree) {
  Graph g = spec(R"(
protocol P
m: seq end {
  a: seq { b: terminal fixed(1) c: terminal fixed(1) }
  d: terminal fixed(1)
}
)");
  const auto ids = subtree_ids(g, find(g, "a"));
  EXPECT_EQ(ids.size(), 3u);
  const auto all = subtree_ids(g, g.root());
  EXPECT_EQ(all.size(), g.size());
}

}  // namespace
}  // namespace protoobf
