// Regression corpus replay (ISSUE 6 satellite).
//
// Every input that ever violated a fuzz invariant — or that pins down a
// structurally nasty shape worth guarding forever — lives as a file in
// tests/corpus/crashers/ and is replayed here through the full
// FuzzRunner oracle set. This test is ordered BEFORE the randomized
// campaigns (ctest DEPENDS): a regression must fail deterministically on
// its pinned input, not rely on a lucky redraw of the day's RNG.
//
// Corpus entry format (line-oriented text, `key: value`):
//
//   spec: netdemo            # name in fuzz_support.hpp's registry
//   seed: 90125              # ObfuscationConfig::seed
//   per_node: 2              # ObfuscationConfig::per_node
//   note: what this input once broke
//   wire: face01...          # hex bytes of the input
//
// To add an entry: take the failing campaign's spec/seed/per_node and the
// hexdump from the assertion message, drop them in a new file.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/protoobf.hpp"
#include "fuzz/runner.hpp"
#include "fuzz_support.hpp"
#include "native/cache.hpp"
#include "runtime/parse.hpp"
#include "session/protocol_cache.hpp"
#include "util/rng.hpp"

#ifndef PROTOOBF_CORPUS_DIR
#define PROTOOBF_CORPUS_DIR "tests/corpus/crashers"
#endif

namespace protoobf {
namespace {

struct CorpusEntry {
  std::string file;
  std::string spec;
  std::uint64_t seed = 0;
  int per_node = 0;
  std::string note;
  Bytes wire;
};

Expected<CorpusEntry> load_entry(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return Unexpected("cannot open " + path.string());
  CorpusEntry entry;
  entry.file = path.filename().string();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Unexpected(entry.file + ": malformed line '" + line + "'");
    }
    std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    value.erase(0, value.find_first_not_of(" \t"));
    if (key == "spec") {
      entry.spec = value;
    } else if (key == "seed") {
      entry.seed = std::strtoull(value.c_str(), nullptr, 0);
    } else if (key == "per_node") {
      entry.per_node = static_cast<int>(std::strtol(value.c_str(), nullptr, 0));
    } else if (key == "note") {
      entry.note = value;
    } else if (key == "wire") {
      auto bytes = from_hex(value);
      if (!bytes.has_value()) {
        return Unexpected(entry.file + ": bad hex in wire line");
      }
      entry.wire = std::move(*bytes);
    } else {
      return Unexpected(entry.file + ": unknown key '" + key + "'");
    }
  }
  if (entry.spec.empty()) return Unexpected(entry.file + ": missing spec");
  return entry;
}

TEST(CorpusReplay, EveryCheckedInCrasherHoldsAllInvariants) {
  const std::filesystem::path dir(PROTOOBF_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "corpus directory missing: " << dir;

  std::vector<std::filesystem::path> files;
  for (const auto& it : std::filesystem::directory_iterator(dir)) {
    if (it.is_regular_file()) files.push_back(it.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "empty corpus: " << dir;

  // One compiled protocol + runner per (spec, seed, per_node), reused
  // across entries the way the fuzz campaign reuses its per-arm runner.
  struct ReplayArm {
    std::unique_ptr<ObfuscatedProtocol> protocol;
    std::unique_ptr<fuzz::FuzzRunner> runner;
    std::shared_ptr<const native::NativeProtocol> native;
  };
  std::map<std::string, ReplayArm> runners;

  // Crashers replay through the native engine too: an input that once broke
  // the interpreter is exactly the input a transliteration gets wrong.
  const bool native_ok = native::NativeCompiler::toolchain_available();
  if (!native_ok) {
    std::printf("[ info ] native agreement arm skipped: %s\n",
                native::NativeCompiler::toolchain_status().c_str());
  }
  native::NativeCache native_cache;

  for (const auto& path : files) {
    auto entry = load_entry(path);
    ASSERT_TRUE(entry.ok()) << entry.error().message;

    const fuzztest::SpecEntry* spec = fuzztest::find_spec(entry->spec);
    ASSERT_NE(spec, nullptr)
        << entry->file << ": spec '" << entry->spec << "' not in registry";

    const std::string key = entry->spec + "/" +
                            std::to_string(entry->seed) + "/" +
                            std::to_string(entry->per_node);
    auto found = runners.find(key);
    if (found == runners.end()) {
      auto graph = Framework::load_spec(spec->spec);
      ASSERT_TRUE(graph.ok()) << graph.error().message;
      ObfuscationConfig cfg;
      cfg.seed = entry->seed;
      cfg.per_node = entry->per_node;
      auto protocol = Framework::generate(*graph, cfg);
      ASSERT_TRUE(protocol.ok()) << entry->file << ": "
                                 << protocol.error().message;
      ReplayArm arm;
      arm.protocol = std::make_unique<ObfuscatedProtocol>(std::move(*protocol));
      fuzz::FuzzRunner::Config run_cfg;
      run_cfg.whole_message = !stream_safe(arm.protocol->wire_graph()).ok();
      arm.runner = std::make_unique<fuzz::FuzzRunner>(*arm.protocol, run_cfg);
      if (native_ok) {
        auto backend = native_cache.get_or_compile(
            *arm.protocol, ProtocolCache::hash_spec(spec->spec), cfg);
        ASSERT_TRUE(backend.ok()) << entry->file << ": native build failed: "
                                  << backend.error().message;
        arm.native = *backend;
        arm.runner->set_native_backend(arm.native.get());
      }
      found = runners.emplace(key, std::move(arm)).first;
    }

    // The chunk RNG is pinned per entry (not per campaign): replays are
    // bit-for-bit deterministic regardless of corpus ordering.
    Rng chunks(entry->seed ^ 0xC0DE ^ entry->wire.size());
    const std::string violation =
        found->second.runner->check(entry->wire, chunks);
    EXPECT_EQ(violation, "")
        << entry->file << " (" << entry->note << ")\n"
        << hexdump(entry->wire);
  }
}

}  // namespace
}  // namespace protoobf
