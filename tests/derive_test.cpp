// Derived-field machinery tests: canonicalize (logical values against G1)
// and fix_holders (wire values against G(n+1) with lineage replay).
#include <gtest/gtest.h>

#include "core/protoobf.hpp"
#include "runtime/derive.hpp"
#include "runtime/emit.hpp"
#include "transform/exec.hpp"

namespace protoobf {
namespace {

Graph spec(std::string_view text) {
  auto g = Framework::load_spec(text);
  EXPECT_TRUE(g.ok()) << g.error().message;
  return std::move(g.value());
}

TEST(FillConsts, FillsEmptyAndChecksNonEmpty) {
  Graph g = spec(R"(
protocol P
m: seq end {
  magic: terminal fixed(2) const(0xbeef)
  rest: terminal end
}
)");
  Message ok(g);
  ok.set_text("rest", "x");
  ASSERT_TRUE(fill_consts(g, ok.root()).ok());
  EXPECT_EQ(ok.get("magic").value(), (Bytes{0xbe, 0xef}));

  Message bad(g);
  bad.set("magic", Bytes{0x00, 0x01});
  bad.set_text("rest", "x");
  EXPECT_FALSE(fill_consts(g, bad.root()).ok());
}

TEST(Canonicalize, ComputesNestedLengths) {
  // Outer length covers a region containing an inner length field.
  Graph g = spec(R"(
protocol P
m: seq end {
  outer_len: terminal fixed(2)
  region: seq length(outer_len) {
    inner_len: terminal fixed(1)
    inner: terminal length(inner_len)
    pad: terminal fixed(2)
  }
}
)");
  Message msg(g);
  msg.set_text("inner", "abcdef");
  msg.set("pad", Bytes{0, 0});
  ASSERT_TRUE(canonicalize(g, msg.root()).ok());
  EXPECT_EQ(msg.get_uint("inner_len").value(), 6u);
  EXPECT_EQ(msg.get_uint("outer_len").value(), 1u + 6 + 2);
}

TEST(Canonicalize, AsciiWidthReachesFixpoint) {
  // The ASCII length's own width is part of no region here, but its value
  // must size dynamically (1 digit vs 2 digits).
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal delimited(";") ascii
  payload: terminal length(len)
}
)");
  for (std::size_t n : {5u, 12u, 120u}) {
    Message msg(g);
    msg.set("payload", Bytes(n, 0x41));
    ASSERT_TRUE(canonicalize(g, msg.root()).ok());
    EXPECT_EQ(msg.get_uint("len").value(), n);
  }
}

TEST(Canonicalize, OverwritesStaleUserValues) {
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal fixed(2)
  payload: terminal length(len)
}
)");
  Message msg(g);
  msg.set_uint("len", 9999);  // wrong on purpose: derived fields are owned
  msg.set_text("payload", "xy");
  ASSERT_TRUE(canonicalize(g, msg.root()).ok());
  EXPECT_EQ(msg.get_uint("len").value(), 2u);
}

TEST(Canonicalize, RejectsOverflowingBinaryHolder) {
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal fixed(1)
  payload: terminal length(len)
}
)");
  Message msg(g);
  msg.set("payload", Bytes(300, 0));  // needs 2 bytes, field holds 1
  EXPECT_FALSE(canonicalize(g, msg.root()).ok());
}

TEST(CheckPresence, DetectsBothMismatchDirections) {
  Graph g = spec(R"(
protocol P
m: seq end {
  kind: terminal fixed(1)
  x: optional (kind == 0x01) { xv: terminal fixed(1) }
  rest: terminal end
}
)");
  Message missing(g);
  missing.set_uint("kind", 1);  // condition true but optional absent
  missing.set_text("rest", "r");
  ASSERT_TRUE(canonicalize(g, missing.root()).ok());
  EXPECT_FALSE(check_presence(g, missing.root()).ok());

  Message spurious(g);
  spurious.set_uint("kind", 0);
  spurious.set("xv", Bytes{1});  // materializes the optional
  spurious.set_text("rest", "r");
  ASSERT_TRUE(canonicalize(g, spurious.root()).ok());
  EXPECT_FALSE(check_presence(g, spurious.root()).ok());
}

TEST(FixHolders, WireLengthTracksTransformedSize) {
  // SplitAdd under the measured region doubles the payload: the wire length
  // must be the doubled size, while the logical length stays the original.
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal fixed(2)
  payload: terminal length(len)
  rest: terminal end
}
)");
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  cfg.seed = 21;
  cfg.enabled = {TransformKind::SplitAdd};
  auto p = Framework::generate(g, cfg).value();
  ASSERT_GE(p.stats().applied, 2u);  // at least len or payload split

  Message msg(g);
  msg.set_text("payload", "12345678");
  msg.set_text("rest", "R");
  auto wire = p.serialize(msg.root(), 4);
  ASSERT_TRUE(wire.ok()) << wire.error().message;

  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok()) << back.error().message;
  // The canonical (logical) view recomputes len = 8, not 16.
  const Inst* len = ast::find_path(g, **back, "m.len");
  EXPECT_EQ(be_decode(len->value), 8u);
}

TEST(FixHolders, SplitLengthFieldStillDelimits) {
  // The length holder itself is split: the parser must recombine the two
  // halves to learn the region size.
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal fixed(2)
  payload: terminal length(len)
  rest: terminal end
}
)");
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    ObfuscationConfig cfg;
    cfg.per_node = 2;
    cfg.seed = seed;
    auto p = Framework::generate(g, cfg).value();
    Message msg(g);
    msg.set_text("payload", "payload-bytes");
    msg.set_text("rest", "rest");
    auto wire = p.serialize(msg.root(), seed);
    ASSERT_TRUE(wire.ok()) << seed << ": " << wire.error().message;
    auto back = p.parse(*wire);
    ASSERT_TRUE(back.ok()) << seed << ": " << back.error().message;
    EXPECT_EQ(ast::find_path(g, **back, "m.payload")->value,
              to_bytes("payload-bytes"));
  }
}

TEST(FixHolders, CounterSurvivesValueTransforms) {
  Graph g = spec(R"(
protocol P
m: seq end {
  n: terminal fixed(1)
  items: tabular(n) { item: terminal fixed(2) }
  rest: terminal end
}
)");
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    ObfuscationConfig cfg;
    cfg.per_node = 2;
    cfg.seed = seed;
    auto p = Framework::generate(g, cfg).value();
    Message msg(g);
    for (int i = 0; i < 5; ++i) {
      msg.append("items");
      msg.set_uint("items[" + std::to_string(i) + "].item", 100 + i);
    }
    msg.set_text("rest", "!");
    auto wire = p.serialize(msg.root(), seed + 50);
    ASSERT_TRUE(wire.ok()) << seed << ": " << wire.error().message;
    auto back = p.parse(*wire);
    ASSERT_TRUE(back.ok()) << seed << ": " << back.error().message;
    EXPECT_EQ(ast::find_path(g, **back, "m.items")->children.size(), 5u);
    EXPECT_EQ(be_decode(ast::find_path(g, **back, "m.n")->value), 5u);
  }
}

TEST(Emit, SizeMatchesBuffer) {
  Graph g = spec(R"(
protocol P
m: seq end {
  a: terminal fixed(3)
  b: terminal delimited("!")
}
)");
  Message msg(g);
  msg.set("a", Bytes{1, 2, 3});
  msg.set_text("b", "bb");
  ASSERT_TRUE(canonicalize(g, msg.root()).ok());
  auto bytes = emit(g, msg.root());
  ASSERT_TRUE(bytes.ok());
  auto size = emitted_size(g, msg.root());
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, bytes->size());
  EXPECT_EQ(*size, 3u + 2 + 1);
}

TEST(Emit, RejectsRepetitionElementStartingWithStopMarker) {
  Graph g = spec(R"(
protocol P
m: seq end {
  lines: repeat delimited("$") { line: terminal delimited("$") }
  rest: terminal end
}
)");
  Message msg(g);
  msg.append("lines");
  msg.set_text("lines[0].line", "");  // empty line -> element starts with $
  msg.set_text("rest", "x");
  ASSERT_TRUE(canonicalize(g, msg.root()).ok());
  EXPECT_FALSE(emit(g, msg.root()).ok());
}

}  // namespace
}  // namespace protoobf
