// Determinism regression tests.
//
// The deployment model depends on reproducibility at two layers: the
// generator (same spec + ObfuscationConfig must select the same
// transformations, whenever and wherever it runs) and the runtime (same
// message + msg_seed must emit the same wire bytes). A peer that rebuilds
// the protocol — recompiling from the spec, loading a persisted artifact,
// or reassembling via from_parts — must produce bit-identical traffic, or
// rotated deployments stop interoperating mid-rotation.
#include <gtest/gtest.h>

#include "protocols/http.hpp"
#include "protocols/modbus.hpp"
#include "runtime/persist.hpp"
#include "session/protocol_cache.hpp"

namespace protoobf {
namespace {

constexpr std::string_view kFig3Spec = R"spec(
protocol Fig3

msg: seq end {
  len: terminal fixed(2)
  payload: seq length(len) {
    fn: terminal fixed(1)
    m1: optional (fn == 0x01) {
      m1_body: seq {
        addr: terminal fixed(2)
        qty: terminal fixed(2)
      }
    }
    m2: optional (fn == 0x02) {
      m2_body: seq {
        count: terminal fixed(1)
        regs: tabular(count) {
          reg: terminal fixed(2)
        }
      }
    }
  }
}
)spec";

Message fig3_message(const Graph& g) {
  Message msg(g);
  msg.set_uint("fn", 2);
  for (int i = 0; i < 3; ++i) {
    msg.append("regs");
    msg.set_uint("regs[" + std::to_string(i) + "].reg", 0x1000 + i);
  }
  return msg;
}

struct Case {
  int per_node;
  std::uint64_t seed;
};

class Determinism : public ::testing::TestWithParam<Case> {};

// Two independent compilations of the same (spec, seed, per_node) are the
// same protocol: identical artifact text and identical wire bytes for
// identical (message, msg_seed).
TEST_P(Determinism, RecompilationIsBitIdentical) {
  const Case c = GetParam();
  ObfuscationConfig cfg;
  cfg.seed = c.seed;
  cfg.per_node = c.per_node;

  auto g1 = Framework::load_spec(kFig3Spec).value();
  auto g2 = Framework::load_spec(kFig3Spec).value();
  auto first = Framework::generate(g1, cfg).value();
  auto second = Framework::generate(g2, cfg).value();
  EXPECT_EQ(save_artifact(first), save_artifact(second));

  Message msg = fig3_message(first.original());
  for (const std::uint64_t msg_seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    auto a = first.serialize(msg.root(), msg_seed);
    auto b = second.serialize(msg.root(), msg_seed);
    ASSERT_TRUE(a.ok()) << a.error().message;
    ASSERT_TRUE(b.ok()) << b.error().message;
    EXPECT_EQ(*a, *b) << "msg_seed " << msg_seed;
    // Repeated serialization of the same inputs is stable within one
    // instance too (no hidden per-call state).
    EXPECT_EQ(*a, *first.serialize(msg.root(), msg_seed));
  }
}

// persist -> load and from_parts rebuilds serialize bit-identically and
// parse each other's traffic.
TEST_P(Determinism, RebuiltProtocolsMatchTheOriginal) {
  const Case c = GetParam();
  ObfuscationConfig cfg;
  cfg.seed = c.seed;
  cfg.per_node = c.per_node;
  auto g = Framework::load_spec(kFig3Spec).value();
  auto original = Framework::generate(g, cfg).value();

  auto loaded = load_artifact(save_artifact(original));
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  auto reparts = ObfuscatedProtocol::from_parts(original.original().clone(),
                                                original.wire_graph().clone(),
                                                original.journal());
  ASSERT_TRUE(reparts.ok()) << reparts.error().message;

  Message msg = fig3_message(original.original());
  for (const std::uint64_t msg_seed : {3ull, 77ull, 123456789ull}) {
    const Bytes wire = original.serialize(msg.root(), msg_seed).value();
    EXPECT_EQ(wire, loaded->serialize(msg.root(), msg_seed).value());
    EXPECT_EQ(wire, reparts->serialize(msg.root(), msg_seed).value());

    auto tree = loaded->parse(wire);
    ASSERT_TRUE(tree.ok()) << tree.error().message;
    auto tree2 = reparts->parse(wire);
    ASSERT_TRUE(tree2.ok()) << tree2.error().message;
    EXPECT_TRUE(ast::equal(**tree, **tree2));
  }
}

// The cache returns protocols indistinguishable from direct compilation.
TEST_P(Determinism, CachedCompilationMatchesDirect) {
  const Case c = GetParam();
  ObfuscationConfig cfg;
  cfg.seed = c.seed;
  cfg.per_node = c.per_node;
  auto g = Framework::load_spec(kFig3Spec).value();
  auto direct = Framework::generate(g, cfg).value();
  ProtocolCache cache;
  auto cached = cache.get_or_compile(kFig3Spec, cfg);
  ASSERT_TRUE(cached.ok()) << cached.error().message;

  Message msg = fig3_message(direct.original());
  EXPECT_EQ(direct.serialize(msg.root(), 5).value(),
            (*cached)->serialize(msg.root(), 5).value());
  EXPECT_EQ(save_artifact(direct), save_artifact(**cached));
}

INSTANTIATE_TEST_SUITE_P(
    Levels, Determinism,
    ::testing::Values(Case{0, 2018}, Case{1, 2018}, Case{2, 2018},
                      Case{3, 2018}, Case{2, 0}, Case{4, 0xfeedface}),
    [](const ::testing::TestParamInfo<Case>& info) {
      // Built up in place: `"o" + std::to_string(...)` takes a
      // rvalue-insert path that GCC 12's -Wrestrict misdiagnoses under
      // -O2 (PR 105329).
      std::string name = "o";
      name += std::to_string(info.param.per_node);
      name += "_s";
      name += std::to_string(info.param.seed);
      return name;
    });

// The identity protocol's wire image is fully pinned by the specification
// semantics alone; a golden value locks cross-process/cross-version
// stability of the canonical emission (paper §V-A DFS-concatenation).
TEST(Determinism, IdentityWireGolden) {
  ObfuscationConfig cfg;
  cfg.per_node = 0;
  auto g = Framework::load_spec(kFig3Spec).value();
  auto protocol = Framework::generate(g, cfg).value();
  Message msg = fig3_message(protocol.original());
  const Bytes wire = protocol.serialize(msg.root(), 9).value();
  // len(2)=0008 | fn(1)=02 | count(1)=03 | regs: 1000 1001 1002
  EXPECT_EQ(to_hex(wire), "00080203100010011002");
}

// Wire bytes for the obfuscated protocol differ across msg_seeds when any
// randomized transformation is present — determinism must not collapse the
// per-message randomness.
TEST(Determinism, MsgSeedStillVariesTheWire) {
  ObfuscationConfig cfg;
  cfg.seed = 2018;
  cfg.per_node = 3;
  auto g = Framework::load_spec(kFig3Spec).value();
  auto protocol = Framework::generate(g, cfg).value();
  Message msg = fig3_message(protocol.original());
  auto a = protocol.serialize(msg.root(), 1);
  auto b = protocol.serialize(msg.root(), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  // Seeds drive split halves / pad bytes; with 3 rounds per node the two
  // images are overwhelmingly likely to differ. Equality here would signal
  // the seed is being ignored.
  EXPECT_NE(*a, *b);
}

}  // namespace
}  // namespace protoobf
