// Stress/property suite: the round-trip invariant on a feature-complete
// synthetic protocol (TLV records, nested lengths, ASCII lengths, tabular
// + repetition, deep optionals) across a wide seed sweep. This is where
// interacting transformations (a split length holder inside a mirrored,
// boundary-changed region...) get hammered.
//
// Message randomness is salted with PROTOOBF_FUZZ_SEED (default 0): CI can
// sweep fresh message populations, and every failure logs the salt needed
// to replay the exact run.
#include <gtest/gtest.h>

#include "core/protoobf.hpp"
#include "fuzz_support.hpp"
#include "util/rng.hpp"

namespace protoobf {
namespace {

constexpr std::string_view kTortureSpec = R"(
protocol Torture
m: seq end {
  magic: terminal fixed(2) const(0xface)
  flags: terminal fixed(1)
  title: terminal delimited("|") ascii
  records: repeat delimited("$") {
    record: seq delimited("$") {
      rtag: terminal fixed(1)
      rlen: terminal fixed(1)
      rval: terminal length(rlen)
    }
  }
  n: terminal fixed(1)
  pairs: tabular(n) {
    pair: seq {
      pk: terminal fixed(1)
      plen: terminal fixed(1)
      pv: terminal length(plen)
    }
  }
  ext: optional (flags nonzero) {
    ext_body: seq {
      elen: terminal delimited(";") ascii
      edata: terminal length(elen)
    }
  }
  blob_len: terminal fixed(2)
  blob: terminal length(blob_len)
  tail: terminal end
}
)";

Message random_message(const Graph& g, Rng& rng) {
  Message msg(g);
  msg.set("flags", Bytes{static_cast<Byte>(rng.below(2))});
  // Built up in place: `"t" + std::to_string(...)` takes a rvalue-insert
  // path that GCC 12's -Wrestrict misdiagnoses under -O2 (PR 105329).
  std::string title = "t";
  title += std::to_string(rng.below(1000));
  msg.set_text("title", title);

  const std::size_t records = rng.below(3);
  for (std::size_t i = 0; i < records; ++i) {
    msg.append("records");
    const std::string base = "records[" + std::to_string(i) + "].record.";
    // rtag must not look like the stop marker '$' at element start.
    Bytes tag = rng.bytes(1);
    if (tag[0] == '$') tag[0] = '!';
    msg.set(base + "rtag", std::move(tag));
    // rval must not contain the record delimiter '$'.
    Bytes rv = rng.bytes(rng.below(5));
    for (auto& b : rv) {
      if (b == '$') b = '#';
    }
    msg.set(base + "rval", std::move(rv));
  }

  const std::size_t pairs = rng.below(4);
  for (std::size_t i = 0; i < pairs; ++i) {
    msg.append("pairs");
    const std::string base = "pairs[" + std::to_string(i) + "].pair.";
    msg.set(base + "pk", rng.bytes(1));
    msg.set(base + "pv", rng.bytes(rng.below(6)));
  }

  if (msg.get("flags").value()[0] != 0) {
    msg.set("edata", rng.bytes(rng.between(0, 20)));
  }
  msg.set("blob", rng.bytes(rng.below(24)));
  msg.set("tail", rng.bytes(rng.below(8)));
  return msg;
}

class FuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRoundTrip, TortureSpecSurvivesAllLevels) {
  const std::uint64_t salt = fuzztest::fuzz_seed(0);
  SCOPED_TRACE(fuzztest::seed_note(salt));
  auto graph = Framework::load_spec(kTortureSpec);
  ASSERT_TRUE(graph.ok()) << graph.error().message;

  for (int per_node = 0; per_node <= 3; ++per_node) {
    ObfuscationConfig cfg;
    cfg.seed = GetParam();
    cfg.per_node = per_node;
    auto protocol = Framework::generate(*graph, cfg);
    ASSERT_TRUE(protocol.ok())
        << "o=" << per_node << ": " << protocol.error().message;

    Rng rng(GetParam() * 1000003 + per_node + salt);
    for (int i = 0; i < 8; ++i) {
      Message msg = random_message(*graph, rng);
      InstPtr canonical = ast::clone(msg.root());
      const Status canon = protocol->canonicalize(*canonical);
      ASSERT_TRUE(canon.ok()) << canon.error().message << "\n"
                              << ast::dump(*graph, msg.root());

      auto wire = protocol->serialize(msg.root(), GetParam() + i);
      ASSERT_TRUE(wire.ok())
          << "o=" << per_node << " msg " << i << ": " << wire.error().message
          << "\n" << ast::dump(*graph, msg.root());
      auto parsed = protocol->parse(*wire);
      ASSERT_TRUE(parsed.ok())
          << "o=" << per_node << " msg " << i << ": "
          << parsed.error().message << " at " << parsed.error().offset
          << "\n" << hexdump(*wire) << ast::dump(*graph, msg.root());
      EXPECT_TRUE(ast::equal(*canonical, **parsed))
          << ast::dump(*graph, *canonical) << "vs\n"
          << ast::dump(*graph, **parsed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzRoundTrip,
    ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610,
                      987, 1597, 2584, 4181, 6765, 10946));

// Corrupt-wire fuzz: random single-byte corruption must never crash the
// parser (it may legitimately still parse when the corrupted byte is
// payload data — parsers detect *format* violations, not data changes).
class CorruptionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionFuzz, SingleByteCorruptionNeverCrashes) {
  const std::uint64_t salt = fuzztest::fuzz_seed(0);
  SCOPED_TRACE(fuzztest::seed_note(salt));
  auto graph = Framework::load_spec(kTortureSpec);
  ASSERT_TRUE(graph.ok());
  ObfuscationConfig cfg;
  cfg.seed = GetParam();
  cfg.per_node = 2;
  auto protocol = Framework::generate(*graph, cfg).value();

  Rng rng((GetParam() ^ 0x1234) + salt);
  Message msg = random_message(*graph, rng);
  auto wire = protocol.serialize(msg.root(), 9);
  ASSERT_TRUE(wire.ok());

  for (int trial = 0; trial < 64; ++trial) {
    Bytes corrupted = *wire;
    const std::size_t pos = rng.below(corrupted.size());
    corrupted[pos] ^= static_cast<Byte>(rng.between(1, 255));
    auto parsed = protocol.parse(corrupted);  // must not crash or hang
    (void)parsed;
  }
  // Truncations at every length likewise.
  for (std::size_t keep = 0; keep < wire->size(); ++keep) {
    Bytes truncated(wire->begin(),
                    wire->begin() + static_cast<std::ptrdiff_t>(keep));
    auto parsed = protocol.parse(truncated);
    (void)parsed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace protoobf
