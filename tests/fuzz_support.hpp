// Shared plumbing for the adversarial test family (fuzz_wire_test,
// corpus_replay_test, hostile_memory_test, fuzz_roundtrip_test):
//
//   * environment knobs — every randomized suite logs the RNG seed it ran
//     with and honors PROTOOBF_FUZZ_SEED, so a CI failure line is enough
//     to reproduce the exact campaign locally; iteration counts scale via
//     PROTOOBF_FUZZ_ITERS / PROTOOBF_FUZZ_REPLAYS;
//   * the spec registry — the protocols the fuzzer runs against, *named*,
//     because corpus entries refer to them by name: a checked-in crasher
//     is (spec name, compile seed, per_node, wire bytes), and the replay
//     test must rebuild the identical protocol years later.
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/protoobf.hpp"
#include "protocols/modbus.hpp"

namespace protoobf::fuzztest {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 0);
}

/// The campaign seed: PROTOOBF_FUZZ_SEED when set, else `fallback`.
inline std::uint64_t fuzz_seed(std::uint64_t fallback) {
  return env_u64("PROTOOBF_FUZZ_SEED", fallback);
}

/// Goes into every fuzz assertion message: the one line needed to rerun
/// the failing campaign.
inline std::string seed_note(std::uint64_t seed) {
  return "reproduce with PROTOOBF_FUZZ_SEED=" + std::to_string(seed);
}

// --- spec registry ----------------------------------------------------------

struct SpecEntry {
  std::string_view name;
  std::string_view spec;
  // Default obfuscation depth for campaign arms built from this entry.
  // (Corpus entries carry their own per_node and override this.)
  int per_node = 2;
};

/// Length-prefixed demo format (stream-safe; the net tests' protocol).
constexpr std::string_view kNetDemoSpec = R"(
protocol NetDemo
msg: seq end {
  tag: terminal fixed(2)
  blen: terminal fixed(2)
  body: terminal length(blen)
}
)";

/// Delimiter/stop-marker heavy format (stream-safe): repeated
/// delimiter-bounded records plus a trailing delimited field — the spec
/// shape whose incremental parse rides undecided-stop-marker suspensions.
constexpr std::string_view kDelimSpec = R"(
protocol DelimChat
m: seq end {
  kind: terminal fixed(1)
  items: repeat delimited("$") {
    item: seq delimited("$") {
      ilen: terminal fixed(1)
      ival: terminal length(ilen)
    }
  }
  note: terminal delimited("\r\n") ascii
}
)";

/// Kitchen-sink format from fuzz_roundtrip_test (NOT stream-safe: the
/// trailing `end` terminal consumes to end-of-input, so prefix parsing is
/// rejected and the fuzzer runs it in whole-message mode).
constexpr std::string_view kTortureSpec = R"(
protocol Torture
m: seq end {
  magic: terminal fixed(2) const(0xface)
  flags: terminal fixed(1)
  title: terminal delimited("|") ascii
  records: repeat delimited("$") {
    record: seq delimited("$") {
      rtag: terminal fixed(1)
      rlen: terminal fixed(1)
      rval: terminal length(rlen)
    }
  }
  n: terminal fixed(1)
  pairs: tabular(n) {
    pair: seq {
      pk: terminal fixed(1)
      plen: terminal fixed(1)
      pv: terminal length(plen)
    }
  }
  ext: optional (flags nonzero) {
    ext_body: seq {
      elen: terminal delimited(";") ascii
      edata: terminal length(elen)
    }
  }
  blob_len: terminal fixed(2)
  blob: terminal length(blob_len)
  tail: terminal end
}
)";

/// Every spec the wire fuzzer and the corpus replay know by name.
inline std::vector<SpecEntry> spec_registry() {
  return {
      {"netdemo", kNetDemoSpec},
      {"delimchat", kDelimSpec},
      // The obfuscator replaces delimiter boundaries with length encodings,
      // so only the identity compilation (per_node 0) leaves real delimiter
      // bytes on the wire for the delim-corrupt / delim-prefix mutants and
      // the undecided-stop-marker resume path to chew on.
      {"delimchat-identity", kDelimSpec, 0},
      {"torture", kTortureSpec},
      {"modbus-request", modbus::request_spec()},
  };
}

inline const SpecEntry* find_spec(std::string_view name) {
  static const std::vector<SpecEntry> registry = spec_registry();
  for (const SpecEntry& entry : registry) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace protoobf::fuzztest
